"""Option greeks through the AD substrate.

The same adjoint engine that powers significance analysis differentiates
the pricing function directly: one reverse sweep per option yields all
five first-order sensitivities (delta, dual-delta, rho, vega, theta), and
the second-order machinery gives gamma.  Verified against the
Black-Scholes closed forms in the tests — a useful cross-validation of
the whole AD stack on a production formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ad import adjoint_gradient, hessian_vector_product

from .sequential import black_scholes_price

__all__ = ["Greeks", "greeks"]


@dataclass(frozen=True)
class Greeks:
    """First-order sensitivities (plus gamma) of one option price."""

    price: float
    delta: float  # dP/dS
    dual_delta: float  # dP/dK
    rho: float  # dP/dr
    vega: float  # dP/dv
    theta: float  # -dP/dT  (calendar decay)
    gamma: float  # d²P/dS²


def greeks(
    spot: float,
    strike: float,
    rate: float,
    volatility: float,
    expiry: float,
    put: bool = False,
) -> Greeks:
    """All greeks of one option via adjoint AD (one sweep + one HVP)."""

    def price_fn(xs):
        s, k, r, v, t = xs
        return black_scholes_price(s, k, r, v, t, put=put)

    point = [spot, strike, rate, volatility, expiry]
    price, grad = adjoint_gradient(price_fn, point)
    _, _, hvp = hessian_vector_product(
        price_fn, point, [1.0, 0.0, 0.0, 0.0, 0.0]
    )
    return Greeks(
        price=price,
        delta=grad[0],
        dual_delta=grad[1],
        rho=grad[2],
        vega=grad[3],
        theta=-grad[4],
        gamma=hvp[0],
    )


def analytic_call_greeks(
    spot: float, strike: float, rate: float, volatility: float, expiry: float
) -> Greeks:
    """Closed-form call greeks (the textbook formulas, for validation)."""
    sqrt_t = math.sqrt(expiry)
    d1 = (
        math.log(spot / strike) + (rate + 0.5 * volatility**2) * expiry
    ) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    pdf_d1 = math.exp(-0.5 * d1 * d1) / math.sqrt(2 * math.pi)

    def cdf(x: float) -> float:
        return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

    discount = math.exp(-rate * expiry)
    price = spot * cdf(d1) - strike * discount * cdf(d2)
    return Greeks(
        price=price,
        delta=cdf(d1),
        dual_delta=-discount * cdf(d2),
        rho=strike * expiry * discount * cdf(d2),
        vega=spot * pdf_d1 * sqrt_t,
        theta=-(
            spot * pdf_d1 * volatility / (2 * sqrt_t)
            + rate * strike * discount * cdf(d2)
        ),
        gamma=pdf_d1 / (spot * volatility * sqrt_t),
    )
