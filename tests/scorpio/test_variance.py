"""Tests for S5: the per-level significance variance scan."""

import pytest

from repro.scorpio import DynDFG, find_significance_variance, level_variance
from repro.scorpio.dyndfg import DFGNode


def node(nid, parents=(), op="op", sig=None):
    return DFGNode(
        id=nid,
        op=op,
        label=None,
        value=1.0,
        adjoint=None,
        significance=sig,
        parents=tuple(parents),
    )


def layered(sig_by_level):
    """Build a graph with one output and given significances per level."""
    nodes = [node(0, op="out", sig=1.0)]
    nid = 1
    prev_level = [0]
    for sigs in sig_by_level:
        current = []
        for s in sigs:
            nodes.append(node(nid, (0,) if prev_level == [0] else tuple(prev_level[:1]), sig=s))
            current.append(nid)
            nid += 1
        # Wire this whole level as parents of one node of the previous level.
        target = nodes[prev_level[0]]
        target.parents = tuple(current)
        prev_level = current
    # Rebuild with correct parents.
    return DynDFG(nodes, outputs=[0])


class TestLevelVariance:
    def test_uniform_level_zero_variance(self):
        g = layered([[0.5, 0.5, 0.5]])
        assert level_variance(g, 1) == 0.0

    def test_varying_level_positive(self):
        g = layered([[0.1, 0.9]])
        assert level_variance(g, 1) == pytest.approx(0.16)

    def test_single_node_level_zero(self):
        g = layered([[0.7]])
        assert level_variance(g, 1) == 0.0

    def test_unscored_counts_as_zero(self):
        g = layered([[None, 0.8]])
        assert level_variance(g, 1) == pytest.approx(0.16)


class TestScan:
    def test_finds_first_varying_level(self):
        g = layered([[0.5, 0.5], [0.1, 0.9]])
        scan = find_significance_variance(g, delta=1e-3)
        assert scan.found_level == 2

    def test_truncates_above_found_level(self):
        g = layered([[0.5, 0.5], [0.1, 0.9], [0.3, 0.3]])
        scan = find_significance_variance(g, delta=1e-3)
        assert scan.graph.height <= scan.found_level + 2

    def test_no_variance_returns_whole_graph(self):
        g = layered([[0.5, 0.5], [0.4, 0.4]])
        scan = find_significance_variance(g, delta=1e-3)
        assert scan.found_level is None
        assert len(scan.graph) == len(g)

    def test_task_nodes_at_found_level(self):
        g = layered([[0.1, 0.9]])
        scan = find_significance_variance(g, delta=1e-3)
        assert {n.significance for n in scan.task_nodes} == {0.1, 0.9}

    def test_task_nodes_fall_back_to_inputs(self):
        g = layered([[0.5, 0.5]])
        scan = find_significance_variance(g, delta=1e-3)
        assert scan.task_nodes == scan.graph.inputs()

    def test_delta_controls_sensitivity(self):
        g = layered([[0.5, 0.52]])
        assert find_significance_variance(g, delta=1.0).found_level is None
        assert find_significance_variance(g, delta=1e-6).found_level == 1

    def test_variances_recorded(self):
        g = layered([[0.5, 0.5], [0.1, 0.9]])
        scan = find_significance_variance(g, delta=1e-3)
        assert 1 in scan.variances and 2 in scan.variances
        assert scan.variances[1] == 0.0
