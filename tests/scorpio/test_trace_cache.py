"""Record-or-replay trace cache (:mod:`repro.scorpio.trace_cache`).

The cache's contract is *bit-identity*: an analysis served from a cached
trace must serialize byte-for-byte equal to re-recording the kernel on
the same inputs.  The tests drive small kernels through
:class:`CachedTrace` / :class:`TraceCache` and compare
:func:`report_to_json` output against the direct ``Analysis`` path, then
exercise every fallback: branch divergence, unreplayable structure and
the ``validate=True`` re-record check.
"""

import numpy as np
import pytest

from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.scorpio import (
    Analysis,
    CachedTrace,
    TraceCache,
    replay_enabled,
    set_replay_default,
)
from repro.ad.replay import ReplayError
from repro.scorpio.serialize import report_to_json
from repro.scorpio.trace_cache import TraceDivergenceError, op_sequence_hash


def _record_poly(ivs) -> Analysis:
    an = Analysis()
    with an:
        x = an.input(ivs[0], name="x")
        y = an.input(ivs[1], name="y")
        t = an.intermediate(op.sin(x * y) + x, "t")
        an.output(t * t + y / 4.0, name="out")
    return an


def _record_branchy(ivs) -> Analysis:
    an = Analysis()
    with an:
        x = an.input(ivs[0], name="x")
        y = an.input(ivs[1], name="y")
        z = x * y if x < y else x + y
        an.output(z, name="out")
    return an


def _ivs(cx, cy, r=0.1):
    return [Interval.centered(cx, r), Interval.centered(cy, r)]


def _direct(recorder, ivs, simplify=True):
    return recorder(ivs).analyse(simplify=simplify, compiled=True)


class TestCachedTrace:
    @pytest.mark.parametrize("simplify", [True, False])
    def test_reports_byte_identical_to_recording(self, simplify):
        trace = CachedTrace(_record_poly(_ivs(0.7, 1.2)), simplify=simplify)
        rng = np.random.default_rng(7)
        for _ in range(4):
            ivs = _ivs(rng.uniform(0.2, 2.0), rng.uniform(0.2, 2.0))
            rep = trace.analyse(ivs)
            ref = _direct(_record_poly, ivs, simplify=simplify)
            assert report_to_json(rep) == report_to_json(ref)
        assert trace.replays == 4

    def test_label_index(self):
        trace = CachedTrace(_record_poly(_ivs(0.7, 1.2)))
        assert trace.label_index("x") == 0
        assert trace.label_index("y") == 1
        with pytest.raises(KeyError):
            trace.label_index("nope")

    def test_lane_significances_match_scalar_replay(self):
        trace = CachedTrace(_record_poly(_ivs(0.7, 1.2)), simplify=False)
        rng = np.random.default_rng(3)
        centres = rng.uniform(0.2, 2.0, (2, 5))
        lanes = trace.forward_lanes(centres - 0.1, centres + 0.1)
        sig = trace.lane_significances(lanes)
        for j in range(centres.shape[1]):
            ref = trace.analyse(
                _ivs(centres[0, j], centres[1, j])
            ).labelled_significances()
            for name in ("x", "y", "t"):
                assert sig[trace.label_index(name), j] == ref[name]

    def test_lane_report_byte_identical(self):
        trace = CachedTrace(_record_poly(_ivs(0.7, 1.2)), simplify=False)
        centres = np.array([[0.5, 1.5], [1.0, 0.4]])
        lanes = trace.forward_lanes(centres - 0.05, centres + 0.05)
        for j in range(2):
            rep = trace.lane_report(lanes, j)
            ref = _direct(
                _record_poly,
                _ivs(centres[0, j], centres[1, j], r=0.05),
                simplify=False,
            )
            assert report_to_json(rep) == report_to_json(ref)

    def test_lane_significances_require_single_output(self):
        def two_outputs(ivs):
            an = Analysis()
            with an:
                x = an.input(ivs[0], name="x")
                y = an.input(ivs[1], name="y")
                an.output(x * y, name="p")
                an.output(x + y, name="s")
            return an

        trace = CachedTrace(two_outputs(_ivs(0.7, 1.2)))
        lanes = trace.forward_lanes(
            np.full((2, 3), 0.5), np.full((2, 3), 0.6)
        )
        with pytest.raises(ReplayError, match="single-output"):
            trace.lane_significances(lanes)


class TestTraceCache:
    def test_record_then_replay(self):
        cache = TraceCache()
        ivs_list = [_ivs(0.7, 1.2), _ivs(0.3, 0.9), _ivs(1.4, 0.5)]
        reports = [
            cache.analyse(("poly",), _record_poly, ivs) for ivs in ivs_list
        ]
        stats = cache.stats()
        assert stats == {
            "records": 1,
            "replays": 2,
            "divergences": 0,
            "validations": 0,
            "traces": 1,
        }
        for ivs, rep in zip(ivs_list, reports):
            ref = _direct(_record_poly, ivs)
            assert report_to_json(rep) == report_to_json(ref)

    def test_keys_are_independent(self):
        cache = TraceCache()
        cache.analyse(("a",), _record_poly, _ivs(0.7, 1.2))
        cache.analyse(("b",), _record_poly, _ivs(0.7, 1.2))
        assert cache.stats()["records"] == 2
        assert cache.stats()["traces"] == 2

    def test_divergent_branch_falls_back_to_recording(self):
        cache = TraceCache()
        same = _ivs(1.0, 3.0)  # records the x < y branch
        flipped = _ivs(5.0, 3.0)  # decides x < y the other way
        cache.analyse(("br",), _record_branchy, same)
        rep = cache.analyse(("br",), _record_branchy, flipped)
        assert report_to_json(rep) == report_to_json(
            _direct(_record_branchy, flipped)
        )
        stats = cache.stats()
        # The fallback recording counts as a divergence, not a record:
        # the causes are disjoint in stats().
        assert stats["divergences"] == 1
        assert stats["records"] == 1
        # The cached trace survives for inputs on the recorded branch.
        rep = cache.analyse(("br",), _record_branchy, _ivs(0.5, 2.0))
        assert cache.stats()["replays"] == 1
        assert report_to_json(rep) == report_to_json(
            _direct(_record_branchy, _ivs(0.5, 2.0))
        )

    def test_unreplayable_trace_records_forever(self):
        def tampered(ivs):
            an = _record_poly(ivs)
            an.tape.nodes[-1].op = "mystery"
            return an

        cache = TraceCache()
        for _ in range(3):
            cache.analyse(("bad",), tampered, _ivs(0.7, 1.2))
        stats = cache.stats()
        assert stats == {
            "records": 3,
            "replays": 0,
            "divergences": 0,
            "validations": 0,
            "traces": 0,
        }

    def test_validate_passes_straight_line_kernel(self):
        cache = TraceCache(validate=True)
        cache.analyse(("poly",), _record_poly, _ivs(0.7, 1.2))
        rep = cache.analyse(("poly",), _record_poly, _ivs(0.4, 0.8))
        assert report_to_json(rep) == report_to_json(
            _direct(_record_poly, _ivs(0.4, 0.8))
        )
        assert cache.stats()["replays"] == 1
        # The validate-mode re-record is counted on its own, apart from
        # plain misses and divergence fallbacks.
        assert cache.stats()["validations"] == 1
        assert cache.stats()["records"] == 1

    def test_validate_catches_unguarded_control_flow(self):
        calls = {"n": 0}

        def flaky(ivs):
            # Branches on Python state the tape never compares: the
            # straight-line assumption breaks without tripping a guard.
            calls["n"] += 1
            an = Analysis()
            with an:
                x = an.input(ivs[0], name="x")
                y = an.input(ivs[1], name="y")
                z = x * y if calls["n"] == 1 else x + y
                an.output(z, name="out")
            return an

        cache = TraceCache(validate=True)
        cache.analyse(("flaky",), flaky, _ivs(0.7, 1.2))
        with pytest.raises(TraceDivergenceError, match="op sequence"):
            cache.analyse(("flaky",), flaky, _ivs(0.4, 0.8))


class TestAnalyseOutcome:
    def test_outcomes_record_then_replay(self):
        cache = TraceCache()
        _, first = cache.analyse_outcome(("poly",), _record_poly, _ivs(0.7, 1.2))
        _, second = cache.analyse_outcome(("poly",), _record_poly, _ivs(0.3, 0.9))
        assert (first, second) == ("record", "replay")

    def test_outcome_divergence(self):
        cache = TraceCache()
        cache.analyse_outcome(("br",), _record_branchy, _ivs(1.0, 3.0))
        _, outcome = cache.analyse_outcome(("br",), _record_branchy, _ivs(5.0, 3.0))
        assert outcome == "divergence"


class TestConcurrency:
    def test_cold_race_records_once(self):
        """N threads race a cold key: one recording, the rest replay."""
        import threading

        cache = TraceCache()
        n = 8
        barrier = threading.Barrier(n)
        results: list[tuple[str, int, str]] = []
        lock = threading.Lock()

        def worker(seed: int) -> None:
            barrier.wait()
            report, outcome = cache.analyse_outcome(
                ("poly",), _record_poly, _ivs(0.5 + seed / 100.0, 1.2)
            )
            with lock:
                results.append((outcome, seed, report_to_json(report)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        outcomes = [o for o, _, _ in results]
        assert outcomes.count("record") == 1
        assert outcomes.count("replay") == n - 1
        stats = cache.stats()
        assert stats["records"] == 1
        assert stats["replays"] == n - 1
        assert stats["traces"] == 1
        # Every thread still gets the byte-identical report for its inputs.
        for _, seed, served in results:
            ref = _direct(_record_poly, _ivs(0.5 + seed / 100.0, 1.2))
            assert served == report_to_json(ref)

    def test_threads_replay_byte_identical(self):
        import threading

        cache = TraceCache()
        cache.analyse(("poly",), _record_poly, _ivs(0.7, 1.2))
        inputs = [_ivs(0.4 + i / 50.0, 0.9) for i in range(6)]
        served: dict[int, str] = {}
        lock = threading.Lock()

        def worker(i: int) -> None:
            report = cache.analyse(("poly",), _record_poly, inputs[i])
            with lock:
                served[i] = report_to_json(report)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(inputs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i, ivs in enumerate(inputs):
            assert served[i] == report_to_json(_direct(_record_poly, ivs))
        assert cache.stats()["replays"] == len(inputs)


class TestOpSequenceHash:
    def test_same_code_same_hash_across_inputs(self):
        h1 = op_sequence_hash(_record_poly(_ivs(0.7, 1.2)).tape)
        h2 = op_sequence_hash(_record_poly(_ivs(2.0, 0.1)).tape)
        assert h1 == h2

    def test_divergent_branch_changes_hash(self):
        h1 = op_sequence_hash(_record_branchy(_ivs(1.0, 3.0)).tape)
        h2 = op_sequence_hash(_record_branchy(_ivs(5.0, 3.0)).tape)
        assert h1 != h2


class TestReplayDefault:
    def test_round_trip(self):
        initial = replay_enabled()
        try:
            previous = set_replay_default(False)
            assert previous == initial
            assert replay_enabled() is False
            assert replay_enabled(True) is True
            set_replay_default(True)
            assert replay_enabled() is True
            assert replay_enabled(False) is False
        finally:
            set_replay_default(initial)
