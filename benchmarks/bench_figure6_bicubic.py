"""Figure 6: bicubic pixel-pair significance benchmark.

Regenerates the eight pair significances over the fractional-position
grid; the inner 2x2 pairs (c, e) must dominate — the basis for the
bilinear approximate task version.
"""

import pytest

from repro.kernels.fisheye import analyse_bicubic


def test_figure6_pair_ranking(benchmark):
    analysis = benchmark(analyse_bicubic, positions=5)
    ranking = analysis.ranking()

    assert set(ranking[:2]) == {"c", "e"}  # inner 2x2 pairs on top
    assert set(ranking[-2:]) == {"b", "h"}  # outer corner pairs at the bottom
    benchmark.extra_info["pair_significance"] = {
        k: round(v, 4) for k, v in sorted(analysis.pair_significance.items())
    }


def test_figure6_content_independence(benchmark):
    """The pattern is a property of the weights, not the image content."""
    import numpy as np

    rng = np.random.default_rng(3)
    window = rng.uniform(0, 255, (4, 4))
    analysis = benchmark(analyse_bicubic, window=window, positions=3)
    assert set(analysis.ranking()[:2]) == {"c", "e"}
