"""Interval arithmetic substrate (the paper's filib++-style base type).

Public surface:

* :class:`Interval`, :class:`Box` — interval scalars and vectors.
* :mod:`repro.intervals.functions` — interval intrinsics (also re-exported
  here under their usual names).
* :class:`AmbiguousComparisonError` — raised on undecidable branch
  conditions (paper Section 2.2).
* :func:`split_until_decidable` — automatic interval splitting (the paper's
  "ongoing research" extension).
* :func:`rounded_mode` / :func:`set_rounding` — toggle rigorous outward
  rounding.
"""

from .boxes import Box
from .functions import (
    acos,
    asin,
    atan,
    atan2,
    cbrt,
    ceil,
    clip,
    cos,
    cosh,
    erf,
    erfc,
    exp,
    expm1,
    floor,
    hypot,
    log,
    log1p,
    log2,
    log10,
    maximum,
    minimum,
    pow,
    round_st,
    sin,
    sinh,
    sqrt,
    tan,
    tanh,
)
from .interval import AmbiguousComparisonError, EmptyIntervalError, Interval, as_interval
from .rounding import rounded_mode, rounding_enabled, set_rounding
from .splitting import (
    ReplayEvaluator,
    SplitResult,
    evaluate_with_splitting,
    split_until_decidable,
)

__all__ = [
    "Interval",
    "Box",
    "as_interval",
    "AmbiguousComparisonError",
    "EmptyIntervalError",
    "SplitResult",
    "ReplayEvaluator",
    "split_until_decidable",
    "evaluate_with_splitting",
    "rounded_mode",
    "rounding_enabled",
    "set_rounding",
    # intrinsics
    "sqrt",
    "cbrt",
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "erf",
    "erfc",
    "pow",
    "hypot",
    "floor",
    "ceil",
    "round_st",
    "minimum",
    "maximum",
    "clip",
]
