"""Trace context: request-scoped ids that flow across every boundary.

A :class:`TraceContext` is the W3C-style identity triple of one unit of
work — a 128-bit **trace id** naming the whole request, a 64-bit **span
id** naming the current operation, and the parent operation's span id.
It is carried in a :mod:`contextvars` variable, so it follows the work
wherever Python's context does: through plain calls, through ``asyncio``
tasks (each task snapshots the context at creation), and — with the
explicit helpers here — across thread pools and process pools, where
``contextvars`` alone stops.

The span machinery (:mod:`repro.obs.trace`) integrates automatically:
while a context is active, every :class:`~repro.obs.trace.Span` stamps
itself with the trace id, mints a fresh span id, records the enclosing
context's span id as its parent, and activates its own child context for
the duration — so nested spans build a correctly-parented tree even when
the pieces are recorded on different threads or in different *processes*
and only meet again as ids.  With no active context (the default), spans
carry no ids and the stamping costs one contextvar read.

Wire format (the ``X-Repro-Trace`` HTTP header)::

    <32 hex chars trace id>-<16 hex chars span id>

:func:`parse_header` accepts a bare trace id too (a caller that only
wants correlation, not parenting) and returns ``None`` for anything
malformed — propagation must never make a request fail.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "TraceContext",
    "new_trace",
    "new_span_id",
    "current",
    "activate",
    "restore",
    "use",
    "run_with",
    "parse_header",
]

HEADER = "X-Repro-Trace"

_TRACE_ID_LEN = 32  # 128-bit, hex
_SPAN_ID_LEN = 16  # 64-bit, hex


@dataclass(frozen=True)
class TraceContext:
    """One (trace id, span id, parent span id) triple.

    Immutable: derivation always goes through :meth:`child`, which keeps
    the trace id, mints a fresh span id and records this context's span
    id as the parent — the one rule that makes span forests re-linkable
    after crossing a process boundary.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self) -> "TraceContext":
        """A new context one level below this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
        )

    def to_header(self) -> str:
        """The ``X-Repro-Trace`` header value for this context."""
        return f"{self.trace_id}-{self.span_id}"

    def __str__(self) -> str:
        return self.to_header()


def new_span_id() -> str:
    """A fresh random 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


def new_trace() -> TraceContext:
    """Mint a brand-new root context (fresh 128-bit trace id)."""
    return TraceContext(trace_id=os.urandom(16).hex(), span_id=new_span_id())


def parse_header(value: "str | None") -> "TraceContext | None":
    """Parse an ``X-Repro-Trace`` header; ``None`` on anything malformed.

    Accepts ``<trace>-<span>`` (full context: spans recorded under it
    re-parent onto the caller's span) or a bare ``<trace>`` id (a new
    span id is minted; correlation only).
    """
    if not value or not isinstance(value, str):
        return None
    value = value.strip().lower()
    trace_id, _, span_id = value.partition("-")
    if len(trace_id) != _TRACE_ID_LEN or not _is_hex(trace_id):
        return None
    if not span_id:
        return TraceContext(trace_id=trace_id, span_id=new_span_id())
    if len(span_id) != _SPAN_ID_LEN or not _is_hex(span_id):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def _is_hex(s: str) -> bool:
    try:
        int(s, 16)
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# The context variable
# ----------------------------------------------------------------------
_CURRENT: ContextVar["TraceContext | None"] = ContextVar(
    "repro_trace_context", default=None
)


def current() -> "TraceContext | None":
    """The active context on this thread/task, or ``None``."""
    return _CURRENT.get()


def activate(ctx: "TraceContext | None") -> Token:
    """Make ``ctx`` current; returns the token for :func:`restore`."""
    return _CURRENT.set(ctx)


def restore(token: Token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


@contextmanager
def use(ctx: "TraceContext | None") -> Iterator["TraceContext | None"]:
    """Scoped :func:`activate`/:func:`restore` (``None`` detaches)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def run_with(ctx: "TraceContext | None", fn: Callable[[], Any]) -> Any:
    """Call ``fn()`` with ``ctx`` active — the thread-pool shim.

    ``loop.run_in_executor`` and ``concurrent.futures`` do not carry
    ``contextvars`` onto their worker threads; wrapping the submitted
    callable in ``run_with(current(), fn)`` is the explicit hop.
    """
    if ctx is None:
        return fn()
    token = _CURRENT.set(ctx)
    try:
        return fn()
    finally:
        _CURRENT.reset(token)
