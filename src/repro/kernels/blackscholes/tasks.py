"""Task-based, significance-driven BlackScholes (Section 4.1.5).

The portfolio is priced in chunks; each chunk is one task.  The accurate
version uses libm-quality functions throughout.  The approximate version
keeps blocks A and B accurate and approximates the *least significant*
blocks C and D — exactly what the paper does — using fastapprox-style
implementations (a crude logistic CDF for N(d2), fast exp for the
discount factor).

Loop perforation is not applicable to BlackScholes (Section 4.2): the
per-option computation has no loop to perforate, so Figure 7 shows only
the significance-driven variant.
"""

from __future__ import annotations

import numpy as np

from repro.fastmath import np_fast_exp, np_logistic_cndf
from repro.kernels.common import KernelRun
from repro.runtime import AnalyticEnergyModel, TaskRuntime

from .data import Portfolio
from .sequential import (
    OPS_PER_OPTION_ACCURATE,
    OPS_PER_OPTION_APPROX,
    price_portfolio,
)

__all__ = ["blackscholes_significance", "price_chunk_approx", "ENERGY_MODEL"]

# Calibrated so a fully accurate 16384-option run lands near the paper's
# ~170 J full-accuracy BlackScholes point.  The per-task overhead fraction
# reflects the paper's 31.5% code-overhead outlier for this benchmark.
ENERGY_MODEL = AnalyticEnergyModel(
    energy_per_op=3.9e-5,
    task_overhead=0.04,
    static_power=0.0,
)

DEFAULT_CHUNK = 256


def price_chunk_approx(out: np.ndarray, chunk: Portfolio, start: int) -> None:
    """Approximate pricing: accurate A/B, fastapprox C/D."""
    s, k = chunk.spots, chunk.strikes
    r, v, t = chunk.rates, chunk.volatilities, chunk.expiries

    sqrt_t = np.sqrt(t)
    vol_sqrt_t = v * sqrt_t
    d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / vol_sqrt_t  # block A
    d2 = d1 - vol_sqrt_t

    from .sequential import _erf_np, _INV_SQRT2

    n_d1 = 0.5 * (1.0 + _erf_np(d1 * _INV_SQRT2))  # block B: accurate
    n_d2 = np_logistic_cndf(d2)  # block C: crude logistic CDF
    discount = np_fast_exp(-r * t)  # block D: fast exp

    call = s * n_d1 - k * discount * n_d2
    put_price = call - s + k * discount
    out[start : start + chunk.count] = np.where(chunk.puts, put_price, call)


def _price_chunk_accurate(out: np.ndarray, chunk: Portfolio, start: int) -> None:
    out[start : start + chunk.count] = price_portfolio(
        chunk.spots,
        chunk.strikes,
        chunk.rates,
        chunk.volatilities,
        chunk.expiries,
        chunk.puts,
    )


def blackscholes_significance(
    portfolio: Portfolio,
    ratio: float,
    chunk_size: int = DEFAULT_CHUNK,
    runtime: TaskRuntime | None = None,
) -> KernelRun:
    """Run the significance-driven portfolio pricing at the given ratio.

    Chunks have uniform significance 0.5 — the approximation quality is
    homogeneous across options, so the ratio knob directly selects the
    fraction priced accurately.
    """
    rt = runtime or TaskRuntime(energy_model=ENERGY_MODEL)
    prices = np.zeros(portfolio.count, dtype=np.float64)
    for start in range(0, portfolio.count, chunk_size):
        stop = min(start + chunk_size, portfolio.count)
        chunk = portfolio.slice(start, stop)
        rt.submit(
            _price_chunk_accurate,
            args=(prices, chunk, start),
            significance=0.5,
            approx_fn=price_chunk_approx,
            label="pricing",
            work=OPS_PER_OPTION_ACCURATE * chunk.count,
            approx_work=OPS_PER_OPTION_APPROX * chunk.count,
        )
    group = rt.taskwait("pricing", ratio=ratio)
    return KernelRun(
        output=prices,
        energy=group.energy,
        ratio=ratio,
        variant="significance",
        stats=group.stats,
    )
