"""Tests for the energy models."""

import pytest

from repro.runtime import (
    AnalyticEnergyModel,
    EnergyBreakdown,
    ExecutionMode,
    Task,
    TaskResult,
    TimingEnergyModel,
    perforation_energy,
)


def result(work=100.0, approx_work=10.0, mode=ExecutionMode.ACCURATE, secs=0.0):
    task = Task(
        fn=lambda: None,
        approx_fn=lambda: None,
        work=work,
        approx_work=approx_work,
    )
    return TaskResult(task, mode, None, secs)


class TestBreakdown:
    def test_total(self):
        b = EnergyBreakdown(dynamic=1.0, overhead=2.0, static=3.0)
        assert b.total == 6.0

    def test_add(self):
        b = EnergyBreakdown(1, 2, 3) + EnergyBreakdown(10, 20, 30)
        assert (b.dynamic, b.overhead, b.static) == (11, 22, 33)

    def test_default_zero(self):
        assert EnergyBreakdown().total == 0.0


class TestAnalyticModel:
    MODEL = AnalyticEnergyModel(
        energy_per_op=1.0, task_overhead=5.0, static_power=10.0, throughput=100.0
    )

    def test_accurate_task(self):
        e = self.MODEL.measure([result(work=100.0)])
        assert e.dynamic == 100.0
        assert e.overhead == 5.0
        assert e.static == pytest.approx(10.0 * 100.0 / 100.0)

    def test_approximate_task_cheaper(self):
        acc = self.MODEL.measure([result(mode=ExecutionMode.ACCURATE)])
        app = self.MODEL.measure([result(mode=ExecutionMode.APPROXIMATE)])
        assert app.total < acc.total

    def test_dropped_costs_only_overhead(self):
        e = self.MODEL.measure([result(mode=ExecutionMode.DROPPED)])
        assert e.dynamic == 0.0 and e.overhead == 5.0

    def test_monotone_in_work(self):
        small = self.MODEL.measure([result(work=10.0)])
        big = self.MODEL.measure([result(work=1000.0)])
        assert big.total > small.total

    def test_empty_batch(self):
        assert self.MODEL.measure([]).total == 0.0


class TestPerforationEnergy:
    MODEL = AnalyticEnergyModel(
        energy_per_op=1.0, task_overhead=5.0, static_power=0.0
    )

    def test_no_task_overhead(self):
        e = perforation_energy(self.MODEL, executed_work=100.0)
        assert e.overhead == 0.0 and e.dynamic == 100.0

    def test_cheaper_than_tasks_at_equal_work(self):
        task_energy = self.MODEL.measure([result(work=100.0)])
        perf_energy = perforation_energy(self.MODEL, executed_work=100.0)
        assert perf_energy.total < task_energy.total


class TestTimingModel:
    def test_power_times_time(self):
        model = TimingEnergyModel(active_power=50.0, static_power=10.0)
        e = model.measure([result(secs=2.0), result(secs=1.0)])
        assert e.dynamic == pytest.approx(150.0)
        assert e.static == pytest.approx(30.0)
