"""Maclaurin series — the paper's running example (Section 3, Listings 5-7).

``f(x) = Σ_{i=0}^{n-1} x^i ≈ 1/(1-x)`` for ``x ∈ (-1, 1)``.

Three views of the same kernel:

* :func:`maclaurin_series` — the original implementation (Listing 5),
  written against generic numerics so it also runs in interval/adjoint
  mode;
* :func:`analyse_maclaurin` — Listing 6: register ``x`` with a width-1
  interval, tag every ``term_i``, analyse.  Reproduces Figure 3:
  ``term0`` has significance 0 (it is the constant 1), ``term1`` is the
  most significant, and every later term is slightly less significant
  than its predecessor;
* :func:`maclaurin_tasks` — Listing 7: one task per term with
  significance ``(n-i+1)/(n+2)``, an approximate ``pow_fast`` version,
  and a ratio-controlled taskwait.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ad.adouble import ADouble
from repro.fastmath import fast_pow
from repro.runtime import AnalyticEnergyModel, TaskRuntime
from repro.scorpio import Analysis, SignificanceReport

__all__ = [
    "maclaurin_series",
    "analyse_maclaurin",
    "MaclaurinAnalysis",
    "maclaurin_tasks",
    "pow_term",
    "pow_term_fast",
]


def maclaurin_series(x, n: int):
    """Listing 5: ``sum(x**i for i in range(n))`` in any numeric mode."""
    if n <= 0:
        raise ValueError(f"series needs at least one term, got n={n}")
    result = None
    for i in range(n):
        term = x**i
        result = term if result is None else result + term
    return result


@dataclass
class MaclaurinAnalysis:
    """Figure 3 data: the report plus per-term significances."""

    report: SignificanceReport
    term_significances: dict[str, float]
    normalised: dict[str, float]

    @property
    def partition_level(self) -> int | None:
        """Level at which Algorithm 1 found significance variance."""
        return self.report.partition_level


def analyse_maclaurin(
    x_hat: float = 0.49,
    width: float = 1.0,
    n: int = 5,
    delta: float = 1e-4,
    compiled: bool = False,
) -> MaclaurinAnalysis:
    """Listing 6: significance analysis of the series over ``[x̂±width/2]``.

    The default ``x̂ = 0.49`` gives the near-uniform, monotonically
    decreasing normalised term significances of Figure 3b
    (0.26 / 0.25 / 0.25 / 0.24 for terms 1-4, 0 for term 0).
    """
    an = Analysis(delta=delta)
    with an:
        x = an.input(x_hat, width=width, name="x")
        result = ADouble.constant(0.0)
        for i in range(n):
            term = x**i
            an.intermediate(term, f"term{i}")
            result = result + term
        an.output(result, name="result")
    report = an.analyse(compiled=compiled)

    terms = {
        label: value
        for label, value in report.labelled_significances().items()
        if label.startswith("term")
    }
    total = sum(terms.values())
    normalised = {
        label: (value / total if total > 0 else 0.0)
        for label, value in terms.items()
    }
    return MaclaurinAnalysis(
        report=report, term_significances=terms, normalised=normalised
    )


def pow_term(out: list, x: float, i: int) -> float:
    """Accurate task body (Listing 7's ``task``): ``out[i] = x**i``."""
    value = math.pow(x, i)
    out[i] = value
    return value


def pow_term_fast(out: list, x: float, i: int) -> float:
    """Approximate task body using fastapprox ``pow`` (Listing 7's
    ``approx``)."""
    if i == 0:
        value = 1.0
    elif x == 0.0:
        value = 0.0
    else:
        sign = -1.0 if (x < 0 and i % 2 == 1) else 1.0
        value = sign * fast_pow(abs(x), float(i))
    out[i] = value
    return value


def maclaurin_tasks(
    x: float,
    n: int,
    wait_ratio: float,
    runtime: TaskRuntime | None = None,
) -> tuple[float, TaskRuntime]:
    """Listing 7: task-based series with the significance/ratio knob.

    Term 0 is computed inline (it is the constant 1 — significance 0 made
    it not worth a task); terms ``1..n-1`` are tasks with significance
    ``(n-i+1)/(n+2)``, monotonically decreasing as the analysis found.

    Returns the series value and the runtime (for energy inspection).
    """
    if n <= 0:
        raise ValueError(f"series needs at least one term, got n={n}")
    rt = runtime or TaskRuntime(energy_model=AnalyticEnergyModel())
    temp = [0.0] * n
    temp[0] = 1.0
    for i in range(1, n):
        significance = (n - i + 1) / float(n + 2)
        rt.submit(
            pow_term,
            args=(temp, x, i),
            significance=significance,
            approx_fn=pow_term_fast,
            label="maclaurin",
            work=float(40 * i),  # accurate pow cost grows with exponent
            approx_work=8.0,  # fastapprox pow is O(1)
        )
    rt.taskwait("maclaurin", ratio=wait_ratio)
    return sum(temp), rt
