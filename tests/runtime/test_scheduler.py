"""Tests for the ratio-driven significance scheduler."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import ExecutionMode, Task, plan_modes


def tasks_with(sigs, approx=False):
    return [
        Task(
            fn=lambda: None,
            approx_fn=(lambda: None) if approx else None,
            significance=s,
        )
        for s in sigs
    ]


class TestRatioSemantics:
    def test_ratio_one_all_accurate(self):
        modes = plan_modes(tasks_with([0.1, 0.5, 0.9]), 1.0)
        assert all(m is ExecutionMode.ACCURATE for m in modes)

    def test_ratio_zero_drops_everything_unforced(self):
        modes = plan_modes(tasks_with([0.1, 0.5, 0.9]), 0.0)
        assert all(m is ExecutionMode.DROPPED for m in modes)

    def test_ceil_rule(self):
        # ceil(0.5 * 3) = 2 accurate tasks.
        modes = plan_modes(tasks_with([0.1, 0.5, 0.9]), 0.5)
        assert sum(m is ExecutionMode.ACCURATE for m in modes) == 2

    def test_most_significant_chosen(self):
        modes = plan_modes(tasks_with([0.1, 0.9, 0.5]), 1 / 3)
        assert modes[1] is ExecutionMode.ACCURATE
        assert modes[0] is ExecutionMode.DROPPED

    def test_approx_fn_used_when_present(self):
        modes = plan_modes(tasks_with([0.1, 0.9], approx=True), 0.5)
        assert modes[0] is ExecutionMode.APPROXIMATE
        assert modes[1] is ExecutionMode.ACCURATE

    def test_forced_full_significance(self):
        # sig 1.0 tasks are accurate even at ratio 0 (Sobel's A tasks).
        modes = plan_modes(tasks_with([1.0, 0.5, 1.0]), 0.0)
        assert modes[0] is ExecutionMode.ACCURATE
        assert modes[2] is ExecutionMode.ACCURATE
        assert modes[1] is ExecutionMode.DROPPED

    def test_forced_counts_toward_ratio(self):
        # 1 forced + ratio needing 2 -> exactly 2 accurate.
        modes = plan_modes(tasks_with([1.0, 0.5, 0.4, 0.3]), 0.5)
        assert sum(m is ExecutionMode.ACCURATE for m in modes) == 2

    def test_tie_break_by_submission_order(self):
        modes = plan_modes(tasks_with([0.5, 0.5, 0.5]), 1 / 3)
        assert modes[0] is ExecutionMode.ACCURATE
        assert modes[1] is ExecutionMode.DROPPED

    def test_empty_group(self):
        assert plan_modes([], 0.5) == []

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            plan_modes(tasks_with([0.5]), 1.5)
        with pytest.raises(ValueError):
            plan_modes(tasks_with([0.5]), -0.1)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_properties(sigs, ratio):
    tasks = tasks_with(sigs)
    modes = plan_modes(tasks, ratio)
    accurate = [i for i, m in enumerate(modes) if m is ExecutionMode.ACCURATE]
    n_acc = len(accurate)

    # At least the requested fraction runs accurately.
    assert n_acc >= math.ceil(ratio * len(sigs))
    # Full-significance tasks always run accurately.
    for i, s in enumerate(sigs):
        if s >= 1.0:
            assert modes[i] is ExecutionMode.ACCURATE
    # Significance is respected: every accurate task has significance >=
    # every non-accurate task (up to tie-breaking equality).
    dropped = [i for i, m in enumerate(modes) if m is not ExecutionMode.ACCURATE]
    if accurate and dropped:
        assert min(sigs[i] for i in accurate) >= max(sigs[i] for i in dropped) - 1e-12
