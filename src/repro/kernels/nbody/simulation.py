"""Lennard-Jones N-Body simulation — reference implementation (§4.1.4).

Simulates the kinematic behaviour of liquid-argon atoms under the
Lennard-Jones pair potential (Eq. 13 of the paper)::

    V(r) = 4ε [ (σ/r)^12 − (σ/r)^6 ]

We work in standard LJ *reduced units* (σ = ε = m = 1); the physics is
identical to argon up to scaling (for argon σ = 3.4 Å, ε/k_B = 120 K).
Integration is velocity Verlet.  Atoms start on a jittered cubic lattice
with small random velocities (zero net momentum) — a bounded liquid-like
cluster, the paper's setting.

Generic scalar pair functions feed the significance analysis; the NumPy
helpers compute whole-system or subset forces for the execution path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "SIGMA",
    "EPSILON",
    "lj_potential",
    "lj_pair_force",
    "lattice_system",
    "pair_forces",
    "forces_full",
    "potential_energy",
    "velocity_verlet",
    "simulate_reference",
    "OPS_PER_PAIR",
]

SIGMA = 1.0
EPSILON = 1.0

# Abstract op count of one pair interaction (distance, powers, force).
OPS_PER_PAIR = 50.0


def lj_potential(r2: Any) -> Any:
    """Pair potential from the *squared* distance (generic numerics).

    Using r² avoids a sqrt: V = 4ε (s6² − s6) with s6 = (σ²/r²)³.
    """
    inv_r2 = (SIGMA * SIGMA) / r2
    s6 = inv_r2 * inv_r2 * inv_r2
    return 4.0 * EPSILON * (s6 * s6 - s6)


def lj_pair_force(dx: Any, dy: Any, dz: Any) -> tuple[Any, Any, Any]:
    """Force on atom i due to atom j, with d = x_i - x_j (generic).

    F = 24ε/r² · (2 s12 − s6) · d  (repulsive positive along d).
    """
    r2 = dx * dx + dy * dy + dz * dz
    inv_r2 = 1.0 / r2
    s2 = (SIGMA * SIGMA) * inv_r2
    s6 = s2 * s2 * s2
    s12 = s6 * s6
    magnitude = 24.0 * EPSILON * (2.0 * s12 - s6) * inv_r2
    return magnitude * dx, magnitude * dy, magnitude * dz


@dataclass
class System:
    """Particle state: positions/velocities are (N, 3) arrays."""

    positions: np.ndarray
    velocities: np.ndarray

    @property
    def count(self) -> int:
        """Number of atoms."""
        return len(self.positions)

    def copy(self) -> "System":
        """Independent deep copy."""
        return System(self.positions.copy(), self.velocities.copy())


def lattice_system(
    side: int = 9,
    spacing: float = 1.2,
    jitter: float = 0.03,
    temperature: float = 0.05,
    seed: int = 42,
) -> System:
    """``side³`` atoms on a jittered cubic lattice with thermal velocities.

    Spacing 1.2σ is near the LJ equilibrium distance (2^{1/6}σ ≈ 1.122σ),
    giving a stable liquid-like cluster.
    """
    rng = np.random.default_rng(seed)
    axis = np.arange(side, dtype=np.float64) * spacing
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    positions = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    positions += rng.uniform(-jitter, jitter, size=positions.shape)
    velocities = rng.normal(0.0, np.sqrt(temperature), size=positions.shape)
    velocities -= velocities.mean(axis=0)  # zero net momentum
    return System(positions=positions, velocities=velocities)


def pair_forces(
    targets: np.ndarray,
    sources: np.ndarray,
    exclude_self: bool = False,
) -> np.ndarray:
    """Forces on each target atom due to all source atoms (NumPy).

    ``exclude_self`` masks zero-distance pairs (use when targets are a
    subset of sources — e.g. a region interacting with itself).
    """
    delta = targets[:, None, :] - sources[None, :, :]  # (T, S, 3)
    r2 = np.einsum("tsk,tsk->ts", delta, delta)
    if exclude_self:
        mask = r2 < 1e-12
        r2 = np.where(mask, 1.0, r2)
    inv_r2 = 1.0 / r2
    s2 = (SIGMA * SIGMA) * inv_r2
    s6 = s2 * s2 * s2
    magnitude = 24.0 * EPSILON * (2.0 * s6 * s6 - s6) * inv_r2
    if exclude_self:
        magnitude = np.where(mask, 0.0, magnitude)
    return np.einsum("ts,tsk->tk", magnitude, delta)


def forces_full(positions: np.ndarray) -> np.ndarray:
    """Exact all-pairs forces (the fully accurate kernel)."""
    return pair_forces(positions, positions, exclude_self=True)


def potential_energy(positions: np.ndarray) -> float:
    """Total LJ potential energy of the system."""
    delta = positions[:, None, :] - positions[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", delta, delta)
    iu = np.triu_indices(len(positions), k=1)
    r2u = r2[iu]
    s6 = (SIGMA * SIGMA / r2u) ** 3
    return float(np.sum(4.0 * EPSILON * (s6 * s6 - s6)))


def velocity_verlet(
    system: System,
    forces: np.ndarray,
    dt: float,
    force_fn,
) -> np.ndarray:
    """One velocity-Verlet step in place; returns the new forces.

    ``force_fn(positions) -> (N, 3)`` supplies forces at the new
    positions (this is where the approximate force evaluation plugs in).
    """
    system.velocities += 0.5 * dt * forces
    system.positions += dt * system.velocities
    new_forces = force_fn(system.positions)
    system.velocities += 0.5 * dt * new_forces
    return new_forces


def simulate_reference(system: System, steps: int, dt: float = 0.004) -> System:
    """Fully accurate simulation of ``steps`` Verlet steps."""
    state = system.copy()
    forces = forces_full(state.positions)
    for _ in range(steps):
        forces = velocity_verlet(state, forces, dt, forces_full)
    return state
