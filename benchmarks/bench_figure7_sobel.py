"""Figure 7 (Sobel panel): quality + energy vs accurate-task ratio."""

import pytest

from repro.experiments import figure7_sobel
from repro.experiments.sweep import format_sweep


def _series(sweep, variant):
    return {p.ratio: (round(p.quality, 2), round(p.joules, 1)) for p in sweep.series(variant)}


def test_figure7_sobel(benchmark):
    sweep = benchmark.pedantic(
        figure7_sobel, kwargs={"size": 128}, rounds=1, iterations=1
    )

    sig_quality = [p.quality for p in sweep.series("significance")]
    assert sig_quality == sorted(sig_quality)  # graceful degradation

    # Significance beats perforation on quality at every interior ratio.
    for ratio in (0.0, 0.2, 0.5, 0.8):
        assert sweep.quality_at(ratio, "significance") > sweep.quality_at(
            ratio, "perforation"
        )

    # Perforation is slightly cheaper at equal ratio (no task overhead).
    assert sweep.energy_at(1.0, "perforation") < sweep.energy_at(1.0)

    benchmark.extra_info["significance"] = _series(sweep, "significance")
    benchmark.extra_info["perforation"] = _series(sweep, "perforation")
    benchmark.extra_info["table"] = format_sweep(sweep)
