"""Analysis-cost benchmark: what does a dco/scorpio profile run cost?

Not a paper figure — the engineering number behind the paper's "single
analysis run" pitch: the slowdown of an interval-adjoint taped run over a
plain float evaluation, and of the full ANALYSE pipeline on the Maclaurin
example.  The absolute factor is large in pure Python (every elementary
op becomes an object + tape node), but it is paid once offline per
kernel, not at execution time.

The ``test_compiled_*`` benchmarks size the compiled fast path
(``analyse(compiled=True)`` / the batched lane machinery) against the
object pipeline on the same recordings, and record the headline speedups
to ``BENCH_core.json`` via :mod:`record`.
"""

import time

import numpy as np
import pytest
from record import record_value

from repro.kernels.maclaurin import analyse_maclaurin, maclaurin_series
from repro.scorpio import Analysis
from repro.scorpio.serialize import report_to_json

N = 24
TREE_N = 8192
SOBEL_HW = 16


def test_plain_float_evaluation(benchmark):
    value = benchmark(maclaurin_series, 0.49, N)
    assert value == pytest.approx((1 - 0.49**N) / (1 - 0.49))


def test_full_analysis_pipeline(benchmark):
    result = benchmark(analyse_maclaurin, 0.49, 1.0, N)
    assert result.partition_level == 1
    benchmark.extra_info["note"] = (
        "profile run + reverse sweep + simplify + variance scan, "
        f"n={N} terms"
    )
    t0 = time.perf_counter()
    analyse_maclaurin(0.49, 1.0, N)
    record_value(
        "analysis.maclaurin_pipeline_seconds",
        time.perf_counter() - t0,
        terms=N,
    )


# ----------------------------------------------------------------------
# Compiled fast path vs the object pipeline
# ----------------------------------------------------------------------


def _record_tree_dot(n):
    """A balanced dot-product reduction tree: 2n inputs, ~4n nodes.

    Deterministic pseudo-random midpoints so the recording is stable
    across runs without seeding numpy.
    """
    an = Analysis()
    with an:
        xs = [
            an.input(
                0.1 + 0.8 * ((i * 37) % 97) / 97.0, width=0.01, name=f"x{i}"
            )
            for i in range(n)
        ]
        ws = [
            an.input(
                -0.5 + ((i * 53) % 89) / 89.0, width=0.01, name=f"w{i}"
            )
            for i in range(n)
        ]
        terms = [x * w for x, w in zip(xs, ws)]
        while len(terms) > 1:
            nxt = [a + b for a, b in zip(terms[::2], terms[1::2])]
            if len(terms) % 2:
                nxt.append(terms[-1])
            terms = nxt
        an.output(terms[0], name="dot")
    return an


def test_compiled_tree_dot_speedup(benchmark):
    """analyse(compiled=True) >= 5x on a wide reduction tree, same report."""
    # Warm both paths: first-call module imports and numpy one-time costs
    # must not land inside either measurement.
    _record_tree_dot(64).analyse()
    _record_tree_dot(64).analyse(compiled=True)

    # Min-of-k timing on fresh recordings (analyse() caches per instance);
    # min is the standard noise-robust estimator for this kind of ratio.
    obj_times, cmp_times = [], []
    rep_obj = rep_cmp = None
    for _ in range(2):
        an_obj = _record_tree_dot(TREE_N)
        t0 = time.perf_counter()
        rep_obj = an_obj.analyse()
        obj_times.append(time.perf_counter() - t0)
    for _ in range(3):
        an_cmp = _record_tree_dot(TREE_N)
        t0 = time.perf_counter()
        rep_cmp = an_cmp.analyse(compiled=True)
        cmp_times.append(time.perf_counter() - t0)
    t_obj, t_cmp = min(obj_times), min(cmp_times)

    assert report_to_json(rep_obj) == report_to_json(rep_cmp)

    def setup():
        return (_record_tree_dot(TREE_N),), {}

    benchmark.pedantic(
        lambda an: an.analyse(compiled=True), setup=setup, rounds=3
    )

    speedup = t_obj / t_cmp
    benchmark.extra_info["object_seconds"] = round(t_obj, 3)
    benchmark.extra_info["compiled_seconds"] = round(t_cmp, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "analysis.tree_dot_speedup",
        speedup,
        unit="x",
        nodes=len(an_obj.tape),
    )
    assert speedup >= 5.0, (
        f"compiled analyse only {speedup:.1f}x faster "
        f"({t_obj:.3f}s object vs {t_cmp:.3f}s compiled)"
    )


def test_compiled_sobel_map_speedup(benchmark):
    """Batched per-pixel Sobel maps >= 5x over the per-pixel object loop."""
    from repro.kernels.sobel.analysis import (
        analyse_sobel_pixel,
        analyse_sobel_scan_map,
    )

    rng = np.random.default_rng(5)
    image = rng.uniform(0.0, 255.0, (SOBEL_HW, SOBEL_HW))
    padded = np.pad(image, 1, mode="edge")

    # Warmup (vec bridge imports and numpy one-time costs).
    analyse_sobel_scan_map(image[:4, :4])
    analyse_sobel_pixel(padded[0:3, 0:3])

    t0 = time.perf_counter()
    obj = [
        analyse_sobel_pixel(padded[y : y + 3, x : x + 3])
        for y in range(SOBEL_HW)
        for x in range(SOBEL_HW)
    ]
    t_obj = time.perf_counter() - t0

    t0 = time.perf_counter()
    maps = analyse_sobel_scan_map(image)
    t_cmp = time.perf_counter() - t0

    a_obj = np.array([p["A"] for p in obj]).reshape(SOBEL_HW, SOBEL_HW)
    assert np.allclose(a_obj, maps["A"], rtol=1e-12)

    benchmark.pedantic(
        analyse_sobel_scan_map, args=(image,), rounds=3, iterations=1
    )

    speedup = t_obj / t_cmp
    benchmark.extra_info["object_seconds"] = round(t_obj, 3)
    benchmark.extra_info["compiled_seconds"] = round(t_cmp, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "analysis.sobel_map_speedup",
        speedup,
        unit="x",
        pixels=SOBEL_HW * SOBEL_HW,
    )
    assert speedup >= 5.0, (
        f"batched sobel map only {speedup:.1f}x faster "
        f"({t_obj:.3f}s object loop vs {t_cmp:.3f}s batched)"
    )


def test_compiled_dct_block_speedup(benchmark):
    """Compiled DCT block maps: modest win (recording dominates both)."""
    from repro.kernels.dct.analysis import analyse_dct_block

    rng = np.random.default_rng(7)
    block = rng.uniform(0.0, 255.0, (8, 8))

    analyse_dct_block(rng.uniform(0.0, 255.0, (8, 8)), compiled=True)  # warmup

    t0 = time.perf_counter()
    obj = analyse_dct_block(block)
    t_obj = time.perf_counter() - t0

    t0 = time.perf_counter()
    cmp_map = analyse_dct_block(block, compiled=True)
    t_cmp = time.perf_counter() - t0

    assert np.array_equal(obj, cmp_map)

    benchmark.pedantic(
        analyse_dct_block,
        args=(block,),
        kwargs={"compiled": True},
        rounds=3,
        iterations=1,
    )

    speedup = t_obj / t_cmp
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value("analysis.dct_block_speedup", speedup, unit="x")
    assert speedup >= 1.5, (
        f"compiled DCT maps only {speedup:.1f}x faster "
        f"({t_obj:.3f}s vs {t_cmp:.3f}s; recording is shared cost)"
    )
