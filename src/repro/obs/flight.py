"""Flight recorder: an always-on ring of per-request summaries.

Spans answer "where does time go, in aggregate"; the flight recorder
answers "what happened to *this* request".  Every request the service
finishes — success or failure, tracing enabled or not — deposits one
small :class:`RequestRecord` (trace id, kernel, cache outcome, batch
attribution, executor, per-stage latencies, error) into a lock-guarded
bounded ring.  The service exposes the ring at ``GET /debug/requests``
and one entry (joined with any retained span trees) at
``GET /debug/trace/<id>``.

The recorder also tracks per-kernel latency SLOs: a kernel whose most
recent request blew its threshold is *degraded*, and the set of degraded
kernels surfaces in ``/healthz``.  Recording is cheap (one dataclass,
one lock acquisition) so it stays on unconditionally — the point of a
flight recorder is that it was already running when the incident
happened.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["RequestRecord", "FlightRecorder"]


@dataclass
class RequestRecord:
    """One finished request, summarised for the debug endpoints."""

    trace_id: str
    path: str
    kernel: str = ""
    status: int = 200
    outcome: str = ""  # record / replay / divergence ("" for non-analyse)
    batch_size: int = 1
    batch_index: int = 0
    executor: str = "thread"
    duration_seconds: float = 0.0
    stages: dict[str, float] = field(default_factory=dict)
    error: str = ""
    when: float = 0.0  # time.time() at completion
    slo_ms: "float | None" = None
    slo_violated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "path": self.path,
            "kernel": self.kernel,
            "status": self.status,
            "outcome": self.outcome,
            "batch": {"size": self.batch_size, "index": self.batch_index},
            "executor": self.executor,
            "duration_ms": round(self.duration_seconds * 1e3, 3),
            "stages_ms": {
                name: round(seconds * 1e3, 3)
                for name, seconds in self.stages.items()
            },
            "error": self.error,
            "when": self.when,
            "slo_ms": self.slo_ms,
            "slo_violated": self.slo_violated,
        }


class FlightRecorder:
    """Bounded, lock-guarded ring of :class:`RequestRecord` entries."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self._lock = threading.Lock()
        self._ring: deque[RequestRecord] = deque(maxlen=capacity)
        self._slos: dict[str, float] = {}
        # kernel -> most recent record violated its SLO?
        self._latest_violation: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # SLOs
    # ------------------------------------------------------------------
    def set_slo(self, kernel: str, slo_ms: "float | None") -> None:
        """Set (or clear, with ``None``) one kernel's latency threshold."""
        with self._lock:
            if slo_ms is None:
                self._slos.pop(kernel, None)
                self._latest_violation.pop(kernel, None)
            else:
                self._slos[kernel] = float(slo_ms)

    def slo_for(self, kernel: str) -> "float | None":
        with self._lock:
            return self._slos.get(kernel)

    def degraded_kernels(self) -> list[str]:
        """Kernels whose most recent request exceeded their SLO."""
        with self._lock:
            return sorted(
                k for k, bad in self._latest_violation.items() if bad
            )

    # ------------------------------------------------------------------
    # Recording / reading
    # ------------------------------------------------------------------
    def record(self, rec: RequestRecord) -> RequestRecord:
        """Stamp SLO state onto ``rec`` and append it; returns ``rec``."""
        if not rec.when:
            rec.when = time.time()
        with self._lock:
            slo = self._slos.get(rec.kernel)
            if slo is not None:
                rec.slo_ms = slo
                rec.slo_violated = rec.duration_seconds * 1e3 > slo
                self._latest_violation[rec.kernel] = rec.slo_violated
            self._ring.append(rec)
        return rec

    def requests(self, limit: int = 50) -> list[dict[str, Any]]:
        """The newest ``limit`` records, newest first, as plain dicts."""
        with self._lock:
            items = list(self._ring)
        items.reverse()
        if limit > 0:
            items = items[:limit]
        return [rec.to_dict() for rec in items]

    def for_trace(self, trace_id: str) -> "dict[str, Any] | None":
        """The newest record carrying ``trace_id``, or ``None``."""
        with self._lock:
            items = list(self._ring)
        for rec in reversed(items):
            if rec.trace_id == trace_id:
                return rec.to_dict()
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._latest_violation.clear()

    def extend_slos(self, slos: Iterable[tuple[str, "float | None"]]) -> None:
        """Bulk :meth:`set_slo` (used when registering a kernel table)."""
        for kernel, slo_ms in slos:
            self.set_slo(kernel, slo_ms)
