"""Batched user-facing API — the Table 1 macros over lanes.

:class:`VAnalysis` mirrors :class:`repro.scorpio.api.Analysis` verbatim,
but every INPUT registers a *batch* of interval inputs (one per lane) and
``ANALYSE`` runs one lane-parallel reverse sweep, yielding the per-lane
significance of every registered variable in a single profile run::

    va = VAnalysis(lane_shape=4096)
    with va:
        x = va.input(mids, width=1.0, name="x")      # 4096 INPUTs at once
        result = VADouble.constant(0.0)
        for i in range(5):
            term = x ** i
            va.intermediate(term, f"term{i}")
        va.output(result + term, name="result")
    vreport = va.analyse()                           # all lanes, one sweep
    vreport.mean_significances()                     # batch-level ranking
    vreport.lane_report(17)                          # full scorpio, lane 17

Vector outputs are handled as in Section 2.3: all outputs are seeded in
one sweep and per-lane significances sum over outputs via the hull-free
per-output accumulation of :func:`significance_lanes` applied per output
seed (see :meth:`VAnalysis.analyse`).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array
from .significance import VecSignificanceReport, significance_lanes
from .vadouble import VADouble
from .vtape import VTape

__all__ = ["VAnalysis", "analyse_function_lanes"]


class VAnalysisStateError(RuntimeError):
    """Macro used out of order (e.g. ANALYSE before any OUTPUT)."""


class VAnalysis:
    """One lane-parallel significance-analysis profile run."""

    def __init__(
        self,
        lane_shape: tuple[int, ...] | int | None = None,
    ):
        self.tape = VTape(lane_shape=lane_shape)
        self._inputs: list[VADouble] = []
        self._intermediates: list[VADouble] = []
        self._outputs: list[VADouble] = []
        self._analysed: VecSignificanceReport | None = None

    # ------------------------------------------------------------------
    # Context management (activates the tape)
    # ------------------------------------------------------------------
    def __enter__(self) -> "VAnalysis":
        self.tape.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.tape.__exit__(*exc_info)

    # ------------------------------------------------------------------
    # Table 1 macros, batched
    # ------------------------------------------------------------------
    def input(
        self,
        value: IntervalArray | np.ndarray | Interval | float,
        *,
        lo: Any = None,
        hi: Any = None,
        width: Any = None,
        name: str | None = None,
    ) -> VADouble:
        """``INPUT`` over every lane.

        ``value`` may already be an :class:`IntervalArray`, or per-lane
        midpoints (``ndarray``/scalar) combined with per-lane ``lo``/``hi``
        bounds or a (broadcast) ``width``, exactly like the scalar macro.
        """
        if isinstance(value, IntervalArray):
            iv = value
        elif lo is not None or hi is not None:
            if lo is None or hi is None:
                raise ValueError("both lo and hi must be given")
            iv = IntervalArray(lo, hi)
        elif width is not None:
            iv = IntervalArray.centered(value, 0.5 * np.asarray(width))
        elif isinstance(value, Interval):
            iv = as_interval_array(value, self.tape.require_lane_shape())
        else:
            iv = IntervalArray.point(value)
        if iv.shape == () and self.tape.lane_shape:
            iv = as_interval_array(iv.lane(0), self.tape.lane_shape)
        if name is None:
            name = f"x{len(self._inputs)}"
        var = VADouble.input(iv, label=name, tape=self.tape)
        self._inputs.append(var)
        return var

    def intermediate(self, var: VADouble, name: str | None = None) -> VADouble:
        """``INTERMEDIATE``: tag the last computed batched node."""
        if not isinstance(var, VADouble):
            raise TypeError(
                f"intermediate() expects a VADouble, got {type(var).__name__}"
            )
        if var.tape is not self.tape:
            raise VAnalysisStateError("variable was recorded on another tape")
        if name is None:
            name = f"z{len(self._intermediates)}"
        var.node.label = name
        self._intermediates.append(var)
        return var

    def output(self, var: VADouble, name: str | None = None) -> VADouble:
        """``OUTPUT``: register a batched output (seeded to 1 in every lane)."""
        if not isinstance(var, VADouble):
            raise TypeError(
                f"output() expects a VADouble, got {type(var).__name__}"
            )
        if var.tape is not self.tape:
            raise VAnalysisStateError("variable was recorded on another tape")
        if name is None:
            name = f"y{len(self._outputs)}"
        var.node.label = name
        self._outputs.append(var)
        return var

    def analyse(self) -> VecSignificanceReport:
        """``ANALYSE``: one lane-parallel reverse sweep + per-lane Eq. 11."""
        if not self._inputs:
            raise VAnalysisStateError("no inputs registered (INPUT macro)")
        if not self._outputs:
            raise VAnalysisStateError("no outputs registered (OUTPUT macro)")
        if self._analysed is not None:
            return self._analysed

        shape = self.tape.require_lane_shape()
        if len(self._outputs) == 1:
            self.tape.adjoint({self._outputs[0].node.index: 1.0})
            sig = {
                node.index: significance_lanes(node.value, node.adjoint)
                for node in self.tape
            }
        else:
            # Vector function, Section 2.3: S_y = Σ_i S_{y_i}.  Widths must
            # be taken per output *before* summing (signed partials cancel
            # otherwise), so run one sweep per output and accumulate the
            # per-lane widths.  Adjoint attributes keep the hull for display.
            sig = {
                node.index: np.zeros(shape) for node in self.tape
            }
            hulls: dict[int, IntervalArray] = {}
            for out in self._outputs:
                adjoints = self.tape.adjoint({out.node.index: 1.0})
                for node in self.tape:
                    a = adjoints[node.index]
                    sig[node.index] = sig[node.index] + significance_lanes(
                        node.value, a
                    )
                    hulls[node.index] = (
                        a
                        if node.index not in hulls
                        else hulls[node.index].hull(a)
                    )
            for node in self.tape:
                node.adjoint = hulls[node.index]

        self._analysed = VecSignificanceReport(
            tape=self.tape,
            significances=sig,
            input_ids=[v.node.index for v in self._inputs],
            intermediate_ids=[v.node.index for v in self._intermediates],
            output_ids=[v.node.index for v in self._outputs],
            lane_shape=shape,
        )
        return self._analysed


def analyse_function_lanes(
    fn: Callable[..., VADouble | Sequence[VADouble]],
    inputs: Sequence[IntervalArray],
    *,
    names: Sequence[str] | None = None,
) -> VecSignificanceReport:
    """One-call batched analysis of ``fn`` over per-lane input boxes."""
    if not inputs:
        raise ValueError("need at least one batched input")
    va = VAnalysis(lane_shape=inputs[0].shape)
    with va:
        args = [
            va.input(spec, name=(names[i] if names else None))
            for i, spec in enumerate(inputs)
        ]
        result = fn(*args)
        if isinstance(result, VADouble):
            va.output(result)
        else:
            for j, out in enumerate(result):
                va.output(out, name=f"y{j}")
    return va.analyse()
