"""CompiledTape vs the object tape, bit for bit.

The compiled sweep (:class:`repro.ad.compiled.CompiledTape`) promises to
be a pure speedup: identical floating-point results to
:meth:`repro.ad.tape.Tape.adjoint` / ``adjoint_vector`` on any recording,
including the outward-rounding points and the endpoint-rule product
order.  Hypothesis generates random straight-line DAG programs (with
shared subexpressions, so fan-out exercises the adjoint accumulation
order) and we compare every adjoint of every node bitwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ad import ADouble, CompiledTape, Tape
from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.intervals.rounding import rounded_mode

N_INPUTS = 3


@st.composite
def program(draw):
    """A straight-line program over registers; reuse makes it a DAG."""
    n_steps = draw(st.integers(min_value=1, max_value=24))
    steps = []
    for k in range(n_steps):
        nregs = N_INPUTS + k
        kind = draw(
            st.sampled_from(
                ["add", "sub", "mul", "sin", "tanh", "sqr", "axpc"]
            )
        )
        i = draw(st.integers(0, nregs - 1))
        j = draw(st.integers(0, nregs - 1))
        c = draw(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
        )
        steps.append((kind, i, j, c))
    return steps


def run_program(steps, xs):
    regs = list(xs)
    for kind, i, j, c in steps:
        a, b = regs[i], regs[j]
        if kind == "add":
            regs.append(a + b)
        elif kind == "sub":
            regs.append(a - b)
        elif kind == "mul":
            regs.append(a * b)
        elif kind == "sin":
            regs.append(op.sin(a))
        elif kind == "tanh":
            regs.append(op.tanh(a))
        elif kind == "sqr":
            regs.append(a * a)
        else:  # a*c + c: exercises constant partials
            regs.append(a * c + c)
    return regs


def record(steps, values):
    tape = Tape()
    with tape:
        xs = [
            ADouble.input(v, label=f"x{i}") for i, v in enumerate(values)
        ]
        regs = run_program(steps, xs)
    return tape, regs


def bits(x) -> bytes:
    return np.float64(x).tobytes()


def assert_scalar_sweep_matches(tape, out_index, interval):
    ref = Tape.adjoint(tape, {out_index: 1.0})
    ct = CompiledTape(tape)
    lo, hi = ct.adjoint({out_index: 1.0})
    assert len(ct) == len(tape)
    for k, r in enumerate(ref):
        if isinstance(r, Interval):
            assert interval
            assert bits(lo[k]) == bits(r.lo), f"node {k} lo"
            assert bits(hi[k]) == bits(r.hi), f"node {k} hi"
        else:
            assert bits(lo[k]) == bits(float(r)), f"node {k}"
            assert bits(hi[k]) == bits(float(r)), f"node {k}"


points = st.lists(
    st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
    min_size=N_INPUTS,
    max_size=N_INPUTS,
)
radii = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


@given(program(), points, radii, st.booleans())
@settings(max_examples=60, deadline=None)
def test_scalar_sweep_interval_bitwise(steps, point, radius, rounding):
    with rounded_mode(rounding):
        tape, regs = record(
            steps, [Interval.centered(p, radius) for p in point]
        )
        assert_scalar_sweep_matches(
            tape, regs[-1].node.index, interval=True
        )


@given(program(), points)
@settings(max_examples=40, deadline=None)
def test_scalar_sweep_float_bitwise(steps, point):
    tape, regs = record(steps, list(point))
    assert_scalar_sweep_matches(tape, regs[-1].node.index, interval=False)


@given(program(), points, radii)
@settings(max_examples=40, deadline=None)
def test_vector_sweep_bitwise(steps, point, radius):
    tape, regs = record(
        steps, [Interval.centered(p, radius) for p in point]
    )
    outs = sorted({regs[-1].node.index, regs[len(regs) // 2].node.index})
    ref_lo, ref_hi = Tape.adjoint_vector(tape, outs)
    lo, hi = CompiledTape(tape).adjoint_vector(outs)
    assert np.array_equal(lo, np.asarray(ref_lo))
    assert np.array_equal(hi, np.asarray(ref_hi))


class TestStructure:
    def _tape(self):
        tape = Tape()
        with tape:
            a = ADouble.input(Interval.centered(2.0, 0.1), label="a")
            b = ADouble.input(Interval.centered(3.0, 0.1), label="b")
            y = a * b + a
        return tape, y

    def test_columns_and_labels(self):
        tape, y = self._tape()
        ct = CompiledTape(tape)
        assert ct.n == len(tape)
        assert ct.interval_mode
        assert ct.labels[0] == "a" and ct.labels[1] == "b"
        assert ct.op_name(y.node.index) == tape[y.node.index].op
        assert ct.parents_of(y.node.index).tolist() == list(
            tape[y.node.index].parents
        )

    def test_from_tape_roundtrip(self):
        tape, y = self._tape()
        ct = CompiledTape.from_tape(tape)
        lo, hi = ct.adjoint({y.node.index: 1.0})
        ref = Tape.adjoint(tape, {y.node.index: 1.0})
        assert lo[0] == ref[0].lo and hi[0] == ref[0].hi

    def test_seed_validation(self):
        tape, _ = self._tape()
        ct = CompiledTape(tape)
        with pytest.raises(ValueError):
            ct.adjoint({})
        with pytest.raises(IndexError):
            ct.adjoint({len(tape) + 3: 1.0})

    def test_empty_tape(self):
        ct = CompiledTape(Tape())
        assert ct.n == 0 and len(ct) == 0
