"""Tests for directed-rounding helpers."""

import math

import pytest

from repro.intervals import rounding as rnd


class TestDown:
    def test_strictly_decreases_finite(self):
        assert rnd.down(1.0) < 1.0

    def test_one_ulp(self):
        assert rnd.down(1.0) == math.nextafter(1.0, -math.inf)

    def test_zero(self):
        assert rnd.down(0.0) < 0.0

    def test_negative(self):
        assert rnd.down(-3.5) < -3.5

    def test_neg_inf_fixed_point(self):
        assert rnd.down(-math.inf) == -math.inf

    def test_pos_inf_moves_down(self):
        assert rnd.down(math.inf) < math.inf

    def test_nan_passthrough(self):
        assert math.isnan(rnd.down(math.nan))


class TestUp:
    def test_strictly_increases_finite(self):
        assert rnd.up(1.0) > 1.0

    def test_one_ulp(self):
        assert rnd.up(1.0) == math.nextafter(1.0, math.inf)

    def test_pos_inf_fixed_point(self):
        assert rnd.up(math.inf) == math.inf

    def test_nan_passthrough(self):
        assert math.isnan(rnd.up(math.nan))


class TestOutward:
    def test_widens_both_sides(self):
        lo, hi = rnd.outward(1.0, 2.0)
        assert lo < 1.0 < 2.0 < hi

    def test_degenerate_becomes_proper(self):
        lo, hi = rnd.outward(5.0, 5.0)
        assert lo < 5.0 < hi


class TestModeSwitch:
    def test_disabled_is_identity(self):
        with rnd.rounded_mode(False):
            assert rnd.down(1.0) == 1.0
            assert rnd.up(1.0) == 1.0

    def test_mode_restored_after_context(self):
        assert rnd.rounding_enabled()
        with rnd.rounded_mode(False):
            assert not rnd.rounding_enabled()
        assert rnd.rounding_enabled()

    def test_mode_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with rnd.rounded_mode(False):
                raise RuntimeError("boom")
        assert rnd.rounding_enabled()

    def test_set_rounding_explicit(self):
        rnd.set_rounding(False)
        try:
            assert not rnd.rounding_enabled()
        finally:
            rnd.set_rounding(True)

    def test_nested_contexts(self):
        with rnd.rounded_mode(False):
            with rnd.rounded_mode(True):
                assert rnd.rounding_enabled()
            assert not rnd.rounding_enabled()
