"""Figure 7 (BlackScholes panel): relative error + energy vs ratio.

Loop perforation is not applicable to BlackScholes (Section 4.2) — the
panel has only the significance-driven series, like the paper's plot.
"""

import pytest

from repro.experiments import figure7_blackscholes
from repro.experiments.sweep import format_sweep


def test_figure7_blackscholes(benchmark):
    sweep = benchmark.pedantic(
        figure7_blackscholes, kwargs={"count": 8192}, rounds=1, iterations=1
    )

    errors = [p.quality for p in sweep.series("significance")]
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] == pytest.approx(0.0, abs=1e-15)

    # Paper scale: a few percent error at full approximation, monotone
    # decay to zero; C/D-block approximation is visible but graceful.
    assert 0.005 < sweep.quality_at(0.0) < 0.15

    assert sweep.series("perforation") == []  # not applicable

    benchmark.extra_info["errors_pct"] = [round(100 * e, 3) for e in errors]
    benchmark.extra_info["table"] = format_sweep(sweep)
