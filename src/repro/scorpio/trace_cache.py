"""Trace cache: record a kernel's DynDFG once, replay it on many inputs.

The per-item cost of significance analysis is dominated by *recording* —
every elementary operation runs through Python operator overloading,
interval arithmetic on boxed objects and a tape append.  But the paper's
kernels analyse the same straight-line code over and over with different
input intervals (every 8x8 DCT block, every BlackScholes option, every
Sobel window records an identical graph).  This module keeps one
:class:`~repro.ad.compiled.CompiledTape` per distinct trace and re-runs it
with the vectorized forward sweep (:meth:`CompiledTape.forward`) instead
of re-recording, feeding the replayed arrays straight into the compiled
analysis pipeline
(:func:`~repro.scorpio.compiled.analyse_compiled_tape`) with the
structural work (S4 simplify, BFS levels) computed once per trace.

Replayed analyses are **bit-identical** to re-recording: the forward sweep
reproduces every rounding point of the object evaluation, and the reports
serialize byte-for-byte equal to a fresh ``Analysis`` run.

Validity: a cached trace is one straight-line execution.  Traces whose
structure cannot be re-evaluated (scalar-mode tapes, unsupported ops) are
rejected up front by the replay structure guard and fall back to
recording; input-dependent control flow is caught by re-checking the
recorded comparison outcomes on the replayed values — a divergent branch
raises :class:`~repro.ad.replay.GuardDivergenceError` and the cache
transparently re-records.  ``validate=True`` additionally re-records the
first replayed sample per trace and asserts the recording really is the
same trace (op-sequence hash) with the same values (bitwise).

The module-level replay default (:func:`replay_enabled` /
:func:`set_replay_default`) lets the CLI's ``--replay/--no-replay`` flag
steer every kernel analysis loop without threading a flag through each
call site.

Concurrency: a :class:`TraceCache` is safe to share between threads
(:mod:`repro.serve` hits one cache per kernel from a thread pool).  A
per-key record lock serialises cold recording so two requests for the
same cold kernel cannot race a half-built trace — the loser of the race
waits, then replays.  Replay mutates the frozen trace's value arrays in
place, so each :class:`CachedTrace` carries its own lock; the warm path
costs one dict lookup and one uncontended lock acquisition on top of the
replay itself.  The stats counters are guarded by a single cache-wide
mutex.

**Both classes are per-process.**  The record/replay locks are
``threading`` locks, invisible to other processes: two processes sharing
a pickled cache would happily mutate "the same" trace concurrently with
no mutual exclusion whatsoever.  Pickling a :class:`TraceCache` or
:class:`CachedTrace` therefore raises ``TypeError`` up front.  To hand a
trace to worker processes, use :meth:`CachedTrace.share`: it freezes the
compiled arrays into :class:`repro.mp.SharedTape` segments whose handles
pickle by ``(segment name, shape, dtype)``, and each worker attaches its
own private ``CompiledTape`` (own lock-free replay state, zero-copy
structure) — see :mod:`repro.mp`.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.ad.compiled import CompiledTape
from repro.ad.replay import GuardDivergenceError, ReplayError
from repro.ad.tape import Tape
from repro.intervals import Interval, as_interval
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span as _obs_span

from .compiled import (
    TraceStructure,
    analyse_compiled_tape,
    analyse_replay_lanes,
    eq11_from_sweep,
)
from .report import SignificanceReport

__all__ = [
    "CachedTrace",
    "TraceCache",
    "TraceDivergenceError",
    "op_sequence_hash",
    "replay_enabled",
    "set_replay_default",
]


# Process-wide totals (all caches), surfaced by ``repro profile``.  Each
# cache also keeps its own Counter instances so ``stats()`` stays
# per-instance — see TraceCache.__init__.
_C_RECORDS = _obs_metrics.counter("trace_cache.records")
_C_REPLAYS = _obs_metrics.counter("trace_cache.replays")
_C_DIVERGENCES = _obs_metrics.counter("trace_cache.divergences")
_C_VALIDATIONS = _obs_metrics.counter("trace_cache.validations")


class TraceDivergenceError(RuntimeError):
    """Validation found a re-recorded trace differing from the cached one.

    Raised only in ``validate=True`` mode: the kernel recorded a different
    op sequence (or different values) on inputs the cache replayed, which
    means the straight-line assumption was violated *without* tripping a
    recorded guard — i.e. the kernel branches on something the tape never
    compared (Python-level control flow on untaped data).  Such kernels
    must not be replayed.
    """


# Sentinel distinguishing "never seen this key" from "seen and rejected"
# (None) in the trace map.
_MISSING: Any = object()


# ----------------------------------------------------------------------
# Replay default (CLI-facing switch)
# ----------------------------------------------------------------------
_REPLAY_DEFAULT = True


def replay_enabled(replay: bool | None = None) -> bool:
    """Resolve a tri-state ``replay`` argument against the module default."""
    return _REPLAY_DEFAULT if replay is None else bool(replay)


def set_replay_default(enabled: bool) -> bool:
    """Set the module-wide replay default; returns the previous value."""
    global _REPLAY_DEFAULT
    previous = _REPLAY_DEFAULT
    _REPLAY_DEFAULT = bool(enabled)
    return previous


def op_sequence_hash(tape: Tape) -> str:
    """Fingerprint of a tape's structure: ops, edges and guard count.

    Two recordings of the same straight-line code produce the same hash
    regardless of the input values; a divergent branch changes the op
    sequence and therefore the hash.
    """
    h = hashlib.blake2b(digest_size=16)
    for node in tape.nodes:
        h.update(node.op.encode("utf-8", "replace"))
        h.update(b"(")
        for p in node.parents:
            h.update(str(p).encode("ascii"))
            h.update(b",")
        h.update(b")")
    h.update(b"|guards:")
    h.update(str(len(tape.guards)).encode("ascii"))
    return h.hexdigest()


class CachedTrace:
    """One frozen recording, ready to analyse fresh inputs by replay.

    Built from a completed :class:`~repro.scorpio.api.Analysis` whose
    recorded trace passed the replay structure guard.  Each
    :meth:`analyse` call forwards new input intervals through the frozen
    arrays and runs the compiled analysis pipeline on them, reusing the
    per-trace :class:`~repro.scorpio.compiled.TraceStructure`.
    """

    __slots__ = (
        "ct",
        "structure",
        "input_ids",
        "intermediate_ids",
        "output_ids",
        "delta",
        "simplify",
        "op_hash",
        "validated",
        "replays",
        "lock",
    )

    def __init__(self, analysis: Any, *, simplify: bool = True):
        tape = analysis.tape
        ct = CompiledTape(tape)
        # Structure guard: raises ReplayError for unreplayable traces.
        plan = ct._forward_plan()
        input_ids = [v.node.index for v in analysis._inputs]
        if plan.input_nodes != input_ids:
            raise ReplayError(
                "registered inputs do not match the trace's input nodes "
                "in order; the recorder must register inputs in argument "
                "order"
            )
        self.ct = ct
        self.input_ids = input_ids
        self.intermediate_ids = [
            v.node.index for v in analysis._intermediates
        ]
        self.output_ids = [v.node.index for v in analysis._outputs]
        self.delta = analysis.delta
        self.simplify = simplify
        self.structure = TraceStructure(
            ct, self.output_ids, simplify=simplify
        )
        self.op_hash = op_sequence_hash(tape)
        self.validated = False
        self.replays = 0
        # Replay writes into self.ct's value arrays in place; concurrent
        # users of one trace must hold this while forwarding/analysing.
        self.lock = threading.Lock()

    @classmethod
    def from_compiled(
        cls,
        ct: CompiledTape,
        *,
        input_ids: Sequence[int],
        intermediate_ids: Sequence[int],
        output_ids: Sequence[int],
        delta: float,
        simplify: bool,
        op_hash: str,
    ) -> "CachedTrace":
        """Rebuild a trace from an already-compiled tape (no recording).

        This is how :class:`~repro.scorpio.tape_store.TapeStore` turns a
        deserialized ``CompiledTape`` back into a live cache entry: the
        analysis ids and hash come from the store header instead of an
        ``Analysis`` object.  The same structure guard applies — a tape
        whose forward plan disagrees with the registered inputs raises
        :class:`~repro.ad.replay.ReplayError`.
        """
        plan = ct._forward_plan()
        input_ids = [int(i) for i in input_ids]
        if plan.input_nodes != input_ids:
            raise ReplayError(
                "stored tape's forward-plan inputs do not match its "
                "recorded input ids"
            )
        self = object.__new__(cls)
        self.ct = ct
        self.input_ids = input_ids
        self.intermediate_ids = list(intermediate_ids)
        self.output_ids = list(output_ids)
        self.delta = delta
        self.simplify = simplify
        self.structure = TraceStructure(
            ct, self.output_ids, simplify=simplify
        )
        self.op_hash = op_hash
        self.validated = False
        self.replays = 0
        self.lock = threading.Lock()
        return self

    def __reduce__(self):
        raise TypeError(
            "CachedTrace is per-process (its replay lock is a threading "
            "lock and replay mutates the tape in place); use "
            "CachedTrace.share() to freeze the compiled arrays into a "
            "picklable repro.mp.SharedTape instead"
        )

    def share(self, **meta: Any) -> "Any":
        """Freeze this trace into a picklable :class:`repro.mp.SharedTape`.

        The handle carries the analysis ids (inputs / intermediates /
        outputs), ``delta`` and ``simplify`` in its metadata alongside
        any extra ``meta`` keys, so a worker can rebuild the full
        analysis context from the handle alone.  Workers attach their
        own private ``CompiledTape`` views — the shared segments are
        read-only tape structure; nothing synchronises with this
        process's replay lock.
        """
        from repro.mp import SharedTape

        return SharedTape.freeze(
            self.ct,
            input_ids=list(self.input_ids),
            intermediate_ids=list(self.intermediate_ids),
            output_ids=list(self.output_ids),
            delta=self.delta,
            simplify=self.simplify,
            op_hash=self.op_hash,
            **meta,
        )

    def _analyse_current(self) -> SignificanceReport:
        """Analyse whatever the compiled arrays currently hold."""
        return analyse_compiled_tape(
            self.ct,
            self.output_ids,
            input_ids=self.input_ids,
            intermediate_ids=self.intermediate_ids,
            delta=self.delta,
            simplify=self.simplify,
            structure=self.structure,
        )

    def analyse(self, inputs: Sequence[Interval]) -> SignificanceReport:
        """Replay ``inputs`` and analyse — bit-identical to re-recording.

        Raises :class:`~repro.ad.replay.GuardDivergenceError` when the
        inputs take a different branch than the recorded trace, and
        :class:`~repro.intervals.AmbiguousComparisonError` when a recorded
        comparison is ambiguous on them (recording would raise it too).
        """
        self.ct.forward(inputs)
        self.replays += 1
        return self._analyse_current()

    # ------------------------------------------------------------------
    # Lane-batched replay (the cached-trace twin of repro.vec's
    # lane analysis: one forward + one reverse sweep for L input sets)
    # ------------------------------------------------------------------
    def label_index(self, label: str) -> int:
        """Node index carrying ``label`` (input/intermediate/output tag)."""
        for idx, lab in self.ct.labels.items():
            if lab == label:
                return idx
        raise KeyError(f"no node labelled {label!r} in the cached trace")

    def forward_lanes(self, inputs_lo, inputs_hi):
        """Replay ``(n_inputs, L)`` lane bounds over the trace; returns a
        :class:`repro.ad.compiled.ReplayLanes` (lane ``l`` bit-identical
        to recording on lane ``l``'s inputs)."""
        return self.ct.forward_lanes(inputs_lo, inputs_hi)

    def lane_significances(self, lanes) -> "Any":
        """``(n_nodes, L)`` Eq. 11 significance matrix over replayed lanes.

        Column ``l`` is bit-identical to the per-node significances a
        scalar analysis of lane ``l``'s inputs would compute.  Requires a
        single-output trace (the sweep seeds that output with 1).
        """
        if len(self.output_ids) != 1:
            raise ReplayError(
                "lane significance replay supports single-output traces"
            )
        alo, ahi = lanes.adjoint({self.output_ids[0]: 1.0})
        return eq11_from_sweep(
            lanes.value_lo,
            lanes.value_hi,
            alo,
            ahi,
            interval_mode=self.ct.interval_mode,
        )

    def lane_scan_map(
        self,
        sig,
        lane_shape: tuple[int, ...],
        *,
        delta: float | None = None,
        exact_variance: bool = True,
    ):
        """Lane-parallel Algorithm 1 S5 over a replayed significance
        matrix — the cached-trace twin of :func:`repro.vec.lane_scan_map`
        (same scan, structure taken from this trace instead of a batched
        recording)."""
        from repro.vec.bridge import _scan_columns

        return _scan_columns(
            sig,
            lane_shape,
            self.structure.surv,
            self.structure.s_levels,
            delta=self.delta if delta is None else delta,
            exact_variance=exact_variance,
        )

    def analyse_batch(
        self, inputs_batch: Sequence[Sequence[Interval]]
    ) -> list[SignificanceReport]:
        """Analyse L input sets with ONE forward + ONE adjoint sweep.

        Packs each input set as a lane of :meth:`forward_lanes` and runs
        :func:`~repro.scorpio.compiled.analyse_replay_lanes` over the
        block; element ``l`` of the result is byte-identical (through
        ``report_to_json``) to ``self.analyse(inputs_batch[l])``.  This
        is the primitive :mod:`repro.serve.batching` coalesces concurrent
        requests onto.

        Raises :class:`~repro.ad.replay.GuardDivergenceError` when *any*
        lane takes a different branch than the recorded trace (the guard
        check is all-lanes); callers fall back to per-item analysis.
        The caller must hold :attr:`lock`.
        """
        L = len(inputs_batch)
        n_in = len(self.input_ids)
        lo = np.empty((n_in, L), dtype=np.float64)
        hi = np.empty((n_in, L), dtype=np.float64)
        for lane, inputs in enumerate(inputs_batch):
            if len(inputs) != n_in:
                raise ReplayError(
                    f"batch lane {lane} has {len(inputs)} inputs; the "
                    f"trace replays exactly {n_in}"
                )
            for j, iv in enumerate(inputs):
                iv = as_interval(iv)
                lo[j, lane] = iv.lo
                hi[j, lane] = iv.hi
        lanes = self.ct.forward_lanes(lo, hi)
        self.replays += L
        return analyse_replay_lanes(
            self.ct,
            lanes,
            self.output_ids,
            input_ids=self.input_ids,
            intermediate_ids=self.intermediate_ids,
            delta=self.delta,
            simplify=self.simplify,
            structure=self.structure,
        )

    def lane_report(self, lanes, lane: int) -> SignificanceReport:
        """Full scalar report for one lane of a batched replay — the
        cached-trace twin of :func:`repro.vec.lane_report`.

        Re-forwards that lane's input intervals scalar-ly over the trace
        and analyses, so the report is byte-identical to recording the
        lane from scratch (and to ``repro.vec.lane_report`` of an
        equivalent batched recording).
        """
        inputs = [
            Interval(
                float(lanes.value_lo[i, lane]),
                float(lanes.value_hi[i, lane]),
            )
            for i in self.input_ids
        ]
        return self.analyse(inputs)


class TraceCache:
    """Keyed cache of :class:`CachedTrace`\\ s with record-or-replay logic.

    ``analyse(key, recorder, inputs)`` is the single entry point kernels
    use in their per-item loops:

    * first call per ``key``: run ``recorder(inputs)`` (which must build
      and return a recorded-but-not-analysed
      :class:`~repro.scorpio.api.Analysis`, registering one input per
      entry of ``inputs`` in order), freeze it, analyse from the frozen
      arrays;
    * later calls: replay ``inputs`` over the cached trace — no recording,
      no object tape, no per-item S4/BFS;
    * divergence (a recorded branch decided differently) or an
      unreplayable structure: transparent fallback to recording.

    The cache is keyed by kernel identity + input shape; the caller picks
    the key (e.g. ``("dct_block",)`` — all DCT blocks share one trace).
    ``validate=True`` re-records the first replayed sample per trace and
    asserts op-sequence-hash and bitwise value equality
    (:class:`TraceDivergenceError` on mismatch).
    """

    def __init__(
        self,
        *,
        validate: bool = False,
        store_dir: "str | None" = None,
    ):
        self._traces: dict[Any, CachedTrace | None] = {}
        self.validate = validate
        # Optional persistent tape store: cold keys first try a disk
        # load (restart warm-start — the first request replays instead
        # of re-recording), and every freshly recorded trace is saved
        # back best-effort.
        if store_dir is not None:
            from .tape_store import TapeStore

            self.store: "Any | None" = TapeStore(store_dir)
        else:
            self.store = None
        # Per-instance obs.metrics counters — stats() is a thin view over
        # them; the module-level _C_* twins aggregate across every cache
        # for the ``repro profile`` metrics table.
        self._c_records = _obs_metrics.Counter("records")
        self._c_replays = _obs_metrics.Counter("replays")
        self._c_divergences = _obs_metrics.Counter("divergences")
        self._c_validations = _obs_metrics.Counter("validations")
        # _lock guards the trace map, the record-lock map and the stats
        # counters; _record_locks serialises cold recording per key.
        self._lock = threading.Lock()
        self._record_locks: dict[Any, threading.Lock] = {}

    def __reduce__(self):
        raise TypeError(
            "TraceCache is per-process (record/replay locks are threading "
            "locks); give each process its own cache, or share individual "
            "traces via CachedTrace.share()"
        )

    # Back-compat integer views (callers read cache.records directly).
    @property
    def records(self) -> int:
        return int(self._c_records.get())

    @property
    def replays(self) -> int:
        return int(self._c_replays.get())

    @property
    def divergences(self) -> int:
        return int(self._c_divergences.get())

    @property
    def validations(self) -> int:
        return int(self._c_validations.get())

    def stats(self) -> dict[str, int]:
        """Per-cache counters as a plain dict.

        The three recording causes are disjoint: ``records`` counts plain
        cache misses (the first recording per key, plus every re-record
        for kernels the structure guard rejected), ``divergences`` counts
        guard-divergence fallback recordings, and ``validations`` counts
        validate-mode re-recordings.  ``replays`` counts successful
        replays; ``traces`` the live cached traces.
        """
        return {
            "records": self.records,
            "replays": self.replays,
            "divergences": self.divergences,
            "validations": self.validations,
            "traces": sum(1 for t in self._traces.values() if t is not None),
        }

    def has(self, key: Any) -> bool:
        """True when ``key`` holds a live cached trace (replay expected)."""
        return self._traces.get(key) is not None

    def _count(
        self, local: _obs_metrics.Counter, total: _obs_metrics.Counter
    ) -> None:
        """Increment a per-cache counter and its process-wide twin."""
        with self._lock:
            local.inc()
            total.inc()

    def _record_lock(self, key: Any) -> threading.Lock:
        with self._lock:
            lock = self._record_locks.get(key)
            if lock is None:
                lock = threading.Lock()
                self._record_locks[key] = lock
            return lock

    def _record(
        self,
        key: Any,
        recorder: Callable[[Sequence[Interval]], Any],
        inputs: Sequence[Interval],
        simplify: bool,
        *,
        cache_it: bool,
    ) -> SignificanceReport:
        with _obs_span("trace_cache.record") as sp:
            sp.set(key=repr(key), cache_it=cache_it)
            analysis = recorder(inputs)
            if cache_it:
                try:
                    trace = CachedTrace(analysis, simplify=simplify)
                except ReplayError:
                    # Not a replayable trace; remember that and record
                    # forever.
                    with self._lock:
                        self._traces[key] = None
                else:
                    with self._lock:
                        self._traces[key] = trace
                    return trace._analyse_current()
            return analysis.analyse(simplify=simplify, compiled=True)

    def analyse(
        self,
        key: Any,
        recorder: Callable[[Sequence[Interval]], Any],
        inputs: Sequence[Any],
        *,
        simplify: bool = True,
    ) -> SignificanceReport:
        """Record-or-replay analysis of one item (see class docstring)."""
        return self.analyse_outcome(key, recorder, inputs, simplify=simplify)[0]

    def analyse_outcome(
        self,
        key: Any,
        recorder: Callable[[Sequence[Interval]], Any],
        inputs: Sequence[Any],
        *,
        simplify: bool = True,
    ) -> tuple[SignificanceReport, str]:
        """:meth:`analyse` plus what actually happened to serve it.

        The second element is ``"record"`` (cache miss — a recording ran,
        whether or not the trace was cacheable), ``"replay"`` (pure
        vectorized replay of the cached trace) or ``"divergence"`` (the
        inputs took another branch; recorded as fallback).  Lets callers
        like :mod:`repro.serve` attribute each request exactly without
        diffing shared counters under concurrency.
        """
        inputs = [as_interval(iv) for iv in inputs]
        trace = self._traces.get(key, _MISSING)
        if trace is _MISSING:
            # Serialise cold recording per key: one thread records, any
            # thread that raced it waits here and then replays.
            with self._record_lock(key):
                if key not in self._traces:
                    if self._load_from_store(key, simplify) is None:
                        self._count(self._c_records, _C_RECORDS)
                        report = self._record(
                            key, recorder, inputs, simplify, cache_it=True
                        )
                        self._save_to_store(key)
                        return report, "record"
            trace = self._traces[key]
        if trace is None:
            # Structure guard rejected this kernel once; keep recording.
            self._count(self._c_records, _C_RECORDS)
            report = self._record(
                key, recorder, inputs, simplify, cache_it=False
            )
            return report, "record"
        if self.validate and not trace.validated:
            self._count(self._c_validations, _C_VALIDATIONS)
            with trace.lock:
                self._validate(trace, recorder, inputs)
        try:
            with trace.lock:
                with _obs_span("trace_cache.replay") as sp:
                    sp.set(key=repr(key), outcome="replay")
                    report = trace.analyse(inputs)
        except GuardDivergenceError:
            # These inputs take another branch; analyse them the slow way
            # but keep the cached trace for inputs that don't.  Counted as
            # a divergence, NOT as a record: stats() keeps the fallback
            # causes apart.
            self._count(self._c_divergences, _C_DIVERGENCES)
            report = self._record(
                key, recorder, inputs, simplify, cache_it=False
            )
            return report, "divergence"
        self._count(self._c_replays, _C_REPLAYS)
        return report, "replay"

    def _load_from_store(
        self, key: Any, simplify: bool
    ) -> "CachedTrace | None":
        """Try the persistent store for a cold key (record lock held).

        A hit installs the trace in the map and returns it, so the very
        first call after a restart is served as a *replay* — the whole
        point of :class:`~repro.scorpio.tape_store.TapeStore`.  Misses,
        corrupt files and ``simplify`` mismatches all return None and
        leave the map untouched (the caller records as usual).
        """
        if self.store is None:
            return None
        trace = self.store.load(key)
        if trace is None or trace.simplify != simplify:
            return None
        with self._lock:
            self._traces[key] = trace
        return trace

    def _save_to_store(self, key: Any) -> None:
        """Best-effort persist of a freshly recorded trace (lock held)."""
        if self.store is None:
            return
        with self._lock:
            trace = self._traces.get(key)
        if trace is not None:
            self.store.save(key, trace)

    def analyse_batch_outcome(
        self,
        key: Any,
        recorder: Callable[[Sequence[Interval]], Any],
        inputs_batch: Sequence[Sequence[Any]],
        *,
        simplify: bool = True,
    ) -> list[tuple[SignificanceReport, str]]:
        """Record-or-replay a whole batch of input sets in one sweep.

        The batched twin of :meth:`analyse_outcome`: element ``i`` is
        exactly the ``(report, outcome)`` a scalar call on
        ``inputs_batch[i]`` would have produced — byte-identical reports
        — but warm lanes share ONE ``forward_lanes`` replay and ONE
        lane-batched adjoint sweep (:meth:`CachedTrace.analyse_batch`).

        Cold keys route their first item through the scalar path (which
        records, loads from the persistent store, or validates as
        configured) and batch the remainder; guard divergence on any
        lane falls back to per-item analysis so non-diverging lanes
        still replay.  This is the entry point
        :mod:`repro.serve.batching` dispatches coalesced requests to.
        """
        inputs_batch = [
            [as_interval(iv) for iv in inputs] for inputs in inputs_batch
        ]
        if not inputs_batch:
            return []
        results: list[tuple[SignificanceReport, str]] = [None] * len(
            inputs_batch
        )

        def scalar(i: int) -> None:
            results[i] = self.analyse_outcome(
                key, recorder, inputs_batch[i], simplify=simplify
            )

        start = 0
        trace = self._traces.get(key, _MISSING)
        if (
            trace is _MISSING
            or trace is None
            or (self.validate and not trace.validated)
        ):
            # First item takes the scalar path: it records the trace,
            # warm-starts from the store, or runs validation — whichever
            # the cache state calls for.
            scalar(0)
            start = 1
            trace = self._traces.get(key)
        if trace is None:
            # Structure guard rejected the kernel; everything records.
            for i in range(start, len(inputs_batch)):
                scalar(i)
            return results
        rest = inputs_batch[start:]
        if not rest:
            return results
        if len(rest) == 1:
            scalar(start)
            return results
        try:
            with trace.lock:
                with _obs_span("trace_cache.replay_batch") as sp:
                    sp.set(key=repr(key), lanes=len(rest), outcome="replay")
                    reports = trace.analyse_batch(rest)
        except GuardDivergenceError:
            # check_guards accepts a batch only when EVERY lane
            # reproduces the recorded outcomes, so one divergent request
            # fails the whole sweep.  Degrade to per-item calls: the
            # conforming lanes replay, the divergent ones re-record.
            for i in range(start, len(inputs_batch)):
                scalar(i)
            return results
        with self._lock:
            self._c_replays.inc(len(rest))
            _C_REPLAYS.inc(len(rest))
        for offset, report in enumerate(reports):
            results[start + offset] = (report, "replay")
        return results

    def _validate(
        self,
        trace: CachedTrace,
        recorder: Callable[[Sequence[Interval]], Any],
        inputs: Sequence[Interval],
    ) -> None:
        """Re-record one sample and assert it is the same trace."""
        trace.validated = True
        analysis = recorder(inputs)
        fresh_hash = op_sequence_hash(analysis.tape)
        if fresh_hash != trace.op_hash:
            raise TraceDivergenceError(
                "re-recording produced a different op sequence than the "
                "cached trace (hash mismatch): the kernel has control flow "
                "the tape does not guard — disable replay for it"
            )
        fresh = CompiledTape(analysis.tape)
        replayed = trace.ct.forward(inputs, check_guards=True)
        same = (
            fresh.value_lo.tobytes() == replayed.value_lo.tobytes()
            and fresh.value_hi.tobytes() == replayed.value_hi.tobytes()
        )
        if not same:
            raise TraceDivergenceError(
                "replayed values differ bitwise from a fresh recording on "
                "the same inputs — replay rule mismatch; please report"
            )
