"""Directed (outward) rounding support for rigorous interval arithmetic.

IEEE-754 binary64 arithmetic in CPython rounds to nearest.  Interval
arithmetic needs *outward* rounding: lower bounds rounded toward -inf and
upper bounds toward +inf, so that the computed interval always encloses the
exact real-valued result.  CPython offers no portable access to the FPU
rounding mode, so we emulate directed rounding by nudging each bound one ULP
outward with :func:`math.nextafter`.  The resulting enclosures are slightly
wider than optimal (by at most one ULP per bound per operation) but are
guaranteed to contain the exact result, which is the property significance
analysis relies on.

Outward rounding costs roughly 2x per elementary operation.  For profile
runs where rigour is not required (e.g. quick significance sketches) it can
be disabled process-wide or within a scope::

    with rounded_mode(False):
        ...  # fast, round-to-nearest interval arithmetic

The flag is intentionally a module-level global rather than thread-local:
analysis profile runs are single-threaded by construction (the DynDFG tape
is a sequential recording).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "down",
    "up",
    "outward",
    "rounding_enabled",
    "set_rounding",
    "rounded_mode",
]

_INF = math.inf

# Process-wide switch; see module docstring for why this is not thread-local.
_ROUNDING_ENABLED = True


def rounding_enabled() -> bool:
    """Return ``True`` when outward rounding is active."""
    return _ROUNDING_ENABLED


def set_rounding(enabled: bool) -> None:
    """Globally enable or disable outward rounding."""
    global _ROUNDING_ENABLED
    _ROUNDING_ENABLED = bool(enabled)


@contextmanager
def rounded_mode(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable outward rounding within a ``with`` block."""
    previous = _ROUNDING_ENABLED
    set_rounding(enabled)
    try:
        yield
    finally:
        set_rounding(previous)


def down(value: float) -> float:
    """Round ``value`` one ULP toward -infinity (when rounding is enabled).

    NaN is passed through unchanged; -inf is already the lowest bound.
    """
    if not _ROUNDING_ENABLED:
        return value
    if value != value or value == -_INF:  # NaN or -inf
        return value
    return math.nextafter(value, -_INF)


def up(value: float) -> float:
    """Round ``value`` one ULP toward +infinity (when rounding is enabled)."""
    if not _ROUNDING_ENABLED:
        return value
    if value != value or value == _INF:  # NaN or +inf
        return value
    return math.nextafter(value, _INF)


def outward(lo: float, hi: float) -> tuple[float, float]:
    """Round the pair ``(lo, hi)`` outward, returning the widened bounds."""
    return down(lo), up(hi)
