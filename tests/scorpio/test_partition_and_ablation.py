"""Tests for the task-partition suggester and the ablation variants."""

import pytest

from repro.ad import ADouble, Tape
from repro.intervals import Interval
from repro.kernels.maclaurin import analyse_maclaurin
from repro.scorpio import (
    SIGNIFICANCE_VARIANTS,
    propose_tasks,
    render_partition,
    score_tape,
)


@pytest.fixture(scope="module")
def maclaurin_report():
    return analyse_maclaurin().report


class TestProposeTasks:
    def test_one_suggestion_per_term(self, maclaurin_report):
        suggestions = propose_tasks(maclaurin_report)
        names = {s.name for s in suggestions}
        assert {"term0", "term1", "term2", "term3", "term4"} <= names

    def test_sorted_by_significance(self, maclaurin_report):
        suggestions = propose_tasks(maclaurin_report)
        values = [s.significance for s in suggestions]
        assert values == sorted(values, reverse=True)

    def test_top_task_normalised_to_one(self, maclaurin_report):
        suggestions = propose_tasks(maclaurin_report)
        assert suggestions[0].significance == pytest.approx(1.0)
        assert suggestions[0].name == "term1"

    def test_term0_droppable(self, maclaurin_report):
        suggestions = propose_tasks(maclaurin_report, drop_threshold=1e-6)
        term0 = next(s for s in suggestions if s.name == "term0")
        assert term0.droppable

    def test_clause_rendering(self, maclaurin_report):
        suggestion = propose_tasks(maclaurin_report)[0]
        assert suggestion.clause() == "significance(1.000)"


class TestRenderPartition:
    def test_listing7_style(self, maclaurin_report):
        text = render_partition(propose_tasks(maclaurin_report), "maclaurin")
        assert "rt.submit(compute_term1, significance=1.000" in text
        assert "rt.taskwait('maclaurin', ratio=wait_ratio)" in text

    def test_droppable_rendered_as_constant(self, maclaurin_report):
        text = render_partition(
            propose_tasks(maclaurin_report, drop_threshold=1e-6)
        )
        assert "replace with constant" in text


class TestAblationVariants:
    @pytest.fixture(scope="class")
    def tape(self):
        tape = Tape()
        with tape:
            x = ADouble.input(Interval(-0.01, 0.99), label="x", tape=tape)
            acc = ADouble.constant(0.0)
            self_terms = []
            for i in range(5):
                t = x**i
                self_terms.append(t.node.index)
                acc = acc + t
            tape.adjoint({acc.node.index: Interval(1.0)})
        tape.term_ids = self_terms  # type: ignore[attr-defined]
        return tape

    def test_all_variants_available(self):
        assert set(SIGNIFICANCE_VARIANTS) == {
            "width_product",
            "first_order",
            "value_width",
            "derivative_mag",
        }

    def test_width_product_recovers_ranking(self, tape):
        scores = score_tape(tape, "width_product")
        values = [scores[t] for t in tape.term_ids]
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert all(a > b for a, b in zip(values[1:], values[2:]))

    def test_first_order_recovers_ranking(self, tape):
        scores = score_tape(tape, "first_order")
        values = [scores[t] for t in tape.term_ids[1:]]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_derivative_mag_cannot_rank(self, tape):
        scores = score_tape(tape, "derivative_mag")
        values = [scores[t] for t in tape.term_ids[1:]]
        assert max(values) == pytest.approx(min(values), rel=1e-9)

    def test_unknown_variant_rejected(self, tape):
        with pytest.raises(KeyError, match="unknown significance variant"):
            score_tape(tape, "nope")

    def test_scores_nonnegative(self, tape):
        for variant in SIGNIFICANCE_VARIANTS:
            assert all(v >= 0 for v in score_tape(tape, variant).values())
