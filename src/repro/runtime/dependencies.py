"""Dataflow dependence tracking — the ``in()`` / ``out()`` clauses.

The paper's programming model lets tasks declare their inputs and outputs
(Listing 7: ``in(x, pos) out(temp[i:i])``); the runtime is then free to
run independent tasks concurrently while honouring producer→consumer
order.  :class:`DependencyGraph` implements the standard dependence rules
over declared memory *tags* (opaque hashables — array names, slice keys,
whatever granularity the program chooses):

* RAW (flow): a task reading a tag depends on the latest earlier writer;
* WAR (anti): a task writing a tag depends on earlier readers;
* WAW (output): a task writing a tag depends on the previous writer.

:meth:`DependencyGraph.waves` topologically groups tasks into *waves*
whose members are mutually independent — each wave can be handed to any
:class:`~repro.runtime.executor.Executor` as a parallel batch.
:func:`run_with_dependencies` does exactly that on top of the ratio
scheduler, preserving the significance semantics within the whole group.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

from .energy import AnalyticEnergyModel, EnergyModel
from .executor import Executor, SequentialExecutor
from .scheduler import plan_modes
from .stats import GroupResult, GroupStats
from .task import Task, TaskResult

__all__ = ["DependencyGraph", "DependencyCycleError", "run_with_dependencies"]

Tag = Hashable


class DependencyCycleError(RuntimeError):
    """The declared dependences contain a cycle (impossible schedule)."""


@dataclass
class _TaskIO:
    task: Task
    reads: tuple[Tag, ...]
    writes: tuple[Tag, ...]


class DependencyGraph:
    """Dependence DAG over tasks with declared read/write tag sets."""

    def __init__(self) -> None:
        self._entries: list[_TaskIO] = []

    def add(
        self,
        task: Task,
        reads: Sequence[Tag] = (),
        writes: Sequence[Tag] = (),
    ) -> None:
        """Register a task with its ``in()``/``out()`` clauses."""
        self._entries.append(_TaskIO(task, tuple(reads), tuple(writes)))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tasks(self) -> list[Task]:
        """Tasks in submission order."""
        return [e.task for e in self._entries]

    def edges(self) -> set[tuple[int, int]]:
        """Dependence edges (predecessor_index, successor_index)."""
        out: set[tuple[int, int]] = set()
        last_writer: dict[Tag, int] = {}
        readers_since_write: dict[Tag, list[int]] = defaultdict(list)
        for i, entry in enumerate(self._entries):
            for tag in entry.reads:
                if tag in last_writer:
                    out.add((last_writer[tag], i))  # RAW
            for tag in entry.writes:
                if tag in last_writer:
                    out.add((last_writer[tag], i))  # WAW
                for reader in readers_since_write[tag]:
                    if reader != i:
                        out.add((reader, i))  # WAR
            for tag in entry.reads:
                readers_since_write[tag].append(i)
            for tag in entry.writes:
                last_writer[tag] = i
                readers_since_write[tag] = []
        return out

    def waves(self) -> list[list[int]]:
        """Topological waves of mutually independent task indices.

        Kahn's algorithm by levels; submission order is preserved inside
        each wave.  Raises :class:`DependencyCycleError` if the edge set
        is cyclic (cannot happen from :meth:`edges`, which only creates
        forward edges, but user-supplied edge sets go through here too).
        """
        n = len(self._entries)
        succ: dict[int, list[int]] = defaultdict(list)
        indeg = [0] * n
        for a, b in self.edges():
            succ[a].append(b)
            indeg[b] += 1
        ready = [i for i in range(n) if indeg[i] == 0]
        waves: list[list[int]] = []
        seen = 0
        while ready:
            waves.append(sorted(ready))
            next_ready: list[int] = []
            for i in waves[-1]:
                seen += 1
                for j in succ[i]:
                    indeg[j] -= 1
                    if indeg[j] == 0:
                        next_ready.append(j)
            ready = next_ready
        if seen != n:
            raise DependencyCycleError(
                f"dependence graph has a cycle ({n - seen} tasks unreachable)"
            )
        return waves


def run_with_dependencies(
    graph: DependencyGraph,
    ratio: float = 1.0,
    executor: Executor | None = None,
    energy_model: EnergyModel | None = None,
    label: str = "dependent",
) -> GroupResult:
    """Execute a dependence graph under the significance/ratio policy.

    Modes are planned over the *whole* group (so the ratio semantics are
    identical to a flat ``taskwait``), then execution proceeds wave by
    wave; within a wave the executor may parallelise freely.
    """
    executor = executor or SequentialExecutor()
    energy_model = energy_model or AnalyticEnergyModel()
    tasks = graph.tasks
    modes = plan_modes(tasks, ratio)

    results: list[TaskResult | None] = [None] * len(tasks)
    for wave in graph.waves():
        wave_tasks = [tasks[i] for i in wave]
        wave_modes = [modes[i] for i in wave]
        for i, result in zip(wave, executor.run(wave_tasks, wave_modes)):
            results[i] = result
    final = [r for r in results if r is not None]
    return GroupResult(
        label=label,
        ratio=ratio,
        results=final,
        stats=GroupStats.from_results(final),
        energy=energy_model.measure(final),
    )
