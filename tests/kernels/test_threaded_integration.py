"""Integration: kernels produce identical results on the threaded executor.

The task bodies write disjoint output regions (the programming model's
``out()`` contract), so thread-pool execution must be bit-identical to
sequential execution at every ratio.
"""

import numpy as np
import pytest

from repro.images import natural_image
from repro.kernels.dct import dct_significance
from repro.kernels.dct.tasks import ENERGY_MODEL as DCT_MODEL
from repro.kernels.sobel import sobel_significance
from repro.kernels.sobel.tasks import ENERGY_MODEL as SOBEL_MODEL
from repro.runtime import TaskRuntime, ThreadedExecutor


@pytest.fixture(scope="module")
def image():
    return natural_image(64, 64, seed=5)


class TestThreadedParity:
    @pytest.mark.parametrize("ratio", [0.0, 0.5, 1.0])
    def test_sobel(self, image, ratio):
        sequential = sobel_significance(image, ratio)
        threaded = sobel_significance(
            image,
            ratio,
            runtime=TaskRuntime(
                executor=ThreadedExecutor(4), energy_model=SOBEL_MODEL
            ),
        )
        assert np.array_equal(sequential.output, threaded.output)

    @pytest.mark.parametrize("ratio", [0.2, 1.0])
    def test_dct(self, image, ratio):
        sequential = dct_significance(image, ratio)
        threaded = dct_significance(
            image,
            ratio,
            runtime=TaskRuntime(
                executor=ThreadedExecutor(4), energy_model=DCT_MODEL
            ),
        )
        assert np.array_equal(sequential.output, threaded.output)

    def test_energy_model_identical(self, image):
        sequential = sobel_significance(image, 0.5)
        threaded = sobel_significance(
            image,
            0.5,
            runtime=TaskRuntime(
                executor=ThreadedExecutor(2), energy_model=SOBEL_MODEL
            ),
        )
        # The analytic model depends on work, not wall time.
        assert sequential.joules == pytest.approx(threaded.joules)
