"""Kernel registry: stable kernel ids -> analysis entrypoints.

The service core is the record-once/replay-many pipeline; this module
gives it a *name space*.  Each :class:`KernelEntry` binds a stable id
(``dct``, ``sobel``, ``blackscholes``, ``fisheye``, ``nbody``) to

* a **recorder** — the same record function the in-process analysis
  loops use, taking one :class:`~repro.intervals.Interval` per registered
  input in order (exactly the contract
  :meth:`repro.scorpio.TraceCache.analyse` requires);
* its **input schema** — ordered input names, so requests can be
  validated before any tape is touched;
* deterministic **default inputs**, so ``POST /analyse {"kernel":"dct"}``
  works without a body full of 64 ranges;
* the **quality metric** its ratio-knob tuner optimises (PSNR for the
  image kernels, relative error otherwise).

Every entry records the identical trace for identical requests, which is
what makes one :class:`~repro.scorpio.TraceCache` per kernel the whole
serving story: the first request records, every later one is a
vectorized replay, and the reports are byte-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.intervals import Interval
from repro.kernels.common import QUALITY_PSNR, QUALITY_REL_ERR
from repro.scorpio import Analysis
from repro.scorpio.report import SignificanceReport

__all__ = [
    "KernelEntry",
    "default_registry",
    "parse_intervals",
    "TuneSetup",
    "tune_setup",
]


@dataclass(frozen=True)
class KernelEntry:
    """One served kernel: identity, recorder, schema, defaults."""

    kernel_id: str
    summary: str
    input_names: tuple[str, ...]
    recorder: Callable[[Sequence[Interval]], Analysis]
    defaults: Callable[[], list[Interval]]
    simplify: bool
    quality_metric: str
    # Per-kernel latency SLO in milliseconds (None = no objective).  The
    # service's flight recorder compares every finished /analyse request
    # against it and surfaces kernels whose latest request blew the
    # threshold as "degraded" in /healthz.
    slo_ms: "float | None" = None

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    @property
    def cache_key(self) -> tuple[str]:
        return (self.kernel_id,)

    def analyse_in_process(
        self, inputs: Sequence[Interval]
    ) -> SignificanceReport:
        """The reference path the service's responses must match byte-
        for-byte: record this request's trace, analyse compiled."""
        return self.recorder(inputs).analyse(
            simplify=self.simplify, compiled=True
        )


def parse_intervals(
    raw: Any, entry: KernelEntry
) -> list[Interval]:
    """Request ``inputs`` -> one Interval per registered input.

    Accepts ``[lo, hi]`` pairs, ``{"lo": .., "hi": ..}`` objects (the
    serialize-module convention) or bare numbers (degenerate intervals);
    ``None`` means the kernel's defaults.  Raises ``ValueError`` with a
    client-facing message on anything else.
    """
    if raw is None:
        return entry.defaults()
    if not isinstance(raw, (list, tuple)):
        raise ValueError("'inputs' must be a list of ranges")
    if len(raw) != entry.n_inputs:
        raise ValueError(
            f"kernel {entry.kernel_id!r} takes {entry.n_inputs} inputs "
            f"({', '.join(entry.input_names[:4])}"
            f"{', ...' if entry.n_inputs > 4 else ''}), got {len(raw)}"
        )
    intervals: list[Interval] = []
    for i, item in enumerate(raw):
        name = entry.input_names[i]
        if isinstance(item, (list, tuple)) and len(item) == 2:
            lo, hi = item
        elif isinstance(item, dict) and {"lo", "hi"} <= set(item):
            lo, hi = item["lo"], item["hi"]
        elif isinstance(item, (int, float)) and not isinstance(item, bool):
            lo = hi = item
        else:
            raise ValueError(
                f"input {name!r} (#{i}): expected [lo, hi], "
                f"{{'lo':.., 'hi':..}} or a number, got {item!r}"
            )
        try:
            lo = float(lo)
            hi = float(hi)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"input {name!r} (#{i}): bounds must be numbers"
            ) from exc
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise ValueError(f"input {name!r} (#{i}): bounds must be finite")
        if lo > hi:
            raise ValueError(f"input {name!r} (#{i}): lo {lo} > hi {hi}")
        intervals.append(Interval(lo, hi))
    return intervals


# ----------------------------------------------------------------------
# Recorders and defaults, one block per kernel
# ----------------------------------------------------------------------
def _dct_defaults() -> list[Interval]:
    from repro.images import natural_image

    block = natural_image(8, 8, seed=5)
    return [
        Interval.centered(float(v), 0.5) for v in block.ravel()
    ]


def _sobel_defaults() -> list[Interval]:
    from repro.images import natural_image

    window = natural_image(3, 3, seed=5)
    return [
        Interval.centered(float(v), 0.5) for v in window.ravel()
    ]


# Representative European call: S=100, K=105, r=3%, vol=25%, T=1y, each
# with the analysis module's conventional ±2% relative uncertainty.
_BS_PARAMS = (100.0, 105.0, 0.03, 0.25, 1.0)


def _blackscholes_defaults() -> list[Interval]:
    return [Interval.centered(p, 0.02 * p) for p in _BS_PARAMS]


_FISHEYE_WINDOW = 4  # bicubic support


def _record_fisheye(ivs: Sequence[Interval]) -> Analysis:
    """Record one bicubic resample over 16 window pixels + 2 coordinates.

    The served fisheye kernel is the per-pixel core of Figure 5: the
    (centred) 4x4 source window enters as sixteen pixel-value inputs and
    the fractional source coordinates as two more, so a request can vary
    both the content and the coordinate imprecision.
    """
    from repro.kernels.fisheye.bicubic import bicubic_interp

    an = Analysis()
    with an:
        it = iter(ivs)
        window = [
            [
                an.input(next(it), name=f"w_{r}_{c}")
                for c in range(_FISHEYE_WINDOW)
            ]
            for r in range(_FISHEYE_WINDOW)
        ]
        tx = an.input(next(it), name="x_frac")
        ty = an.input(next(it), name="y_frac")
        value = bicubic_interp(window, tx, ty)
        an.output(value, name="pixel")
    return an


def _fisheye_defaults() -> list[Interval]:
    """A real border-region window of the benchmark lens's scene."""
    import math

    from repro.images import radial_scene
    from repro.kernels.fisheye import default_config, make_fisheye_input
    from repro.kernels.fisheye.geometry import inverse_map_point

    config = default_config(64, 48)
    scene = radial_scene(64, 48, seed=11)
    image = make_fisheye_input(scene, config)
    h, w = image.shape
    # An output pixel near the border, where Figure 5 says imprecision
    # matters most.
    mx, my = inverse_map_point(config, 56.0, 40.0)
    ix, iy = int(math.floor(mx)), int(math.floor(my))
    window = np.array(
        [
            [
                image[
                    min(max(iy + r - 1, 0), h - 1),
                    min(max(ix + c - 1, 0), w - 1),
                ]
                for c in range(_FISHEYE_WINDOW)
            ]
            for r in range(_FISHEYE_WINDOW)
        ]
    )
    window -= window.mean()
    ivs = [Interval.centered(float(v), 0.5) for v in window.ravel()]
    ivs.append(Interval.centered(mx - ix, 0.5))
    ivs.append(Interval.centered(my - iy, 0.5))
    return ivs


_NBODY_SOURCES = 3


def _record_nbody(ivs: Sequence[Interval]) -> Analysis:
    """Record the LJ force on a target atom at the origin from three
    source atoms (nine coordinate inputs, target-centred per the
    analysis module's translation normalisation)."""
    from repro.kernels.nbody import lj_pair_force

    an = Analysis()
    with an:
        it = iter(ivs)
        taped = [
            [
                an.input(next(it), name=f"atom{i}_{axis}")
                for axis in "xyz"
            ]
            for i in range(1, _NBODY_SOURCES + 1)
        ]
        fx = fy = fz = None
        for sx, sy, sz in taped:
            dfx, dfy, dfz = lj_pair_force(0.0 - sx, 0.0 - sy, 0.0 - sz)
            fx = dfx if fx is None else fx + dfx
            fy = dfy if fy is None else fy + dfy
            fz = dfz if fz is None else fz + dfz
        an.output(fx, name="fx")
        an.output(fy, name="fy")
        an.output(fz, name="fz")
    return an


# Near-equilibrium, mid-range and distant source atoms (LJ sigma units).
_NBODY_POSITIONS = (
    (1.12, 0.0, 0.0),
    (0.3, 1.5, -0.2),
    (-1.9, 0.8, 1.1),
)


def _nbody_defaults() -> list[Interval]:
    return [
        Interval.centered(c, 0.02)
        for atom in _NBODY_POSITIONS
        for c in atom
    ]


def default_registry() -> dict[str, KernelEntry]:
    """The five paper kernels, keyed by their stable service ids."""
    from repro.kernels.blackscholes.analysis import _record_option
    from repro.kernels.dct.analysis import _record_dct_block
    from repro.kernels.sobel.analysis import _record_sobel_pixel

    entries = [
        KernelEntry(
            kernel_id="dct",
            summary="8x8 DCT round-trip; per-coefficient significance",
            input_names=tuple(
                f"p_{y}_{x}" for y in range(8) for x in range(8)
            ),
            recorder=_record_dct_block,
            defaults=_dct_defaults,
            simplify=False,
            quality_metric=QUALITY_PSNR,
        ),
        KernelEntry(
            kernel_id="sobel",
            summary="3x3 Sobel window; A/B/C block significance",
            input_names=tuple(
                f"p{dy}{dx}" for dy in range(3) for dx in range(3)
            ),
            recorder=_record_sobel_pixel,
            defaults=_sobel_defaults,
            simplify=True,
            quality_metric=QUALITY_PSNR,
        ),
        KernelEntry(
            kernel_id="blackscholes",
            summary="European option pricing; A-D block significance",
            input_names=("S", "K", "r", "v", "T"),
            recorder=_record_option,
            defaults=_blackscholes_defaults,
            simplify=False,
            quality_metric=QUALITY_REL_ERR,
        ),
        KernelEntry(
            kernel_id="fisheye",
            summary="bicubic resample; window + coordinate significance",
            input_names=tuple(
                f"w_{r}_{c}"
                for r in range(_FISHEYE_WINDOW)
                for c in range(_FISHEYE_WINDOW)
            )
            + ("x_frac", "y_frac"),
            recorder=_record_fisheye,
            defaults=_fisheye_defaults,
            simplify=False,
            quality_metric=QUALITY_PSNR,
        ),
        KernelEntry(
            kernel_id="nbody",
            summary="Lennard-Jones force; per-source-atom significance",
            input_names=tuple(
                f"atom{i}_{axis}"
                for i in range(1, _NBODY_SOURCES + 1)
                for axis in "xyz"
            ),
            recorder=_record_nbody,
            defaults=_nbody_defaults,
            simplify=False,
            quality_metric=QUALITY_REL_ERR,
        ),
    ]
    return {entry.kernel_id: entry for entry in entries}


# ----------------------------------------------------------------------
# Ratio-knob tuning setups (the /tune endpoint)
# ----------------------------------------------------------------------
@dataclass
class TuneSetup:
    """A ratio -> (quality, energy) evaluator plus its conventions."""

    evaluate: Callable[[float], tuple[float, float]]
    higher_is_better: bool
    quality_metric: str
    workload: dict[str, Any]


def tune_setup(kernel_id: str, size: int | None = None) -> TuneSetup:
    """Build the tuning evaluator for one kernel.

    ``size`` scales the workload: image side for sobel/dct/fisheye,
    lattice side for nbody, option count for blackscholes.  Workloads are
    deliberately small — /tune answers a knob recommendation, not a
    benchmark run.
    """
    if kernel_id in ("sobel", "dct"):
        from repro.images import natural_image
        from repro.metrics import psnr

        side = size or 48
        image = natural_image(side, side, seed=5)
        if kernel_id == "sobel":
            from repro.kernels.sobel import (
                sobel_reference as ref_fn,
                sobel_significance as run_fn,
            )
        else:
            from repro.kernels.dct import (
                dct_roundtrip_reference as ref_fn,
                dct_significance as run_fn,
            )
        reference = ref_fn(image)

        def evaluate(ratio: float) -> tuple[float, float]:
            run = run_fn(image, ratio)
            return min(psnr(reference, run.output), 99.0), run.joules

        return TuneSetup(
            evaluate, True, QUALITY_PSNR, {"image": f"{side}x{side}"}
        )
    if kernel_id == "fisheye":
        from repro.images import radial_scene
        from repro.kernels.fisheye import (
            default_config,
            fisheye_reference,
            fisheye_significance,
            make_fisheye_input,
        )
        from repro.metrics import psnr

        width = size or 48
        height = max(3 * width // 4, 12)
        config = default_config(width, height)
        scene = radial_scene(width, height, seed=11)
        image = make_fisheye_input(scene, config)
        reference = fisheye_reference(image, config)

        def evaluate(ratio: float) -> tuple[float, float]:
            run = fisheye_significance(image, config, ratio)
            return min(psnr(reference, run.output), 99.0), run.joules

        return TuneSetup(
            evaluate, True, QUALITY_PSNR, {"image": f"{width}x{height}"}
        )
    if kernel_id == "nbody":
        from repro.kernels.nbody import (
            lattice_system,
            nbody_significance,
            simulate_reference,
        )
        from repro.metrics import aggregate_relative_error

        side = size or 4
        steps = 2
        system = lattice_system(side=side, seed=42)
        reference = simulate_reference(system, steps=steps).positions

        def evaluate(ratio: float) -> tuple[float, float]:
            run, _ = nbody_significance(system, ratio, steps=steps)
            return aggregate_relative_error(reference, run.output), run.joules

        return TuneSetup(
            evaluate,
            False,
            QUALITY_REL_ERR,
            {"atoms": side**3, "steps": steps},
        )
    if kernel_id == "blackscholes":
        from repro.kernels.blackscholes import (
            blackscholes_significance,
            make_portfolio,
            price_portfolio,
        )
        from repro.metrics import aggregate_relative_error

        count = size or 1024
        portfolio = make_portfolio(count=count, seed=23)
        reference = price_portfolio(
            portfolio.spots,
            portfolio.strikes,
            portfolio.rates,
            portfolio.volatilities,
            portfolio.expiries,
            portfolio.puts,
        )

        def evaluate(ratio: float) -> tuple[float, float]:
            run = blackscholes_significance(portfolio, ratio)
            return aggregate_relative_error(reference, run.output), run.joules

        return TuneSetup(
            evaluate, False, QUALITY_REL_ERR, {"options": count}
        )
    raise ValueError(f"no tuning setup for kernel {kernel_id!r}")
