"""Tests for the ratio-knob autotuners."""

import math

import pytest

from repro.runtime import best_quality_under_energy, min_ratio_for_quality


def monotone_psnr(ratio: float) -> tuple[float, float]:
    """Synthetic benchmark: PSNR 20..60 dB, energy 100..400 J."""
    return 20.0 + 40.0 * ratio, 100.0 + 300.0 * ratio


def monotone_error(ratio: float) -> tuple[float, float]:
    """Synthetic benchmark: error 10%..0%, energy 50..200 J."""
    return 0.10 * (1.0 - ratio), 50.0 + 150.0 * ratio


class TestMinRatioForQuality:
    def test_finds_threshold(self):
        result = min_ratio_for_quality(monotone_psnr, target_quality=40.0)
        assert result.satisfied
        assert result.quality >= 40.0
        # True threshold is ratio 0.5; bisection lands just above.
        assert 0.5 <= result.ratio <= 0.5 + 1 / 32

    def test_target_met_at_zero(self):
        result = min_ratio_for_quality(monotone_psnr, target_quality=10.0)
        assert result.ratio == 0.0 and result.satisfied

    def test_unsatisfiable(self):
        result = min_ratio_for_quality(monotone_psnr, target_quality=70.0)
        assert not result.satisfied
        assert result.ratio == 1.0

    def test_lower_is_better_mode(self):
        result = min_ratio_for_quality(
            monotone_error, target_quality=0.02, higher_is_better=False
        )
        assert result.satisfied
        assert result.quality <= 0.02
        assert 0.8 <= result.ratio <= 0.8 + 1 / 32

    def test_probe_caching(self):
        calls = []

        def counted(ratio):
            calls.append(ratio)
            return monotone_psnr(ratio)

        min_ratio_for_quality(counted, target_quality=40.0)
        assert len(calls) == len(set(calls))  # no repeated evaluations

    def test_tolerance_controls_precision(self):
        coarse = min_ratio_for_quality(
            monotone_psnr, target_quality=40.0, tolerance=0.25
        )
        fine = min_ratio_for_quality(
            monotone_psnr, target_quality=40.0, tolerance=1 / 256
        )
        assert fine.ratio <= coarse.ratio


class TestBestQualityUnderEnergy:
    def test_fits_budget(self):
        result = best_quality_under_energy(monotone_psnr, energy_budget=250.0)
        assert result.satisfied
        assert result.energy <= 250.0
        assert result.ratio == pytest.approx(0.5)

    def test_unlimited_budget_full_ratio(self):
        result = best_quality_under_energy(monotone_psnr, energy_budget=1e9)
        assert result.ratio == 1.0

    def test_impossible_budget(self):
        result = best_quality_under_energy(monotone_psnr, energy_budget=10.0)
        assert not result.satisfied
        assert result.ratio == 0.0  # cheapest point returned

    def test_lower_is_better(self):
        result = best_quality_under_energy(
            monotone_error, energy_budget=125.0, higher_is_better=False
        )
        assert result.energy <= 125.0
        assert result.quality == pytest.approx(0.05)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            best_quality_under_energy(monotone_psnr, 100.0, grid=1)


class TestOnRealKernel:
    def test_dct_autotune(self):
        from repro.images import natural_image
        from repro.kernels.dct import dct_roundtrip_reference, dct_significance
        from repro.metrics import psnr

        image = natural_image(48, 48, seed=7)
        reference = dct_roundtrip_reference(image)

        def evaluate(ratio):
            run = dct_significance(image, ratio)
            return min(psnr(reference, run.output), 99.0), run.joules

        result = min_ratio_for_quality(evaluate, target_quality=35.0)
        assert result.satisfied
        assert result.quality >= 35.0
        # And the tuned point is cheaper than the fully accurate run.
        full_energy = evaluate(1.0)[1]
        assert result.energy < full_energy
