"""Tests for the in()/out() dependence tracking."""

import pytest

from repro.runtime import (
    DependencyCycleError,
    DependencyGraph,
    Task,
    run_with_dependencies,
)


def task(fn=lambda: None, sig=1.0, approx=False):
    return Task(
        fn=fn,
        approx_fn=(lambda: None) if approx else None,
        significance=sig,
        work=1.0,
    )


class TestEdges:
    def test_raw_dependence(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])
        g.add(task(), reads=["a"])
        assert (0, 1) in g.edges()

    def test_waw_dependence(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])
        g.add(task(), writes=["a"])
        assert (0, 1) in g.edges()

    def test_war_dependence(self):
        g = DependencyGraph()
        g.add(task(), reads=["a"])
        g.add(task(), writes=["a"])
        assert (0, 1) in g.edges()

    def test_independent_tasks_no_edge(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])
        g.add(task(), writes=["b"])
        assert g.edges() == set()

    def test_read_read_no_edge(self):
        g = DependencyGraph()
        g.add(task(), reads=["a"])
        g.add(task(), reads=["a"])
        assert g.edges() == set()

    def test_raw_goes_to_latest_writer(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])  # 0
        g.add(task(), writes=["a"])  # 1
        g.add(task(), reads=["a"])  # 2
        edges = g.edges()
        assert (1, 2) in edges and (0, 2) not in edges

    def test_tuple_tags_supported(self):
        g = DependencyGraph()
        g.add(task(), writes=[("array", 0)])
        g.add(task(), reads=[("array", 0)])
        g.add(task(), reads=[("array", 1)])
        edges = g.edges()
        assert (0, 1) in edges and (0, 2) not in edges


class TestWaves:
    def test_chain_is_sequential(self):
        g = DependencyGraph()
        for _ in range(4):
            g.add(task(), reads=["x"], writes=["x"])
        assert g.waves() == [[0], [1], [2], [3]]

    def test_independent_in_one_wave(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])
        g.add(task(), writes=["b"])
        g.add(task(), writes=["c"])
        assert g.waves() == [[0, 1, 2]]

    def test_diamond(self):
        g = DependencyGraph()
        g.add(task(), writes=["src"])  # 0
        g.add(task(), reads=["src"], writes=["l"])  # 1
        g.add(task(), reads=["src"], writes=["r"])  # 2
        g.add(task(), reads=["l", "r"])  # 3
        assert g.waves() == [[0], [1, 2], [3]]

    def test_empty_graph(self):
        assert DependencyGraph().waves() == []


class TestExecution:
    def test_order_respects_dependences(self):
        log = []
        g = DependencyGraph()
        g.add(task(lambda: log.append("producer")), writes=["a"])
        g.add(task(lambda: log.append("consumer")), reads=["a"])
        run_with_dependencies(g)
        assert log == ["producer", "consumer"]

    def test_ratio_semantics_preserved(self):
        g = DependencyGraph()
        g.add(task(sig=1.0), writes=["a"])
        g.add(task(sig=0.2), reads=["a"])
        g.add(task(sig=0.8), reads=["a"])
        result = run_with_dependencies(g, ratio=2 / 3)
        assert result.stats.accurate == 2
        modes = {r.task.significance: r.mode.value for r in result.results}
        assert modes[0.2] == "dropped"

    def test_dropped_producer_consumer_still_runs(self):
        # Significance policy is orthogonal to dependence order: a dropped
        # producer's consumers still execute (with whatever data exists).
        log = []
        g = DependencyGraph()
        g.add(task(lambda: log.append("p"), sig=0.1), writes=["a"])
        g.add(task(lambda: log.append("c"), sig=1.0), reads=["a"])
        result = run_with_dependencies(g, ratio=0.5)
        assert log == ["c"]
        assert result.stats.dropped == 1

    def test_energy_measured(self):
        g = DependencyGraph()
        g.add(task(), writes=["a"])
        result = run_with_dependencies(g, ratio=1.0)
        assert result.energy.total > 0

    def test_cycle_detection(self):
        class Cyclic(DependencyGraph):
            def edges(self):
                return {(0, 1), (1, 0)}

        g = Cyclic()
        g.add(task())
        g.add(task())
        with pytest.raises(DependencyCycleError):
            g.waves()
