#!/usr/bin/env python
"""Approximate image pipeline: Sobel + DCT under an energy budget.

A realistic multimedia scenario from the paper's motivation: an imaging
pipeline that must fit an energy envelope.  The script

1. runs the significance analysis on both kernels (validating the 2:1
   convolution-block ratio and the Figure 4 zig-zag map),
2. prices out quality vs energy across the ratio knob for both kernels,
3. picks, for a given energy budget, the highest-quality ratio per kernel,
4. writes the accurate and approximate outputs as PGM images for visual
   inspection.

Run:  python examples/image_pipeline.py [--size 192] [--budget-frac 0.6]
"""

import argparse
import pathlib

import numpy as np

from repro.images import natural_image, write_pgm
from repro.kernels.dct import dct_roundtrip_reference, dct_significance
from repro.kernels.sobel import analyse_sobel, sobel_reference, sobel_significance
from repro.metrics import psnr


def best_ratio_under_budget(runs, budget: float) -> float:
    """Highest-quality ratio whose energy fits the budget."""
    feasible = [(q, r) for r, q, e in runs if e <= budget]
    if not feasible:
        return min(runs, key=lambda t: t[2])[0]
    return max(feasible)[1]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=192)
    parser.add_argument(
        "--budget-frac",
        type=float,
        default=0.6,
        help="energy budget as a fraction of the fully accurate cost",
    )
    parser.add_argument("--out-dir", default="examples_output")
    args = parser.parse_args()

    image = natural_image(args.size, args.size, seed=5)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(exist_ok=True)
    write_pgm(out_dir / "input.pgm", image)

    # Stage 1: significance analysis.
    sobel_an = analyse_sobel(image, samples=8)
    print(
        "Sobel analysis: S(A)/S(B) = "
        f"{sobel_an.a_to_b_ratio:.2f}, S(A)/S(C) = {sobel_an.a_to_c_ratio:.2f} "
        "(the ±2 coefficients matter ~2x as much)"
    )

    # Stage 2: sweep the knob on both kernels.
    ratios = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    sobel_ref = sobel_reference(image)
    dct_ref = dct_roundtrip_reference(image)
    sobel_runs, dct_runs = [], []
    for r in ratios:
        s = sobel_significance(image, r)
        d = dct_significance(image, r)
        sobel_runs.append((r, psnr(sobel_ref, s.output), s.joules))
        dct_runs.append((r, psnr(dct_ref, d.output), d.joules))

    # Stage 3: fit the budget.
    for name, runs, full_idx in (("Sobel", sobel_runs, -1), ("DCT", dct_runs, -1)):
        full_energy = runs[full_idx][2]
        budget = args.budget_frac * full_energy
        chosen = best_ratio_under_budget(runs, budget)
        print(f"\n{name}: budget {budget:.0f} J of {full_energy:.0f} J full cost")
        for r, q, e in runs:
            marker = " <- chosen" if r == chosen else ""
            print(f"  ratio {r:.1f}: {q:6.2f} dB, {e:7.1f} J{marker}")

    # Write outputs at the chosen Sobel ratio for visual inspection.
    chosen_sobel = best_ratio_under_budget(
        sobel_runs, args.budget_frac * sobel_runs[-1][2]
    )
    approx = sobel_significance(image, chosen_sobel)
    write_pgm(out_dir / "sobel_accurate.pgm", sobel_ref)
    write_pgm(out_dir / "sobel_approx.pgm", approx.output)
    print(f"\nwrote input/accurate/approx PGM images to {out_dir}/")


if __name__ == "__main__":
    main()
