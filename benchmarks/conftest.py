"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md §3).  Benchmarks assert the paper's *shape* claims as they run,
so a green ``pytest benchmarks/ --benchmark-only`` doubles as an
end-to-end reproduction check; measured-vs-paper numbers are recorded in
EXPERIMENTS.md.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.images import natural_image, radial_scene

# Benchmarks live outside the package; make sibling helpers (record.py)
# importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture(scope="session")
def bench_image():
    """Shared 128x128 natural image for the image-kernel benches."""
    return natural_image(128, 128, seed=5)


@pytest.fixture(scope="session")
def bench_scene():
    """Shared radial scene for the fisheye benches."""
    return radial_scene(128, 96, seed=11)
