"""Loop perforation baseline (paper Section 4.2)."""

from .perforate import (
    PerforationScheme,
    interleaved,
    modulo,
    perforate_sequence,
    perforated_indices,
    perforated_range,
    truncated,
)

__all__ = [
    "perforated_indices",
    "perforate_sequence",
    "perforated_range",
    "PerforationScheme",
    "interleaved",
    "truncated",
    "modulo",
]
