"""Analysis results: significance reports and rankings.

A :class:`SignificanceReport` bundles everything ``ANALYSE()`` produces:
the raw DynDFG (Figure 3a), the simplified graph (Figure 3b), the variance
scan (``Gout``), and convenient per-label significance views that the
programmer uses to assign task significances (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dyndfg import DynDFG
from .significance import normalise
from .variance import VarianceScan

__all__ = ["SignificanceReport"]


@dataclass
class SignificanceReport:
    """Full result of one significance analysis run."""

    raw_graph: DynDFG
    simplified_graph: DynDFG
    scan: VarianceScan
    input_ids: list[int]
    intermediate_ids: list[int]
    output_ids: list[int]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynDFG:
        """``Gout`` of Algorithm 1 (simplified, truncated at variance)."""
        return self.scan.graph

    @property
    def partition_level(self) -> int | None:
        """Level ``L`` with significance variance > δ, or ``None``."""
        return self.scan.found_level

    def significance_of(self, label: str) -> float:
        """Significance of the (single) node registered under ``label``."""
        nodes = self.raw_graph.labelled(label)
        if not nodes:
            raise KeyError(f"no registered variable named {label!r}")
        if len(nodes) > 1:
            raise KeyError(
                f"label {label!r} is ambiguous ({len(nodes)} nodes); "
                "use labelled_significances()"
            )
        return nodes[0].significance or 0.0

    def labelled_significances(self) -> dict[str, float]:
        """Significance per registered label (inputs + intermediates).

        Repeated labels accumulate (useful when a loop registers the same
        name for every iteration's value).
        """
        out: dict[str, float] = {}
        for node in self.raw_graph:
            if node.label is None or node.id in self.output_ids:
                continue
            out[node.label] = out.get(node.label, 0.0) + (
                node.significance or 0.0
            )
        return out

    def normalised_significances(self) -> dict[str, float]:
        """Labelled significances scaled to sum to 1 (Figure 3 style)."""
        return normalise(self.labelled_significances())

    def input_significances(self) -> dict[str, float]:
        """Significance per registered *input* variable."""
        return {
            (n.label or f"x{n.id}"): (n.significance or 0.0)
            for n in self.raw_graph
            if n.id in set(self.input_ids)
        }

    def ranking(self) -> list[tuple[str, float]]:
        """Labelled significances, most significant first."""
        items = sorted(
            self.labelled_significances().items(),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return items

    def task_partition(self) -> list:
        """Nodes at the partition level — candidate task outputs (S5)."""
        return self.scan.task_nodes

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, normalised: bool = True) -> str:
        """Human-readable summary (what dco/scorpio prints at ANALYSE)."""
        sigs = (
            self.normalised_significances()
            if normalised
            else self.labelled_significances()
        )
        lines = ["significance analysis report", "=" * 32]
        lines.append(
            f"tape nodes: {len(self.raw_graph)}  "
            f"simplified: {len(self.simplified_graph)}  "
            f"height: {self.simplified_graph.height}"
        )
        if self.partition_level is not None:
            lines.append(
                f"variance level L = {self.partition_level} "
                f"(delta = {self.scan.delta:g})"
            )
        else:
            lines.append(
                "no significance variance found down to the inputs "
                f"(delta = {self.scan.delta:g})"
            )
        kind = "normalised " if normalised else ""
        lines.append(f"{kind}significances:")
        width = max((len(k) for k in sigs), default=0)
        for label, value in sorted(
            sigs.items(), key=lambda kv: kv[1], reverse=True
        ):
            lines.append(f"  {label:<{width}}  {value:.6f}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """DOT rendering of ``Gout`` (simplified + truncated graph)."""
        return self.graph.to_dot(title="Gout")
