"""The paper's benchmark kernels.

Each sub-package mirrors the structure of Section 4: a sequential
reference, a dco/scorpio significance analysis, a task-based
significance-driven version, and (where applicable) a loop-perforated
baseline.  :mod:`repro.kernels.maclaurin` is the Section 3 running
example.
"""

from . import blackscholes, dct, fisheye, maclaurin, nbody, sobel
from .common import KernelRun, QUALITY_PSNR, QUALITY_REL_ERR

__all__ = [
    "maclaurin",
    "sobel",
    "dct",
    "fisheye",
    "nbody",
    "blackscholes",
    "KernelRun",
    "QUALITY_PSNR",
    "QUALITY_REL_ERR",
]
