"""Figure 4: DCT coefficient significance map benchmark.

Regenerates the 8x8 wave-pattern significance map (DC corner highest,
decay along the zig-zag) and times the vector-adjoint analysis of one
block and of the averaged map.
"""

import numpy as np
import pytest

from repro.kernels.dct import analyse_dct, analyse_dct_block, blockify, zigzag_order


def test_figure4_single_block(benchmark, bench_image):
    block = blockify(bench_image)[5]
    sig_map = benchmark(analyse_dct_block, block)
    assert sig_map[0, 0] == sig_map.max()


def test_figure4_averaged_map(benchmark, bench_image):
    analysis = benchmark.pedantic(
        analyse_dct, args=(bench_image,), kwargs={"samples": 4}, rounds=1, iterations=1
    )
    means = analysis.diagonal_means()

    # The paper's wave pattern: DC diagonal dominates, low-frequency
    # diagonals clearly above high-frequency ones.
    assert means[0] == max(means)
    assert np.mean(means[:4]) > 2.0 * np.mean(means[-4:])

    profile = analysis.zigzag_profile()
    assert np.mean(profile[:16]) > np.mean(profile[-16:])
    benchmark.extra_info["diagonal_means"] = [round(m, 4) for m in means]
