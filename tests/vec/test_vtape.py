"""Tests for the batched tape, VADouble, and intrinsics dispatch.

The central invariant: running a kernel on a ``VTape`` with N lanes must
give, in every lane, an enclosure of what the scalar engine computes for
that lane's inputs — same tape structure, same adjoints (up to the batched
engine's slightly wider outward rounding).
"""

import numpy as np
import pytest

from repro.ad import intrinsics as op
from repro.ad.adouble import ADouble
from repro.ad.tape import Tape, require_tape
from repro.intervals import Interval
from repro.vec import (
    AmbiguousLaneComparisonError,
    IntervalArray,
    VADouble,
    VAnalysis,
    VTape,
)


def run_scalar(fn, lanes):
    """Scalar reference: record fn per lane, return (value, x-adjoint)."""
    out = []
    for iv in lanes:
        with Tape() as tape:
            x = ADouble.input(iv, label="x", tape=tape)
            y = fn(x)
        adj = tape.adjoint({y.node.index: 1.0})
        out.append((y.value, adj[x.node.index]))
    return out


def run_vec(fn, lanes):
    arr = IntervalArray.from_intervals(lanes)
    with VTape(lane_shape=arr.shape) as tape:
        x = VADouble.input(arr, label="x", tape=tape)
        y = fn(x)
    adj = tape.adjoint({y.node.index: 1.0})
    return y.value, adj[x.node.index], tape


KERNELS = [
    lambda x: x * x + 2.0 * x - 1.0,
    lambda x: op.exp(x) * op.sin(x),
    lambda x: op.sqrt(x * x + 1.0),
    lambda x: op.tanh(x) / (x * x + 2.0),
    lambda x: op.clip(x, -0.5, 0.5) + abs(x),
    lambda x: op.erf(x) - op.cos(x) * 0.25,
    lambda x: x**3 - x**2 + x**0,
    lambda x: op.minimum(x, 0.25) + op.maximum(x, -0.25),
    lambda x: op.log(x * x + 1.5) + op.atan(x),
    lambda x: 2.0**x + op.hypot(x, 3.0),
]

LANES = [
    Interval(-0.75, -0.25),
    Interval(-0.1, 0.2),
    Interval(0.4, 0.9),
    Interval(1.0, 1.5),
]


class TestLaneEquivalence:
    @pytest.mark.parametrize("fn", KERNELS)
    def test_values_and_adjoints_enclose_scalar(self, fn):
        scalar = run_scalar(fn, LANES)
        value, adjoint, _ = run_vec(fn, LANES)
        for k, (sv, sa) in enumerate(scalar):
            assert value.lane(k).lo <= sv.lo and sv.hi <= value.lane(k).hi
            assert adjoint.lane(k).lo <= sa.lo and sa.hi <= adjoint.lane(k).hi

    def test_one_node_per_op_not_per_lane(self):
        fn = KERNELS[1]
        _, _, vtape = run_vec(fn, LANES)
        with Tape() as stape:
            x = ADouble.input(LANES[0], tape=stape)
            fn(x)
        assert len(vtape) == len(stape)  # batching adds zero nodes


class TestVTape:
    def test_lane_shape_inferred_and_checked(self):
        with VTape() as tape:
            VADouble.input(IntervalArray.point([1.0, 2.0]), tape=tape)
            assert tape.lane_shape == (2,)
            with pytest.raises(ValueError):
                tape.record("bad", IntervalArray.point([1.0, 2.0, 3.0]))

    def test_require_lane_shape_before_any_input(self):
        tape = VTape()
        with pytest.raises(RuntimeError):
            tape.require_lane_shape()

    def test_seed_broadcasting(self):
        with VTape(lane_shape=3) as tape:
            x = VADouble.input(IntervalArray.point([1.0, 2.0, 3.0]), tape=tape)
            y = x * 2.0
        adj = tape.adjoint({y.node.index: np.array([1.0, 0.0, 2.0])})
        got = adj[x.node.index]
        # Outward rounding keeps each lane a hair wide of the exact value.
        for k, want in enumerate((2.0, 0.0, 4.0)):
            assert got.lane(k).contains(want)
            assert got.lane(k).width < 1e-12

    def test_fan_out_accumulates(self):
        with VTape(lane_shape=2) as tape:
            x = VADouble.input(IntervalArray.point([1.0, 3.0]), tape=tape)
            y = x * 2.0 + x * 5.0
        adj = tape.adjoint({y.node.index: 1.0})
        got = adj[x.node.index].lane(0)
        assert got.contains(7.0) and got.width < 1e-12

    def test_active_tape_stack_shared_with_scalar(self):
        with VTape(lane_shape=1) as tape:
            assert require_tape() is tape

    def test_empty_seeds_rejected(self):
        with VTape(lane_shape=1) as tape:
            VADouble.input(IntervalArray.point([1.0]), tape=tape)
        with pytest.raises(ValueError):
            tape.adjoint({})


class TestVADouble:
    def test_input_requires_vtape(self):
        with Tape():
            with pytest.raises(TypeError):
                VADouble.input(IntervalArray.point([1.0]))

    def test_passive_operand_kinds(self):
        with VTape(lane_shape=2) as tape:
            x = VADouble.input(IntervalArray.point([1.0, 2.0]), tape=tape)
            y = x + 1.0                       # float broadcast
            z = y * np.array([2.0, 3.0])      # per-lane point constants
            w = z - Interval(0.0, 1.0)        # scalar interval broadcast
        lane0, lane1 = w.value.lane(0), w.value.lane(1)
        assert lane0.lo <= 3.0 and 4.0 <= lane0.hi and lane0.width < 1.0 + 1e-12
        assert lane1.lo <= 8.0 and 9.0 <= lane1.hi and lane1.width < 1.0 + 1e-12

    def test_comparison_masks_and_ambiguity(self):
        with VTape(lane_shape=2) as tape:
            x = VADouble.input(
                IntervalArray.from_intervals(
                    [Interval(0.0, 0.5), Interval(2.0, 3.0)]
                ),
                tape=tape,
            )
            assert list(x < 1.0) == [True, False]
            with pytest.raises(AmbiguousLaneComparisonError):
                x < 2.5

    def test_to_double_is_lane_midpoints(self):
        with VTape(lane_shape=2) as tape:
            x = VADouble.input(
                IntervalArray.from_intervals(
                    [Interval(0.0, 1.0), Interval(2.0, 4.0)]
                ),
                tape=tape,
            )
        assert list(x.to_double()) == [0.5, 3.0]

    def test_abs_partial_per_lane(self):
        lanes = [Interval(-2.0, -1.0), Interval(-0.5, 0.5), Interval(1.0, 2.0)]
        with VTape(lane_shape=3) as tape:
            x = VADouble.input(IntervalArray.from_intervals(lanes), tape=tape)
            y = abs(x)
        adj = tape.adjoint({y.node.index: 1.0})
        got = adj[x.node.index]
        assert got.lane(0).contains(-1.0) and got.lane(0).width < 1e-12
        assert got.lane(1).lo <= -1.0 and 1.0 <= got.lane(1).hi
        assert got.lane(2).contains(1.0) and got.lane(2).width < 1e-12


class TestVAnalysis:
    def test_macro_flow_and_report(self):
        va = VAnalysis(lane_shape=3)
        with va:
            x = va.input(np.array([0.2, 0.5, 0.8]), width=1.0, name="x")
            t = x * x
            va.intermediate(t, "sq")
            va.output(t + x, name="y")
        rep = va.analyse()
        sigs = rep.labelled_significances()
        assert set(sigs) == {"x", "sq"}
        assert sigs["x"].shape == (3,)
        assert rep.ranking()[0][0] == "x"

    def test_vector_outputs_sum_per_output_widths(self):
        va = VAnalysis(lane_shape=2)
        with va:
            x = va.input(np.array([1.0, 2.0]), width=0.5, name="x")
            va.output(x * 2.0, name="y0")
            va.output(x * -2.0, name="y1")
        rep = va.analyse()
        # Signed partials must NOT cancel: each output contributes its own
        # width (Section 2.3), so x's significance is the sum of both.
        single = VAnalysis(lane_shape=2)
        with single:
            xs = single.input(np.array([1.0, 2.0]), width=0.5, name="x")
            single.output(xs * 2.0, name="y0")
        base = single.analyse().significance_of("x")
        assert np.allclose(rep.significance_of("x"), 2.0 * base)

    def test_analyse_requires_macros(self):
        va = VAnalysis(lane_shape=1)
        with va:
            x = va.input(np.array([1.0]), width=0.1)
        with pytest.raises(RuntimeError):
            va.analyse()
