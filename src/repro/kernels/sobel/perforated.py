"""Loop-perforated Sobel baseline (Section 4.2).

"The perforated version of Sobel Filter skips the computation for a
percentage of the rows of the image."  Executed rows are spread uniformly
(interleaved perforation).  Skipped rows produce nothing: the output
buffer keeps its initial zeros (true loop-perforation semantics).  A
``fill="replicate"`` mode that patches skipped rows from the nearest
computed row is provided for the ablation benches.

Perforated runs have no task runtime, so energy is dynamic + static work
only (``perforation_energy``) — the source of the paper's observation
that perforation can undercut the task version on energy at equal work.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.perforation import perforated_indices
from repro.runtime import perforation_energy

from .sequential import (
    OPS_COMBINE,
    OPS_PART_A,
    OPS_PART_B,
    OPS_PART_C,
    sobel_reference,
)
from .tasks import ENERGY_MODEL

__all__ = ["sobel_perforated"]

_OPS_PER_PIXEL = OPS_PART_A + OPS_PART_B + OPS_PART_C + OPS_COMBINE


def sobel_perforated(
    image: np.ndarray, ratio: float, fill: str = "zero"
) -> KernelRun:
    """Run the row-perforated Sobel at the given accurate-row ratio.

    ``fill`` controls skipped rows: ``"zero"`` (default, plain loop
    perforation) or ``"replicate"`` (patch from the last computed row).
    """
    if fill not in ("zero", "replicate"):
        raise ValueError(f"unknown fill mode {fill!r}")
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    executed = perforated_indices(h, ratio)
    output = np.zeros((h, w), dtype=np.float64)

    if executed:
        full = sobel_reference(image)  # rows are sliced below; work is
        # charged only for executed rows (the numpy call computes all rows
        # for vectorisation convenience, but the *model* sees per-row work).
        last = executed[0]
        executed_set = set(executed)
        for row in range(h):
            if row in executed_set:
                output[row, :] = full[row, :]
                last = row
            elif fill == "replicate":
                output[row, :] = output[last, :]

    executed_work = _OPS_PER_PIXEL * w * len(executed)
    energy = perforation_energy(ENERGY_MODEL, executed_work)
    return KernelRun(
        output=output, energy=energy, ratio=ratio, variant="perforation"
    )
