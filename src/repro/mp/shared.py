"""Shared-memory tapes: freeze a compiled trace once, view it anywhere.

A :class:`~repro.ad.compiled.CompiledTape` is already a handful of flat
NumPy arrays, which makes it the perfect unit to ship across process
boundaries *without serialization*: :class:`SharedTape` copies each frozen
column into a :mod:`multiprocessing.shared_memory` segment exactly once,
and every worker process reconstructs zero-copy array views over the same
physical pages.  The handles themselves (:class:`SharedArray`,
:class:`SharedTape`) pickle as ``(segment name, shape, dtype)`` tuples
plus the small object-tape metadata replay needs (guards, folded
constants, labels, output ids) — a few hundred bytes per task submission
instead of megabytes of tape.

Lifecycle rules, which the tests pin down:

* the *creating* process owns its segments: every segment is tracked in a
  module registry and unlinked by an ``atexit`` hook, so even a run that
  never reaches its ``finally`` blocks does not leak ``/dev/shm``
  entries.  ``SharedTape``/``SharedArray`` are also context managers for
  deterministic cleanup.
* *attaching* processes (workers) only ever ``close()`` their mapping —
  they must not unlink segments they do not own.  Python's resource
  tracker would do exactly that on worker exit, so attachments are
  explicitly unregistered from it (or opened with ``track=False`` where
  supported).  A worker dying mid-task therefore cannot destroy the tape
  under its siblings; the OS reclaims the dead worker's mapping and the
  parent's atexit hook remains the single point of unlinking.
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad.compiled import CompiledTape, _AuxNodes
from repro.obs.trace import span as _obs_span

__all__ = ["SharedArray", "SharedTape", "unlink_all", "live_segments"]

# Segments this process created (name -> SharedMemory): unlinked at exit.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
# Segments this process merely attached to (name -> SharedMemory).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_LOCK = threading.Lock()


def _cleanup() -> None:
    """Close every attachment and unlink every owned segment."""
    with _LOCK:
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
        owned = list(_OWNED.values())
        _OWNED.clear()
    for shm in attached:
        try:
            shm.close()
        except Exception:
            pass
    for shm in owned:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


atexit.register(_cleanup)


def unlink_all() -> int:
    """Unlink every segment this process owns; returns how many.

    The atexit hook calls this implicitly; explicit calls are for tests
    and long-lived services that recycle tapes.
    """
    with _LOCK:
        n = len(_OWNED)
    _cleanup()
    return n


def live_segments() -> list[str]:
    """Names of the segments this process currently owns (for tests)."""
    with _LOCK:
        return sorted(_OWNED)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment, bypassing the resource tracker.

    The tracker assumes whoever opens a segment owns it and unlinks it at
    process exit — wrong for worker attachments, which must leave the
    parent's segments alone.  Python 3.13+ exposes ``track=False``;
    earlier versions need the explicit unregister.
    """
    with _LOCK:
        shm = _OWNED.get(name)
        if shm is not None:
            return shm
        shm = _ATTACHED.get(name)
        if shm is not None:
            return shm
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - version-dependent signature
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(
                getattr(shm, "_name", "/" + name), "shared_memory"
            )
        except Exception:
            pass
    with _LOCK:
        existing = _ATTACHED.setdefault(name, shm)
    if existing is not shm:  # lost a race; keep one mapping per process
        shm.close()
        shm = existing
    return shm


def _release(name: str) -> None:
    """Drop this process's claim on ``name`` (unlink if owned)."""
    with _LOCK:
        owned = _OWNED.pop(name, None)
        attached = _ATTACHED.pop(name, None)
    if attached is not None:
        try:
            attached.close()
        except Exception:
            pass
    if owned is not None:
        try:
            owned.close()
        except Exception:
            pass
        try:
            owned.unlink()
        except FileNotFoundError:
            pass


class SharedArray:
    """Picklable handle to one ndarray living in a shared-memory segment.

    The handle is just ``(segment name, shape, dtype, readonly)``;
    :meth:`view` maps the segment (cached per process) and returns a
    zero-copy NumPy view.  ``readonly`` handles hand out non-writable
    views so a worker cannot scribble on a tape its siblings are reading.
    """

    __slots__ = ("name", "shape", "dtype_str", "readonly")

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype_str: str,
        readonly: bool = True,
    ):
        self.name = name
        self.shape = tuple(shape)
        self.dtype_str = dtype_str
        self.readonly = readonly

    # __slots__-only classes pickle cleanly via __getstate__/__setstate__
    # protocol 2+, but be explicit so the contract is obvious (and stable
    # across pickle protocols): a handle is its four fields.
    def __reduce__(self):
        return (SharedArray, (self.name, self.shape, self.dtype_str, self.readonly))

    @classmethod
    def create(cls, array: np.ndarray, *, readonly: bool = True) -> "SharedArray":
        """Copy ``array`` into a fresh owned segment and return its handle."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        with _LOCK:
            _OWNED[shm.name] = shm
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm.name, array.shape, array.dtype.str, readonly)

    @classmethod
    def empty(
        cls, shape: tuple[int, ...], dtype: Any = np.float64
    ) -> "SharedArray":
        """A writable, zero-filled owned segment (for result buffers)."""
        dt = np.dtype(dtype)
        size = max(int(np.prod(shape)) * dt.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=size)
        with _LOCK:
            _OWNED[shm.name] = shm
        np.ndarray(shape, dtype=dt, buffer=shm.buf)[...] = 0
        return cls(shm.name, shape, dt.str, readonly=False)

    def view(self) -> np.ndarray:
        """Zero-copy array view over the (possibly remote) segment."""
        shm = _attach(self.name)
        a = np.ndarray(self.shape, dtype=np.dtype(self.dtype_str), buffer=shm.buf)
        if self.readonly:
            a.flags.writeable = False
        return a

    def copy(self) -> np.ndarray:
        """A private writable copy of the segment's contents."""
        shm = _attach(self.name)
        a = np.ndarray(self.shape, dtype=np.dtype(self.dtype_str), buffer=shm.buf)
        return a.copy()

    def close(self) -> None:
        """Drop this process's mapping/ownership of the segment."""
        _release(self.name)

    unlink = close

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "ro" if self.readonly else "rw"
        return f"SharedArray({self.name!r}, {self.shape}, {self.dtype_str}, {mode})"


# The frozen columns a tape ships.  value/partial arrays are the ones the
# in-place forward path mutates; everything else is pure structure.
_STRUCTURE_COLS = (
    "opcodes",
    "value_is_interval",
    "row_ptr",
    "parent_idx",
    "depth",
)
_VALUE_COLS = ("value_lo", "value_hi", "partial_lo", "partial_hi")


class SharedTape:
    """A :class:`CompiledTape` frozen into shared memory, picklable by name.

    ``freeze`` copies the tape's structure-of-arrays into owned segments
    once; ``attach`` (typically in a worker, after the handle travelled
    through a pickle) rebuilds a working ``CompiledTape`` over zero-copy
    views.  The small non-array state — op-name table, labels, recorded
    guards, the sparse aux map (folded constants / clip bounds) and the
    analysis ids — rides along in the handle itself.

    A ``SharedTape`` is per-*machine* shared state but the attached
    ``CompiledTape`` objects are per-process (their schedule caches and
    forward plans are ordinary heap objects); see
    :class:`repro.scorpio.trace_cache.CachedTrace` for the cache-level
    contract.
    """

    __slots__ = ("arrays", "op_names", "labels", "guards", "aux", "meta")

    def __init__(
        self,
        arrays: dict[str, SharedArray],
        op_names: Sequence[str],
        labels: Mapping[int, str],
        guards: Sequence[tuple],
        aux: Mapping[int, Any],
        meta: dict[str, Any],
    ):
        self.arrays = arrays
        self.op_names = list(op_names)
        self.labels = dict(labels)
        self.guards = list(guards)
        self.aux = dict(aux)
        self.meta = dict(meta)

    def __reduce__(self):
        return (
            SharedTape,
            (
                self.arrays,
                self.op_names,
                self.labels,
                self.guards,
                self.aux,
                self.meta,
            ),
        )

    @classmethod
    def freeze(cls, ct: CompiledTape, **meta: Any) -> "SharedTape":
        """Copy a compiled tape's columns into owned shared segments.

        ``meta`` is arbitrary picklable context for the consumer (e.g.
        output ids, delta); it travels inside the handle, not in shm.
        """
        arrays = {
            col: SharedArray.create(getattr(ct, col)) for col in _STRUCTURE_COLS
        }
        for col in _VALUE_COLS:
            arrays[col] = SharedArray.create(getattr(ct, col))
        nodes = ct.tape.nodes
        if isinstance(nodes, _AuxNodes):
            aux = dict(nodes._aux)
        else:
            aux = {
                j: node.aux
                for j, node in enumerate(nodes)
                if node.aux is not None
            }
        return cls(arrays, ct.op_names, ct.labels, ct.tape.guards, aux, meta)

    def attach(self, *, writable_values: bool = False) -> CompiledTape:
        """Rebuild a ``CompiledTape`` over this process's views.

        With ``writable_values=False`` (the default) the value/partial
        columns are zero-copy read-only views — exactly what the
        lane-replay path needs, since :meth:`CompiledTape.forward_lanes`
        never writes the tape.  ``writable_values=True`` gives the tape
        private writable *copies* of the four value/partial columns so
        the in-place :meth:`CompiledTape.forward` path works; structure
        stays zero-copy either way.
        """
        with _obs_span("mp.shared.attach") as sp:
            sp.set(writable_values=writable_values, columns=len(self.arrays))
            return self._attach(writable_values=writable_values)

    def _attach(self, *, writable_values: bool) -> CompiledTape:
        cols = {col: self.arrays[col].view() for col in _STRUCTURE_COLS}
        for col in _VALUE_COLS:
            handle = self.arrays[col]
            cols[col] = handle.copy() if writable_values else handle.view()
        return CompiledTape.from_arrays(
            opcodes=cols["opcodes"],
            op_names=self.op_names,
            value_lo=cols["value_lo"],
            value_hi=cols["value_hi"],
            value_is_interval=cols["value_is_interval"],
            row_ptr=cols["row_ptr"],
            parent_idx=cols["parent_idx"],
            partial_lo=cols["partial_lo"],
            partial_hi=cols["partial_hi"],
            depth=cols["depth"],
            labels=self.labels,
            guards=self.guards,
            aux=self.aux,
        )

    def close(self) -> None:
        """Release every column segment (unlink those this process owns)."""
        for handle in self.arrays.values():
            handle.close()

    unlink = close

    def __enter__(self) -> "SharedTape":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        n = self.arrays["opcodes"].shape[0]
        return f"SharedTape(nodes={n}, segments={len(self.arrays)})"
