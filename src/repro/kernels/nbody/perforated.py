"""Loop-perforated N-Body baseline (Section 4.2).

"The original version of N-Body computes the forces affecting a particle
by iterating all other particles in a loop, whereas the perforated
version skips some iterations of the loop."  Perforation is oblivious to
distance: it skips *nearest* neighbours as readily as far ones, which is
why the paper measures errors six orders of magnitude above the
significance-driven version.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.perforation import perforated_indices
from repro.runtime import perforation_energy

from .simulation import (
    OPS_PER_PAIR,
    System,
    pair_forces,
    velocity_verlet,
)
from .tasks import ENERGY_MODEL

__all__ = ["nbody_perforated"]


def nbody_perforated(
    system: System,
    ratio: float,
    steps: int = 3,
    dt: float = 0.004,
) -> tuple[KernelRun, System]:
    """Run the source-loop-perforated simulation."""
    state = system.copy()
    n = state.count
    executed_work = 0.0

    def force_fn(positions: np.ndarray) -> np.ndarray:
        nonlocal executed_work
        kept = perforated_indices(n, ratio)
        if not kept:
            return np.zeros_like(positions)
        source_idx = np.asarray(kept, dtype=np.int64)
        executed_work += OPS_PER_PAIR * n * len(kept)
        # Self pairs are masked inside pair_forces (targets ⊂ sources).
        return pair_forces(positions, positions[source_idx], exclude_self=True)

    forces = force_fn(state.positions)
    for _ in range(steps):
        forces = velocity_verlet(state, forces, dt, force_fn)

    energy = perforation_energy(ENERGY_MODEL, executed_work)
    run = KernelRun(
        output=state.positions.copy(),
        energy=energy,
        ratio=ratio,
        variant="perforation",
    )
    return run, state
