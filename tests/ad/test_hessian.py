"""Tests for second-order AD (tangent-over-adjoint)."""

import math

import pytest

from repro.ad import hessian, hessian_vector_product
from repro.ad import intrinsics as op


def quadratic(xs):
    # f = x^2 + 3xy + 5y^2: H = [[2, 3], [3, 10]].
    x, y = xs
    return x * x + 3.0 * (x * y) + 5.0 * (y * y)


def transcendental(xs):
    x, y = xs
    return op.sin(x) * y + op.exp(x * y)


class TestHVP:
    def test_value_and_gradient(self):
        v, g, _ = hessian_vector_product(quadratic, [1.0, 2.0], [1.0, 0.0])
        assert v == pytest.approx(1.0 + 6.0 + 20.0)
        assert g[0] == pytest.approx(2.0 + 6.0)
        assert g[1] == pytest.approx(3.0 + 20.0)

    def test_quadratic_hvp(self):
        _, _, hvp = hessian_vector_product(quadratic, [1.0, 2.0], [1.0, 0.0])
        assert hvp == pytest.approx([2.0, 3.0])
        _, _, hvp = hessian_vector_product(quadratic, [1.0, 2.0], [0.0, 1.0])
        assert hvp == pytest.approx([3.0, 10.0])

    def test_arbitrary_direction_linear(self):
        _, _, h1 = hessian_vector_product(quadratic, [1.0, 2.0], [1.0, 0.0])
        _, _, h2 = hessian_vector_product(quadratic, [1.0, 2.0], [0.0, 1.0])
        _, _, h12 = hessian_vector_product(quadratic, [1.0, 2.0], [2.0, -1.0])
        expected = [2 * a - b for a, b in zip(h1, h2)]
        assert h12 == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hessian_vector_product(quadratic, [1.0, 2.0], [1.0])

    def test_untaped_result_rejected(self):
        with pytest.raises(TypeError):
            hessian_vector_product(lambda xs: 1.0, [1.0], [1.0])


class TestFullHessian:
    def test_quadratic(self):
        H = hessian(quadratic, [1.0, 2.0])
        expected = [[2.0, 3.0], [3.0, 10.0]]
        for row, want in zip(H, expected):
            assert row == pytest.approx(want)

    def test_transcendental_vs_analytic(self):
        x, y = 0.4, 0.7
        H = hessian(transcendental, [x, y])
        e = math.exp(x * y)
        expected = [
            [-math.sin(x) * y + y * y * e, math.cos(x) + e + x * y * e],
            [math.cos(x) + e + x * y * e, x * x * e],
        ]
        for i in range(2):
            for j in range(2):
                assert H[i][j] == pytest.approx(expected[i][j], rel=1e-9)

    def test_symmetry(self):
        H = hessian(transcendental, [1.1, -0.3])
        assert H[0][1] == H[1][0]

    def test_finite_difference_cross_check(self):
        from repro.ad import adjoint_gradient

        point = [0.8, 0.5]
        H = hessian(transcendental, point)
        h = 1e-5
        for i in range(2):
            bumped_up = list(point)
            bumped_dn = list(point)
            bumped_up[i] += h
            bumped_dn[i] -= h
            _, g_up = adjoint_gradient(transcendental, bumped_up)
            _, g_dn = adjoint_gradient(transcendental, bumped_dn)
            fd_row = [(u - d) / (2 * h) for u, d in zip(g_up, g_dn)]
            for j in range(2):
                assert H[i][j] == pytest.approx(fd_row[j], rel=1e-4, abs=1e-6)

    def test_intrinsics_second_order(self):
        # d2/dx2 of sin at x: -sin(x); of exp: exp(x); of log: -1/x^2.
        for fn, second in [
            (op.sin, lambda x: -math.sin(x)),
            (op.exp, math.exp),
            (op.log, lambda x: -1.0 / (x * x)),
            (op.sqrt, lambda x: -0.25 * x ** (-1.5)),
            (op.tanh, lambda x: -2 * math.tanh(x) * (1 - math.tanh(x) ** 2)),
        ]:
            x0 = 0.9
            H = hessian(lambda xs: fn(xs[0]), [x0])
            assert H[0][0] == pytest.approx(second(x0), rel=1e-9)
