"""Forward replay of a frozen trace: record once, re-evaluate many times.

:class:`ForwardPlan` compiles a :class:`~repro.ad.compiled.CompiledTape`'s
structure into a level-parallel *forward* schedule so the trace can be
re-evaluated on fresh input intervals as vectorized array sweeps — no
Python operator overloading, no tape appends, no ``Interval`` objects per
node.  This is the engine behind :meth:`CompiledTape.forward` /
:meth:`CompiledTape.forward_lanes` and the scorpio trace cache.

Replayed values and partials are **bit-identical** to re-recording the
same program on the object tape.  That constraint drives every rule here:

* ``+ - * /``, ``sqrt``, ``floor`` and ``nextafter`` are IEEE-exact and
  correctly rounded, so NumPy array ops match Python ``float`` ops bit for
  bit and can be vectorized directly;
* transcendentals (``exp``, ``log``, ``sin`` ...) are *not* guaranteed to
  match libm across NumPy's SIMD paths, so endpoints go through the very
  same :mod:`math` functions the object path calls, element by element
  (:func:`_apply_math`) — still far cheaper than recording because the
  per-node object machinery is gone;
* non-monotone intrinsics with data-dependent control flow in their range
  rule (``sin``/``cos``'s critical-point walk, ``tan``'s pole check,
  ``cosh``) are evaluated per element through the exact scalar functions
  in :mod:`repro.intervals.functions`;
* ``min``/``max`` tie-breaking follows Python's fold-left keep-first
  semantics (``np.where`` chains, never ``np.minimum``), integer powers go
  through per-element ``float.__pow__``, and every outward-rounding point
  of the object evaluation is replicated (including the double rounding in
  interval division's reciprocal-then-multiply composition);
* local partials are recomputed as the exact interval-arithmetic
  compositions the intrinsic partial lambdas evaluate during recording
  (e.g. ``tan`` re-derives ``1.0 + r*r`` through the same-object square
  rule and constant-add rounding).

Replay is only valid for *straight-line* traces: the structure guard
(:class:`ReplayError` at plan build) rejects tapes replay cannot
re-evaluate, and recorded comparison outcomes (``Tape.guards``) are
re-checked on the replayed values (:func:`check_guards`) so input-dependent
control flow surfaces as :class:`GuardDivergenceError` instead of a wrong
answer.

Error semantics during replay are batch-level: a domain violation (e.g.
``sqrt`` of an interval dipping below zero, division by an interval
containing zero) raises for the whole sweep even when only one lane is
affected, with the same exception type the object recording would raise.
"""

from __future__ import annotations

import math
import re
from typing import Any

import numpy as np

from repro.intervals import Interval, as_interval
from repro.intervals import functions as ifn
from repro.obs import metrics as _metrics

__all__ = ["ForwardPlan", "ReplayError", "GuardDivergenceError", "check_guards"]

_C_GUARD_CHECKS = _metrics.counter("replay.guard_rechecks")
_C_GUARD_DIVERGENCES = _metrics.counter("replay.guard_divergences")

_NEG_INF = -np.inf
_POS_INF = np.inf
_LN2 = math.log(2.0)
_LN10 = math.log(10.0)
_TWO_OVER_SQRT_PI = 2.0 / math.sqrt(math.pi)

_POW_RE = re.compile(r"^pow(-?\d+)$")

_BINARY2 = frozenset(("add", "sub", "mul", "div", "min", "max"))
_MONO_INC = {
    "exp": math.exp,
    "expm1": math.expm1,
    "log": math.log,
    "log1p": math.log1p,
    "log2": math.log2,
    "log10": math.log10,
    "cbrt": math.cbrt,
    "asin": math.asin,
    "atan": math.atan,
    "sinh": math.sinh,
    "tanh": math.tanh,
    "erf": math.erf,
}
_MONO_DEC = {"acos": math.acos, "erfc": math.erfc}
_PER_INTERVAL = {"sin": ifn.sin, "cos": ifn.cos, "tan": ifn.tan, "cosh": ifn.cosh}
_UNARY = (
    frozenset(("neg", "abs", "sqr", "sqrt", "round_st", "floor"))
    | frozenset(_MONO_INC)
    | frozenset(_MONO_DEC)
    | frozenset(_PER_INTERVAL)
)

_GUARD_OPS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}


class ReplayError(RuntimeError):
    """The recorded trace cannot be replayed on fresh inputs.

    Raised by the structure guard when a tape is not a replayable
    straight-line interval trace: unsupported operations, non-interval
    node values (scalar-mode recordings), or constant-operand binaries
    recorded without their folded-constant metadata.
    """


class GuardDivergenceError(RuntimeError):
    """A comparison recorded on the tape decided differently on replay.

    The recorded trace is one straight-line branch of the kernel; fresh
    inputs that flip (or blur) any recorded branch condition would execute
    different code, so replaying the cached trace would silently compute
    the wrong program.  Callers should fall back to re-recording.
    """


# ----------------------------------------------------------------------
# Array interval primitives (bit-identical twins of Interval methods)
# ----------------------------------------------------------------------
def _dnr(x: np.ndarray, rnd: bool) -> np.ndarray:
    """Outward-round a lower bound (``rounding.down`` on arrays).

    ``np.nextafter`` matches ``math.nextafter`` bitwise for every input,
    including the NaN / -inf pass-through cases ``down`` special-cases.
    """
    return np.nextafter(x, _NEG_INF) if rnd else x


def _upr(x: np.ndarray, rnd: bool) -> np.ndarray:
    return np.nextafter(x, _POS_INF) if rnd else x


def _keep_first_min(a, b):
    """Python's ``min(a, b)`` (returns ``a`` on ties) as an array op."""
    return np.where(b < a, b, a)


def _keep_first_max(a, b):
    return np.where(b > a, b, a)


def _iadd(alo, ahi, blo, bhi, rnd):
    return _dnr(alo + blo, rnd), _upr(ahi + bhi, rnd)


def _isub(alo, ahi, blo, bhi, rnd):
    return _dnr(alo - bhi, rnd), _upr(ahi - blo, rnd)


def _imul(alo, ahi, blo, bhi, rnd):
    """``Interval.__mul__``: four products in recorded order, NaN → 0,
    fold-left min/max, outward rounding."""
    p1 = np.asarray(alo * blo)
    p2 = np.asarray(alo * bhi)
    p3 = np.asarray(ahi * blo)
    p4 = np.asarray(ahi * bhi)
    for p in (p1, p2, p3, p4):
        np.copyto(p, 0.0, where=np.isnan(p))
    lo = np.where(p2 < p1, p2, p1)
    lo = np.where(p3 < lo, p3, lo)
    lo = np.where(p4 < lo, p4, lo)
    hi = np.where(p2 > p1, p2, p1)
    hi = np.where(p3 > hi, p3, hi)
    hi = np.where(p4 > hi, p4, hi)
    return _dnr(lo, rnd), _upr(hi, rnd)


def _idiv(alo, ahi, blo, bhi, rnd, what: str):
    """``Interval.__truediv__``: zero check, rounded reciprocal, then the
    full product rule (the double rounding is part of the contract)."""
    if np.any((blo <= 0.0) & (bhi >= 0.0)):
        raise ZeroDivisionError(
            f"interval division by a divisor containing zero while "
            f"replaying {what}"
        )
    rlo = _dnr(1.0 / bhi, rnd)
    rhi = _upr(1.0 / blo, rnd)
    return _imul(alo, ahi, rlo, rhi, rnd)


def _pow_elem(arr, n: int) -> np.ndarray:
    """Per-element ``float.__pow__`` (NumPy's pow is not bit-guaranteed)."""
    arr = np.asarray(arr, dtype=np.float64)
    flat = arr.reshape(-1)
    out = np.fromiter((x**n for x in flat.tolist()), np.float64, flat.size)
    return out.reshape(arr.shape)


def _ipown(alo, ahi, n: int, rnd, what: str = "pow"):
    """``Interval._int_pow``: sign-aware integer power."""
    if n == 0:
        one = np.ones(np.shape(alo), dtype=np.float64)
        return one, one.copy()
    if n < 0:
        dlo, dhi = _ipown(alo, ahi, -n, rnd, what)
        return _idiv(1.0, 1.0, dlo, dhi, rnd, what)
    lo_p = _pow_elem(alo, n)
    hi_p = _pow_elem(ahi, n)
    if n % 2 == 1:
        lo, hi = lo_p, hi_p
    else:
        pos = alo >= 0.0
        neg = (~pos) & (ahi <= 0.0)
        lo = np.where(pos, lo_p, np.where(neg, hi_p, 0.0))
        hi = np.where(pos, hi_p, np.where(neg, lo_p, _keep_first_max(lo_p, hi_p)))
    return _dnr(lo, rnd), _upr(hi, rnd)


def _apply_math(fn, arr) -> np.ndarray:
    """Map a :mod:`math` function over an array element by element.

    Exceptions (``ValueError`` domain errors, ``OverflowError``) propagate
    exactly as the object recording would raise them.
    """
    arr = np.asarray(arr, dtype=np.float64)
    flat = arr.reshape(-1)
    out = np.fromiter(map(fn, flat.tolist()), np.float64, flat.size)
    return out.reshape(arr.shape)


def _mono_inc(fn, alo, ahi, rnd):
    return _dnr(_apply_math(fn, alo), rnd), _upr(_apply_math(fn, ahi), rnd)


def _mono_dec(fn, alo, ahi, rnd):
    return _dnr(_apply_math(fn, ahi), rnd), _upr(_apply_math(fn, alo), rnd)


def _per_interval(fn, alo, ahi):
    """Element-wise evaluation through the exact scalar interval function.

    Used for the intrinsics whose range rule has data-dependent control
    flow (trig critical points, tan poles, cosh's minimum at zero); the
    scalar function already honours the global rounding flag itself.
    """
    arr_lo = np.asarray(alo, dtype=np.float64)
    shape = arr_lo.shape
    flo = arr_lo.reshape(-1).tolist()
    fhi = np.asarray(ahi, dtype=np.float64).reshape(-1).tolist()
    out_lo = np.empty(len(flo), dtype=np.float64)
    out_hi = np.empty(len(flo), dtype=np.float64)
    for i, (l, h) in enumerate(zip(flo, fhi)):
        r = fn(Interval(l, h))
        out_lo[i] = r.lo
        out_hi[i] = r.hi
    return out_lo.reshape(shape), out_hi.reshape(shape)


# ----------------------------------------------------------------------
# Guard re-checking (straight-line branch validation)
# ----------------------------------------------------------------------
def check_guards(guards, value_lo, value_hi) -> None:
    """Re-evaluate recorded comparison outcomes on replayed values.

    ``value_lo``/``value_hi`` may carry a trailing lane axis; every lane
    must then reproduce the recorded outcome (batched replays cannot split
    a batch across branches).  An ambiguous comparison raises
    :class:`~repro.intervals.AmbiguousComparisonError` exactly like
    recording would; a decided-but-flipped outcome raises
    :class:`GuardDivergenceError`.
    """
    lanes = value_lo.ndim > 1
    _C_GUARD_CHECKS.inc(len(guards))
    for op, left, rhs, outcome in guards:
        llo, lhi = value_lo[left], value_hi[left]
        if isinstance(rhs, Interval):
            rlo, rhi = rhs.lo, rhs.hi
        else:
            rlo, rhi = value_lo[rhs], value_hi[rhs]
        if not lanes:
            got = Interval(float(llo), float(lhi))._compare(
                Interval(float(rlo), float(rhi)), _GUARD_OPS[op]
            )
            if got == outcome:
                continue
        else:
            # Paper Section 2.2 decision table, vectorized per lane.
            if op == "lt":
                true_m, false_m = lhi < rlo, llo >= rhi
            elif op == "le":
                true_m, false_m = lhi <= rlo, llo > rhi
            elif op == "gt":
                true_m, false_m = llo > rhi, lhi <= rlo
            else:  # ge
                true_m, false_m = llo >= rhi, lhi < rlo
            decided = np.all(true_m) if outcome else np.all(false_m)
            if decided:
                continue
        _C_GUARD_DIVERGENCES.inc()
        raise GuardDivergenceError(
            f"recorded comparison ({_GUARD_OPS[op]}, outcome {outcome}) "
            f"decided differently on replay inputs; the cached trace is "
            f"one straight-line branch and these inputs take another — "
            f"re-record instead of replaying"
        )


# ----------------------------------------------------------------------
# The forward plan
# ----------------------------------------------------------------------
class _Step:
    """One vectorized batch: all same-rule nodes of one forward level."""

    __slots__ = ("idx", "e0", "p0", "p1", "c_lo", "c_hi")

    def __init__(self, idx, e0, p0, p1=None, c_lo=None, c_hi=None):
        self.idx = idx
        self.e0 = e0
        self.p0 = p0
        self.p1 = p1
        self.c_lo = c_lo
        self.c_hi = c_hi


class ForwardPlan:
    """Forward-level schedule + per-op recompute rules for one trace.

    Built once per :class:`CompiledTape` (lazily) and reused by every
    replay.  Construction runs the structure guard: it raises
    :class:`ReplayError` if the trace is not replayable.
    """

    def __init__(self, ct):
        self.ct = ct
        if not ct.interval_mode:
            raise ReplayError(
                "replay requires an interval-mode trace; scalar (float) "
                "tapes re-record instead"
            )
        nodes = ct.tape.nodes
        n = ct.n
        ptr = ct.row_ptr.tolist()
        pidx = ct.parent_idx.tolist()
        op_names = ct.op_names
        opcodes = ct.opcodes.tolist()
        is_iv = ct.value_is_interval

        input_nodes: list[int] = []
        fdepth = [0] * n
        groups: dict[tuple, list[int]] = {}

        for j in range(n):
            op = op_names[opcodes[j]]
            k0, k1 = ptr[j], ptr[j + 1]
            arity = k1 - k0
            if op == "input":
                if not is_iv[j]:
                    raise ReplayError(
                        f"input node #{j} holds a non-interval value; "
                        "replay substitutes interval inputs only"
                    )
                input_nodes.append(j)
                continue
            if op == "const":
                # Recorded constants keep their values; floats act as
                # point intervals downstream, exactly as in recording.
                continue
            if not is_iv[j]:
                raise ReplayError(
                    f"node #{j} ({op!r}) computed a non-interval value; "
                    "the trace mixes scalar arithmetic and cannot be "
                    "replayed on interval inputs"
                )
            d = 0
            for k in range(k0, k1):
                dp = fdepth[pidx[k]]
                if dp > d:
                    d = dp
            fdepth[j] = d + 1

            if arity == 2:
                if op not in _BINARY2:
                    raise ReplayError(
                        f"unsupported two-operand operation {op!r} "
                        f"(node #{j}); replay does not know its rule"
                    )
                key: tuple = ("bin2", op)
            elif arity == 1:
                if op in ("add", "sub", "mul", "div"):
                    aux = nodes[j].aux
                    if not (isinstance(aux, tuple) and len(aux) == 2):
                        raise ReplayError(
                            f"constant-operand {op!r} (node #{j}) was "
                            "recorded without its folded constant (aux); "
                            "re-record the trace with the current tape "
                            "version to enable replay"
                        )
                    key = ("cbin", op, bool(aux[1]))
                elif op == "clip":
                    if nodes[j].aux is None:
                        raise ReplayError(
                            f"clip (node #{j}) recorded without its clamp "
                            "bounds (aux); re-record to enable replay"
                        )
                    key = ("clip",)
                else:
                    m = _POW_RE.match(op)
                    if m:
                        key = ("pow", int(m.group(1)))
                    elif op in _UNARY:
                        key = ("un", op)
                    else:
                        raise ReplayError(
                            f"unsupported operation {op!r} (node #{j}); "
                            "replay does not know its rule"
                        )
            else:
                raise ReplayError(
                    f"operation {op!r} (node #{j}) has {arity} operands; "
                    "replay supports unary and binary nodes only"
                )
            groups.setdefault((fdepth[j], key), []).append(j)

        self.input_nodes = input_nodes
        row_ptr = ct.row_ptr
        parent_idx = ct.parent_idx
        steps: list[tuple[tuple, _Step]] = []
        for (_, key), ids in sorted(groups.items(), key=lambda kv: kv[0][0]):
            idx = np.asarray(ids, dtype=np.int64)
            e0 = row_ptr[idx]
            p0 = parent_idx[e0]
            p1 = parent_idx[e0 + 1] if key[0] == "bin2" else None
            c_lo = c_hi = None
            if key[0] == "cbin":
                consts = [as_interval(nodes[j].aux[0]) for j in ids]
                c_lo = np.fromiter((c.lo for c in consts), np.float64, len(ids))
                c_hi = np.fromiter((c.hi for c in consts), np.float64, len(ids))
            elif key[0] == "clip":
                c_lo = np.fromiter(
                    (float(nodes[j].aux[0]) for j in ids), np.float64, len(ids)
                )
                c_hi = np.fromiter(
                    (float(nodes[j].aux[1]) for j in ids), np.float64, len(ids)
                )
            steps.append((key, _Step(idx, e0, p0, p1, c_lo, c_hi)))
        self._steps = steps

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, vlo, vhi, plo, phi, rnd: bool) -> None:
        """Re-evaluate all non-input nodes in place.

        ``vlo``/``vhi`` are the ``(n,)`` or ``(n, L)`` value bounds with
        input (and recorded constant) rows already filled; ``plo``/``phi``
        the matching ``(e,)`` / ``(e, L)`` edge-partial arrays.
        """
        with np.errstate(all="ignore"):
            for key, st in self._steps:
                self._exec(key, st, vlo, vhi, plo, phi, rnd)
        if np.isnan(vlo).any() or np.isnan(vhi).any():
            raise ValueError(
                "replay produced NaN interval bounds (an operation is "
                "undefined on these inputs); re-record to locate it"
            )

    def _exec(self, key, st, vlo, vhi, plo, phi, rnd) -> None:
        kind = key[0]
        idx, e0, p0 = st.idx, st.e0, st.p0
        alo, ahi = vlo[p0], vhi[p0]
        lanes = vlo.ndim > 1

        if kind == "bin2":
            op = key[1]
            e1 = e0 + 1
            blo, bhi = vlo[st.p1], vhi[st.p1]
            if op == "add":
                rlo, rhi = _iadd(alo, ahi, blo, bhi, rnd)
                plo[e0] = 1.0
                phi[e0] = 1.0
                plo[e1] = 1.0
                phi[e1] = 1.0
            elif op == "sub":
                rlo, rhi = _isub(alo, ahi, blo, bhi, rnd)
                plo[e0] = 1.0
                phi[e0] = 1.0
                plo[e1] = -1.0
                phi[e1] = -1.0
            elif op == "mul":
                rlo, rhi = _imul(alo, ahi, blo, bhi, rnd)
                plo[e0] = blo
                phi[e0] = bhi
                plo[e1] = alo
                phi[e1] = ahi
            elif op == "div":
                rlo, rhi = _idiv(alo, ahi, blo, bhi, rnd, "div")
                pa_lo, pa_hi = _idiv(1.0, 1.0, blo, bhi, rnd, "the div partial")
                b2lo, b2hi = _ipown(blo, bhi, 2, rnd)
                pb_lo, pb_hi = _idiv(-ahi, -alo, b2lo, b2hi, rnd, "the div partial")
                plo[e0] = pa_lo
                phi[e0] = pa_hi
                plo[e1] = pb_lo
                phi[e1] = pb_hi
            elif op == "min":
                rlo = _keep_first_min(alo, blo)
                rhi = _keep_first_min(ahi, bhi)
                a_wins = ahi <= blo
                b_wins = bhi <= alo
                self._select_partials(
                    plo, phi, e0, e1, a_wins, b_wins
                )
            else:  # max
                rlo = _keep_first_max(alo, blo)
                rhi = _keep_first_max(ahi, bhi)
                a_wins = alo >= bhi
                b_wins = blo >= ahi
                self._select_partials(
                    plo, phi, e0, e1, a_wins, b_wins
                )
            vlo[idx] = rlo
            vhi[idx] = rhi
            return

        if kind == "cbin":
            op, refl = key[1], key[2]
            clo, chi = st.c_lo, st.c_hi
            if lanes:
                clo = clo[:, None]
                chi = chi[:, None]
            if op == "add":
                # Bitwise commutative: both orders add lo+lo / hi+hi.
                rlo, rhi = _iadd(alo, ahi, clo, chi, rnd)
                plo[e0] = 1.0
                phi[e0] = 1.0
            elif op == "sub":
                if refl:
                    rlo, rhi = _isub(clo, chi, alo, ahi, rnd)
                    plo[e0] = -1.0
                    phi[e0] = -1.0
                else:
                    rlo, rhi = _isub(alo, ahi, clo, chi, rnd)
                    plo[e0] = 1.0
                    phi[e0] = 1.0
            elif op == "mul":
                if refl:
                    rlo, rhi = _imul(clo, chi, alo, ahi, rnd)
                else:
                    rlo, rhi = _imul(alo, ahi, clo, chi, rnd)
                plo[e0] = np.broadcast_to(clo, alo.shape)
                phi[e0] = np.broadcast_to(chi, ahi.shape)
            else:  # div
                if refl:
                    rlo, rhi = _idiv(clo, chi, alo, ahi, rnd, "div")
                    v2lo, v2hi = _ipown(alo, ahi, 2, rnd)
                    pb_lo, pb_hi = _idiv(
                        -chi, -clo, v2lo, v2hi, rnd, "the div partial"
                    )
                    plo[e0] = pb_lo
                    phi[e0] = pb_hi
                else:
                    rlo, rhi = _idiv(alo, ahi, clo, chi, rnd, "div")
                    pa_lo, pa_hi = _idiv(
                        1.0, 1.0, clo, chi, rnd, "the div partial"
                    )
                    plo[e0] = np.broadcast_to(pa_lo, alo.shape)
                    phi[e0] = np.broadcast_to(pa_hi, ahi.shape)
            vlo[idx] = rlo
            vhi[idx] = rhi
            return

        if kind == "clip":
            clo, chi = st.c_lo, st.c_hi
            if lanes:
                clo = clo[:, None]
                chi = chi[:, None]
            t = _keep_first_max(alo, clo)
            rlo = _keep_first_min(t, chi)
            t = _keep_first_max(ahi, clo)
            rhi = _keep_first_min(t, chi)
            inside = (clo <= alo) & (ahi <= chi)
            outside = (ahi < clo) | (alo > chi)
            plo[e0] = np.where(inside, 1.0, 0.0)
            phi[e0] = np.where(outside, 0.0, 1.0)
            vlo[idx] = rlo
            vhi[idx] = rhi
            return

        if kind == "pow":
            nexp = key[1]
            if nexp == 0:
                vlo[idx] = 1.0
                vhi[idx] = 1.0
                plo[e0] = 0.0
                phi[e0] = 0.0
                return
            rlo, rhi = _ipown(alo, ahi, nexp, rnd, f"pow{nexp}")
            ilo, ihi = _ipown(alo, ahi, nexp - 1, rnd, f"pow{nexp - 1}")
            p_lo, p_hi = _imul(ilo, ihi, float(nexp), float(nexp), rnd)
            plo[e0] = p_lo
            phi[e0] = p_hi
            vlo[idx] = rlo
            vhi[idx] = rhi
            return

        # Unary intrinsics.
        name = key[1]
        if name == "neg":
            rlo, rhi = -ahi, -alo
            plo[e0] = -1.0
            phi[e0] = -1.0
        elif name == "abs":
            pos = alo >= 0.0
            neg = (~pos) & (ahi <= 0.0)
            rlo = np.where(pos, alo, np.where(neg, -ahi, 0.0))
            rhi = np.where(
                pos, ahi, np.where(neg, -alo, _keep_first_max(-alo, ahi))
            )
            plo[e0] = np.where(pos, 1.0, -1.0)
            phi[e0] = np.where(pos, 1.0, np.where(neg, -1.0, 1.0))
        elif name == "sqr":
            rlo, rhi = _ipown(alo, ahi, 2, rnd, "sqr")
            p_lo, p_hi = _imul(alo, ahi, 2.0, 2.0, rnd)
            plo[e0] = p_lo
            phi[e0] = p_hi
        elif name == "sqrt":
            if np.any(alo < 0.0):
                raise ValueError(
                    "sqrt domain error during replay: an interval extends "
                    "below zero"
                )
            rlo = _dnr(np.sqrt(alo), rnd)
            rhi = _upr(np.sqrt(ahi), rnd)
            p_lo, p_hi = _idiv(0.5, 0.5, rlo, rhi, rnd, "the sqrt partial")
            plo[e0] = p_lo
            phi[e0] = p_hi
        elif name == "round_st":
            rlo = alo - 0.5
            rhi = ahi + 0.5
            plo[e0] = 0.0
            phi[e0] = 1.0
        elif name == "floor":
            rlo = np.floor(alo)
            rhi = np.floor(ahi)
            plo[e0] = 0.0
            phi[e0] = 0.0
        elif name in _PER_INTERVAL:
            rlo, rhi = _per_interval(_PER_INTERVAL[name], alo, ahi)
            p_lo, p_hi = self._per_interval_partial(name, alo, ahi, rlo, rhi, rnd)
            plo[e0] = p_lo
            phi[e0] = p_hi
        else:
            rlo, rhi = self._monotone_value(name, alo, ahi, rnd)
            p_lo, p_hi = self._monotone_partial(name, alo, ahi, rlo, rhi, rnd)
            plo[e0] = p_lo
            phi[e0] = p_hi
        vlo[idx] = rlo
        vhi[idx] = rhi

    @staticmethod
    def _select_partials(plo, phi, e0, e1, a_wins, b_wins):
        """min/max subgradients with the scalar branch priority.

        ``a_wins`` is checked first (point partial 1.0), then ``b_wins``
        (0.0/1.0), else both operands get the enclosure ``[0, 1]`` —
        including the both-decided tie, where the scalar rule returns the
        first branch.
        """
        plo[e0] = np.where(a_wins, 1.0, 0.0)
        phi[e0] = np.where(a_wins, 1.0, np.where(b_wins, 0.0, 1.0))
        plo[e1] = np.where(~a_wins & b_wins, 1.0, 0.0)
        phi[e1] = np.where(a_wins, 0.0, 1.0)

    @staticmethod
    def _monotone_value(name, alo, ahi, rnd):
        fn = _MONO_INC.get(name)
        if fn is not None:
            if name == "log" or name == "log2" or name == "log10":
                if np.any(alo <= 0.0):
                    raise ValueError(
                        f"{name} domain error during replay: an interval "
                        "reaches zero or below"
                    )
            elif name == "log1p":
                if np.any(alo <= -1.0):
                    raise ValueError(
                        "log1p domain error during replay: an interval "
                        "reaches -1 or below"
                    )
            elif name == "asin":
                if np.any(alo < -1.0) or np.any(ahi > 1.0):
                    raise ValueError(
                        "asin domain error during replay: an interval "
                        "leaves [-1, 1]"
                    )
            return _mono_inc(fn, alo, ahi, rnd)
        if name == "acos":
            if np.any(alo < -1.0) or np.any(ahi > 1.0):
                raise ValueError(
                    "acos domain error during replay: an interval leaves "
                    "[-1, 1]"
                )
        return _mono_dec(_MONO_DEC[name], alo, ahi, rnd)

    @staticmethod
    def _monotone_partial(name, alo, ahi, rlo, rhi, rnd):
        """The exact interval composition each intrinsic partial records."""
        if name == "exp":
            return rlo.copy(), rhi.copy()
        if name == "expm1":
            return _iadd(rlo, rhi, 1.0, 1.0, rnd)
        if name == "log":
            return _idiv(1.0, 1.0, alo, ahi, rnd, "the log partial")
        if name == "log1p":
            tlo, thi = _iadd(alo, ahi, 1.0, 1.0, rnd)
            return _idiv(1.0, 1.0, tlo, thi, rnd, "the log1p partial")
        if name == "log2" or name == "log10":
            c = _LN2 if name == "log2" else _LN10
            tlo, thi = _imul(alo, ahi, c, c, rnd)
            return _idiv(1.0, 1.0, tlo, thi, rnd, f"the {name} partial")
        if name == "cbrt":
            r2lo, r2hi = _ipown(rlo, rhi, 2, rnd)
            tlo, thi = _imul(r2lo, r2hi, 3.0, 3.0, rnd)
            return _idiv(1.0, 1.0, tlo, thi, rnd, "the cbrt partial")
        if name == "asin" or name == "acos":
            v2lo, v2hi = _ipown(alo, ahi, 2, rnd)
            tlo, thi = _isub(1.0, 1.0, v2lo, v2hi, rnd)
            if np.any(tlo < 0.0):
                raise ValueError(
                    "sqrt domain error during replay: an interval extends "
                    "below zero"
                )
            slo = _dnr(np.sqrt(tlo), rnd)
            shi = _upr(np.sqrt(thi), rnd)
            if name == "asin":
                return _idiv(1.0, 1.0, slo, shi, rnd, "the asin partial")
            return _idiv(-1.0, -1.0, slo, shi, rnd, "the acos partial")
        if name == "atan":
            v2lo, v2hi = _ipown(alo, ahi, 2, rnd)
            tlo, thi = _iadd(v2lo, v2hi, 1.0, 1.0, rnd)
            return _idiv(1.0, 1.0, tlo, thi, rnd, "the atan partial")
        if name == "sinh":
            return _per_interval(ifn.cosh, alo, ahi)
        if name == "tanh":
            r2lo, r2hi = _ipown(rlo, rhi, 2, rnd)
            return _isub(1.0, 1.0, r2lo, r2hi, rnd)
        if name == "erf" or name == "erfc":
            v2lo, v2hi = _ipown(alo, ahi, 2, rnd)
            elo, ehi = _mono_inc(math.exp, -v2hi, -v2lo, rnd)
            c = _TWO_OVER_SQRT_PI if name == "erf" else -_TWO_OVER_SQRT_PI
            return _imul(elo, ehi, c, c, rnd)
        raise AssertionError(f"no partial rule for {name!r}")  # pragma: no cover

    def _per_interval_partial(self, name, alo, ahi, rlo, rhi, rnd):
        if name == "sin":
            return _per_interval(ifn.cos, alo, ahi)
        if name == "cos":
            slo, shi = _per_interval(ifn.sin, alo, ahi)
            return -shi, -slo
        if name == "tan":
            r2lo, r2hi = _ipown(rlo, rhi, 2, rnd)
            return _iadd(r2lo, r2hi, 1.0, 1.0, rnd)
        # cosh
        return _mono_inc(math.sinh, alo, ahi, rnd)
