"""Task-based, significance-driven Sobel (Section 4.1.1).

Two task groups, exactly as the paper structures them:

1. **convolution** — per row-block, three tasks writing block
   contributions into shared (tx, ty) accumulators:

   * A (coefficients ±2) with significance **1.0** — always accurate;
   * B and C (coefficients ±1) with significance **0.5** — "executed
     only if the user-requested ratio is higher than 0.33".

   The approximate version of B/C *drops* the computation (their
   contribution stays zero), which is how the paper approximates them.

2. **combine** — per row-block, magnitude + clip, significance 1.0
   (the analysis shows high, uniform significance for this stage).
"""

from __future__ import annotations

import numpy as np

from repro.runtime import AnalyticEnergyModel, TaskRuntime
from repro.kernels.common import KernelRun

from .sequential import (
    OPS_COMBINE,
    OPS_PART_A,
    OPS_PART_B,
    OPS_PART_C,
    combine_image,
    part_contributions,
)

__all__ = ["sobel_significance", "ENERGY_MODEL", "DEFAULT_BLOCK_ROWS"]

DEFAULT_BLOCK_ROWS = 16

# Calibrated so a fully accurate 256x256 run lands near the paper's ~420 J
# full-accuracy Sobel point (DESIGN.md §4; absolute scale is a model).
ENERGY_MODEL = AnalyticEnergyModel(
    energy_per_op=1.30e-4,
    task_overhead=0.55,
    static_power=0.0,
)


def _part_task(
    accumulator: np.ndarray,
    slot: int,
    contribution: np.ndarray,
    row0: int,
    row1: int,
) -> None:
    """Write one block's (tx, ty) contribution into its own slot.

    Each (slot, row range) region is written by exactly one task — the
    programming model's ``out()`` contract — so thread-pool execution is
    race-free (a shared `+=` would not be).
    """
    accumulator[slot, :, row0:row1, :] = contribution[:, row0:row1, :]


def _combine_task(
    output: np.ndarray, accumulator: np.ndarray, row0: int, row1: int
) -> None:
    """Sum the part slots, then magnitude + clip for rows [row0, row1)."""
    tx = accumulator[:, 0, row0:row1, :].sum(axis=0)
    ty = accumulator[:, 1, row0:row1, :].sum(axis=0)
    output[row0:row1, :] = combine_image(tx, ty)


def sobel_significance(
    image: np.ndarray,
    ratio: float,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    runtime: TaskRuntime | None = None,
) -> KernelRun:
    """Run the significance-driven Sobel at the given accurate ratio."""
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    rt = runtime or TaskRuntime(energy_model=ENERGY_MODEL)

    parts = part_contributions(image)
    # One slot per convolution part (A/B/C); dropped parts stay zero.
    accumulator = np.zeros((3, 2, h, w), dtype=np.float64)
    output = np.zeros((h, w), dtype=np.float64)

    block_pixels = float(w * block_rows)
    for row0 in range(0, h, block_rows):
        row1 = min(row0 + block_rows, h)
        rt.submit(
            _part_task,
            args=(accumulator, 0, parts["A"], row0, row1),
            significance=1.0,
            label="convolution",
            work=OPS_PART_A * block_pixels,
        )
        # B and C: significance 0.5, no approx version -> dropped below
        # the ratio threshold (the paper's approximation for them).
        rt.submit(
            _part_task,
            args=(accumulator, 1, parts["B"], row0, row1),
            significance=0.5,
            label="convolution",
            work=OPS_PART_B * block_pixels,
        )
        rt.submit(
            _part_task,
            args=(accumulator, 2, parts["C"], row0, row1),
            significance=0.5,
            label="convolution",
            work=OPS_PART_C * block_pixels,
        )
    conv_group = rt.taskwait("convolution", ratio=ratio)

    for row0 in range(0, h, block_rows):
        row1 = min(row0 + block_rows, h)
        rt.submit(
            _combine_task,
            args=(output, accumulator, row0, row1),
            significance=1.0,
            label="combine",
            work=OPS_COMBINE * block_pixels,
        )
    combine_group = rt.taskwait("combine", ratio=1.0)

    stats = conv_group.stats
    stats.total += combine_group.stats.total
    stats.accurate += combine_group.stats.accurate
    stats.executed_work += combine_group.stats.executed_work
    return KernelRun(
        output=output,
        energy=conv_group.energy + combine_group.energy,
        ratio=ratio,
        variant="significance",
        stats=stats,
    )
