"""Spatial region decomposition for the N-Body tasks (Section 4.1.4).

"The task-based version of N-Body partitions the 3D container of the
particles into regions.  Every few time-steps it assigns particles to
regions based on their location."

A :class:`RegionGrid` divides the bounding box into ``g³`` cells.  For
task batching we group a target region's source regions by Chebyshev cell
distance (*distance class*): class 0-1 are the enveloping + adjacent
regions (the paper tags these most significant), larger classes are
further away and contribute less (LJ forces decay like r⁻⁷).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegionGrid", "region_significance"]


def region_significance(distance_class: int) -> float:
    """Task significance by Chebyshev region distance.

    Enveloping and adjacent regions (class ≤ 1) are pinned accurate;
    farther classes decay — the monotone-in-distance tagging the paper's
    analysis justifies.
    """
    if distance_class <= 1:
        return 1.0
    return max(0.05, 1.0 / float(distance_class**2))


@dataclass
class RegionGrid:
    """A ``g x g x g`` grid over the particles' bounding box."""

    grid: int
    lo: np.ndarray  # (3,) box lower corner
    cell: np.ndarray  # (3,) cell sizes

    @classmethod
    def fit(cls, positions: np.ndarray, grid: int = 6) -> "RegionGrid":
        """Fit the grid to the current particle bounding box."""
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        positions = np.asarray(positions, dtype=np.float64)
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        extent = np.maximum(hi - lo, 1e-9)
        return cls(grid=grid, lo=lo, cell=extent / grid)

    @property
    def count(self) -> int:
        """Total number of regions."""
        return self.grid**3

    def region_of(self, positions: np.ndarray) -> np.ndarray:
        """Region index of each particle (flattened cell index)."""
        rel = (np.asarray(positions) - self.lo) / self.cell
        idx = np.clip(rel.astype(np.int64), 0, self.grid - 1)
        return (idx[:, 0] * self.grid + idx[:, 1]) * self.grid + idx[:, 2]

    def cell_coords(self, region: int) -> tuple[int, int, int]:
        """(ix, iy, iz) of a flattened region index."""
        iz = region % self.grid
        iy = (region // self.grid) % self.grid
        ix = region // (self.grid * self.grid)
        return ix, iy, iz

    def chebyshev(self, a: int, b: int) -> int:
        """Chebyshev cell distance between two regions."""
        ax, ay, az = self.cell_coords(a)
        bx, by, bz = self.cell_coords(b)
        return max(abs(ax - bx), abs(ay - by), abs(az - bz))

    def members(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        """Region index -> particle indices (only occupied regions)."""
        regions = self.region_of(positions)
        order = np.argsort(regions, kind="stable")
        sorted_regions = regions[order]
        boundaries = np.flatnonzero(np.diff(sorted_regions)) + 1
        groups = np.split(order, boundaries)
        # Key each group by the region of its members (groups hold
        # original particle indices, so look the region up via `regions`).
        return {int(regions[g[0]]): g for g in groups if len(g)}

    def distance_classes(self, region: int) -> dict[int, list[int]]:
        """Source regions of ``region`` grouped by Chebyshev distance.

        Precomputable per region: the grid is static between
        re-assignments (the paper reassigns "every few time-steps").
        """
        classes: dict[int, list[int]] = {}
        for other in range(self.count):
            d = self.chebyshev(region, other)
            classes.setdefault(d, []).append(other)
        return classes
