"""Task-based, significance-driven N-Body (Section 4.1.4).

Per time-step, the force evaluation is split into tasks keyed by
(target region, source distance class): the task computes the forces that
the class's source regions exert on the target region's atoms.  The paper
instantiates one task per (atom, region) pair; batching by region and
distance class is the same partition at a granularity a Python runtime
can execute, and it preserves the property that matters: significance is
a monotone function of region distance.

Approximate version: *skip* — the Lennard-Jones force decays like r⁻⁷,
so far-region contributions are negligible (which is why the paper's
fully-approximate N-Body still achieves 0.006% relative error).

Integration (velocity Verlet) is always accurate.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.runtime import AnalyticEnergyModel, TaskRuntime

from .regions import RegionGrid, region_significance
from .simulation import OPS_PER_PAIR, System, pair_forces, velocity_verlet

__all__ = ["nbody_significance", "ENERGY_MODEL"]

# Calibrated so the fully accurate benchmark run (729 atoms x 3 steps)
# lands near the paper's ~8.8 kJ full-accuracy N-Body point.
ENERGY_MODEL = AnalyticEnergyModel(
    energy_per_op=8.0e-5,
    task_overhead=0.08,
    static_power=0.0,
)


def _force_task(
    forces: np.ndarray,
    positions: np.ndarray,
    target_idx: np.ndarray,
    source_idx: np.ndarray,
    exclude_self: bool,
) -> None:
    """Accumulate forces on the target atoms from the source atoms."""
    contribution = pair_forces(
        positions[target_idx], positions[source_idx], exclude_self=exclude_self
    )
    forces[target_idx] += contribution


def nbody_significance(
    system: System,
    ratio: float,
    steps: int = 3,
    dt: float = 0.004,
    grid: int = 6,
    runtime: TaskRuntime | None = None,
) -> tuple[KernelRun, System]:
    """Run the significance-driven simulation at the given accurate ratio.

    Returns the kernel run (output = final positions) and the final
    :class:`System`.
    """
    rt = runtime or TaskRuntime(energy_model=ENERGY_MODEL)
    state = system.copy()
    region_grid = RegionGrid.fit(state.positions, grid=grid)
    classes_by_region = {
        r: region_grid.distance_classes(r) for r in range(region_grid.count)
    }

    total_energy = None
    total_stats = None

    def force_fn(positions: np.ndarray) -> np.ndarray:
        nonlocal total_energy, total_stats
        forces = np.zeros_like(positions)
        members = region_grid.members(positions)
        for target_region, target_idx in members.items():
            for distance_class, sources in classes_by_region[
                target_region
            ].items():
                source_idx_list = [
                    members[s] for s in sources if s in members
                ]
                if not source_idx_list:
                    continue
                source_idx = np.concatenate(source_idx_list)
                pairs = float(len(target_idx) * len(source_idx))
                rt.submit(
                    _force_task,
                    args=(
                        forces,
                        positions,
                        target_idx,
                        source_idx,
                        distance_class == 0,
                    ),
                    significance=region_significance(distance_class),
                    label="forces",
                    work=OPS_PER_PAIR * pairs,
                )
        group = rt.taskwait("forces", ratio=ratio)
        total_energy = (
            group.energy if total_energy is None else total_energy + group.energy
        )
        if total_stats is None:
            total_stats = group.stats
        else:
            total_stats.total += group.stats.total
            total_stats.accurate += group.stats.accurate
            total_stats.approximate += group.stats.approximate
            total_stats.dropped += group.stats.dropped
            total_stats.executed_work += group.stats.executed_work
        return forces

    forces = force_fn(state.positions)
    for _ in range(steps):
        forces = velocity_verlet(state, forces, dt, force_fn)

    run = KernelRun(
        output=state.positions.copy(),
        energy=total_energy,
        ratio=ratio,
        variant="significance",
        stats=total_stats,
    )
    return run, state
