"""Tests for the scalar<->batched bridge and scorpio compatibility."""

import json

import numpy as np
import pytest

from repro.ad import intrinsics as op
from repro.ad.adouble import ADouble
from repro.ad.tape import Tape
from repro.intervals import Interval
from repro.scorpio import Analysis
from repro.scorpio.report import SignificanceReport
from repro.scorpio.serialize import report_to_dict, report_to_json
from repro.vec import (
    IntervalArray,
    VADouble,
    VAnalysis,
    VTape,
    lift,
    lower,
    lower_tape,
)


def _maclaurin(an_or_va, x):
    result = None
    for i in range(4):
        term = x**i
        an_or_va.intermediate(term, f"term{i}")
        result = term if result is None else result + term
    return result


@pytest.fixture()
def scalar_report():
    an = Analysis()
    with an:
        x = an.input(0.45, width=1.0, name="x")
        an.output(_maclaurin(an, x), name="y")
    return an.analyse()


@pytest.fixture()
def vec_report():
    mids = np.array([0.45, 0.1, 0.8])
    va = VAnalysis(lane_shape=mids.shape)
    with va:
        x = va.input(mids, width=1.0, name="x")
        va.output(_maclaurin(va, x), name="y")
    return va.analyse()


class TestLiftLower:
    def test_lift_broadcast_and_pack(self):
        arr = lift(Interval(1.0, 2.0), 3)
        assert arr.to_intervals() == [Interval(1.0, 2.0)] * 3
        packed = lift([Interval(0, 1), Interval(2, 3)], (2,))
        assert packed.lane(1) == Interval(2, 3)
        mids = lift(np.array([1.0, 2.0]), (2,))
        assert mids.lane(0) == Interval(1.0)

    def test_lower_roundtrip(self):
        lanes = [Interval(0, 1), Interval(-2, 5)]
        arr = IntervalArray.from_intervals(lanes)
        assert [lower(arr, k) for k in range(2)] == lanes


class TestLowerTape:
    def test_structure_preserved(self):
        lanes = [Interval(0.5, 1.0), Interval(2.0, 2.5)]
        with VTape(lane_shape=2) as vtape:
            x = VADouble.input(IntervalArray.from_intervals(lanes), label="x")
            y = op.exp(x) * x + 1.0
        vtape.adjoint({y.node.index: 1.0})
        stape = lower_tape(vtape, 1)
        assert len(stape) == len(vtape)
        for sn, vn in zip(stape, vtape):
            assert sn.op == vn.op
            assert sn.parents == vn.parents
            assert sn.label == vn.label
            assert isinstance(sn.value, Interval)

    def test_lane_matches_direct_scalar_run(self):
        lanes = [Interval(0.5, 1.0), Interval(2.0, 2.5)]

        def fn(x):
            return op.exp(x) * x + op.sqrt(x)

        with VTape(lane_shape=2) as vtape:
            xv = VADouble.input(IntervalArray.from_intervals(lanes), label="x")
            yv = fn(xv)
        vtape.adjoint({yv.node.index: 1.0})

        for k, iv in enumerate(lanes):
            stape = lower_tape(vtape, k)
            with Tape() as ref:
                xr = ADouble.input(iv, label="x", tape=ref)
                yr = fn(xr)
            ref.adjoint({yr.node.index: 1.0})
            for low, exact in zip(stape, ref):
                # Lowered lane encloses the scalar run (vec rounding is
                # never tighter), and the sweep structure is identical.
                assert low.value.lo <= exact.value.lo
                assert exact.value.hi <= low.value.hi
                assert low.adjoint.lo <= exact.adjoint.lo
                assert exact.adjoint.hi <= low.adjoint.hi

    def test_lowered_tape_sweepable(self):
        """A lowered (pre-sweep) tape works with the scalar adjoint sweep."""
        with VTape(lane_shape=2) as vtape:
            x = VADouble.input(IntervalArray.point([1.0, 2.0]), label="x")
            y = x * x + x
        stape = lower_tape(vtape, 0)
        adj = stape.adjoint({y.node.index: Interval(1.0)})
        got = adj[x.node.index]  # d/dx (x²+x) at x=1, outward-rounded
        assert got.contains(3.0) and got.width < 1e-12


class TestLaneReport:
    def test_lane_report_is_full_scorpio_report(self, vec_report):
        rep = vec_report.lane_report(0)
        assert isinstance(rep, SignificanceReport)
        assert set(rep.labelled_significances()) == {
            "x",
            "term0",
            "term1",
            "term2",
            "term3",
        }
        assert rep.graph is not None and rep.raw_graph is not None

    def test_lane_report_matches_scalar_analysis(
        self, scalar_report, vec_report
    ):
        lane0 = vec_report.lane_report(0)
        want = scalar_report.labelled_significances()
        got = lane0.labelled_significances()
        assert set(got) == set(want)
        for label in want:
            assert got[label] == pytest.approx(want[label], rel=1e-9, abs=1e-12)
        assert (
            [k for k, _ in lane0.ranking()]
            == [k for k, _ in scalar_report.ranking()]
        )

    def test_lane_report_serialises(self, vec_report):
        rep = vec_report.lane_report(2)
        data = report_to_dict(rep)
        assert json.loads(report_to_json(rep))["graph"]["nodes"]
        assert data["labelled_significances"]["x"] >= 0.0

    def test_vec_report_to_dict_json_safe(self, vec_report):
        blob = json.dumps(vec_report.to_dict())
        back = json.loads(blob)
        assert back["lane_shape"] == [3]
        assert len(back["labelled_significances"]["x"]) == 3

    def test_per_lane_views(self, vec_report):
        sigs = vec_report.labelled_significances()
        assert all(arr.shape == (3,) for arr in sigs.values())
        norm = vec_report.normalised_significances()
        total = sum(norm.values())
        assert np.allclose(total, 1.0)
        lane_rank = vec_report.lane_ranking(1)
        assert lane_rank[0][1] >= lane_rank[-1][1]


class TestCompiledLaneReport:
    def test_byte_identical_on_every_lane(self, vec_report):
        for lane in range(vec_report.n_lanes):
            obj = vec_report.lane_report(lane)
            cmp = vec_report.lane_report(lane, compiled=True)
            assert report_to_json(obj) == report_to_json(cmp)

    def test_simplify_false(self, vec_report):
        obj = vec_report.lane_report(1, simplify=False)
        cmp = vec_report.lane_report(1, simplify=False, compiled=True)
        assert report_to_json(obj) == report_to_json(cmp)

    def test_columns_cached_across_lanes(self, vec_report):
        vec_report.lane_report(0, compiled=True)
        cache = vec_report._lane_columns_cache
        vec_report.lane_report(2, compiled=True)
        assert vec_report._lane_columns_cache is cache


class TestLaneScanMap:
    def test_matches_per_lane_scans(self, vec_report):
        from repro.vec import lane_scan_map

        scan = lane_scan_map(vec_report, delta=1e-6)
        flat = scan.found_level.reshape(-1)
        for lane in range(vec_report.n_lanes):
            ref = vec_report.lane_report(lane).scan
            expected = (
                ref.found_level if ref.found_level is not None else -1
            )
            assert int(flat[lane]) == expected
            for level, var in ref.variances.items():
                got = float(scan.variances[level].reshape(-1)[lane])
                assert got == var  # bitwise: same float op chain

    def test_inexact_variance_close(self, vec_report):
        from repro.vec import lane_scan_map

        exact = lane_scan_map(vec_report, delta=1e-6)
        fast = lane_scan_map(
            vec_report, delta=1e-6, exact_variance=False
        )
        assert np.array_equal(exact.found_level, fast.found_level)
        for level, var in exact.variances.items():
            assert np.allclose(var, fast.variances[level], rtol=1e-12)

    def test_found_counts_histogram(self, vec_report):
        from repro.vec import lane_scan_map

        scan = lane_scan_map(vec_report)
        counts = scan.found_counts()
        assert sum(counts.values()) == vec_report.n_lanes
