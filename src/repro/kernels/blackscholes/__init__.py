"""BlackScholes financial benchmark (paper Section 4.1.5)."""

from .analysis import (
    BlackScholesAnalysis,
    analyse_blackscholes,
    analyse_option,
)
from .data import Portfolio, make_portfolio
from .greeks import Greeks, greeks
from .sequential import (
    black_scholes_blocks,
    black_scholes_price,
    cndf,
    price_portfolio,
)
from .tasks import blackscholes_significance, price_chunk_approx

__all__ = [
    "cndf",
    "black_scholes_blocks",
    "black_scholes_price",
    "price_portfolio",
    "Portfolio",
    "make_portfolio",
    "analyse_option",
    "analyse_blackscholes",
    "BlackScholesAnalysis",
    "blackscholes_significance",
    "price_chunk_approx",
    "Greeks",
    "greeks",
]
