"""Tests for the overloaded adjoint type (scalar and interval modes)."""

import math

import pytest

from repro.ad import ADouble, IntervalAdjoint, Tape, adjoint_gradient
from repro.ad import intrinsics as op
from repro.intervals import AmbiguousComparisonError, Interval


def scalar_grad(fn, *point):
    value, grad = adjoint_gradient(lambda xs: fn(*xs), list(point))
    return value, grad


class TestArithmeticGradients:
    """Every operator's value and derivative, checked analytically."""

    def test_add(self):
        v, g = scalar_grad(lambda a, b: a + b, 2.0, 3.0)
        assert v == 5.0 and g == [1.0, 1.0]

    def test_radd_scalar(self):
        v, g = scalar_grad(lambda a: 1.0 + a, 2.0)
        assert v == 3.0 and g == [1.0]

    def test_sub(self):
        v, g = scalar_grad(lambda a, b: a - b, 2.0, 3.0)
        assert v == -1.0 and g == [1.0, -1.0]

    def test_rsub_scalar(self):
        v, g = scalar_grad(lambda a: 10.0 - a, 2.0)
        assert v == 8.0 and g == [-1.0]

    def test_mul(self):
        v, g = scalar_grad(lambda a, b: a * b, 2.0, 3.0)
        assert v == 6.0 and g == [3.0, 2.0]

    def test_rmul_scalar(self):
        v, g = scalar_grad(lambda a: 4.0 * a, 2.0)
        assert v == 8.0 and g == [4.0]

    def test_self_mul_square_rule(self):
        v, g = scalar_grad(lambda a: a * a, 3.0)
        assert v == 9.0 and g == [6.0]

    def test_div(self):
        v, g = scalar_grad(lambda a, b: a / b, 6.0, 3.0)
        assert v == 2.0
        assert g[0] == pytest.approx(1.0 / 3.0)
        assert g[1] == pytest.approx(-6.0 / 9.0)

    def test_rdiv_scalar(self):
        v, g = scalar_grad(lambda a: 6.0 / a, 3.0)
        assert v == 2.0 and g[0] == pytest.approx(-6.0 / 9.0)

    def test_neg(self):
        v, g = scalar_grad(lambda a: -a, 2.0)
        assert v == -2.0 and g == [-1.0]

    def test_abs_positive_negative(self):
        _, g_pos = scalar_grad(lambda a: abs(a), 2.0)
        _, g_neg = scalar_grad(lambda a: abs(a), -2.0)
        assert g_pos == [1.0] and g_neg == [-1.0]

    def test_pow_positive_int(self):
        v, g = scalar_grad(lambda a: a**3, 2.0)
        assert v == 8.0 and g == [12.0]

    def test_pow_zero(self):
        v, g = scalar_grad(lambda a: a**0 + a, 2.0)
        assert v == 3.0 and g == [1.0]  # x**0 contributes no derivative

    def test_pow_negative_int(self):
        v, g = scalar_grad(lambda a: a**-2, 2.0)
        assert v == 0.25 and g[0] == pytest.approx(-2.0 / 8.0)

    def test_pow_real_exponent(self):
        v, g = scalar_grad(lambda a: a**0.5, 4.0)
        assert v == pytest.approx(2.0) and g[0] == pytest.approx(0.25)

    def test_pow_adouble_exponent(self):
        v, g = scalar_grad(lambda a, b: a**b, 2.0, 3.0)
        assert v == pytest.approx(8.0)
        assert g[0] == pytest.approx(12.0)
        assert g[1] == pytest.approx(8.0 * math.log(2.0))

    def test_rpow_constant_base(self):
        v, g = scalar_grad(lambda a: 2.0**a, 3.0)
        assert v == pytest.approx(8.0)
        assert g[0] == pytest.approx(8.0 * math.log(2.0))


class TestTapeStructure:
    def test_constant_folding_no_extra_nodes(self):
        with Tape() as tape:
            x = ADouble.input(1.0, tape=tape)
            _ = x * 2.0 + 3.0
        # input + mul + add = 3 nodes (constants folded into ops).
        assert len(tape) == 3

    def test_explicit_constant_node(self):
        with Tape() as tape:
            ADouble.constant(0.0, tape=tape)
        assert len(tape) == 1 and tape[0].op == "const"

    def test_cross_tape_rejected(self):
        with Tape() as t1:
            x = ADouble.input(1.0, tape=t1)
        with Tape() as t2:
            y = ADouble.input(1.0, tape=t2)
            with pytest.raises(ValueError, match="different tapes"):
                _ = x + y

    def test_interval_adjoint_alias(self):
        assert IntervalAdjoint is ADouble

    def test_to_double(self):
        with Tape() as tape:
            x = ADouble.input(Interval(1.0, 3.0), tape=tape)
            s = ADouble.input(2.5, tape=tape)
        assert x.to_double() == 2.0
        assert s.to_double() == 2.5

    def test_repr(self):
        with Tape() as tape:
            x = ADouble.input(1.0, tape=tape)
        assert "node=#0" in repr(x)


class TestIntervalMode:
    def test_values_are_enclosures(self):
        with Tape() as tape:
            x = ADouble.input(Interval(1.0, 2.0), tape=tape)
            y = x * x + 1.0
        for point in (1.0, 1.5, 2.0):
            assert y.value.contains(point * point + 1.0)

    def test_interval_partials_recorded(self):
        with Tape() as tape:
            x = ADouble.input(Interval(1.0, 2.0), tape=tape)
            y = op.sin(x)
        partial = tape[y.node.index].partials[0]
        assert isinstance(partial, Interval)
        assert partial.contains(math.cos(1.5))

    def test_abs_spanning_zero_partial(self):
        with Tape() as tape:
            x = ADouble.input(Interval(-1.0, 2.0), tape=tape)
            y = abs(x)
        partial = tape[y.node.index].partials[0]
        assert partial == Interval(-1.0, 1.0)

    def test_gradient_enclosure(self):
        # Gradient of sin over [0, 1] must enclose cos at interior points.
        with Tape() as tape:
            x = ADouble.input(Interval(0.0, 1.0), tape=tape)
            y = op.sin(x)
            tape.adjoint({y.node.index: Interval(1.0)})
        grad = x.node.adjoint
        for point in (0.0, 0.5, 1.0):
            assert grad.contains(math.cos(point))


class TestComparisons:
    def test_scalar_mode_compares_normally(self):
        with Tape() as tape:
            x = ADouble.input(1.0, tape=tape)
            assert x < 2.0
            assert x <= 1.0
            assert x > 0.0
            assert x >= 1.0

    def test_interval_certain_comparison(self):
        with Tape() as tape:
            x = ADouble.input(Interval(0.0, 1.0), tape=tape)
            assert x < 2.0

    def test_interval_ambiguous_raises(self):
        with Tape() as tape:
            x = ADouble.input(Interval(0.0, 2.0), tape=tape)
            with pytest.raises(AmbiguousComparisonError):
                _ = x < 1.0

    def test_adouble_vs_adouble_comparison(self):
        with Tape() as tape:
            x = ADouble.input(Interval(0.0, 1.0), tape=tape)
            y = ADouble.input(Interval(2.0, 3.0), tape=tape)
            assert x < y
            assert y > x
