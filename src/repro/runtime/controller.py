"""Closed-loop ratio control for streaming workloads.

The paper's intro motivates video analytics under an energy envelope; its
companion framework (Vassiliadis et al., CF'15 [40]) drives the ratio
knob from runtime feedback.  :class:`RatioController` implements that
loop in its simplest robust form: an integral controller that nudges the
ratio after every frame so the measured energy tracks a per-frame budget.

    controller = RatioController(energy_budget=50.0)
    for frame in frames:
        run = kernel(frame, ratio=controller.ratio)
        controller.observe(run.joules)

Monotone energy-vs-ratio (guaranteed by the significance scheduler) makes
the loop stable for gains below the inverse sensitivity; the default gain
is conservative and the ratio is clamped to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RatioController"]


@dataclass
class RatioController:
    """Integral controller steering the accurate-task ratio.

    Attributes:
        energy_budget: target Joules per frame.
        gain: integral gain in ratio-units per relative energy error
            (error is normalised by the budget, so the gain is
            scale-free).
        initial_ratio: knob setting for the first frame.
    """

    energy_budget: float
    gain: float = 0.2
    initial_ratio: float = 1.0
    _ratio: float = field(init=False)
    history: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.energy_budget <= 0:
            raise ValueError("energy budget must be positive")
        if not 0.0 <= self.initial_ratio <= 1.0:
            raise ValueError("initial ratio must lie in [0, 1]")
        self._ratio = self.initial_ratio

    @property
    def ratio(self) -> float:
        """The knob setting to use for the next frame."""
        return self._ratio

    def observe(self, measured_energy: float) -> float:
        """Feed back one frame's energy; returns the updated ratio.

        Over budget -> lower the ratio (more approximation); under budget
        -> raise it (reclaim quality).  The update is proportional to the
        *relative* energy error and clamped to [0, 1].
        """
        if measured_energy < 0:
            raise ValueError("measured energy must be non-negative")
        self.history.append((self._ratio, measured_energy))
        relative_error = (self.energy_budget - measured_energy) / self.energy_budget
        self._ratio = min(1.0, max(0.0, self._ratio + self.gain * relative_error))
        return self._ratio

    @property
    def settled(self) -> bool:
        """True when the last three frames were within 10% of budget."""
        if len(self.history) < 3:
            return False
        recent = [energy for _, energy in self.history[-3:]]
        return all(
            abs(energy - self.energy_budget) <= 0.10 * self.energy_budget
            for energy in recent
        )

    def mean_energy(self, last: int | None = None) -> float:
        """Mean measured energy over the (last ``last``) frames."""
        if not self.history:
            raise ValueError("no frames observed yet")
        frames = self.history[-last:] if last else self.history
        return sum(energy for _, energy in frames) / len(frames)
