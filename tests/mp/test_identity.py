"""Bitwise identity of process-parallel sweeps on all five paper kernels.

The contract under test: fanning a lane sweep out over worker processes
(shared frozen tape, chunked lanes) returns exactly the bytes of the
sequential full-batch replay — for every kernel, every chunking, every
worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import Interval
from repro.mp import lane_chunks, live_segments, parallel_lane_significances
from repro.scorpio import Analysis, CachedTrace


def _record_dct_pixel(ivs):
    """Single-output variant of the DCT round-trip recorder: the full
    8x8 DCT -> quantise -> dequantise -> IDCT graph, analysed against
    one reconstructed pixel (the lane sweep seeds exactly one output)."""
    from repro.kernels.dct.sequential import (
        BLOCK,
        dct_block,
        dequantise_block,
        idct_block,
        quantise_block,
    )

    an = Analysis()
    with an:
        it = iter(ivs)
        pixels = [
            [an.input(next(it), name=f"p_{y}_{x}") for x in range(BLOCK)]
            for y in range(BLOCK)
        ]
        coeffs = dct_block(pixels)
        reconstructed = idct_block(dequantise_block(quantise_block(coeffs)))
        an.output(reconstructed[4][4], name="out_4_4")
    return an


def _record_nbody_fx(ivs):
    """Single-output (fx) variant of the served n-body recorder — the
    lane sweep seeds exactly one output, so the shared trace must too."""
    from repro.kernels.nbody import lj_pair_force

    an = Analysis()
    with an:
        it = iter(ivs)
        taped = [
            [an.input(next(it), name=f"atom{i}_{axis}") for axis in "xyz"]
            for i in range(1, 4)
        ]
        fx = None
        for sx, sy, sz in taped:
            dfx, _dfy, _dfz = lj_pair_force(0.0 - sx, 0.0 - sy, 0.0 - sz)
            fx = dfx if fx is None else fx + dfx
        an.output(fx, name="fx")
    return an


def _kernel_case(name):
    """(recorder, default intervals) for one kernel's replayable trace."""
    from repro.serve import kernels as sk

    if name == "nbody":
        return _record_nbody_fx, sk._nbody_defaults()
    if name == "dct":
        return _record_dct_pixel, sk._dct_defaults()
    registry = sk.default_registry()
    entry = registry[name]
    return entry.recorder, entry.defaults()


def _lane_bounds(ivs, L, seed):
    """Jitter the default intervals into (n_inputs, L) lane bounds.

    Centres move by up to 20% of each input's own width (small enough
    that every recorded guard keeps its outcome); widths are preserved.
    """
    rng = np.random.default_rng(seed)
    centre = np.array([(iv.lo + iv.hi) / 2.0 for iv in ivs])[:, None]
    radius = np.array([(iv.hi - iv.lo) / 2.0 for iv in ivs])[:, None]
    scale = np.where(radius > 0, radius, 0.01)
    jitter = scale * rng.uniform(-0.2, 0.2, size=(len(ivs), L))
    return centre + jitter - radius, centre + jitter + radius


KERNELS = ["dct", "sobel", "blackscholes", "fisheye", "nbody"]


@pytest.mark.parametrize("kernel", KERNELS)
def test_process_sweep_bitwise_identical(kernel):
    recorder, ivs = _kernel_case(kernel)
    trace = CachedTrace(recorder(ivs), simplify=False)
    lo, hi = _lane_bounds(ivs, L=300, seed=7)
    sequential = trace.lane_significances(trace.forward_lanes(lo, hi))
    parallel = parallel_lane_significances(
        trace, lo, hi, workers=2, min_parallel_lanes=1
    )
    assert parallel.tobytes() == sequential.tobytes()
    assert live_segments() == []


def test_small_batches_skip_the_pool():
    recorder, ivs = _kernel_case("blackscholes")
    trace = CachedTrace(recorder(ivs), simplify=False)
    lo, hi = _lane_bounds(ivs, L=16, seed=3)
    sequential = trace.lane_significances(trace.forward_lanes(lo, hi))
    # Below min_parallel_lanes the driver must not freeze a tape or
    # spawn anything — and must still return identical bytes.
    parallel = parallel_lane_significances(
        trace, lo, hi, workers=4, min_parallel_lanes=256
    )
    assert parallel.tobytes() == sequential.tobytes()
    assert live_segments() == []


def test_single_worker_skips_the_pool():
    recorder, ivs = _kernel_case("sobel")
    trace = CachedTrace(recorder(ivs), simplify=False)
    lo, hi = _lane_bounds(ivs, L=400, seed=4)
    sequential = trace.lane_significances(trace.forward_lanes(lo, hi))
    parallel = parallel_lane_significances(
        trace, lo, hi, workers=1, min_parallel_lanes=1
    )
    assert parallel.tobytes() == sequential.tobytes()


def test_multi_output_trace_rejected():
    from repro.ad.replay import ReplayError
    from repro.serve.kernels import _nbody_defaults, _record_nbody

    trace = CachedTrace(_record_nbody(_nbody_defaults()), simplify=False)
    lo, hi = _lane_bounds(_nbody_defaults(), L=8, seed=1)
    with pytest.raises(ReplayError):
        parallel_lane_significances(trace, lo, hi, workers=2)


def test_shape_mismatch_rejected():
    recorder, ivs = _kernel_case("sobel")
    trace = CachedTrace(recorder(ivs), simplify=False)
    with pytest.raises(ValueError):
        parallel_lane_significances(
            trace, np.zeros((9, 4)), np.zeros((9, 5)), workers=2
        )


# ----------------------------------------------------------------------
# Entry-point identity: the wired analyse_* knobs
# ----------------------------------------------------------------------
class TestWiredEntryPoints:
    def test_blackscholes_replay(self):
        from repro.kernels.blackscholes.analysis import _replay_options

        opts = [
            (100.0 + 0.4 * i, 105.0, 0.03, 0.2 + 0.0005 * i, 1.0)
            for i in range(280)
        ]
        assert _replay_options(opts) == _replay_options(
            opts, executor="process", workers=2
        )

    def test_sobel_map(self):
        from repro.images import natural_image
        from repro.kernels.sobel.analysis import analyse_sobel_map

        image = natural_image(20, 24, seed=5)
        seq = analyse_sobel_map(image, replay=True)
        par = analyse_sobel_map(
            image, replay=True, executor="process", workers=2
        )
        for key in ("A", "B", "C"):
            assert par[key].tobytes() == seq[key].tobytes()

    def test_sobel_scan_map(self):
        from repro.images import natural_image
        from repro.kernels.sobel.analysis import analyse_sobel_scan_map

        image = natural_image(18, 22, seed=9)
        seq = analyse_sobel_scan_map(image, replay=True)
        par = analyse_sobel_scan_map(
            image, replay=True, executor="process", workers=2
        )
        for key in ("A", "B", "C"):
            assert par[key].tobytes() == seq[key].tobytes()
        assert np.array_equal(
            par["scan"].found_level, seq["scan"].found_level
        )

    def test_fisheye_coordinate_map(self):
        from repro.images import radial_scene
        from repro.kernels.fisheye import (
            coordinate_significance_map,
            default_config,
            make_fisheye_input,
        )

        config = default_config(64, 48)
        image = make_fisheye_input(radial_scene(64, 48, seed=11), config)
        rng = np.random.default_rng(2)
        xs = rng.uniform(2, 61, size=300)
        ys = rng.uniform(2, 45, size=300)
        seq = coordinate_significance_map(config, image, xs, ys)
        par = coordinate_significance_map(
            config, image, xs, ys, executor="process", workers=2
        )
        assert par.tobytes() == seq.tobytes()

    def test_segments_cleaned_after_entry_points(self):
        assert live_segments() == []


# ----------------------------------------------------------------------
# Chunk-invariance: scheduling never affects bits
# ----------------------------------------------------------------------
_CASE = {}


def _bs_case():
    if not _CASE:
        recorder, ivs = _kernel_case("blackscholes")
        trace = CachedTrace(recorder(ivs), simplify=False)
        lo, hi = _lane_bounds(ivs, L=120, seed=11)
        full = trace.lane_significances(trace.forward_lanes(lo, hi))
        _CASE["value"] = (trace, lo, hi, full)
    return _CASE["value"]


class TestLaneChunks:
    def test_exact_cover(self):
        chunks = lane_chunks(100, 4)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 100
        for (_, stop), (start, _) in zip(chunks, chunks[1:]):
            assert stop == start

    def test_alignment(self):
        chunks = lane_chunks(100, 3, align=10)
        for start, stop in chunks[:-1]:
            assert (stop - start) % 10 == 0

    def test_empty(self):
        assert lane_chunks(0, 4) == []

    def test_explicit_chunk_size(self):
        assert lane_chunks(10, 2, chunk_lanes=4) == [(0, 4), (4, 8), (8, 10)]


class TestChunkPolicy:
    def test_default_targets_four_chunks_per_worker(self):
        from repro.mp import default_chunk_lanes

        # 4096 lanes / 4 workers -> 16 chunks of 256.
        assert default_chunk_lanes(4096, 4) == 256
        chunks = lane_chunks(4096, 4)
        assert len(chunks) == 16

    def test_default_floors_at_min_chunk(self):
        from repro.mp import default_chunk_lanes
        from repro.mp.drivers import MIN_CHUNK_LANES

        # 4-chunks-per-worker would want 300/16 ~ 19-lane chunks; the
        # floor keeps per-task overhead bounded instead.
        assert default_chunk_lanes(300, 4) == MIN_CHUNK_LANES

    def test_tiny_batches_still_spread_across_workers(self):
        from repro.mp import default_chunk_lanes

        # 8 lanes, 4 workers: the MIN_CHUNK floor must not serialise
        # everything onto one worker.
        assert default_chunk_lanes(8, 4) == 2
        assert len(lane_chunks(8, 4)) == 4

    def test_env_override(self, monkeypatch):
        from repro.mp import default_chunk_lanes

        monkeypatch.setenv("REPRO_MP_CHUNK", "17")
        assert default_chunk_lanes(4096, 4) == 17
        assert lane_chunks(100, 4)[0] == (0, 17)

    def test_env_override_invalid_ignored(self, monkeypatch):
        from repro.mp import default_chunk_lanes

        for bad in ("zero", "-3", "0", ""):
            monkeypatch.setenv("REPRO_MP_CHUNK", bad)
            assert default_chunk_lanes(4096, 4) == 256

    def test_explicit_chunk_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_CHUNK", "17")
        assert lane_chunks(10, 2, chunk_lanes=4) == [(0, 4), (4, 8), (8, 10)]


@given(
    chunk_lanes=st.integers(min_value=1, max_value=120),
    align=st.integers(min_value=1, max_value=16),
    workers=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_chunked_sweep_is_order_insensitive(chunk_lanes, align, workers):
    """Any partition of the lane axis replays to the full batch's bytes.

    This is the property that makes the process fan-out safe; it is
    checked here without processes (the chunks are computed in-process,
    in arbitrary order) so hypothesis can afford many schedules.
    """
    trace, lo, hi, full = _bs_case()
    L = lo.shape[1]
    chunks = lane_chunks(L, workers, chunk_lanes=chunk_lanes, align=align)
    assert chunks[0][0] == 0 and chunks[-1][1] == L
    got = np.empty_like(full)
    # Deterministically shuffled completion order: chunk results may
    # land in any order without changing the assembled bytes.
    order = sorted(range(len(chunks)), key=lambda i: (i * 7919) % len(chunks))
    for idx in order:
        start, stop = chunks[idx]
        sig = trace.lane_significances(
            trace.forward_lanes(lo[:, start:stop], hi[:, start:stop])
        )
        got[:, start:stop] = sig
    assert got.tobytes() == full.tobytes()
