"""Parallel drivers for the hot lane sweeps, on top of shared tapes.

The replay-many fast path — ``forward_lanes`` + a lane-batched adjoint
sweep + Eq. 11 — is embarrassingly parallel across lanes: each lane is an
independent replay of the same frozen trace, and the sweeps are
engineered so that computing a *chunk* of lanes produces bit-identical
results to computing the full batch (per-lane zero-adjoint shortcuts are
honoured per lane; the cross-lane ``edge_any`` shortcut only skips edges
inactive in every lane of a batch, which never changes an active lane's
bits).  That chunk-invariance is what makes process-parallel maps safe:
fan the lane axis out over workers, let each worker replay its slice
against a zero-copy :class:`~repro.mp.shared.SharedTape` view, and write
its significance columns into a shared output buffer — concatenation
equals the sequential full-batch result, bit for bit (pinned by
``tests/mp``, including a hypothesis chunking property test).

Scheduling, crash/timeout recovery and worker-metric merging are
delegated to :class:`~repro.mp.executor.ProcessExecutor`: each chunk is
one value-returning task, so a dying or hung worker degrades to the
parent replaying the missing chunks sequentially — same bits, no lost
work.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

import numpy as np

from repro.ad.compiled import CompiledTape
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _obs_span
from repro.runtime.task import ExecutionMode, Task

from .executor import ProcessExecutor, default_workers
from .shared import SharedArray, SharedTape

__all__ = [
    "parallel_lane_significances",
    "lane_chunks",
    "process_requested",
]

_C_CHUNKS = _metrics.counter("mp.lane_chunks")
_H_CHUNK_LANES = _metrics.histogram("mp.chunk_lanes")

# Per-worker-process cache of attached tapes, keyed by the opcodes
# segment name (unique per frozen tape).  Bounded: drivers are called
# with a handful of distinct tapes per process lifetime.
_TAPE_CACHE: dict[str, CompiledTape] = {}
_TAPE_CACHE_MAX = 8


def _attached_tape(shared: SharedTape) -> CompiledTape:
    key = shared.arrays["opcodes"].name
    ct = _TAPE_CACHE.get(key)
    if ct is None:
        if len(_TAPE_CACHE) >= _TAPE_CACHE_MAX:
            _TAPE_CACHE.clear()
        ct = shared.attach()
        _TAPE_CACHE[key] = ct
    return ct


def _sig_chunk(
    shared: SharedTape,
    in_lo: SharedArray,
    in_hi: SharedArray,
    out: SharedArray,
    start: int,
    stop: int,
    output_id: int,
) -> int:
    """Replay lanes ``[start:stop)`` and write their Eq. 11 columns.

    Runs inside a worker (or in the parent on fallback).  Reads the input
    bound slices zero-copy, writes the ``(n, stop-start)`` significance
    block into the shared output buffer, returns the lane count.
    Guard divergence raises exactly as the sequential replay would.
    """
    from repro.scorpio.compiled import eq11_from_sweep

    _C_CHUNKS.inc()
    _H_CHUNK_LANES.observe(stop - start)
    ct = _attached_tape(shared)
    with _obs_span("mp.sig_chunk") as sp:
        sp.set(start=start, stop=stop, nodes=ct.n)
        lanes = ct.forward_lanes(
            in_lo.view()[:, start:stop], in_hi.view()[:, start:stop]
        )
        alo, ahi = lanes.adjoint({output_id: 1.0})
        sig = eq11_from_sweep(
            lanes.value_lo,
            lanes.value_hi,
            alo,
            ahi,
            interval_mode=ct.interval_mode,
        )
        out.view()[:, start:stop] = sig
    return stop - start


def process_requested(executor: Any) -> bool:
    """Does an ``executor`` knob value select the process backend?

    The ``analyse_*`` entry points accept ``executor="seq" | "thread" |
    "process"`` (or an executor instance); only ``"process"`` — or an
    actual :class:`ProcessExecutor` — routes lane sweeps through the
    shared-tape drivers.  Threads cannot speed a lane sweep up (the
    replay is one GIL-holding NumPy pipeline), so every other value runs
    the plain sequential replay.
    """
    if isinstance(executor, str):
        return executor.strip().lower() == "process"
    return isinstance(executor, ProcessExecutor)


#: Environment override for the default chunk size (lanes per task).
CHUNK_ENV = "REPRO_MP_CHUNK"

#: Below this many lanes a chunk's sweep is dominated by per-task
#: dispatch overhead, so the default policy never goes finer (callers
#: can still force smaller chunks explicitly).
MIN_CHUNK_LANES = 32


def default_chunk_lanes(n_lanes: int, workers: int) -> int:
    """The workers-aware default chunk size for ``lane_chunks``.

    Resolution order:

    1. ``$REPRO_MP_CHUNK`` (a positive integer; anything else ignored) —
       the deploy-time escape hatch for machines whose sweet spot the
       heuristic misses;
    2. otherwise target **four chunks per worker** — enough slack for the
       executor to rebalance when chunks finish unevenly — but never
       below :data:`MIN_CHUNK_LANES` lanes per chunk (clamped so tiny
       batches still spread across all workers rather than landing on
       one).
    """
    env = os.environ.get(CHUNK_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value > 0:
            return value
    workers = max(workers, 1)
    target = -(-n_lanes // (4 * workers))
    if target < MIN_CHUNK_LANES:
        # Don't let the balancing target shatter small batches: floor at
        # MIN_CHUNK_LANES, unless even one-chunk-per-worker is finer.
        per_worker = -(-n_lanes // workers)
        target = min(MIN_CHUNK_LANES, per_worker)
    return max(1, target)


def lane_chunks(
    n_lanes: int,
    workers: int,
    *,
    chunk_lanes: int | None = None,
    align: int = 1,
) -> list[tuple[int, int]]:
    """Split a lane axis into contiguous ``(start, stop)`` chunks.

    With ``chunk_lanes=None`` the size comes from
    :func:`default_chunk_lanes` (``$REPRO_MP_CHUNK`` override, else a
    four-chunks-per-worker heuristic floored at
    :data:`MIN_CHUNK_LANES`), rounded up to a multiple of ``align`` —
    image drivers pass the row width so chunks are whole rows/tiles.
    The chunking never affects results (the sweeps are chunk-invariant);
    it only shapes the schedule.
    """
    if n_lanes <= 0:
        return []
    if chunk_lanes is None:
        chunk_lanes = default_chunk_lanes(n_lanes, workers)
    chunk_lanes = max(1, chunk_lanes)
    if align > 1:
        chunk_lanes = -(-chunk_lanes // align) * align
    return [
        (start, min(start + chunk_lanes, n_lanes))
        for start in range(0, n_lanes, chunk_lanes)
    ]


def parallel_lane_significances(
    trace: Any,
    inputs_lo: np.ndarray,
    inputs_hi: np.ndarray,
    *,
    workers: int | None = None,
    chunk_lanes: int | None = None,
    align: int = 1,
    executor: ProcessExecutor | None = None,
    min_parallel_lanes: int = 256,
) -> np.ndarray:
    """Process-parallel twin of ``CachedTrace.lane_significances``.

    ``trace`` is a single-output :class:`~repro.scorpio.trace_cache.CachedTrace`
    (or any object with ``.ct`` and ``.output_ids``); ``inputs_lo``/
    ``inputs_hi`` the ``(n_inputs, L)`` lane bounds.  Returns the full
    ``(n_nodes, L)`` Eq. 11 matrix, **bitwise identical** to the
    sequential ``trace.lane_significances(trace.forward_lanes(...))``.

    The tape is frozen into shared memory once; lane chunks run as
    value-returning tasks on a :class:`ProcessExecutor` (created ad hoc
    from ``workers`` when no ``executor`` is passed), with crash/timeout
    fallback to sequential replay in the parent.  Small batches
    (``L < min_parallel_lanes``) or ``workers=1`` skip the pool entirely
    and run the sequential path — same bits, no process overhead.

    Raises :class:`~repro.ad.replay.GuardDivergenceError` /
    :class:`~repro.intervals.AmbiguousComparisonError` exactly as the
    sequential replay would (a chunk's lanes must all reproduce the
    recorded branch outcomes).
    """
    ct: CompiledTape = trace.ct
    output_ids = trace.output_ids
    if len(output_ids) != 1:
        from repro.ad.replay import ReplayError

        raise ReplayError(
            "lane significance replay supports single-output traces"
        )
    inputs_lo = np.ascontiguousarray(inputs_lo, dtype=np.float64)
    inputs_hi = np.ascontiguousarray(inputs_hi, dtype=np.float64)
    if inputs_lo.ndim != 2 or inputs_lo.shape != inputs_hi.shape:
        raise ValueError(
            "parallel_lane_significances expects matching (n_inputs, L) "
            "bound arrays"
        )
    L = inputs_lo.shape[1]
    n_workers = workers if workers is not None else (
        executor.max_workers if executor is not None else default_workers()
    )
    if n_workers <= 1 or L < min_parallel_lanes:
        lanes = ct.forward_lanes(inputs_lo, inputs_hi)
        alo, ahi = lanes.adjoint({output_ids[0]: 1.0})
        from repro.scorpio.compiled import eq11_from_sweep

        return eq11_from_sweep(
            lanes.value_lo,
            lanes.value_hi,
            alo,
            ahi,
            interval_mode=ct.interval_mode,
        )

    chunks = lane_chunks(L, n_workers, chunk_lanes=chunk_lanes, align=align)
    shared = SharedTape.freeze(ct)
    lo_h = SharedArray.create(inputs_lo)
    hi_h = SharedArray.create(inputs_hi)
    out_h = SharedArray.empty((ct.n, L))
    own_executor = executor is None
    ex = executor or ProcessExecutor(max_workers=n_workers)
    try:
        with _obs_span("mp.lane_significances") as sp:
            sp.set(lanes=L, chunks=len(chunks), workers=n_workers)
            tasks = [
                Task(
                    fn=_sig_chunk,
                    args=(shared, lo_h, hi_h, out_h, start, stop,
                          output_ids[0]),
                    label="mp.sig_chunk",
                    task_id=idx,
                )
                for idx, (start, stop) in enumerate(chunks)
            ]
            ex.run(tasks, [ExecutionMode.ACCURATE] * len(tasks))
            sig = out_h.copy()
    finally:
        if own_executor:
            ex.close()
        out_h.close()
        hi_h.close()
        lo_h.close()
        shared.close()
    return sig
