"""Forward replay vs re-recording, bit for bit.

:meth:`repro.ad.compiled.CompiledTape.forward` promises that replaying a
frozen trace on fresh input intervals reproduces *exactly* the arrays a
fresh recording of the same program would freeze — every value bound,
every edge partial, every outward-rounding point.  Hypothesis generates
the same random straight-line DAG programs as ``test_compiled_tape`` and
we compare a replayed tape against a re-recorded one bitwise, in both
rounding modes, for scalar and lane-batched replays.

The structure guard and the guard re-check get their own tests: an
unreplayable trace must fail *loudly* at plan build
(:class:`~repro.ad.replay.ReplayError` with a message naming the node),
and inputs that would take a different branch than the recording must
raise :class:`~repro.ad.replay.GuardDivergenceError` instead of silently
computing the wrong program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ad import ADouble, CompiledTape, Tape
from repro.ad.replay import GuardDivergenceError, ReplayError
from repro.intervals import AmbiguousComparisonError, Interval
from repro.intervals.rounding import rounded_mode

from test_compiled_tape import N_INPUTS, program, record

points = st.lists(
    st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
    min_size=N_INPUTS,
    max_size=N_INPUTS,
)
radii = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


def centered(point, radius):
    return [Interval.centered(p, radius) for p in point]


def assert_same_arrays(ct, ref):
    assert ct.value_lo.tobytes() == ref.value_lo.tobytes()
    assert ct.value_hi.tobytes() == ref.value_hi.tobytes()
    assert ct.partial_lo.tobytes() == ref.partial_lo.tobytes()
    assert ct.partial_hi.tobytes() == ref.partial_hi.tobytes()


@given(program(), points, radii, points, radii, st.booleans())
@settings(max_examples=60, deadline=None)
def test_forward_matches_rerecording_bitwise(
    steps, pt_a, rad_a, pt_b, rad_b, rounding
):
    """Replaying inputs B over a trace recorded on inputs A freezes the
    exact arrays recording the program on B would."""
    with rounded_mode(rounding):
        tape_a, _ = record(steps, centered(pt_a, rad_a))
        ct = CompiledTape(tape_a)
        ct.forward(centered(pt_b, rad_b))
        tape_b, _ = record(steps, centered(pt_b, rad_b))
        assert_same_arrays(ct, CompiledTape(tape_b))


@given(program(), points, radii, points, radii, st.booleans())
@settings(max_examples=30, deadline=None)
def test_adjoint_over_replayed_state_bitwise(
    steps, pt_a, rad_a, pt_b, rad_b, rounding
):
    """The reverse sweep on replayed state matches the object sweep on a
    fresh recording — forward + adjoint composes bit-identically."""
    with rounded_mode(rounding):
        tape_a, regs = record(steps, centered(pt_a, rad_a))
        out = regs[-1].node.index
        ct = CompiledTape(tape_a)
        ct.forward(centered(pt_b, rad_b))
        lo, hi = ct.adjoint({out: 1.0})
        tape_b, _ = record(steps, centered(pt_b, rad_b))
        ref = Tape.adjoint(tape_b, {out: 1.0})
        for k, r in enumerate(ref):
            iv = r if isinstance(r, Interval) else Interval(float(r), float(r))
            assert np.float64(lo[k]).tobytes() == np.float64(iv.lo).tobytes()
            assert np.float64(hi[k]).tobytes() == np.float64(iv.hi).tobytes()


@given(
    program(),
    st.lists(st.tuples(points, radii), min_size=1, max_size=4),
    st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_forward_lanes_per_lane_bitwise(steps, lane_specs, rounding):
    """Every lane of a batched replay equals the scalar replay (and hence
    a recording) of that lane's inputs — values, partials and adjoints."""
    with rounded_mode(rounding):
        first_pt, first_rad = lane_specs[0]
        tape, regs = record(steps, centered(first_pt, first_rad))
        out = regs[-1].node.index
        ct = CompiledTape(tape)

        ivs = [centered(pt, rad) for pt, rad in lane_specs]
        lo = np.array([[iv.lo for iv in lane] for lane in ivs]).T
        hi = np.array([[iv.hi for iv in lane] for lane in ivs]).T
        lanes = ct.forward_lanes(lo, hi)
        alo, ahi = lanes.adjoint({out: 1.0})

        for j, lane in enumerate(ivs):
            ct.forward(lane)
            assert lanes.value_lo[:, j].tobytes() == ct.value_lo.tobytes()
            assert lanes.value_hi[:, j].tobytes() == ct.value_hi.tobytes()
            assert lanes.partial_lo[:, j].tobytes() == ct.partial_lo.tobytes()
            assert lanes.partial_hi[:, j].tobytes() == ct.partial_hi.tobytes()
            slo, shi = ct.adjoint({out: 1.0})
            assert alo[:, j].tobytes() == slo.tobytes()
            assert ahi[:, j].tobytes() == shi.tobytes()


@given(program(), points, radii, points, radii)
@settings(max_examples=20, deadline=None)
def test_forward_accepts_node_index_mapping(steps, pt_a, rad_a, pt_b, rad_b):
    tape, _ = record(steps, centered(pt_a, rad_a))
    ct = CompiledTape(tape)
    by_index = dict(zip(ct.input_nodes, centered(pt_b, rad_b)))
    ct.forward(by_index)
    ref = CompiledTape(record(steps, centered(pt_b, rad_b))[0])
    assert_same_arrays(ct, ref)


class TestStructureGuard:
    """Unreplayable traces are rejected with a message naming the cause."""

    def test_scalar_tape_rejected(self):
        tape = Tape()
        with tape:
            a = ADouble.input(2.0, label="a")
            b = ADouble.input(3.0, label="b")
            _ = a * b + a
        with pytest.raises(ReplayError, match="interval-mode"):
            CompiledTape(tape).forward([Interval(1, 2), Interval(3, 4)])

    def test_wrong_input_count(self):
        tape = Tape()
        with tape:
            a = ADouble.input(Interval.centered(2.0, 0.1), label="a")
            b = ADouble.input(Interval.centered(3.0, 0.1), label="b")
            _ = a * b
        ct = CompiledTape(tape)
        with pytest.raises(ValueError, match="2 inputs"):
            ct.forward([Interval(1, 2)])
        with pytest.raises(ValueError, match="2 inputs"):
            ct.forward_lanes(np.zeros((1, 3)), np.zeros((1, 3)))

    def test_replay_error_is_runtime_error(self):
        # Callers catch RuntimeError to fall back to recording.
        assert issubclass(ReplayError, RuntimeError)
        assert issubclass(GuardDivergenceError, RuntimeError)


class TestGuardRecheck:
    """A recorded branch must decide the same way on replay inputs."""

    def _branching_tape(self, a_iv, b_iv):
        tape = Tape()
        with tape:
            a = ADouble.input(a_iv, label="a")
            b = ADouble.input(b_iv, label="b")
            y = a * b if a < b else a + b
        return tape, y

    def test_same_branch_replays(self):
        tape, y = self._branching_tape(
            Interval.centered(1.0, 0.1), Interval.centered(3.0, 0.1)
        )
        ct = CompiledTape(tape)
        fresh = [Interval.centered(0.5, 0.2), Interval.centered(2.0, 0.2)]
        ct.forward(fresh)
        ref, _ = self._branching_tape(*fresh)
        assert_same_arrays(ct, CompiledTape(ref))

    def test_flipped_branch_raises(self):
        tape, _ = self._branching_tape(
            Interval.centered(1.0, 0.1), Interval.centered(3.0, 0.1)
        )
        ct = CompiledTape(tape)
        with pytest.raises(GuardDivergenceError, match="another"):
            ct.forward(
                [Interval.centered(5.0, 0.1), Interval.centered(3.0, 0.1)]
            )

    def test_ambiguous_branch_raises_like_recording(self):
        tape, _ = self._branching_tape(
            Interval.centered(1.0, 0.1), Interval.centered(3.0, 0.1)
        )
        ct = CompiledTape(tape)
        overlapping = [Interval(0.0, 4.0), Interval(2.0, 3.0)]
        with pytest.raises(AmbiguousComparisonError):
            ct.forward(overlapping)
        with pytest.raises(AmbiguousComparisonError):
            self._branching_tape(*overlapping)

    def test_lane_batch_cannot_split_branches(self):
        tape, _ = self._branching_tape(
            Interval.centered(1.0, 0.1), Interval.centered(3.0, 0.1)
        )
        ct = CompiledTape(tape)
        # Lane 0 keeps the recorded branch, lane 1 flips it.
        lo = np.array([[0.9, 4.9], [2.9, 2.9]])
        hi = np.array([[1.1, 5.1], [3.1, 3.1]])
        with pytest.raises(GuardDivergenceError):
            ct.forward_lanes(lo, hi)

    def test_check_guards_opt_out(self):
        tape, _ = self._branching_tape(
            Interval.centered(1.0, 0.1), Interval.centered(3.0, 0.1)
        )
        ct = CompiledTape(tape)
        ct.forward(
            [Interval.centered(5.0, 0.1), Interval.centered(3.0, 0.1)],
            check_guards=False,
        )
