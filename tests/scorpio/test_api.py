"""Tests for the Analysis session (Table 1 macros)."""

import pytest

from repro.ad import ADouble
from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.scorpio import Analysis, analyse_function
from repro.scorpio.api import AnalysisStateError


class TestInputMacro:
    def test_interval_spec(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1), name="x")
        assert x.value == Interval(0, 1)
        assert x.node.label == "x"

    def test_lo_hi_spec(self):
        an = Analysis()
        with an:
            x = an.input(0.5, lo=0.0, hi=1.0)
        assert x.value == Interval(0, 1)

    def test_lo_without_hi_rejected(self):
        an = Analysis()
        with an:
            with pytest.raises(ValueError):
                an.input(0.5, lo=0.0)

    def test_width_spec(self):
        an = Analysis()
        with an:
            x = an.input(1.0, width=1.0)
        assert x.value == Interval(0.5, 1.5)

    def test_scalar_spec_degenerate(self):
        an = Analysis()
        with an:
            x = an.input(2.0)
        assert x.value == Interval(2.0, 2.0)

    def test_default_names(self):
        an = Analysis()
        with an:
            a = an.input(1.0)
            b = an.input(2.0)
        assert a.node.label == "x0" and b.node.label == "x1"


class TestIntermediateOutputMacros:
    def test_intermediate_labels_node(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1))
            z = an.intermediate(x * 2.0, "z")
        assert z.node.label == "z"

    def test_intermediate_rejects_plain_values(self):
        an = Analysis()
        with an:
            an.input(1.0)
            with pytest.raises(TypeError):
                an.intermediate(3.0, "z")

    def test_output_rejects_plain_values(self):
        an = Analysis()
        with an:
            an.input(1.0)
            with pytest.raises(TypeError):
                an.output(3.0)

    def test_foreign_tape_rejected(self):
        an1 = Analysis()
        with an1:
            x1 = an1.input(1.0)
        an2 = Analysis()
        with an2:
            an2.input(1.0)
            with pytest.raises(AnalysisStateError):
                an2.intermediate(x1, "oops")


class TestAnalyse:
    def test_requires_inputs(self):
        an = Analysis()
        with an:
            pass
        with pytest.raises(AnalysisStateError, match="inputs"):
            an.analyse()

    def test_requires_outputs(self):
        an = Analysis()
        with an:
            an.input(1.0)
        with pytest.raises(AnalysisStateError, match="outputs"):
            an.analyse()

    def test_result_cached(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1))
            an.output(x * 2.0)
        assert an.analyse() is an.analyse()

    def test_simplify_flag(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1))
            acc = ADouble.constant(0.0)
            for _ in range(3):
                acc = acc + x
            an.output(acc)
        report = an.analyse(simplify=False)
        assert len(report.simplified_graph) == len(report.raw_graph)

    def test_vector_outputs_use_vector_mode(self):
        # y1 = u, y2 = -u: the scalar summed-seed adjoint of u would cancel
        # to 0; vector mode must keep u significant.
        an = Analysis()
        with an:
            x = an.input(Interval(1.0, 2.0))
            u = an.intermediate(x * 3.0, "u")
            an.output(u + 0.0, name="y1")
            an.output(-u, name="y2")
        report = an.analyse()
        assert report.significance_of("u") > 1.0


class TestAnalyseFunction:
    def test_interval_specs(self):
        report = analyse_function(
            lambda x: op.sin(x), [Interval(0.0, 1.0)], names=["x"]
        )
        assert report.input_significances()["x"] > 0

    def test_tuple_specs(self):
        report = analyse_function(lambda x: x * x, [(1.0, 2.0)])
        assert len(report.input_ids) == 1

    def test_scalar_specs(self):
        report = analyse_function(lambda x, y: x + y, [1.0, 2.0])
        assert len(report.input_ids) == 2

    def test_vector_result(self):
        report = analyse_function(
            lambda x: (x * 2.0, x * 3.0), [Interval(0, 1)]
        )
        assert len(report.output_ids) == 2

    def test_names_applied(self):
        report = analyse_function(
            lambda a, b: a * b,
            [Interval(0, 1), Interval(1, 2)],
            names=["alpha", "beta"],
        )
        assert set(report.input_significances()) == {"alpha", "beta"}
