#!/usr/bin/env python
"""Autotuning the quality knob across benchmarks.

The paper's runtime exposes a single knob — ``taskwait(ratio=…)`` — "to
enforce a minimum quality in the quality / performance-energy
optimization space".  This example closes the loop the way a deployment
would: give the tuner a quality target (or an energy budget) and let it
find the knob setting, per benchmark.

Run:  python examples/autotuning.py [--size 128]
"""

import argparse

from repro.images import natural_image, radial_scene
from repro.kernels.dct import dct_roundtrip_reference, dct_significance
from repro.kernels.fisheye import (
    default_config,
    fisheye_reference,
    fisheye_significance,
    make_fisheye_input,
)
from repro.kernels.sobel import sobel_reference, sobel_significance
from repro.metrics import psnr
from repro.runtime import best_quality_under_energy, min_ratio_for_quality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--target-psnr", type=float, default=35.0)
    args = parser.parse_args()

    image = natural_image(args.size, args.size, seed=5)
    config = default_config(args.size, max(args.size * 3 // 4, 32))
    scene = radial_scene(config.out_width, config.out_height, seed=11)
    fisheye_input = make_fisheye_input(scene, config)

    benchmarks = {
        "sobel": (
            sobel_reference(image),
            lambda ratio: sobel_significance(image, ratio),
        ),
        "dct": (
            dct_roundtrip_reference(image),
            lambda ratio: dct_significance(image, ratio),
        ),
        "fisheye": (
            fisheye_reference(fisheye_input, config),
            lambda ratio: fisheye_significance(fisheye_input, config, ratio),
        ),
    }

    print(f"== minimum ratio for >= {args.target_psnr:.0f} dB ==")
    evaluators = {}
    for name, (reference, run_fn) in benchmarks.items():
        def evaluate(ratio, run_fn=run_fn, reference=reference):
            run = run_fn(ratio)
            return min(psnr(reference, run.output), 99.0), run.joules

        evaluators[name] = evaluate
        result = min_ratio_for_quality(evaluate, args.target_psnr)
        flag = "" if result.satisfied else "  (best effort)"
        print(
            f"  {name:<8} ratio={result.ratio:5.3f}  "
            f"quality={result.quality:6.2f} dB  "
            f"energy={result.energy:7.1f} J  probes={len(result.probes)}{flag}"
        )

    print("\n== best quality under 60% of full energy ==")
    for name, evaluate in evaluators.items():
        full_energy = evaluate(1.0)[1]
        result = best_quality_under_energy(evaluate, 0.6 * full_energy)
        flag = "" if result.satisfied else "  (over budget: cheapest point)"
        print(
            f"  {name:<8} ratio={result.ratio:5.3f}  "
            f"quality={result.quality:6.2f} dB  "
            f"energy={result.energy:7.1f} J "
            f"(budget {0.6 * full_energy:.0f} J){flag}"
        )


if __name__ == "__main__":
    main()
