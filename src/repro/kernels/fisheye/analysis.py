"""Significance analysis of the fisheye kernels (Figures 5 and 6).

**InverseMapping (Figure 5).**  For each sampled output pixel, the true
source coordinates are computed with InverseMapping, then registered as
*inputs with a fixed ±half-pixel imprecision interval* — the kind of
coordinate error the approximate (interpolated-coordinates) task version
introduces — and propagated through BicubicInterp on the actual input
image.  The resulting significance of the coordinates grows toward the
image border: the fisheye input compresses the scene periphery, so a
fixed-size coordinate error there sweeps across more content ("computing
coordinates for pixels near the border is more sensitive to imprecision",
Section 4.1.3).

**BicubicInterp (Figure 6).**  Register the 16 window pixels as inputs
(± half gray level), analyse the interpolated value over a grid of
fractional positions, and aggregate per symmetric pixel pair; the inner
2x2 pairs (c, e) come out the most significant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.intervals import Interval
from repro.scorpio import Analysis, CachedTrace

from .bicubic import PIXEL_PAIRS, bicubic_interp
from .geometry import LensConfig, inverse_map_point

__all__ = [
    "InverseMappingAnalysis",
    "analyse_inverse_mapping",
    "coordinate_significance_vec",
    "coordinate_significance_map",
    "BicubicAnalysis",
    "analyse_bicubic",
]


@dataclass
class InverseMappingAnalysis:
    """Figure 5 data: coordinate significance per sampled output pixel."""

    significance: np.ndarray  # (grid_h, grid_w), max-normalised
    xs: np.ndarray  # output-pixel x of each grid sample
    ys: np.ndarray  # output-pixel y of each grid sample

    def radial_profile(self, config: LensConfig, bins: int = 8) -> list[float]:
        """Mean significance per normalised-radius bin (should increase)."""
        cx, cy = config.out_center
        r_max = math.hypot(cx, cy)
        radii = np.hypot(self.xs - cx, self.ys - cy) / r_max
        profile = []
        for b in range(bins):
            mask = (radii >= b / bins) & (radii < (b + 1) / bins)
            profile.append(
                float(self.significance[mask].mean()) if mask.any() else math.nan
            )
        return profile


def _pixel_significance(
    config: LensConfig,
    input_image: np.ndarray,
    x: float,
    y: float,
    coord_uncertainty: float = 0.5,
) -> float:
    """Coordinate-imprecision significance of one output pixel."""
    # The recorded trace fixes the coordinates (and hence the window
    # selection — control flow) at their true profile values.
    mx, my = inverse_map_point(config, x, y)
    ix = int(math.floor(mx))
    iy = int(math.floor(my))
    h, w = input_image.shape
    window = [
        [
            float(
                input_image[
                    min(max(iy + r - 1, 0), h - 1),
                    min(max(ix + c - 1, 0), w - 1),
                ]
            )
            for c in range(4)
        ]
        for r in range(4)
    ]
    # Centred form: interpolate deviations from the window mean.  The
    # cubic weights sum to 1, so mathematically this changes nothing; in
    # interval arithmetic it is essential — without centring, the weight
    # enclosures multiply the absolute pixel level (~128) instead of the
    # local variation, and the content-gradient signal that Figure 5
    # measures drowns in enclosure slack.
    mean = sum(sum(row) for row in window) / 16.0
    window = [[p - mean for p in row] for row in window]

    # Register the *fractional* sub-pixel coordinates rather than the
    # absolute ones: Eq. 11's interval product is a worst case whose width
    # scales with the variable's absolute magnitude (the paper's own
    # overestimation caveat, Section 2.1).  Absolute pixel coordinates
    # (~hundreds) would drown the derivative signal in that artefact;
    # the fractional coordinate carries exactly the same imprecision.
    an = Analysis()
    with an:
        tx = an.input(mx - ix, width=2.0 * coord_uncertainty, name="x_frac")
        ty = an.input(my - iy, width=2.0 * coord_uncertainty, name="y_frac")
        value = bicubic_interp(window, tx, ty)
        an.output(value, name="pixel")
    report = an.analyse(simplify=False)
    sigs = report.input_significances()
    return sigs["x_frac"] + sigs["y_frac"]


def _gather_windows(
    config: LensConfig,
    input_image: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Profile pass shared by the batched engines: for every output pixel,
    the fractional source coordinates and the (centred) 4x4 window.

    Returns ``(fx, fy, windows)`` with shapes ``(n,)``, ``(n,)`` and
    ``(n, 4, 4)``.
    """
    input_image = np.asarray(input_image, dtype=np.float64)
    h, w = input_image.shape
    xs = np.asarray(xs, dtype=np.float64).ravel()
    ys = np.asarray(ys, dtype=np.float64).ravel()
    n = xs.size
    fx = np.empty(n)
    fy = np.empty(n)
    windows = np.empty((n, 4, 4))
    for k in range(n):
        mx, my = inverse_map_point(config, float(xs[k]), float(ys[k]))
        ix = int(math.floor(mx))
        iy = int(math.floor(my))
        win = np.array(
            [
                [
                    input_image[
                        min(max(iy + r - 1, 0), h - 1),
                        min(max(ix + c - 1, 0), w - 1),
                    ]
                    for c in range(4)
                ]
                for r in range(4)
            ]
        )
        windows[k] = win - win.mean()
        fx[k] = mx - ix
        fy[k] = my - iy
    return fx, fy, windows


def coordinate_significance_vec(
    config: LensConfig,
    input_image: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    coord_uncertainty: float = 0.5,
) -> np.ndarray:
    """Batched coordinate-imprecision significance for many output pixels.

    Every ``(xs[k], ys[k])`` output pixel becomes one lane of a single
    batched tape: the per-lane fractional source coordinates are the two
    interval inputs, the per-lane (centred) 4x4 windows enter as passive
    lane constants, and one reverse sweep yields the Figure 5 significance
    of every sampled pixel at once.  Mirrors
    :func:`_pixel_significance` lane-for-lane.
    """
    from repro.vec import IntervalArray, VAnalysis

    fx, fy, windows = _gather_windows(config, input_image, xs, ys)
    n = fx.size
    va = VAnalysis(lane_shape=(n,))
    with va:
        tx = va.input(
            IntervalArray.centered(fx, coord_uncertainty), name="x_frac"
        )
        ty = va.input(
            IntervalArray.centered(fy, coord_uncertainty), name="y_frac"
        )
        window = [[windows[:, r, c] for c in range(4)] for r in range(4)]
        value = bicubic_interp(window, tx, ty)
        va.output(value, name="pixel")
    sigs = va.analyse().input_significances()
    return sigs["x_frac"] + sigs["y_frac"]


def _record_coordinate_pixel(
    window: np.ndarray, fx: float, fy: float, coord_uncertainty: float
) -> Analysis:
    """Record one bicubic resample with the window pixels *as inputs*.

    The 16 (centred) window values enter as degenerate-interval inputs
    instead of folded constants, which is what makes the recorded trace
    replayable across output pixels: every pixel's window and fractional
    coordinates become one lane of the same 18-input tape.
    """
    an = Analysis()
    with an:
        taped = [
            [
                an.input(
                    Interval(float(window[r, c]), float(window[r, c])),
                    name=f"w_{r}_{c}",
                )
                for c in range(4)
            ]
            for r in range(4)
        ]
        tx = an.input(fx, width=2.0 * coord_uncertainty, name="x_frac")
        ty = an.input(fy, width=2.0 * coord_uncertainty, name="y_frac")
        value = bicubic_interp(taped, tx, ty)
        an.output(value, name="pixel")
    return an


def coordinate_significance_map(
    config: LensConfig,
    input_image: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    coord_uncertainty: float = 0.5,
    *,
    executor=None,
    workers: int | None = None,
    chunk_lanes: int | None = None,
) -> np.ndarray:
    """Replay-many twin of :func:`coordinate_significance_vec`.

    Records the 18-input per-pixel trace once (on the first sampled
    pixel) and replays every other output pixel as one lane of a single
    forward + adjoint sweep over that frozen tape.  With
    ``executor="process"`` the lane sweep is chunked across ``workers``
    processes against a shared-memory copy of the tape
    (:func:`repro.mp.parallel_lane_significances`) — bitwise identical
    to the sequential replay.  Falls back to
    :func:`coordinate_significance_vec` if the trace cannot be replayed
    for some lane (guard divergence).
    """
    from repro.ad.replay import GuardDivergenceError, ReplayError

    fx, fy, windows = _gather_windows(config, input_image, xs, ys)
    n = fx.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    try:
        trace = CachedTrace(
            _record_coordinate_pixel(
                windows[0], float(fx[0]), float(fy[0]), coord_uncertainty
            ),
            simplify=False,
        )
    except ReplayError:
        return coordinate_significance_vec(
            config, input_image, xs, ys, coord_uncertainty
        )
    # Lane bounds in tape input order: w_0_0 .. w_3_3, x_frac, y_frac.
    flat = windows.reshape(n, 16).T
    lanes_lo = np.concatenate(
        [flat, [fx - coord_uncertainty], [fy - coord_uncertainty]]
    )
    lanes_hi = np.concatenate(
        [flat, [fx + coord_uncertainty], [fy + coord_uncertainty]]
    )
    try:
        if executor is not None:
            from repro.mp import (
                parallel_lane_significances,
                process_requested,
            )
        if executor is not None and process_requested(executor):
            sig = parallel_lane_significances(
                trace,
                lanes_lo,
                lanes_hi,
                workers=workers,
                chunk_lanes=chunk_lanes,
                executor=None if isinstance(executor, str) else executor,
            )
        else:
            sig = trace.lane_significances(
                trace.forward_lanes(lanes_lo, lanes_hi)
            )
    except GuardDivergenceError:
        return coordinate_significance_vec(
            config, input_image, xs, ys, coord_uncertainty
        )
    return (
        sig[trace.label_index("x_frac")] + sig[trace.label_index("y_frac")]
    )


def analyse_inverse_mapping(
    input_image: np.ndarray,
    config: LensConfig,
    grid: tuple[int, int] = (12, 16),
    jitter_samples: int = 4,
    seed: int = 17,
    vec: bool = False,
    executor=None,
    workers: int | None = None,
) -> InverseMappingAnalysis:
    """Figure 5: coordinate significance over a grid of output pixels.

    Each grid cell's significance is the mean over ``jitter_samples``
    randomly jittered pixels inside the cell, averaging out the phase of
    the scene content so the radial envelope of the lens shows through.

    With ``vec=True`` all ``grid_h * grid_w * jitter_samples`` pixels are
    analysed as lanes of one batched tape (same jittered positions, one
    reverse sweep total) instead of one scalar tape each.  With
    ``executor="process"`` the pixels are lanes of one *replayed* trace
    (:func:`coordinate_significance_map`) fanned out across ``workers``
    processes.
    """
    input_image = np.asarray(input_image, dtype=np.float64)
    gh, gw = grid
    margin = 2.0
    xs = np.linspace(margin, config.out_width - 1 - margin, gw)
    ys = np.linspace(margin, config.out_height - 1 - margin, gh)
    cell_w = (config.out_width - 2 * margin) / gw
    cell_h = (config.out_height - 2 * margin) / gh
    rng = np.random.default_rng(seed)
    xs_grid, ys_grid = np.meshgrid(xs, ys)
    # Jittered sample positions, drawn in the same rng order regardless of
    # engine so scalar and batched runs analyse identical pixels.
    px_all = np.empty((gh, gw, jitter_samples))
    py_all = np.empty((gh, gw, jitter_samples))
    for j in range(gh):
        for i in range(gw):
            for s in range(jitter_samples):
                px_all[j, i, s] = np.clip(
                    xs_grid[j, i] + rng.uniform(-cell_w / 2, cell_w / 2),
                    margin,
                    config.out_width - 1 - margin,
                )
                py_all[j, i, s] = np.clip(
                    ys_grid[j, i] + rng.uniform(-cell_h / 2, cell_h / 2),
                    margin,
                    config.out_height - 1 - margin,
                )
    use_process = False
    if executor is not None:
        from repro.mp import process_requested

        use_process = process_requested(executor)
    if use_process:
        lane_sig = coordinate_significance_map(
            config,
            input_image,
            px_all.ravel(),
            py_all.ravel(),
            executor=executor,
            workers=workers,
        )
        sig = lane_sig.reshape(gh, gw, jitter_samples).mean(axis=2)
    elif vec:
        lane_sig = coordinate_significance_vec(
            config, input_image, px_all.ravel(), py_all.ravel()
        )
        sig = lane_sig.reshape(gh, gw, jitter_samples).mean(axis=2)
    else:
        sig = np.zeros((gh, gw), dtype=np.float64)
        for j in range(gh):
            for i in range(gw):
                total = 0.0
                for s in range(jitter_samples):
                    total += _pixel_significance(
                        config,
                        input_image,
                        float(px_all[j, i, s]),
                        float(py_all[j, i, s]),
                    )
                sig[j, i] = total / jitter_samples
    peak = sig.max()
    if peak > 0:
        sig = sig / peak
    return InverseMappingAnalysis(significance=sig, xs=xs_grid, ys=ys_grid)


@dataclass
class BicubicAnalysis:
    """Figure 6 data: per-pair significances."""

    pair_significance: dict[str, float]  # max-normalised, keyed a..h
    pixel_significance: np.ndarray  # (4, 4), max-normalised

    def ranking(self) -> list[str]:
        """Pair letters, most significant first."""
        return sorted(
            self.pair_significance,
            key=lambda k: self.pair_significance[k],
            reverse=True,
        )


def analyse_bicubic(
    window: np.ndarray | None = None,
    positions: int = 5,
    pixel_uncertainty: float = 0.5,
) -> BicubicAnalysis:
    """Figure 6: significance of the 16 window pixels for the output.

    Aggregates over a ``positions x positions`` grid of fractional
    (tx, ty) interpolation positions inside the centre cell, mirroring
    the paper's discretised input-coordinate space.
    """
    if window is None:
        window = np.full((4, 4), 128.0)
    window = np.asarray(window, dtype=np.float64)
    if window.shape != (4, 4):
        raise ValueError(f"expected 4x4 window, got {window.shape}")

    pixel_sig = np.zeros((4, 4), dtype=np.float64)
    offsets = np.linspace(0.1, 0.9, positions)
    for ty in offsets:
        for tx in offsets:
            an = Analysis()
            with an:
                pixels = [
                    [
                        an.input(
                            float(window[r, c]),
                            width=2.0 * pixel_uncertainty,
                            name=f"p_{r}_{c}",
                        )
                        for c in range(4)
                    ]
                    for r in range(4)
                ]
                value = bicubic_interp(pixels, float(tx), float(ty))
                an.output(value, name="pixel")
            sigs = an.analyse(simplify=False).labelled_significances()
            for r in range(4):
                for c in range(4):
                    pixel_sig[r, c] += sigs[f"p_{r}_{c}"]

    pairs = {
        letter: float(pixel_sig[p1] + pixel_sig[p2])
        for letter, (p1, p2) in PIXEL_PAIRS.items()
    }
    peak = max(pairs.values())
    if peak > 0:
        pairs = {k: v / peak for k, v in pairs.items()}
    pk = pixel_sig.max()
    if pk > 0:
        pixel_sig = pixel_sig / pk
    return BicubicAnalysis(pair_significance=pairs, pixel_significance=pixel_sig)
