"""Tests for the Monte-Carlo significance cross-check."""

import math

import pytest

from repro.intervals import Box, Interval
from repro.scorpio import (
    analyse_function,
    perturbation_significance,
    rank_correlation,
    sobol_style_significance,
)
from repro.ad import intrinsics as op


def linear(coeffs):
    def fn(xs):
        return sum(c * x for c, x in zip(coeffs, xs))

    return fn


class TestPerturbation:
    def test_linear_scores_proportional_to_coefficients(self):
        fn = linear([1.0, 5.0, 0.0])
        box = Box([Interval(-1, 1)] * 3)
        scores = perturbation_significance(fn, box, samples=64)
        assert scores[1] > scores[0] > scores[2]
        assert scores[1] == pytest.approx(10.0, rel=0.05)
        assert scores[2] == pytest.approx(0.0, abs=1e-12)

    def test_accepts_interval_sequence(self):
        scores = perturbation_significance(
            linear([2.0]), [Interval(0, 1)], samples=16
        )
        assert scores[0] == pytest.approx(2.0, rel=0.05)

    def test_deterministic_given_seed(self):
        fn = linear([1.0, 2.0])
        box = Box([Interval(0, 1)] * 2)
        a = perturbation_significance(fn, box, samples=32, seed=1)
        b = perturbation_significance(fn, box, samples=32, seed=1)
        assert a == b

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            perturbation_significance(linear([1.0]), [Interval(0, 1)], samples=1)

    def test_endpoints_always_probed(self):
        # With exactly 2 samples the full range must still be measured for
        # monotone functions (endpoints are deterministic probes).
        scores = perturbation_significance(
            linear([3.0]), [Interval(0, 2)], samples=2
        )
        assert scores[0] == pytest.approx(6.0)


class TestSobolStyle:
    def test_ranks_linear_model(self):
        fn = linear([0.5, 4.0, 1.0])
        box = Box([Interval(-1, 1)] * 3)
        scores = sobol_style_significance(fn, box, samples=256)
        assert scores[1] > scores[2] > scores[0]

    def test_irrelevant_input_scores_zero(self):
        fn = linear([1.0, 0.0])
        box = Box([Interval(-1, 1)] * 2)
        scores = sobol_style_significance(fn, box, samples=128)
        assert scores[1] == pytest.approx(0.0, abs=1e-9)


class TestRankCorrelation:
    def test_perfect(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_reversed(self):
        assert rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_constant_vector(self):
        assert rank_correlation([1, 1, 1], [1, 1, 1]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [1, 2])

    def test_short_vectors(self):
        assert rank_correlation([1], [5]) == 1.0


class TestCrossValidation:
    """The paper's future-work idea: MC must agree with IA+AD rankings."""

    def test_rankings_agree_on_weighted_sum(self):
        weights = [0.5, 3.0, 1.5, 0.1]
        box = [Interval(-1, 1)] * 4
        report = analyse_function(
            lambda *xs: sum(w * x for w, x in zip(weights, xs)), box
        )
        ia_scores = [
            report.input_significances()[f"x{i}"] for i in range(4)
        ]
        mc_scores = perturbation_significance(
            linear(weights), Box(box), samples=128
        )
        assert rank_correlation(ia_scores, mc_scores) == pytest.approx(1.0)

    def test_rankings_agree_on_nonlinear_model(self):
        def taped(x, y, z):
            return op.exp(x) + 0.1 * op.sin(y) + 3.0 * z

        def plain(args):
            x, y, z = args
            return math.exp(x) + 0.1 * math.sin(y) + 3.0 * z

        box = [Interval(0, 0.5), Interval(0, 0.5), Interval(0, 0.5)]
        report = analyse_function(taped, box)
        ia_scores = [report.input_significances()[f"x{i}"] for i in range(3)]
        mc_scores = perturbation_significance(plain, Box(box), samples=256)
        assert rank_correlation(ia_scores, mc_scores) >= 0.99
