"""Step S4 of Algorithm 1: eliminate anti-dependence aggregation nodes.

Accumulation statements such as ``res = res + term[i]`` create chains of
add/sub nodes in the DynDFG that merely *aggregate* results — they are not
part of the computation proper (the darker nodes of Figure 3a).  Left in
place they dominate the level structure: every term would sit at a
different BFS distance from the output and the variance scan of step S5
would see one node per level (Figure 3a) instead of all terms on one level
(Figure 3b).

``simplify`` collapses every maximal chain/tree of add/sub nodes, each of
which feeds its whole result into the next (the anti-dependence pattern),
into the chain's final node.  The non-aggregation operands — the actual
terms — become direct parents of that node.  Zero-value constant seeds of
accumulators (``res = 0.0``) that served only the collapsed chain are
dropped as well.
"""

from __future__ import annotations

from dataclasses import replace

from .dyndfg import DFGNode, DynDFG

__all__ = ["simplify", "AGGREGATE_OPS"]

# Operations that can only aggregate (linear accumulation); a chain of
# these with single-consumer links is an anti-dependence artefact.
AGGREGATE_OPS = frozenset({"add", "sub"})


def _is_aggregation_link(parent: DFGNode, child: DFGNode) -> bool:
    return parent.op in AGGREGATE_OPS and child.op in AGGREGATE_OPS


def simplify(graph: DynDFG) -> DynDFG:
    """Return a new graph with aggregation chains collapsed (S4).

    Node ids are preserved; a collapsed chain keeps the id, label,
    significance, value and adjoint of its *final* node (the one nearest
    the output), and records the absorbed ids in ``merged``.
    """
    nodes = {nid: replace(n) for nid, n in graph.nodes.items()}
    consumer_count: dict[int, int] = {nid: 0 for nid in nodes}
    for node in nodes.values():
        for parent in node.parents:
            if parent in consumer_count:
                consumer_count[parent] += 1

    removed: set[int] = set()

    # Process in descending id (reverse execution) order so that the final
    # node of each chain absorbs the whole chain in one pass.
    for nid in sorted(nodes, reverse=True):
        node = nodes[nid]
        if nid in removed or node.op not in AGGREGATE_OPS:
            continue
        merged: list[int] = list(node.merged)
        new_parents: list[int] = []
        frontier = list(node.parents)
        changed = False
        while frontier:
            pid = frontier.pop()
            parent = nodes.get(pid)
            if parent is None or pid in removed:
                continue
            absorb_chain = (
                _is_aggregation_link(parent, node)
                and consumer_count.get(pid, 0) == 1
            )
            # Accumulator seeds (`res = 0.0`) that feed only this chain are
            # aggregation artefacts too — Figure 3b shows no const node.
            absorb_const = (
                parent.op == "const" and consumer_count.get(pid, 0) == 1
            )
            if absorb_chain or absorb_const:
                removed.add(pid)
                merged.append(pid)
                merged.extend(parent.merged)
                frontier.extend(parent.parents)
                changed = True
            else:
                new_parents.append(pid)
        if changed:
            node.parents = tuple(sorted(set(new_parents)))
            node.merged = tuple(sorted(set(merged)))

    # Drop zero-constant accumulator seeds that only fed collapsed chains.
    survivors = {nid: n for nid, n in nodes.items() if nid not in removed}
    still_consumed: set[int] = set()
    for node in survivors.values():
        still_consumed.update(node.parents)
    for nid, node in list(survivors.items()):
        if (
            node.op == "const"
            and nid not in still_consumed
            and nid not in graph.outputs
        ):
            del survivors[nid]
    # Prune dangling parent references (parents that were dropped consts).
    for node in survivors.values():
        node.parents = tuple(p for p in node.parents if p in survivors)

    return DynDFG(survivors.values(), list(graph.outputs))
