"""dco/scorpio — the paper's significance-analysis framework in Python.

Workflow (Algorithm 1):

1.  Wrap the kernel in an :class:`Analysis` session; register inputs with
    their ranges (``INPUT``), tag intermediates (``INTERMEDIATE``) and
    outputs (``OUTPUT``).
2.  ``analyse()`` runs the interval-adjoint reverse sweep, computes every
    node's significance (Eq. 11), simplifies aggregation chains (S4) and
    scans levels for significance variance (S5).
3.  Read the :class:`SignificanceReport` to partition the code into tasks
    and assign task significances for :mod:`repro.runtime`.
"""

from .ablation import SIGNIFICANCE_VARIANTS, score_tape
from .advisor import Suggestion, render_advice, suggest_approximations
from .api import Analysis, analyse_function
from .compare import ReportDiff, compare_reports
from .compiled import (
    TraceStructure,
    analyse_compiled,
    analyse_compiled_tape,
    analyse_replay_lanes,
)
from .decorators import AnalysedFunction, significance
from .tape_store import TapeStore, STORE_VERSION
from .trace_cache import (
    CachedTrace,
    TraceCache,
    TraceDivergenceError,
    op_sequence_hash,
    replay_enabled,
    set_replay_default,
)
from .ranges import RangeStudy, analyse_over_ranges, analyse_with_splitting
from .dyndfg import DFGNode, DynDFG
from .partition import TaskSuggestion, propose_tasks, render_partition
from .montecarlo import (
    perturbation_significance,
    rank_correlation,
    sobol_style_significance,
)
from .report import SignificanceReport
from .serialize import (
    graph_from_dict,
    graph_to_dict,
    report_to_dict,
    report_to_json,
)
from .significance import normalise, significance_map, significance_value
from .simplify import simplify
from .variance import VarianceScan, find_significance_variance, level_variance

__all__ = [
    "Analysis",
    "analyse_function",
    "analyse_compiled",
    "analyse_compiled_tape",
    "analyse_replay_lanes",
    "TraceStructure",
    "CachedTrace",
    "TapeStore",
    "STORE_VERSION",
    "TraceCache",
    "TraceDivergenceError",
    "op_sequence_hash",
    "replay_enabled",
    "set_replay_default",
    "DynDFG",
    "DFGNode",
    "SignificanceReport",
    "significance_value",
    "significance_map",
    "normalise",
    "simplify",
    "find_significance_variance",
    "level_variance",
    "VarianceScan",
    "perturbation_significance",
    "sobol_style_significance",
    "rank_correlation",
    "SIGNIFICANCE_VARIANTS",
    "score_tape",
    "TaskSuggestion",
    "propose_tasks",
    "render_partition",
    "RangeStudy",
    "analyse_over_ranges",
    "analyse_with_splitting",
    "Suggestion",
    "suggest_approximations",
    "render_advice",
    "graph_to_dict",
    "graph_from_dict",
    "report_to_dict",
    "report_to_json",
    "ReportDiff",
    "compare_reports",
    "significance",
    "AnalysedFunction",
]
