"""Property tests: energy accounting invariants under random task sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    AnalyticEnergyModel,
    ExecutionMode,
    Task,
    TaskResult,
    plan_modes,
)

task_spec = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),  # significance
    st.floats(min_value=0.0, max_value=1e6),  # work
    st.floats(min_value=0.0, max_value=1e5),  # approx work
    st.booleans(),  # has approx version
)

MODEL = AnalyticEnergyModel(
    energy_per_op=1e-6, task_overhead=1e-3, static_power=0.0
)


def build(specs):
    return [
        Task(
            fn=lambda: None,
            approx_fn=(lambda: None) if has_approx else None,
            significance=sig,
            work=work,
            approx_work=min(approx, work),
        )
        for sig, work, approx, has_approx in specs
    ]


def energy_at(tasks, ratio):
    modes = plan_modes(tasks, ratio)
    results = [TaskResult(t, m, None, 0.0) for t, m in zip(tasks, modes)]
    return MODEL.measure(results).total


@given(st.lists(task_spec, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_energy_monotone_in_ratio(specs):
    tasks = build(specs)
    energies = [energy_at(tasks, r) for r in (0.0, 0.25, 0.5, 0.75, 1.0)]
    for a, b in zip(energies, energies[1:]):
        assert a <= b + 1e-9


@given(st.lists(task_spec, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_full_ratio_counts_all_work(specs):
    tasks = build(specs)
    expected = sum(t.work for t in tasks) * MODEL.energy_per_op
    expected += len(tasks) * MODEL.task_overhead
    assert energy_at(tasks, 1.0) == expected


@given(st.lists(task_spec, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_overhead_always_charged(specs):
    tasks = build(specs)
    # Even fully dropped groups pay the per-task overhead.
    assert energy_at(tasks, 0.0) >= len(tasks) * MODEL.task_overhead - 1e-12
