"""Task-based, significance-driven DCT (Section 4.1.2).

"We structure DCT using 15 tasks in total, one for each of the diagonals
in Figure 4.  Each task operates on coefficients of the same or similar
significance.  Task significance gradually drops with increasing distance
from the top-left corner."

Each diagonal task computes its coefficients for *every* block of the
image; a dropped task leaves those coefficients zero (the standard way to
approximate a transform).  Quantisation, de-quantisation and inverse DCT
form a second, always-accurate group (they operate on whatever
coefficients exist and the analysis gives them uniformly high
significance).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.runtime import AnalyticEnergyModel, TaskRuntime

from .sequential import (
    BLOCK,
    OPS_PER_COEFFICIENT,
    OPS_RECONSTRUCT_PER_BLOCK,
    basis_tensor,
    blockify,
    roundtrip_from_coefficients,
)

__all__ = [
    "dct_significance",
    "diagonal_cells",
    "diagonal_significance",
    "ENERGY_MODEL",
    "N_DIAGONALS",
]

N_DIAGONALS = 2 * BLOCK - 1  # 15 diagonal tasks, as in the paper

# Calibrated so a fully accurate 256x256 run lands near the paper's ~430 J
# full-accuracy DCT point.  The paper reports ≈0% code overhead for DCT;
# its task overhead is small but nonzero at runtime.
ENERGY_MODEL = AnalyticEnergyModel(
    energy_per_op=2.45e-5,
    task_overhead=0.20,
    static_power=0.0,
)

_BASIS = basis_tensor()


def diagonal_cells(d: int) -> list[tuple[int, int]]:
    """The (v, u) coefficient positions on anti-diagonal ``d``."""
    if not 0 <= d < N_DIAGONALS:
        raise ValueError(f"diagonal index out of range: {d}")
    return [(v, d - v) for v in range(BLOCK) if 0 <= d - v < BLOCK]


def diagonal_significance(d: int) -> float:
    """Task significance of diagonal ``d``.

    Monotonically decreasing with distance from the DC corner, as the
    Figure 4 analysis found; diagonal 0 (DC) is pinned to 1.0 so it always
    executes accurately.
    """
    return (N_DIAGONALS - d) / float(N_DIAGONALS)


def _diagonal_task(
    coeffs: np.ndarray, blocks: np.ndarray, d: int
) -> None:
    """Compute all blocks' coefficients on diagonal ``d``."""
    for v, u in diagonal_cells(d):
        coeffs[:, v, u] = np.einsum("yx,nyx->n", _BASIS[v, u], blocks)


def _reconstruct_task(
    output: np.ndarray,
    coeffs: np.ndarray,
    shape: tuple[int, int],
) -> None:
    """Quantise/de-quantise/IDCT the whole coefficient array."""
    output[:, :] = roundtrip_from_coefficients(coeffs, shape)


def dct_significance(
    image: np.ndarray,
    ratio: float,
    runtime: TaskRuntime | None = None,
) -> KernelRun:
    """Run the significance-driven DCT round-trip at the given ratio."""
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    rt = runtime or TaskRuntime(energy_model=ENERGY_MODEL)

    blocks = blockify(image)
    n_blocks = len(blocks)
    coeffs = np.zeros_like(blocks)
    output = np.zeros((h, w), dtype=np.float64)

    for d in range(N_DIAGONALS):
        cells = len(diagonal_cells(d))
        rt.submit(
            _diagonal_task,
            args=(coeffs, blocks, d),
            significance=diagonal_significance(d),
            label="coefficients",
            work=OPS_PER_COEFFICIENT * cells * n_blocks,
        )
    coeff_group = rt.taskwait("coefficients", ratio=ratio)

    rt.submit(
        _reconstruct_task,
        args=(output, coeffs, (h, w)),
        significance=1.0,
        label="reconstruct",
        work=OPS_RECONSTRUCT_PER_BLOCK * n_blocks,
    )
    recon_group = rt.taskwait("reconstruct", ratio=1.0)

    stats = coeff_group.stats
    stats.total += recon_group.stats.total
    stats.accurate += recon_group.stats.accurate
    stats.executed_work += recon_group.stats.executed_work
    return KernelRun(
        output=output,
        energy=coeff_group.energy + recon_group.energy,
        ratio=ratio,
        variant="significance",
        stats=stats,
    )
