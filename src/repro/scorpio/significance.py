"""Significance of variables for the output — Eq. 11 of the paper.

For a variable with interval value ``[uj]`` and interval adjoint
``∇[uj][y]`` (obtained from the reverse sweep over the DynDFG), the
significance is the width of their interval product::

    S_y(uj) = w([uj] · ∇[uj][y])

The product combines the two questions of Section 2.1: how much the inputs
move ``uj`` (captured by ``[uj]``'s width and position) and how much moving
``uj`` moves the output (captured by the derivative enclosure).  As the
paper notes, the interval product is a worst-case bound and may
overestimate.

For scalar (non-interval) tapes we fall back to ``|uj * ∂y/∂uj|`` — the
first-order Taylor contribution — which is useful for sanity checks but is
not the paper's definition.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.intervals import Interval

__all__ = [
    "significance_value",
    "significance_map",
    "significance_map_vector",
    "normalise",
]


def significance_value(value: Any, adjoint: Any) -> float:
    """Eq. 11 for one node; see module docstring for scalar fallback."""
    if adjoint is None:
        return 0.0
    if isinstance(value, Interval) or isinstance(adjoint, Interval):
        iv = value if isinstance(value, Interval) else Interval(float(value))
        ia = (
            adjoint
            if isinstance(adjoint, Interval)
            else Interval(float(adjoint))
        )
        return (iv * ia).width
    return abs(float(value) * float(adjoint))


def significance_map(nodes: Iterable[Any]) -> dict[int, float]:
    """Significance for every tape/DFG node exposing value+adjoint.

    Accepts :class:`repro.ad.tape.Node` or
    :class:`repro.scorpio.dyndfg.DFGNode` instances (anything with
    ``index``/``id``, ``value`` and ``adjoint`` attributes).
    """
    out: dict[int, float] = {}
    for node in nodes:
        node_id = getattr(node, "index", None)
        if node_id is None:
            node_id = node.id
        out[node_id] = significance_value(node.value, node.adjoint)
    return out


def significance_map_vector(tape: Any, outputs: list[int]) -> dict[int, float]:
    """Vector-mode significance: ``S_y(uj) = Σ_i S_{y_i}(uj)`` (Sec. 2.3).

    Runs :meth:`repro.ad.tape.Tape.adjoint_vector` and applies Eq. 11 to
    every (node, output) pair before summing over outputs — the correct
    single-run treatment of vector functions (per-output adjoints must not
    be summed *before* taking widths, or signed partials cancel).

    As a side effect, each tape node's ``adjoint`` is set to the hull of
    its per-output interval adjoints (for display/graph purposes).
    """
    import numpy as np

    lo, hi = tape.adjoint_vector(outputs)
    interval_mode = any(isinstance(n.value, Interval) for n in tape)
    result: dict[int, float] = {}
    for node in tape:
        alo = lo[node.index]
        ahi = hi[node.index]
        value = node.value
        if isinstance(value, Interval):
            ul, uh = value.lo, value.hi
        else:
            ul = uh = float(value)
        if not interval_mode:
            # Scalar tape: first-order Taylor contribution per output.
            total = float(np.sum(np.abs(ul * alo)))
        elif ul == uh:
            total = float(abs(ul) * np.sum(ahi - alo))
        else:
            p1, p2 = ul * alo, ul * ahi
            p3, p4 = uh * alo, uh * ahi
            pmin = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
            pmax = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
            total = float(np.sum(pmax - pmin))
        result[node.index] = total
        node.adjoint = Interval(float(np.min(alo)), float(np.max(ahi)))
    return result


def normalise(values: Mapping[Any, float]) -> dict[Any, float]:
    """Scale significances to sum to 1 (the Figure 3 presentation).

    An all-zero map is returned unchanged (nothing to normalise).
    """
    total = sum(values.values())
    if total <= 0.0:
        return dict(values)
    return {k: v / total for k, v in values.items()}
