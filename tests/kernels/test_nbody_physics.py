"""Deeper physics validation of the N-Body substrate."""

import math

import numpy as np
import pytest

from repro.kernels.nbody import (
    System,
    forces_full,
    lj_pair_force,
    lj_potential,
    potential_energy,
    simulate_reference,
    velocity_verlet,
)


def two_atoms(separation: float) -> System:
    positions = np.array([[0.0, 0.0, 0.0], [separation, 0.0, 0.0]])
    velocities = np.zeros((2, 3))
    return System(positions=positions, velocities=velocities)


class TestTwoBody:
    def test_equilibrium_is_stationary(self):
        r_min = 2 ** (1 / 6)
        state = simulate_reference(two_atoms(r_min), steps=20, dt=0.002)
        displacement = np.abs(state.positions - two_atoms(r_min).positions)
        assert displacement.max() < 1e-9

    def test_symmetry_preserved(self):
        # Mirror-symmetric initial conditions stay mirror-symmetric.
        state = simulate_reference(two_atoms(1.3), steps=40, dt=0.002)
        centre = state.positions.mean(axis=0)
        assert centre == pytest.approx([0.65, 0.0, 0.0], abs=1e-12)

    def test_oscillation_about_equilibrium(self):
        # Released inside the well, the pair oscillates: the separation
        # crosses the equilibrium distance.
        system = two_atoms(1.3)
        state = system.copy()
        forces = forces_full(state.positions)
        separations = []
        for _ in range(400):
            forces = velocity_verlet(state, forces, 0.004, forces_full)
            separations.append(
                float(np.linalg.norm(state.positions[1] - state.positions[0]))
            )
        r_min = 2 ** (1 / 6)
        assert min(separations) < r_min < max(separations)

    def test_total_energy_conserved_two_body(self):
        system = two_atoms(1.25)
        state = system.copy()
        forces = forces_full(state.positions)

        def total(s):
            return 0.5 * np.sum(s.velocities**2) + potential_energy(s.positions)

        initial = total(state)
        for _ in range(200):
            forces = velocity_verlet(state, forces, 0.002, forces_full)
        assert total(state) == pytest.approx(initial, abs=1e-4)

    def test_momentum_conserved(self):
        system = two_atoms(1.2)
        system.velocities[0] = [0.1, 0.05, -0.02]
        system.velocities[1] = [-0.1, -0.05, 0.02]
        state = simulate_reference(system, steps=50, dt=0.002)
        assert np.allclose(state.velocities.sum(axis=0), 0.0, atol=1e-12)


class TestPairPotentialShape:
    def test_hard_core_repulsion(self):
        assert lj_potential(0.8**2) > 10.0

    def test_long_range_attraction_vanishes(self):
        assert abs(lj_potential(5.0**2)) < 1e-3

    def test_force_direction_consistency(self):
        # Force on i at +x from j at origin: repulsive -> +x, attractive -> -x.
        fx_close, _, _ = lj_pair_force(1.0, 0.0, 0.0)
        fx_far, _, _ = lj_pair_force(2.0, 0.0, 0.0)
        assert fx_close > 0 > fx_far

    def test_rotational_symmetry(self):
        f1 = lj_pair_force(1.3, 0.0, 0.0)
        f2 = lj_pair_force(0.0, 1.3, 0.0)
        assert f1[0] == pytest.approx(f2[1])
        assert f1[1] == f2[0] == 0.0
