"""The paper's headline result (§4.3 / abstract).

"Our framework achieves energy reduction from 31% up to 91% with a mean
of 56% when executing on a multicore x86 platform, by exploiting
significance and approximations to produce acceptable results."

Per benchmark: energy reduction of the fully-approximate execution
relative to the fully-accurate one, plus the min/max/mean summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .figure7 import figure7_all
from .sweep import SweepResult

__all__ = ["HeadlineResult", "headline", "format_headline", "main"]


@dataclass
class HeadlineResult:
    """Per-benchmark and summary energy reductions (fractions)."""

    per_benchmark: dict[str, float]

    @property
    def minimum(self) -> float:
        """Smallest reduction (paper: 31%)."""
        return min(self.per_benchmark.values())

    @property
    def maximum(self) -> float:
        """Largest reduction (paper: 91%)."""
        return max(self.per_benchmark.values())

    @property
    def mean(self) -> float:
        """Mean reduction (paper: 56%)."""
        values = list(self.per_benchmark.values())
        return sum(values) / len(values)


def headline(
    sweeps: dict[str, SweepResult] | None = None, fast: bool = False
) -> HeadlineResult:
    """Compute the headline from Figure 7 sweeps (reusing them if given)."""
    sweeps = sweeps or figure7_all(fast=fast)
    return HeadlineResult(
        per_benchmark={
            name: sweep.energy_reduction for name, sweep in sweeps.items()
        }
    )


def format_headline(result: HeadlineResult) -> str:
    """Render the summary sentence plus the per-benchmark table."""
    lines = ["Headline — energy reduction of full-approximate vs full-accurate"]
    for name, reduction in result.per_benchmark.items():
        lines.append(f"  {name:<14} {reduction * 100:5.1f}%")
    lines.append(
        f"range {result.minimum * 100:.0f}%..{result.maximum * 100:.0f}%, "
        f"mean {result.mean * 100:.0f}%  (paper: 31%..91%, mean 56%)"
    )
    return "\n".join(lines)


def main() -> None:
    """Print the headline summary."""
    print(format_headline(headline()))


if __name__ == "__main__":
    main()
