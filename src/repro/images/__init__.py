"""Synthetic images and PGM I/O (image substrate for the benchmarks)."""

from .pgm import read_pgm, write_pgm
from .synth import (
    checkerboard,
    gradient_image,
    natural_image,
    radial_scene,
    to_uint8,
)

__all__ = [
    "natural_image",
    "checkerboard",
    "radial_scene",
    "gradient_image",
    "to_uint8",
    "read_pgm",
    "write_pgm",
]
