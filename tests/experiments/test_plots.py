"""Tests for the ASCII Figure 7 panels."""

import pytest

from repro.experiments.plots import render_all_panels, render_panel
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.kernels.common import QUALITY_PSNR, QUALITY_REL_ERR


def psnr_sweep():
    points = []
    for ratio, q, e in [(0.0, 20, 50), (0.5, 30, 80), (1.0, 99, 100)]:
        points.append(SweepPoint(ratio, "significance", q, e))
        points.append(SweepPoint(ratio, "perforation", q - 8, e * 0.9))
    return SweepResult("TestBench", QUALITY_PSNR, points)


def error_sweep():
    points = [
        SweepPoint(r, "significance", q, e)
        for r, q, e in [(0.0, 0.05, 10), (1.0, 0.0, 40)]
    ]
    return SweepResult("ErrBench", QUALITY_REL_ERR, points)


class TestRenderPanel:
    def test_contains_benchmark_name_and_legend(self):
        text = render_panel(psnr_sweep())
        assert "TestBench" in text
        assert "quality" in text and "energy" in text

    def test_axis_labels(self):
        text = render_panel(psnr_sweep())
        assert "0.00" in text and "1.00" in text
        assert "(accurate ratio)" in text

    def test_bars_grow_with_quality(self):
        text = render_panel(psnr_sweep(), height=8)
        lines = text.splitlines()
        # Top bar row must contain the full-ratio significance bar only.
        top_data_row = lines[1]
        assert "█" in top_data_row

    def test_both_series_present(self):
        text = render_panel(psnr_sweep())
        assert "░" in text and "*" in text and "o" in text

    def test_error_benchmark_inverted_goodness(self):
        # Lower error -> taller bar: the full-ratio column peaks.
        text = render_panel(error_sweep(), height=6)
        first_data_line = text.splitlines()[1]
        assert "█" in first_data_line  # ratio-1.0 (exact) reaches the top

    def test_no_perforation_series_ok(self):
        text = render_panel(error_sweep())
        body = "\n".join(text.splitlines()[1:-1])  # chart rows only
        assert "░" not in body and "o" not in body
        assert "perf" not in text.splitlines()[0]  # legend omits it

    def test_height_validation(self):
        with pytest.raises(ValueError):
            render_panel(psnr_sweep(), height=1)

    def test_render_all(self):
        text = render_all_panels({"a": psnr_sweep(), "b": error_sweep()})
        assert "TestBench" in text and "ErrBench" in text


class TestCliIntegration:
    def test_figure7_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["figure7", "--benchmark", "blackscholes", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(accurate ratio)" in out

    def test_artifacts_command(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.artifacts as artifacts
        from repro.experiments.figure4 import figure4
        from repro.experiments.figure5 import figure5

        monkeypatch.setattr(
            artifacts, "figure4", lambda: figure4(size=32, samples=2)
        )
        monkeypatch.setattr(
            artifacts,
            "figure5",
            lambda: figure5(width=64, height=48, grid=(4, 5), jitter_samples=2),
        )
        from repro.cli import main

        assert main(["artifacts", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "figure4_dct_map.pgm").exists()
