"""N-Body Lennard-Jones benchmark (paper Section 4.1.4)."""

from .analysis import NBodyAnalysis, analyse_nbody
from .perforated import nbody_perforated
from .regions import RegionGrid, region_significance
from .simulation import (
    EPSILON,
    SIGMA,
    System,
    forces_full,
    lattice_system,
    lj_pair_force,
    lj_potential,
    pair_forces,
    potential_energy,
    simulate_reference,
    velocity_verlet,
)
from .tasks import nbody_significance

__all__ = [
    "SIGMA",
    "EPSILON",
    "System",
    "lattice_system",
    "lj_potential",
    "lj_pair_force",
    "pair_forces",
    "forces_full",
    "potential_energy",
    "velocity_verlet",
    "simulate_reference",
    "RegionGrid",
    "region_significance",
    "nbody_significance",
    "nbody_perforated",
    "analyse_nbody",
    "NBodyAnalysis",
]
