"""Minimal PGM (P2/P5) image I/O.

Lets examples write their inputs/outputs to files viewable anywhere,
without any imaging dependency.  Only 8-bit grayscale is supported — all
the paper's image benchmarks operate on luma.
"""

from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["write_pgm", "read_pgm"]


def write_pgm(
    path: str | pathlib.Path, image: np.ndarray, binary: bool = True
) -> None:
    """Write a (H, W) array as an 8-bit PGM file (clipped/rounded)."""
    arr = np.clip(np.rint(np.asarray(image, dtype=np.float64)), 0, 255).astype(
        np.uint8
    )
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D grayscale image, got shape {arr.shape}")
    height, width = arr.shape
    path = pathlib.Path(path)
    if binary:
        header = f"P5\n{width} {height}\n255\n".encode("ascii")
        path.write_bytes(header + arr.tobytes())
    else:
        lines = [f"P2", f"{width} {height}", "255"]
        for row in arr:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n", encoding="ascii")


def read_pgm(path: str | pathlib.Path) -> np.ndarray:
    """Read a P2 or P5 PGM file into a float64 array in [0, 255]."""
    data = pathlib.Path(path).read_bytes()
    if data[:2] not in (b"P2", b"P5"):
        raise ValueError(f"not a PGM file: magic {data[:2]!r}")
    binary = data[:2] == b"P5"

    # Parse header tokens (magic, width, height, maxval), skipping comments.
    tokens: list[bytes] = []
    pos = 0
    while len(tokens) < 4:
        # Skip whitespace.
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        tokens.append(data[start:pos])
    width, height, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
    if maxval != 255:
        raise ValueError(f"only 8-bit PGM supported, maxval={maxval}")
    if binary:
        pos += 1  # single whitespace after maxval
        pixels = np.frombuffer(
            data, dtype=np.uint8, count=width * height, offset=pos
        )
    else:
        values = data[pos:].split()
        pixels = np.array([int(v) for v in values[: width * height]], dtype=np.uint8)
    return pixels.reshape(height, width).astype(np.float64)
