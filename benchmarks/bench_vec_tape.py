"""repro.vec speedup benchmark: batched vs scalar interval-adjoint runs.

Not a paper figure — the engineering case for the ``repro.vec``
subsystem.  The scalar engine records one tape *per analysed point*; the
batched engine records one array-valued tape for the whole batch and
runs a single lane-parallel reverse sweep.  Both produce rigorous
(outward-rounded) enclosures, so the significance *ordering* must agree
wherever the scalar values are decisively separated.

Asserted while benchmarking:

* 4096-option BlackScholes portfolio: the batched analysis is >= 10x
  faster than 4096 scalar per-option analyses and yields the same block
  ranking (on every pair separated by more than rounding noise);
* Maclaurin series across lanes: per-term ordering matches the scalar
  run in every lane.
"""

import time

import numpy as np
import pytest
from record import record_value

from repro.kernels.blackscholes import make_portfolio
from repro.kernels.blackscholes.analysis import (
    analyse_option,
    analyse_portfolio_vec,
)
from repro.scorpio import Analysis
from repro.vec import VAnalysis

N_OPTIONS = 4096
N_LANES = 256
N_TERMS = 8
_BLOCKS = ("A", "B", "C", "D")


# ----------------------------------------------------------------------
# Maclaurin: one tape per lane vs one batched tape
# ----------------------------------------------------------------------


def _maclaurin_scalar(x_hats):
    """One scalar Analysis per lane (the pre-vec way)."""
    out = []
    for x_hat in x_hats:
        an = Analysis()
        with an:
            x = an.input(float(x_hat), width=0.5, name="x")
            result = None
            for i in range(N_TERMS):
                term = x**i
                an.intermediate(term, f"term{i}")
                result = term if result is None else result + term
            an.output(result, name="y")
        out.append(an.analyse(simplify=False).labelled_significances())
    return out


def _maclaurin_vec(x_hats):
    """All lanes on one batched tape, one reverse sweep."""
    va = VAnalysis(lane_shape=x_hats.shape)
    with va:
        x = va.input(x_hats, width=0.5, name="x")
        result = None
        for i in range(N_TERMS):
            term = x**i
            va.intermediate(term, f"term{i}")
            result = term if result is None else result + term
        va.output(result, name="y")
    return va.analyse().labelled_significances()


@pytest.fixture(scope="module")
def maclaurin_points():
    rng = np.random.default_rng(17)
    return rng.uniform(0.1, 0.7, size=N_LANES)


def test_maclaurin_scalar_loop(benchmark, maclaurin_points):
    reports = benchmark.pedantic(
        _maclaurin_scalar, args=(maclaurin_points,), rounds=2, iterations=1
    )
    assert len(reports) == N_LANES
    benchmark.extra_info["note"] = f"{N_LANES} scalar tapes, {N_TERMS} terms"


def test_maclaurin_vec_batch(benchmark, maclaurin_points):
    lanes = benchmark.pedantic(
        _maclaurin_vec, args=(maclaurin_points,), rounds=5, iterations=1
    )
    # Per-lane term ordering must match the scalar engine's.
    scalar = _maclaurin_scalar(maclaurin_points)
    labels = [f"term{i}" for i in range(N_TERMS)]
    for k in range(N_LANES):
        s_rank = sorted(labels, key=lambda l: scalar[k][l], reverse=True)
        v_rank = sorted(labels, key=lambda l: float(lanes[l][k]), reverse=True)
        assert v_rank == s_rank
    benchmark.extra_info["note"] = f"one batched tape, {N_LANES} lanes"


# ----------------------------------------------------------------------
# BlackScholes: 4096-option portfolio, the issue's acceptance criterion
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_portfolio():
    return make_portfolio(count=N_OPTIONS, seed=23)


def _portfolio_scalar(p):
    return [
        analyse_option(
            float(p.spots[i]),
            float(p.strikes[i]),
            float(p.rates[i]),
            float(p.volatilities[i]),
            float(p.expiries[i]),
        )
        for i in range(p.count)
    ]


def _portfolio_vec(p):
    return analyse_portfolio_vec(
        p.spots, p.strikes, p.rates, p.volatilities, p.expiries
    )


def test_blackscholes_vec_speedup(benchmark, big_portfolio):
    """>=10x over scalar at 4096 options, identical decisive rankings."""
    t0 = time.perf_counter()
    scalar = _portfolio_scalar(big_portfolio)
    t_scalar = time.perf_counter() - t0

    vec_report = benchmark.pedantic(
        _portfolio_vec, args=(big_portfolio,), rounds=3, iterations=1
    )
    t0 = time.perf_counter()
    _portfolio_vec(big_portfolio)
    t_vec = time.perf_counter() - t0

    speedup = t_scalar / t_vec
    benchmark.extra_info["scalar_seconds"] = round(t_scalar, 3)
    benchmark.extra_info["vec_seconds"] = round(t_vec, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "vec.blackscholes_speedup", speedup, unit="x", options=N_OPTIONS
    )
    assert speedup >= 10.0, (
        f"batched sweep only {speedup:.1f}x faster "
        f"({t_scalar:.2f}s scalar vs {t_vec:.2f}s vec)"
    )

    # Same top-k ordering, lane by lane, on decisively separated pairs
    # (blocks C and D tie exactly for many options; the order inside a
    # rounding-noise tie is not meaningful in either engine).
    lanes = vec_report.labelled_significances()
    for i in range(N_OPTIONS):
        for a in _BLOCKS:
            for b in _BLOCKS:
                gap = scalar[i][a] - scalar[i][b]
                if gap > 1e-9 * max(scalar[i][a], scalar[i][b]):
                    assert float(lanes[a][i]) > float(lanes[b][i]), (
                        f"option {i}: scalar ranks {a} above {b} "
                        f"but vec does not"
                    )

    # Per-option block order depends on the market parameters across a
    # draw this wide (the paper's Section 4.1.5 ordering is for its
    # specific option sample — tests/vec checks it there); what must hold
    # distribution-free is that block A dominates on average.
    means = vec_report.mean_significances()
    assert means["A"] == max(means[b] for b in _BLOCKS)
