"""Smoke tests: every bundled example must run end to end.

Examples are loaded by path (the ``examples/`` directory is not a
package) and executed with reduced workload arguments.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(module, argv, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["example"] + argv)
    module.main()


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        run_main(load_example("quickstart"), [], monkeypatch)
        out = capsys.readouterr().out
        assert "term1" in out and "ratio" in out

    def test_significance_explorer(self, capsys, monkeypatch):
        run_main(load_example("significance_explorer"), [], monkeypatch)
        out = capsys.readouterr().out
        assert "rank correlation" in out and "digraph" in out

    def test_image_pipeline(self, capsys, monkeypatch, tmp_path):
        run_main(
            load_example("image_pipeline"),
            ["--size", "64", "--out-dir", str(tmp_path)],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "Sobel" in out and "DCT" in out
        assert (tmp_path / "sobel_approx.pgm").exists()

    def test_molecular_dynamics(self, capsys, monkeypatch):
        run_main(
            load_example("molecular_dynamics"),
            ["--side", "4", "--steps", "2"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "rank correlation" in out and "drift" in out

    def test_risk_engine(self, capsys, monkeypatch):
        run_main(load_example("risk_engine"), ["--count", "1024"], monkeypatch)
        out = capsys.readouterr().out
        assert "ranking" in out and "selective run" in out
        # Tenant behaviour: the repeat analysis must come from the cache
        # and the pricing ratio must come from the service's tuner.
        assert "repeat request served by: replay" in out
        assert "tuned taskwait(ratio=" in out

    def test_streaming_pipeline(self, capsys, monkeypatch):
        run_main(
            load_example("streaming_pipeline"),
            ["--size", "48", "--frames", "6"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "streaming" in out and "mean energy" in out
        # Tenant behaviour: start ratio tuned by the service, metrics
        # scraped at the end of the run.
        assert "service tuned start ratio" in out
        assert "repro_serve_requests_total" in out

    def test_autotuning(self, capsys, monkeypatch):
        run_main(load_example("autotuning"), ["--size", "48"], monkeypatch)
        out = capsys.readouterr().out
        assert "minimum ratio" in out and "best quality" in out
