"""Persistent tape store: compiled traces that survive a process restart.

A :class:`~repro.ad.compiled.CompiledTape` is a handful of flat NumPy
arrays plus a little object metadata (op-name table, labels, recorded
guards, folded-constant aux payloads).  :class:`TapeStore` writes exactly
that to disk — one ``.bin`` file of raw contiguous array bytes and one
``.json`` header describing them — keyed by the kernel-identity hash the
:class:`~repro.scorpio.trace_cache.TraceCache` already uses, in the
spirit of ILAC's variant hashing (every variant keyed by a digest of its
identity, so repeated runs resume instead of recompute).

Loading maps the structure columns straight off the file with
``np.memmap`` (read-only, zero-copy until touched) and gives the tape
private writable copies of the four value/partial columns — the same
split :class:`repro.mp.SharedTape` uses, because the in-place
:meth:`CompiledTape.forward` replay writes those and only those.

The payoff is warm starts: ``TraceCache(store_dir=...)`` (or the
``REPRO_TAPE_DIR`` environment variable via :mod:`repro.serve`) loads a
stored tape on the first request after a restart and serves it as a
*replay* — no re-recording through Python operator overloading, no
object tape, ``X-Repro-Cache: replay`` on a stone-cold service.

Format notes (``STORE_VERSION`` guards all of them):

* the JSON header carries ``repr(key)``, the op-sequence hash, the array
  manifest (dtype/shape/offset/nbytes into the ``.bin``), guards, aux,
  labels and the analysis ids (inputs / intermediates / outputs, delta,
  simplify) — everything :meth:`TraceCache` needs to rebuild a
  :class:`~repro.scorpio.trace_cache.CachedTrace` with no recording;
* floats round-trip exactly through JSON (CPython emits shortest-repr
  floats; ``Infinity``/``NaN`` tokens cover the non-finite lanes), so
  guard thresholds and folded constants reload bit-identical;
* writes are atomic (tmp file + ``os.replace``), ``.bin`` first — the
  header is the commit point, so a torn write is an ordinary miss;
* every load re-derives the op-sequence hash from the mapped arrays and
  refuses the file when it disagrees with the header, so a corrupt or
  half-written blob can never masquerade as a valid trace.

All store errors are soft: ``load`` returns ``None`` and ``save``
returns ``False`` (each counted under ``tape_store.*`` obs metrics); the
cache then records exactly as it would with no store at all.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Mapping, Sequence

import numpy as np

from repro import __version__ as _REPRO_VERSION
from repro.ad.compiled import CompiledTape, _AuxNodes
from repro.intervals import Interval
from repro.obs import metrics as _obs_metrics

__all__ = ["TapeStore", "STORE_VERSION", "store_key_digest"]

#: Bump when the on-disk layout changes; older files become misses.
STORE_VERSION = 1

_C_SAVES = _obs_metrics.counter("tape_store.saves")
_C_LOADS = _obs_metrics.counter("tape_store.loads")
_C_MISSES = _obs_metrics.counter("tape_store.misses")
_C_ERRORS = _obs_metrics.counter("tape_store.errors")

# Column split mirrors repro.mp.shared: structure stays a read-only view
# (memmap here, shm there); value/partial columns get private writable
# copies because CompiledTape.forward mutates them in place.
_STRUCTURE_COLS = (
    "opcodes",
    "value_is_interval",
    "row_ptr",
    "parent_idx",
    "depth",
)
_VALUE_COLS = ("value_lo", "value_hi", "partial_lo", "partial_hi")


def store_key_digest(key: Any) -> str:
    """Filename-safe digest of a cache key (hash-keyed kernel identity)."""
    h = hashlib.blake2b(repr(key).encode("utf-8", "replace"), digest_size=12)
    return h.hexdigest()


# ----------------------------------------------------------------------
# Tagged JSON encoding for the non-array metadata.  Guards are tuples of
# (op, left, rhs, outcome) with rhs an Interval or a node index; aux
# payloads are (const, reflected) / (lo, hi) tuples whose const may be an
# Interval.  JSON has neither tuples nor Intervals, so both get explicit
# tags — anything untagged round-trips as itself.
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    if isinstance(value, Interval):
        return {"__iv__": [value.lo, value.hi]}
    if isinstance(value, tuple):
        return {"__t__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__iv__" in value:
            lo, hi = value["__iv__"]
            return Interval(float(lo), float(hi))
        if "__t__" in value:
            return tuple(_decode(v) for v in value["__t__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def _compiled_op_hash(
    op_names: Sequence[str],
    opcodes: np.ndarray,
    row_ptr: np.ndarray,
    parent_idx: np.ndarray,
    n_guards: int,
) -> str:
    """The compiled-arrays twin of
    :func:`repro.scorpio.trace_cache.op_sequence_hash` — byte-for-byte
    the same digest over the same trace, derived from the SoA columns
    instead of the object tape.  Used as the load-time integrity check.
    """
    h = hashlib.blake2b(digest_size=16)
    ptr = row_ptr.tolist()
    pidx = parent_idx.tolist()
    for j, code in enumerate(opcodes.tolist()):
        h.update(op_names[code].encode("utf-8", "replace"))
        h.update(b"(")
        for p in pidx[ptr[j] : ptr[j + 1]]:
            h.update(str(p).encode("ascii"))
            h.update(b",")
        h.update(b")")
    h.update(b"|guards:")
    h.update(str(n_guards).encode("ascii"))
    return h.hexdigest()


class TapeStore:
    """Directory of serialized compiled traces, one ``.json``+``.bin`` pair
    per cache key.  All methods are best-effort: I/O problems degrade to
    cache misses, never to exceptions in the caller's replay path.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError:
            # An uncreatable root is a store that always misses and
            # never saves (each attempt counted under tape_store.errors)
            # — the cache degrades to plain recording instead of taking
            # the whole service down over a bad REPRO_TAPE_DIR.
            _C_ERRORS.inc()

    def __repr__(self) -> str:
        return f"TapeStore({self.root!r})"

    def paths_for(self, key: Any) -> tuple[str, str]:
        """``(header_path, blob_path)`` this key serializes to."""
        digest = store_key_digest(key)
        stem = os.path.join(self.root, f"tape-{digest}")
        return stem + ".json", stem + ".bin"

    def entries(self) -> list[str]:
        """Digests of every complete (header present) stored tape."""
        out = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return out
        for name in sorted(names):
            if name.startswith("tape-") and name.endswith(".json"):
                out.append(name[len("tape-") : -len(".json")])
        return out

    def has(self, key: Any) -> bool:
        return os.path.exists(self.paths_for(key)[0])

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(self, key: Any, trace: Any) -> bool:
        """Serialize a :class:`CachedTrace`'s compiled tape; False on error.

        The caller is expected to hold the trace's replay lock (the
        value columns are read while serializing); :class:`TraceCache`
        saves right after recording, before any replay can run.
        """
        try:
            self._save(key, trace)
        except Exception:
            _C_ERRORS.inc()
            return False
        _C_SAVES.inc()
        return True

    def _save(self, key: Any, trace: Any) -> None:
        ct: CompiledTape = trace.ct
        header_path, blob_path = self.paths_for(key)
        arrays: dict[str, np.ndarray] = {}
        for col in _STRUCTURE_COLS + _VALUE_COLS:
            arrays[col] = np.ascontiguousarray(getattr(ct, col))
        manifest: dict[str, dict[str, Any]] = {}
        offset = 0
        for col, arr in arrays.items():
            manifest[col] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
            offset += int(arr.nbytes)
        nodes = ct.tape.nodes
        if isinstance(nodes, _AuxNodes):
            aux = dict(nodes._aux)
        else:
            aux = {
                j: node.aux
                for j, node in enumerate(nodes)
                if node.aux is not None
            }
        header = {
            "store_version": STORE_VERSION,
            "repro_version": _REPRO_VERSION,
            "key": repr(key),
            "op_hash": trace.op_hash,
            "op_names": list(ct.op_names),
            "labels": {str(i): lab for i, lab in ct.labels.items()},
            "guards": [_encode(g) for g in ct.tape.guards],
            "aux": {str(i): _encode(v) for i, v in aux.items()},
            "input_ids": list(trace.input_ids),
            "intermediate_ids": list(trace.intermediate_ids),
            "output_ids": list(trace.output_ids),
            "delta": trace.delta,
            "simplify": bool(trace.simplify),
            "arrays": manifest,
            "total_bytes": offset,
        }
        # .bin first, header last: the header is the commit point, so a
        # crash between the two renames leaves a harmless orphan blob.
        fd, tmp_blob = tempfile.mkstemp(dir=self.root, suffix=".bin.tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                for arr in arrays.values():
                    f.write(arr.tobytes())
            os.replace(tmp_blob, blob_path)
        except BaseException:
            try:
                os.unlink(tmp_blob)
            except OSError:
                pass
            raise
        fd, tmp_header = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(header, f, indent=1)
            os.replace(tmp_header, header_path)
        except BaseException:
            try:
                os.unlink(tmp_header)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, key: Any) -> "Any | None":
        """Rebuild the stored :class:`CachedTrace` for ``key``, or None.

        Missing, version-mismatched, truncated or corrupt files are all
        plain misses (counted apart from parse/IO errors); a digest
        mismatch against the header's op hash rejects the file outright.
        """
        header_path, blob_path = self.paths_for(key)
        if not os.path.exists(header_path):
            _C_MISSES.inc()
            return None
        try:
            trace = self._load(header_path, blob_path)
        except Exception:
            _C_ERRORS.inc()
            return None
        if trace is None:
            _C_MISSES.inc()
        else:
            _C_LOADS.inc()
        return trace

    def _load(self, header_path: str, blob_path: str) -> "Any | None":
        from .trace_cache import CachedTrace

        with open(header_path, "r", encoding="utf-8") as f:
            header = json.load(f)
        if header.get("store_version") != STORE_VERSION:
            return None
        manifest = header["arrays"]
        try:
            blob_size = os.path.getsize(blob_path)
        except OSError:
            return None
        if blob_size < int(header["total_bytes"]):
            return None
        cols: dict[str, np.ndarray] = {}
        for col in _STRUCTURE_COLS + _VALUE_COLS:
            spec = manifest[col]
            mm = np.memmap(
                blob_path,
                dtype=np.dtype(spec["dtype"]),
                mode="r",
                offset=int(spec["offset"]),
                shape=tuple(spec["shape"]),
            )
            # Structure columns stay lazily-paged read-only maps; value
            # columns must be private and writable for in-place forward.
            cols[col] = np.array(mm) if col in _VALUE_COLS else mm
        op_names = list(header["op_names"])
        op_hash = _compiled_op_hash(
            op_names,
            cols["opcodes"],
            cols["row_ptr"],
            cols["parent_idx"],
            len(header["guards"]),
        )
        if op_hash != header["op_hash"]:
            return None
        ct = CompiledTape.from_arrays(
            opcodes=cols["opcodes"],
            op_names=op_names,
            value_lo=cols["value_lo"],
            value_hi=cols["value_hi"],
            value_is_interval=cols["value_is_interval"],
            row_ptr=cols["row_ptr"],
            parent_idx=cols["parent_idx"],
            partial_lo=cols["partial_lo"],
            partial_hi=cols["partial_hi"],
            depth=cols["depth"],
            labels={int(i): lab for i, lab in header["labels"].items()},
            guards=[_decode(g) for g in header["guards"]],
            aux={int(i): _decode(v) for i, v in header["aux"].items()},
        )
        return CachedTrace.from_compiled(
            ct,
            input_ids=[int(i) for i in header["input_ids"]],
            intermediate_ids=[int(i) for i in header["intermediate_ids"]],
            output_ids=[int(i) for i in header["output_ids"]],
            delta=float(header["delta"]),
            simplify=bool(header["simplify"]),
            op_hash=header["op_hash"],
        )
