"""Figure 6: significance of the bicubic 4x4 neighbourhood pixel pairs.

The interpolated pixel lies in the centre cell; the eight symmetric pixel
pairs (a-h) get their significance from the analysis, and the two inner
2x2 pairs (c and e) dominate — the basis for the approximate (bilinear)
task version.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.fisheye import BicubicAnalysis, analyse_bicubic
from repro.kernels.fisheye.bicubic import PIXEL_PAIRS

__all__ = ["Figure6", "figure6", "main"]


@dataclass
class Figure6:
    """Pair significances plus the pixel map."""

    analysis: BicubicAnalysis

    def to_text(self) -> str:
        """Pair table (letters as in the paper's subfigures)."""
        lines = ["Figure 6 — bicubic pixel-pair significances (normalised)"]
        for letter in sorted(PIXEL_PAIRS):
            pair = PIXEL_PAIRS[letter]
            value = self.analysis.pair_significance[letter]
            lines.append(f"  ({letter}) pixels {pair[0]} and {pair[1]}: {value:.3f}")
        lines.append("ranking: " + " > ".join(self.analysis.ranking()))
        lines.append("4x4 pixel map:")
        for row in self.analysis.pixel_significance:
            lines.append("  " + " ".join(f"{v:5.3f}" for v in row))
        return "\n".join(lines)


def figure6(positions: int = 5) -> Figure6:
    """Run the Figure 6 analysis over a grid of fractional positions."""
    return Figure6(analysis=analyse_bicubic(positions=positions))


def main() -> None:
    """Print the Figure 6 table."""
    print(figure6().to_text())


if __name__ == "__main__":
    main()
