"""The Dynamic Data-Flow Graph view used by Algorithm 1.

:class:`~repro.ad.tape.Tape` is the raw recording; :class:`DynDFG` is the
analysis-facing graph of Figure 2 in the paper: a DAG whose sinks are the
registered outputs (level ``L = 0``), whose sources are the registered
inputs, and whose interior nodes are intermediate variables.  Nodes carry
the forward interval value, the adjoint ``∇[uj][y]`` and the significance
``S_y(uj)`` computed from them (Eq. 11).

Levels are breadth-first distances from the outputs (the paper's BFS in
step S5): ``level(v) = 1 + min(level(c))`` over consumers ``c`` of ``v``.
Nodes that do not reach any output (dead code under the recorded control
flow) get level ``None`` and are excluded from the level scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator

from repro.ad.tape import Tape

__all__ = ["DFGNode", "DynDFG"]


@dataclass
class DFGNode:
    """One vertex of the analysis graph (see module docstring)."""

    id: int
    op: str
    label: str | None
    value: Any
    adjoint: Any
    significance: float | None
    parents: tuple[int, ...]
    level: int | None = None
    merged: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_input(self) -> bool:
        """True for registered inputs (graph sources)."""
        return self.op == "input"

    @property
    def display_name(self) -> str:
        """Label if registered, otherwise op#id."""
        return self.label if self.label else f"{self.op}#{self.id}"

    def __repr__(self) -> str:
        sig = (
            f", S={self.significance:.4g}"
            if self.significance is not None
            else ""
        )
        return f"DFGNode({self.display_name}, level={self.level}{sig})"


class DynDFG:
    """A DAG of :class:`DFGNode` keyed by tape index.

    Construct with :meth:`from_tape` after an adjoint sweep, or receive one
    from :func:`repro.scorpio.simplify.simplify` /
    :func:`repro.scorpio.variance.find_significance_variance`.
    """

    def __init__(
        self,
        nodes: Iterable[DFGNode],
        outputs: Iterable[int],
        *,
        levels: dict[int, int] | None = None,
    ):
        self.nodes: dict[int, DFGNode] = {n.id: n for n in nodes}
        self.outputs: list[int] = list(outputs)
        missing = [o for o in self.outputs if o not in self.nodes]
        if missing:
            raise ValueError(f"output ids {missing} not present in graph")
        if levels is None:
            self._assign_levels()
        else:
            # Precomputed BFS levels (the compiled pipeline computes them
            # on arrays); nodes absent from the mapping are unreachable.
            for node in self.nodes.values():
                node.level = levels.get(node.id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tape(
        cls,
        tape: Tape,
        outputs: Iterable[int],
        significances: dict[int, float] | None = None,
    ) -> "DynDFG":
        """Snapshot a tape (post adjoint sweep) into an analysis graph."""
        significances = significances or {}
        nodes = [
            DFGNode(
                id=n.index,
                op=n.op,
                label=n.label,
                value=n.value,
                adjoint=n.adjoint,
                significance=significances.get(n.index),
                parents=n.parents,
            )
            for n in tape
        ]
        return cls(nodes, outputs)

    def copy(self) -> "DynDFG":
        """Deep-enough copy (nodes are re-created; values shared)."""
        return DynDFG(
            [replace(n) for n in self.nodes.values()], list(self.outputs)
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def children_map(self) -> dict[int, list[int]]:
        """Forward adjacency (node id -> consumer ids), in id order."""
        children: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for parent in node.parents:
                if parent in children:
                    children[parent].append(node.id)
        return children

    def _assign_levels(self) -> None:
        children = self.children_map()
        for node in self.nodes.values():
            node.level = None
        queue: deque[int] = deque()
        for out in self.outputs:
            self.nodes[out].level = 0
            queue.append(out)
        while queue:
            nid = queue.popleft()
            node = self.nodes[nid]
            assert node.level is not None
            for parent in node.parents:
                pnode = self.nodes.get(parent)
                if pnode is not None and pnode.level is None:
                    pnode.level = node.level + 1
                    queue.append(parent)

    @property
    def height(self) -> int:
        """1 + maximum assigned level (``G.height`` in Algorithm 1)."""
        levels = [n.level for n in self.nodes.values() if n.level is not None]
        return (max(levels) + 1) if levels else 0

    def level(self, index: int) -> list[DFGNode]:
        """All nodes at BFS level ``index`` (``G[L]`` in Algorithm 1)."""
        return [
            n
            for n in sorted(self.nodes.values(), key=lambda n: n.id)
            if n.level == index
        ]

    def levels(self) -> dict[int, list[DFGNode]]:
        """Mapping level -> nodes, ascending levels."""
        out: dict[int, list[DFGNode]] = {}
        for lvl in range(self.height):
            out[lvl] = self.level(lvl)
        return out

    def inputs(self) -> list[DFGNode]:
        """Registered input nodes."""
        return [
            n
            for n in sorted(self.nodes.values(), key=lambda n: n.id)
            if n.is_input
        ]

    def output_nodes(self) -> list[DFGNode]:
        """Registered output nodes (level 0)."""
        return [self.nodes[o] for o in self.outputs]

    def labelled(self, label: str) -> list[DFGNode]:
        """Nodes registered under ``label`` (exact match)."""
        return [
            n
            for n in sorted(self.nodes.values(), key=lambda n: n.id)
            if n.label == label
        ]

    def remove_above(self, level: int) -> "DynDFG":
        """Drop all nodes with BFS level > ``level``.

        This is ``G.removeAbove(L+1)`` of Algorithm 1: once the variance
        level is found, the analysis result only needs the graph up to one
        level above it.  Parent references to removed nodes are pruned.
        """
        kept = [
            replace(n)
            for n in self.nodes.values()
            if n.level is not None and n.level <= level
        ]
        kept_ids = {n.id for n in kept}
        for node in kept:
            node.parents = tuple(p for p in node.parents if p in kept_ids)
        return DynDFG(kept, list(self.outputs))

    # ------------------------------------------------------------------
    # Iteration / size
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DFGNode]:
        return iter(sorted(self.nodes.values(), key=lambda n: n.id))

    def __contains__(self, node_id: object) -> bool:
        return node_id in self.nodes

    def __getitem__(self, node_id: int) -> DFGNode:
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dot(self, title: str = "DynDFG") -> str:
        """Graphviz DOT rendering (significance shown per node)."""
        lines = [f'digraph "{title}" {{', "  rankdir=BT;"]
        for node in self:
            sig = (
                f"\\nS={node.significance:.4g}"
                if node.significance is not None
                else ""
            )
            shape = "box" if node.is_input or node.id in self.outputs else "ellipse"
            lines.append(
                f'  n{node.id} [label="{node.display_name}{sig}", shape={shape}];'
            )
        for node in self:
            for parent in node.parents:
                lines.append(f"  n{parent} -> n{node.id};")
        lines.append("}")
        return "\n".join(lines)
