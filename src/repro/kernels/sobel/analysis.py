"""Significance analysis of the Sobel filter (Section 4.1.1).

For sampled pixels of a representative image, register the 3x3 input
window with ±half-gray-level intervals (quantisation uncertainty), tag
the six block contributions (A/B/C per direction) as intermediates, and
analyse against the output pixel.

The paper's finding, which this module reproduces: block **A** (the ±2
coefficients) is twice as significant as blocks **B** and **C**, at every
sampled pixel, while the combine stage shows little variance across
pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scorpio import Analysis

from .sequential import combine_parts_pixel, sobel_parts_pixel

__all__ = ["SobelAnalysis", "analyse_sobel_pixel", "analyse_sobel"]


@dataclass
class SobelAnalysis:
    """Aggregated block significances over the sampled pixels."""

    block_significance: dict[str, float]  # mean over samples, per block
    per_pixel: list[dict[str, float]]  # raw per-sample block significances
    samples: int

    @property
    def a_to_b_ratio(self) -> float:
        """S(A) / S(B) — the paper reports 2.0."""
        return self.block_significance["A"] / self.block_significance["B"]

    @property
    def a_to_c_ratio(self) -> float:
        """S(A) / S(C)."""
        return self.block_significance["A"] / self.block_significance["C"]


def analyse_sobel_pixel(
    window: np.ndarray, pixel_uncertainty: float = 0.5, delta: float = 1e-6
) -> dict[str, float]:
    """Block significances for one 3x3 window.

    Returns ``{"A": ..., "B": ..., "C": ...}`` where each block's
    significance is the sum over its two direction contributions.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.shape != (3, 3):
        raise ValueError(f"expected 3x3 window, got {window.shape}")

    an = Analysis(delta=delta)
    with an:
        taped = [
            [
                an.input(
                    float(window[dy][dx]),
                    width=2.0 * pixel_uncertainty,
                    name=f"p{dy}{dx}",
                )
                for dx in range(3)
            ]
            for dy in range(3)
        ]
        parts = sobel_parts_pixel(taped)
        for key, value in parts.items():
            an.intermediate(value, key)
        out = combine_parts_pixel(parts, smooth=True)
        an.output(out, name="pixel")
    report = an.analyse()
    sigs = report.labelled_significances()
    return {
        "A": sigs["a_x"] + sigs["a_y"],
        "B": sigs["b_x"] + sigs["b_y"],
        "C": sigs["c_x"] + sigs["c_y"],
    }


def analyse_sobel(
    image: np.ndarray,
    samples: int = 16,
    pixel_uncertainty: float = 0.5,
    seed: int = 3,
) -> SobelAnalysis:
    """Profile-driven analysis over sampled interior pixels of ``image``."""
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    if h < 3 or w < 3:
        raise ValueError("image too small for a 3x3 filter")
    rng = np.random.default_rng(seed)
    per_pixel: list[dict[str, float]] = []
    for _ in range(samples):
        y = int(rng.integers(1, h - 1))
        x = int(rng.integers(1, w - 1))
        window = image[y - 1 : y + 2, x - 1 : x + 2]
        per_pixel.append(
            analyse_sobel_pixel(window, pixel_uncertainty=pixel_uncertainty)
        )
    mean = {
        key: float(np.mean([p[key] for p in per_pixel]))
        for key in ("A", "B", "C")
    }
    return SobelAnalysis(
        block_significance=mean, per_pixel=per_pixel, samples=samples
    )
