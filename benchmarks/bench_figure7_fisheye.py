"""Figure 7 (Fisheye panel): quality + energy vs accurate-task ratio."""

import pytest

from repro.experiments import figure7_fisheye
from repro.experiments.sweep import format_sweep


def test_figure7_fisheye(benchmark):
    sweep = benchmark.pedantic(
        figure7_fisheye,
        kwargs={"width": 128, "height": 96},
        rounds=1,
        iterations=1,
    )

    sig_quality = [p.quality for p in sweep.series("significance")]
    assert sig_quality == sorted(sig_quality)

    # The interpolated-coordinates + bilinear approximation keeps quality
    # high while row perforation collapses (paper: +6.9 dB on average).
    for ratio in (0.0, 0.2, 0.5, 0.8):
        assert (
            sweep.quality_at(ratio) - sweep.quality_at(ratio, "perforation")
            > 5.0
        )

    # Perforation remains the cheaper execution (no task runtime).
    assert sweep.energy_at(1.0, "perforation") < sweep.energy_at(1.0)

    benchmark.extra_info["table"] = format_sweep(sweep)
