"""Significance over multiple input ranges — future work of §6.

"As part of future work, we plan to improve the framework by extending
significance analysis to a wider range of input intervals to accommodate
the fact that code significance is input-dependent for some benchmarks."

:func:`analyse_over_ranges` runs :func:`repro.scorpio.analyse_function`
once per input box and aggregates the labelled significances.  The
resulting :class:`RangeStudy` answers the question the paper raises: *is
the significance ranking stable across the input domain?*

* ``ranking_stability()`` — mean pairwise Spearman correlation of the
  per-box rankings (1.0 = the same task ordering everywhere; low values
  mean the paper's single-profile-run assumption is unsafe for this
  kernel).
* ``aggregate()`` — per-label mean / min / max significance, i.e. the
  conservative numbers a deployment would use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.intervals import Interval

from .api import analyse_function
from .montecarlo import rank_correlation
from .report import SignificanceReport

__all__ = ["RangeStudy", "analyse_over_ranges", "analyse_with_splitting"]


@dataclass
class RangeStudy:
    """Significance analyses of one function over several input boxes."""

    reports: list[SignificanceReport]
    boxes: list[Sequence[Interval]]
    per_box: list[dict[str, float]] = field(default_factory=list)
    skipped: list[Sequence[Interval]] = field(default_factory=list)

    def labels(self) -> list[str]:
        """Labels scored in every box (the comparable set)."""
        common: set[str] | None = None
        for scores in self.per_box:
            common = set(scores) if common is None else common & set(scores)
        return sorted(common or set())

    def ranking_stability(self) -> float:
        """Mean pairwise rank correlation of per-box significance rankings."""
        labels = self.labels()
        if len(self.per_box) < 2 or len(labels) < 2:
            return 1.0
        vectors = [
            [scores[label] for label in labels] for scores in self.per_box
        ]
        pairs = list(itertools.combinations(range(len(vectors)), 2))
        total = sum(
            rank_correlation(vectors[i], vectors[j]) for i, j in pairs
        )
        return total / len(pairs)

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-label mean/min/max significance across boxes."""
        out: dict[str, dict[str, float]] = {}
        for label in self.labels():
            values = [scores[label] for scores in self.per_box]
            out[label] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
        return out

    def most_significant(self) -> str:
        """Label with the highest mean significance."""
        agg = self.aggregate()
        if not agg:
            raise ValueError("no common labels across boxes")
        return max(agg, key=lambda k: agg[k]["mean"])

    def to_text(self) -> str:
        """Human-readable summary."""
        lines = [
            f"range study over {len(self.per_box)} input boxes",
            f"ranking stability (mean pairwise Spearman): "
            f"{self.ranking_stability():+.3f}",
        ]
        agg = self.aggregate()
        width = max((len(k) for k in agg), default=0)
        for label, stats in sorted(
            agg.items(), key=lambda kv: kv[1]["mean"], reverse=True
        ):
            lines.append(
                f"  {label:<{width}}  mean={stats['mean']:.4g}  "
                f"min={stats['min']:.4g}  max={stats['max']:.4g}"
            )
        return "\n".join(lines)


def analyse_over_ranges(
    fn: Callable[..., object],
    boxes: Sequence[Sequence[Interval]],
    *,
    names: Sequence[str] | None = None,
    delta: float = 1e-6,
) -> RangeStudy:
    """Run the §2 analysis once per input box and collect the results."""
    if not boxes:
        raise ValueError("need at least one input box")
    reports: list[SignificanceReport] = []
    per_box: list[dict[str, float]] = []
    for box in boxes:
        report = analyse_function(fn, list(box), names=names, delta=delta)
        reports.append(report)
        per_box.append(report.labelled_significances())
    return RangeStudy(reports=reports, boxes=[list(b) for b in boxes], per_box=per_box)


def analyse_with_splitting(
    fn: Callable[..., object],
    box: Sequence[Interval],
    *,
    names: Sequence[str] | None = None,
    delta: float = 1e-6,
    max_depth: int = 24,
    point_tolerance: float = 1e-3,
) -> RangeStudy:
    """Significance analysis with automatic interval splitting (§2.2 + §6).

    When the profile run hits an ambiguous branch condition
    (:class:`~repro.intervals.AmbiguousComparisonError`), the input box is
    bisected along its widest dimension and both halves are analysed
    recursively — the splitting approach the paper describes as ongoing
    research, applied to the *whole analysis* rather than a single
    interval evaluation.  The result is a :class:`RangeStudy` over the
    decidable sub-boxes: per-label aggregates give the conservative
    significances, and ``ranking_stability`` reveals whether the branch
    separates regimes with genuinely different significance structure.

    Sub-boxes that stay ambiguous down to ``point_tolerance`` width (ties
    sitting exactly on a comparison boundary, which no amount of bisection
    can separate) are skipped and reported in :attr:`RangeStudy.skipped` —
    they have measure ~0 in the input domain.  A still-ambiguous sub-box
    at ``max_depth`` with non-sliver width raises the final
    :class:`AmbiguousComparisonError`.

    Cost note: bisection always splits the *widest* dimension, so boxes
    straddling a branch boundary in a narrow dimension can fragment into
    O(2^k) towers before that dimension is reached — fine for analysis
    prototyping (each sub-analysis is one profile run), but raise
    ``point_tolerance`` if the box count explodes.
    """
    from repro.intervals import AmbiguousComparisonError, Box

    decided: list[tuple[SignificanceReport, list[Interval]]] = []
    skipped: list[list[Interval]] = []
    stack: list[tuple[list[Interval], int]] = [(list(box), 0)]
    while stack:
        current, depth = stack.pop()
        try:
            report = analyse_function(fn, current, names=names, delta=delta)
        except AmbiguousComparisonError as exc:
            # The exception carries the offending operands.  When the
            # wider of them has shrunk to a sliver, the tie sits exactly
            # on the comparison boundary and no amount of bisection can
            # separate it — skip the measure-~0 region.
            if max(exc.left.width, exc.right.width) <= point_tolerance:
                skipped.append(current)
                continue
            if depth >= max_depth:
                raise
            left, right = Box(current).split()
            stack.append((list(left), depth + 1))
            stack.append((list(right), depth + 1))
            continue
        decided.append((report, current))

    if not decided:
        raise AmbiguousComparisonError(
            "<unresolved>", Interval.entire(), Interval.entire()
        )
    return RangeStudy(
        reports=[r for r, _ in decided],
        boxes=[b for _, b in decided],
        per_box=[r.labelled_significances() for r, _ in decided],
        skipped=skipped,
    )
