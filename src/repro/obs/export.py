"""Chrome trace-event export: span forests as ``chrome://tracing`` JSON.

The span trees recorded by :mod:`repro.obs.trace` already carry wall
clock timestamps (``start_epoch``), the recording process and thread
(``pid`` / ``tid``) and — when a trace context was active — the id
triple that survives process boundaries.  This module lowers a forest of
those spans to the Chrome trace-event format (the JSON flavour loaded by
Perfetto at https://ui.perfetto.dev and by ``chrome://tracing``):

* each span becomes an ``"X"`` *complete* event on its real pid/tid row,
  with microsecond ``ts``/``dur`` taken from the shared wall clock so
  parent-process and worker-process events line up on one timeline;
* cross-boundary edges (a span whose ``parent_id`` names a span recorded
  in another process or thread) become ``"s"``/``"f"`` *flow* arrows, so
  the client→server→worker hand-off is drawn as connected arcs;
* ``"M"`` metadata events give every process a readable name.

All timestamps come from ``time.time()`` at span entry — comparable
across processes on one host, which is the deployment model of
:mod:`repro.mp` (fork/spawn pools, never remote machines).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from . import trace as _trace

__all__ = ["chrome_trace_events", "dump_chrome_trace"]


def _span_args(sp: _trace.Span) -> dict[str, Any]:
    args: dict[str, Any] = {}
    for key, value in sp.attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = repr(value)
    if sp.trace_id:
        args["trace_id"] = sp.trace_id
        args["span_id"] = sp.span_id
        if sp.parent_id:
            args["parent_id"] = sp.parent_id
    return args


def chrome_trace_events(
    roots: Iterable[_trace.Span],
) -> list[dict[str, Any]]:
    """Lower a span forest to a list of Chrome trace events.

    Returns the event list only (no envelope) so callers can merge
    forests from several sources before wrapping; use
    :func:`dump_chrome_trace` for the ready-to-load file.
    """
    roots = [r for r in roots if isinstance(r, _trace.Span)]
    events: list[dict[str, Any]] = []
    # span_id -> span, across the whole forest, for flow binding.
    by_id: dict[str, _trace.Span] = {}
    for root in roots:
        for sp in root.walk():
            if sp.span_id:
                by_id[sp.span_id] = sp

    pids: dict[int, int] = {}

    def emit(sp: _trace.Span, structural_parent: "_trace.Span | None") -> None:
        if sp.elapsed_seconds is None:
            return  # still open: nothing sensible to draw
        ts = sp.start_epoch * 1e6
        dur = sp.elapsed_seconds * 1e6
        pids.setdefault(sp.pid, len(pids))
        events.append(
            {
                "name": sp.name,
                "cat": "repro",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": sp.pid,
                "tid": sp.tid,
                "args": _span_args(sp),
            }
        )
        # A span whose context parent is NOT its structural parent was
        # re-parented across a boundary (another thread or process, or a
        # manual/adopted root).  Draw the hand-off as a flow arrow from
        # the parent span's start to this span's start.
        parent = by_id.get(sp.parent_id) if sp.parent_id else None
        if parent is not None and parent is not structural_parent:
            flow_id = int(sp.span_id, 16) & 0x7FFFFFFF if sp.span_id else 0
            events.append(
                {
                    "name": "trace",
                    "cat": "repro.flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": parent.start_epoch * 1e6,
                    "pid": parent.pid,
                    "tid": parent.tid,
                }
            )
            events.append(
                {
                    "name": "trace",
                    "cat": "repro.flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": ts,
                    "pid": sp.pid,
                    "tid": sp.tid,
                }
            )
        for child in sp.children:
            emit(child, sp)

    for root in roots:
        emit(root, None)

    # Name the processes: index 0 is whichever pid appeared first (the
    # process doing the export, in practice the service/CLI parent).
    for pid, index in pids.items():
        label = "repro" if index == 0 else "repro worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} (pid {pid})"},
            }
        )
    return events


def dump_chrome_trace(
    path: str | Path,
    roots: Sequence[_trace.Span] | None = None,
) -> Path:
    """Write a Perfetto-loadable ``.trace.json`` file; returns its path.

    ``roots`` defaults to the live ring (:func:`repro.obs.trace.spans`).
    """
    roots = _trace.spans() if roots is None else list(roots)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return out
