"""Cost of the observability layer on the analysis hot path.

The :mod:`repro.obs` contract is that *disabled* tracing is free: a
``span()`` call is one global attribute check returning a shared no-op
object, and the hot recording loop is not instrumented per-op at all
(`Tape` counts ops in bulk at deactivation).  This benchmark measures the
record+sweep pipeline with tracing off and with tracing on, records the
ratio to ``BENCH_core.json``, and asserts the disabled path stays within
the ISSUE's 2% budget (with slack for timer noise on shared CI runners —
the strict statistical bound lives in ``tests/obs/test_overhead.py``).
"""

import time

from record import record_value

from repro.ad import ADouble, Tape
from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.obs import clear, context, set_enabled


def paper_fn(x):
    return op.cos(op.exp(op.sin(x) + x) - x)


def _pipeline():
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        y = x
        for _ in range(50):
            y = paper_fn(y)
    tape.adjoint({y.node.index: Interval(1.0)})
    return tape


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracing_overhead(benchmark):
    previous = set_enabled(False)
    try:
        disabled = _best_of(_pipeline)
        set_enabled(True)
        enabled = _best_of(_pipeline)
    finally:
        set_enabled(previous)
        clear()
    ratio = enabled / disabled
    benchmark(_pipeline)
    record_value(
        "obs.enabled_overhead_ratio",
        ratio,
        unit="ratio",
        disabled_seconds=round(disabled, 6),
        enabled_seconds=round(enabled, 6),
    )
    # Enabled tracing adds a handful of spans around whole sweeps, never
    # per-op work, so even the *enabled* run should stay close to the
    # untraced one.  Generous bound: timer noise dominates at this scale.
    assert ratio < 1.5, f"tracing overhead ratio {ratio:.3f} out of bounds"


def test_context_propagation_overhead():
    """Cost of trace-context stamping on top of enabled tracing.

    With a :class:`~repro.obs.context.TraceContext` active, every span
    additionally mints a child id (one ``os.urandom`` call) and
    sets/resets one contextvar.  That work happens per *span* — a handful
    per sweep — so the traced-with-context pipeline should be
    indistinguishable from the traced-without-context one.
    """
    previous = set_enabled(True)
    try:
        uncontexted = _best_of(_pipeline)
        with context.use(context.new_trace()):
            contexted = _best_of(_pipeline)
    finally:
        set_enabled(previous)
        clear()
    ratio = contexted / uncontexted
    record_value(
        "obs.context_overhead_ratio",
        ratio,
        unit="ratio",
        uncontexted_seconds=round(uncontexted, 6),
        contexted_seconds=round(contexted, 6),
    )
    assert ratio < 1.5, f"context overhead ratio {ratio:.3f} out of bounds"
