"""Tests for the recording tape (DynDFG storage + reverse sweep)."""

import pytest

from repro.ad import ADouble, NoActiveTapeError, Tape, active_tape, require_tape
from repro.intervals import Interval


class TestActivation:
    def test_no_active_tape_initially(self):
        assert active_tape() is None

    def test_context_activates(self):
        with Tape() as tape:
            assert active_tape() is tape
        assert active_tape() is None

    def test_nested_tapes(self):
        with Tape() as outer:
            with Tape() as inner:
                assert active_tape() is inner
            assert active_tape() is outer

    def test_require_tape_raises_outside(self):
        with pytest.raises(NoActiveTapeError):
            require_tape()

    def test_require_tape_explicit_wins(self):
        tape = Tape()
        assert require_tape(tape) is tape


class TestRecording:
    def test_input_node(self):
        tape = Tape()
        node = tape.record_input(1.5, label="x")
        assert node.is_input and node.label == "x" and node.index == 0

    def test_record_parents_partials_parallel(self):
        tape = Tape()
        with pytest.raises(ValueError, match="mismatch"):
            tape.record("add", 1.0, parents=(0,), partials=())

    def test_indices_sequential(self):
        tape = Tape()
        nodes = [tape.record("const", float(i)) for i in range(5)]
        assert [n.index for n in nodes] == list(range(5))

    def test_len_iter_getitem(self):
        tape = Tape()
        tape.record("const", 1.0)
        tape.record("const", 2.0)
        assert len(tape) == 2
        assert tape[1].value == 2.0
        assert [n.op for n in tape] == ["const", "const"]

    def test_inputs_and_labelled(self):
        tape = Tape()
        tape.record_input(1.0, label="a")
        tape.record("const", 2.0, label="c")
        tape.record_input(3.0, label="b")
        assert [n.label for n in tape.inputs()] == ["a", "b"]
        assert len(tape.labelled("c")) == 1

    def test_children_adjacency(self):
        tape = Tape()
        a = tape.record_input(1.0)
        b = tape.record_input(2.0)
        c = tape.record("add", 3.0, (a.index, b.index), (1.0, 1.0))
        children = tape.children()
        assert children[a.index] == [c.index]
        assert children[b.index] == [c.index]
        assert children[c.index] == []


class TestAdjointSweep:
    def _simple_tape(self):
        # y = (a * b) + a  with a=2, b=3 -> dy/da = b + 1 = 4, dy/db = a = 2
        tape = Tape()
        a = tape.record_input(2.0)
        b = tape.record_input(3.0)
        m = tape.record("mul", 6.0, (a.index, b.index), (3.0, 2.0))
        y = tape.record("add", 8.0, (m.index, a.index), (1.0, 1.0))
        return tape, a, b, y

    def test_gradient_values(self):
        tape, a, b, y = self._simple_tape()
        adjoints = tape.adjoint({y.index: 1.0})
        assert adjoints[a.index] == 4.0
        assert adjoints[b.index] == 2.0

    def test_node_adjoint_attribute_filled(self):
        tape, a, b, y = self._simple_tape()
        tape.adjoint({y.index: 1.0})
        assert a.adjoint == 4.0 and y.adjoint == 1.0

    def test_gradient_helper(self):
        tape, a, b, y = self._simple_tape()
        tape.adjoint({y.index: 1.0})
        assert tape.gradient() == [4.0, 2.0]

    def test_seed_scaling(self):
        tape, a, b, y = self._simple_tape()
        adjoints = tape.adjoint({y.index: 2.0})
        assert adjoints[a.index] == 8.0

    def test_empty_seeds_rejected(self):
        tape, *_ = self._simple_tape()
        with pytest.raises(ValueError):
            tape.adjoint({})

    def test_bad_seed_index_rejected(self):
        tape, *_, y = self._simple_tape()
        with pytest.raises(IndexError):
            tape.adjoint({999: 1.0})

    def test_interval_mode_seed_coercion(self):
        tape = Tape()
        a = tape.record_input(Interval(1, 2))
        y = tape.record("mul", Interval(2, 4), (a.index,), (2.0,))
        adjoints = tape.adjoint({y.index: 1.0})
        assert isinstance(adjoints[a.index], Interval)
        assert adjoints[a.index].contains(2.0)

    def test_unreachable_nodes_zero_adjoint(self):
        tape = Tape()
        a = tape.record_input(1.0)
        dead = tape.record("mul", 2.0, (a.index,), (2.0,))
        y = tape.record("add", 1.0, (a.index,), (1.0,))
        adjoints = tape.adjoint({y.index: 1.0})
        assert adjoints[dead.index] == 0.0
        assert adjoints[a.index] == 1.0


class TestAdjointVector:
    def test_matches_scalar_sweeps(self):
        # Two outputs from shared inputs; vector mode must equal per-output
        # scalar sweeps.
        def build():
            tape = Tape()
            a = tape.record_input(2.0)
            b = tape.record_input(3.0)
            y1 = tape.record("mul", 6.0, (a.index, b.index), (3.0, 2.0))
            y2 = tape.record("add", 5.0, (a.index, b.index), (1.0, 1.0))
            return tape, a, b, y1, y2

        tape, a, b, y1, y2 = build()
        lo, hi = tape.adjoint_vector([y1.index, y2.index])
        assert lo[a.index, 0] == hi[a.index, 0] == 3.0  # dy1/da
        assert lo[a.index, 1] == hi[a.index, 1] == 1.0  # dy2/da
        assert lo[b.index, 0] == 2.0 and lo[b.index, 1] == 1.0

    def test_no_cross_output_cancellation(self):
        # y1 = +u, y2 = -u: summed scalar adjoint of u would be 0, but
        # vector mode keeps both components.
        tape = Tape()
        u = tape.record_input(1.0)
        y1 = tape.record("pos", 1.0, (u.index,), (1.0,))
        y2 = tape.record("neg", -1.0, (u.index,), (-1.0,))
        lo, hi = tape.adjoint_vector([y1.index, y2.index])
        assert lo[u.index, 0] == 1.0 and lo[u.index, 1] == -1.0

    def test_interval_partials(self):
        tape = Tape()
        u = tape.record_input(Interval(0, 1))
        y = tape.record(
            "round_st", Interval(-0.5, 1.5), (u.index,), (Interval(0, 1),)
        )
        lo, hi = tape.adjoint_vector([y.index])
        assert lo[u.index, 0] == 0.0 and hi[u.index, 0] == 1.0

    def test_empty_outputs_rejected(self):
        tape = Tape()
        tape.record_input(1.0)
        with pytest.raises(ValueError):
            tape.adjoint_vector([])

    def test_out_of_range_rejected(self):
        tape = Tape()
        tape.record_input(1.0)
        with pytest.raises(IndexError):
            tape.adjoint_vector([7])
