"""Persistent tape store (:mod:`repro.scorpio.tape_store`).

The store's contract: a save→load round-trip yields a trace whose
replays are *bitwise identical* to the live trace's — same reports byte
for byte, same guard divergences — and every failure mode (missing,
version-mismatched, truncated, corrupt files) degrades to an ordinary
cache miss, never an exception.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ad import intrinsics as op
from repro.ad.replay import GuardDivergenceError
from repro.intervals import Interval
from repro.scorpio import Analysis, CachedTrace, TapeStore, TraceCache
from repro.scorpio.serialize import report_to_json
from repro.scorpio.tape_store import STORE_VERSION, store_key_digest


def _record_poly(ivs) -> Analysis:
    an = Analysis()
    with an:
        x = an.input(ivs[0], name="x")
        y = an.input(ivs[1], name="y")
        t = an.intermediate(op.sin(x * y) + x, "t")
        an.output(t * t + y / 4.0, name="out")
    return an


def _record_branchy(ivs) -> Analysis:
    an = Analysis()
    with an:
        x = an.input(ivs[0], name="x")
        y = an.input(ivs[1], name="y")
        z = x * y if x < y else x + y
        an.output(z, name="out")
    return an


def _record_clip(ivs) -> Analysis:
    # clip carries an aux payload; constants fold aux too — both must
    # survive serialization.
    an = Analysis()
    with an:
        x = an.input(ivs[0], name="x")
        y = an.input(ivs[1], name="y")
        an.output(op.clip(x * 2.0 + y, 0.25, 3.5), name="out")
    return an


def _ivs(cx, cy, r=0.1):
    return [Interval.centered(cx, r), Interval.centered(cy, r)]


KEY = ("poly",)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "recorder", [_record_poly, _record_branchy, _record_clip]
    )
    @pytest.mark.parametrize("simplify", [True, False])
    def test_replays_bitwise_identical(self, tmp_path, recorder, simplify):
        live = CachedTrace(recorder(_ivs(0.7, 1.2)), simplify=simplify)
        store = TapeStore(tmp_path)
        assert store.save(KEY, live)
        loaded = store.load(KEY)
        assert loaded is not None
        assert loaded.op_hash == live.op_hash
        assert loaded.input_ids == live.input_ids
        assert loaded.output_ids == live.output_ids
        rng = np.random.default_rng(11)
        for _ in range(4):
            # x strictly below y so the branchy kernel's recorded x < y
            # guard stays decidable (and taken) on every replay.
            ivs = _ivs(rng.uniform(0.3, 0.7), rng.uniform(1.1, 1.5))
            assert report_to_json(loaded.analyse(ivs)) == report_to_json(
                live.analyse(ivs)
            )

    @settings(max_examples=20, deadline=None)
    @given(
        cx=st.floats(0.2, 2.0),
        cy=st.floats(0.2, 2.0),
        r=st.floats(0.01, 0.3),
    )
    def test_forward_bitwise_identical_property(self, cx, cy, r):
        import tempfile

        live = CachedTrace(_record_poly(_ivs(0.7, 1.2)), simplify=False)
        with tempfile.TemporaryDirectory() as root:
            store = TapeStore(root)
            store.save(KEY, live)
            loaded = store.load(KEY)
            ivs = [Interval.centered(cx, r), Interval.centered(cy, r)]
            live.ct.forward(ivs)
            loaded.ct.forward(ivs)
            for col in ("value_lo", "value_hi"):
                a = getattr(live.ct, col)
                b = getattr(loaded.ct, col)
                assert np.array_equal(a, b), col  # bitwise: same floats

    def test_guard_divergence_still_raises(self, tmp_path):
        live = CachedTrace(_record_branchy(_ivs(0.5, 1.5)))  # x < y taken
        store = TapeStore(tmp_path)
        store.save(KEY, live)
        loaded = store.load(KEY)
        # Same branch replays fine; the flipped branch must still trip
        # the deserialized guard.
        loaded.analyse(_ivs(0.6, 1.4))
        with pytest.raises(GuardDivergenceError):
            loaded.analyse(_ivs(1.8, 0.4))


class TestFailureModes:
    def test_missing_is_a_miss(self, tmp_path):
        assert TapeStore(tmp_path).load(KEY) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = TapeStore(tmp_path)
        store.save(KEY, CachedTrace(_record_poly(_ivs(0.7, 1.2))))
        header_path, _ = store.paths_for(KEY)
        header = json.loads(open(header_path).read())
        header["store_version"] = STORE_VERSION + 1
        with open(header_path, "w") as f:
            json.dump(header, f)
        assert store.load(KEY) is None

    def test_truncated_blob_is_a_miss(self, tmp_path):
        store = TapeStore(tmp_path)
        store.save(KEY, CachedTrace(_record_poly(_ivs(0.7, 1.2))))
        _, blob_path = store.paths_for(KEY)
        with open(blob_path, "r+b") as f:
            f.truncate(os.path.getsize(blob_path) // 2)
        assert store.load(KEY) is None

    def test_corrupt_structure_rejected_by_hash(self, tmp_path):
        store = TapeStore(tmp_path)
        store.save(KEY, CachedTrace(_record_poly(_ivs(0.7, 1.2))))
        header_path, blob_path = store.paths_for(KEY)
        spec = json.loads(open(header_path).read())["arrays"]["opcodes"]
        with open(blob_path, "r+b") as f:
            f.seek(spec["offset"])
            f.write(b"\xff" * 4)  # scribble on the opcode column
        assert store.load(KEY) is None

    def test_corrupt_header_is_soft(self, tmp_path):
        store = TapeStore(tmp_path)
        store.save(KEY, CachedTrace(_record_poly(_ivs(0.7, 1.2))))
        header_path, _ = store.paths_for(KEY)
        with open(header_path, "w") as f:
            f.write("{not json")
        assert store.load(KEY) is None

    def test_digest_is_stable_and_filenamesafe(self):
        d = store_key_digest(("sobel",))
        assert d == store_key_digest(("sobel",))
        assert d != store_key_digest(("dct",))
        assert d.isalnum()


class TestTraceCacheIntegration:
    def test_restart_serves_first_request_as_replay(self, tmp_path):
        ivs = _ivs(0.7, 1.2)
        warm = TraceCache(store_dir=tmp_path)
        report, outcome = warm.analyse_outcome(KEY, _record_poly, ivs)
        assert outcome == "record"
        expect = report_to_json(report)

        # "Restart": a brand-new cache over the same store directory.
        cold = TraceCache(store_dir=tmp_path)
        report, outcome = cold.analyse_outcome(KEY, _record_poly, ivs)
        assert outcome == "replay"
        assert report_to_json(report) == expect
        assert cold.stats()["records"] == 0

    def test_store_errors_fall_back_to_recording(self, tmp_path):
        # A store rooted at a *file* path cannot write; analysis must
        # still succeed as plain record.
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        cache = TraceCache(store_dir=blocker / "sub")
        report, outcome = cache.analyse_outcome(KEY, _record_poly, _ivs(0.7, 1.2))
        assert outcome == "record"
        assert report is not None

    def test_no_store_dir_means_no_store(self):
        assert TraceCache().store is None


class TestBatchOutcome:
    def test_batch_matches_scalar_byte_for_byte(self):
        rng = np.random.default_rng(5)
        batches = [
            _ivs(rng.uniform(0.4, 1.4), rng.uniform(0.6, 1.6))
            for _ in range(5)
        ]
        scalar = TraceCache()
        expect = [
            report_to_json(
                scalar.analyse_outcome(KEY, _record_poly, ivs)[0]
            )
            for ivs in batches
        ]
        batched = TraceCache()
        outs = batched.analyse_batch_outcome(KEY, _record_poly, batches)
        assert [o for _, o in outs] == ["record"] + ["replay"] * 4
        assert [report_to_json(r) for r, _ in outs] == expect
        # All four warm lanes shared one sweep.
        assert batched.stats()["replays"] == 4

    def test_divergent_lane_falls_back_per_item(self):
        cache = TraceCache()
        cache.analyse_outcome(KEY, _record_branchy, _ivs(0.5, 1.5))
        outs = cache.analyse_batch_outcome(
            KEY,
            _record_branchy,
            [_ivs(0.6, 1.4), _ivs(1.8, 0.4), _ivs(0.4, 1.6)],
        )
        assert [o for _, o in outs] == ["replay", "divergence", "replay"]
        for (report, _), ivs in zip(
            outs, [_ivs(0.6, 1.4), _ivs(1.8, 0.4), _ivs(0.4, 1.6)]
        ):
            ref = _record_branchy(ivs).analyse(compiled=True)
            assert report_to_json(report) == report_to_json(ref)

    def test_empty_and_single(self):
        cache = TraceCache()
        assert cache.analyse_batch_outcome(KEY, _record_poly, []) == []
        outs = cache.analyse_batch_outcome(
            KEY, _record_poly, [_ivs(0.7, 1.2)]
        )
        assert len(outs) == 1 and outs[0][1] == "record"
