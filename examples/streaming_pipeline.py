#!/usr/bin/env python
"""Energy-constrained streaming: closed-loop ratio control on video frames.

The paper's motivating scenario (video analytics under a power envelope):
a Sobel edge-detection stage must process a stream of frames without
exceeding a per-frame energy budget.  A :class:`RatioController` adjusts
the ``taskwait`` ratio from measured energy, frame by frame, trading
quality for energy only as much as the budget requires.

Run:  python examples/streaming_pipeline.py [--frames 12] [--budget-frac 0.75]
"""

import argparse

import numpy as np

from repro.images import natural_image
from repro.kernels.sobel import sobel_reference, sobel_significance
from repro.metrics import psnr
from repro.runtime import RatioController


def make_stream(size: int, frames: int):
    """Synthetic video: a drifting natural scene."""
    base = natural_image(size + frames, size + frames, seed=5)
    for t in range(frames):
        yield base[t : t + size, t : t + size]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument(
        "--budget-frac",
        type=float,
        default=0.75,
        help="per-frame energy budget as a fraction of the accurate cost",
    )
    args = parser.parse_args()

    frames = list(make_stream(args.size, args.frames))
    full_cost = sobel_significance(frames[0], 1.0).joules
    budget = args.budget_frac * full_cost
    controller = RatioController(energy_budget=budget, gain=0.5)

    print(
        f"streaming {args.frames} frames of {args.size}x{args.size}; "
        f"budget {budget:.1f} J/frame (accurate cost {full_cost:.1f} J)"
    )
    print(f"{'frame':>5} {'ratio':>7} {'energy':>9} {'PSNR':>8}")
    for t, frame in enumerate(frames):
        ratio = controller.ratio
        run = sobel_significance(frame, ratio)
        controller.observe(run.joules)
        quality = min(psnr(sobel_reference(frame), run.output), 99.0)
        print(f"{t:>5} {ratio:>7.3f} {run.joules:>7.1f} J {quality:>6.1f} dB")

    print(
        f"\nmean energy over the last 4 frames: "
        f"{controller.mean_energy(last=4):.1f} J "
        f"({'settled' if controller.settled else 'still adapting'})"
    )


if __name__ == "__main__":
    main()
