"""Automatic interval splitting for ambiguous branch conditions.

Section 2.2 of the paper: when a comparison such as ``c < [x]`` is
ambiguous, the analysis terminates and reports the condition; circumventing
this "by an automatic interval splitting approach is part of ongoing
research".  This module implements that ongoing-research feature: it
re-runs an interval computation on recursively bisected sub-boxes until
every branch condition is decidable on each sub-box, then hulls the
partial results.

This turns programs with data-dependent control flow (e.g. the clipping
branch of Sobel) into analysable ones at the cost of multiple profile runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .boxes import Box
from .interval import AmbiguousComparisonError, Interval

__all__ = ["SplitResult", "split_until_decidable", "evaluate_with_splitting"]


@dataclass
class SplitResult:
    """Outcome of a splitting evaluation.

    Attributes:
        value: hull of the per-sub-box result intervals.
        boxes: the decidable sub-boxes actually evaluated.
        splits: number of bisections performed.
        point_sampled: slivers thinner than the point tolerance whose
            branch condition stayed ambiguous (ties at a comparison
            boundary, e.g. ``x >= 0`` on ``[-ε, 0]``); these were
            evaluated at their midpoint trace — a non-rigorous but
            measure-tiny contribution to ``value``.
        failures: sub-boxes abandoned entirely (ambiguous even as points);
            non-empty means ``value`` under-covers the true range.
    """

    value: Interval
    boxes: list[Box] = field(default_factory=list)
    splits: int = 0
    point_sampled: list[Box] = field(default_factory=list)
    failures: list[Box] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no sub-box was abandoned."""
        return not self.failures


def split_until_decidable(
    fn: Callable[[Box], Interval],
    box: Box,
    max_depth: int = 12,
    point_tolerance: float = 1e-6,
) -> SplitResult:
    """Evaluate ``fn`` over ``box``, bisecting on ambiguous comparisons.

    ``fn`` receives a :class:`Box` and returns an :class:`Interval`; if it
    raises :class:`AmbiguousComparisonError` the box is bisected along its
    widest dimension and both halves are retried, up to ``max_depth``
    levels of recursion per branch of the split tree.

    Bisection alone cannot resolve a condition whose tie point lies *on* a
    sub-box boundary (``x >= 0`` over ``[-ε, 0]`` is ambiguous at every
    depth).  Sub-boxes thinner than ``point_tolerance`` in every dimension
    are therefore evaluated at their midpoint — fixing the control flow
    from a point trace, exactly what a profile run does — and recorded in
    ``point_sampled``.
    """
    result_hull: Interval | None = None
    evaluated: list[Box] = []
    point_sampled: list[Box] = []
    failures: list[Box] = []
    splits = 0

    stack: list[tuple[Box, int]] = [(box, 0)]
    while stack:
        current, depth = stack.pop()
        try:
            value = fn(current)
        except AmbiguousComparisonError:
            if current.max_width <= point_tolerance or depth >= max_depth:
                # Sliver (or depth exhausted): sample the midpoint trace.
                point_box = Box.from_point(current.midpoint)
                try:
                    value = fn(point_box)
                except AmbiguousComparisonError:
                    failures.append(current)
                    continue
                point_sampled.append(current)
                result_hull = (
                    value if result_hull is None else result_hull.hull(value)
                )
                continue
            left, right = current.split()
            splits += 1
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
            continue
        evaluated.append(current)
        result_hull = value if result_hull is None else result_hull.hull(value)

    if result_hull is None:
        raise AmbiguousComparisonError(
            "<unresolved>", Interval.entire(), Interval.entire()
        )
    return SplitResult(
        value=result_hull,
        boxes=evaluated,
        splits=splits,
        point_sampled=point_sampled,
        failures=failures,
    )


def evaluate_with_splitting(
    fn: Callable[..., Interval],
    inputs: Sequence[Interval],
    max_depth: int = 12,
) -> SplitResult:
    """Convenience wrapper: ``fn`` takes one interval per input component."""
    box = Box(inputs)

    def on_box(b: Box) -> Interval:
        return fn(*list(b))

    return split_until_decidable(on_box, box, max_depth=max_depth)
