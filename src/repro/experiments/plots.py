"""ASCII rendering of the Figure 7 panels.

The paper's Figure 7 plots quality bars (left axis) against energy lines
(right axis) per ratio.  :func:`render_panel` reproduces that layout in
plain text so the reproduction can be *seen* in a terminal::

    Sobel Filter                      quality ▇ sig / ░ perf   energy * sig / . perf
    23.4|▇░            ...
        |▇░ ▇░ ▇▇░ ...

Bars are normalised to the panel's maximum quality, energy markers to the
maximum energy; exact values are printed underneath (the numeric table is
:func:`repro.experiments.sweep.format_sweep`).
"""

from __future__ import annotations

from repro.kernels.common import QUALITY_PSNR

from .sweep import SweepResult

__all__ = ["render_panel", "render_all_panels"]

_BAR_SIG = "█"
_BAR_PERF = "░"
_DOT_SIG = "*"
_DOT_PERF = "o"


def _scaled(value: float, maximum: float, height: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(height, round(height * value / maximum)))


def render_panel(sweep: SweepResult, height: int = 10) -> str:
    """One Figure 7 panel as an ASCII chart."""
    if height < 2:
        raise ValueError("height must be >= 2")
    sig = sweep.series("significance")
    perf = {p.ratio: p for p in sweep.series("perforation")}

    # For PSNR higher is better; for relative error plot "goodness" as
    # 1/(1+err) so taller still means better, like the paper's bars.
    def goodness(quality: float) -> float:
        if sweep.quality_kind == QUALITY_PSNR:
            return quality
        return 1.0 / (1.0 + 100.0 * quality)

    max_quality = max(
        [goodness(p.quality) for p in sig]
        + [goodness(p.quality) for p in perf.values()],
        default=1.0,
    )
    max_energy = max(
        [p.joules for p in sig] + [p.joules for p in perf.values()],
        default=1.0,
    )

    # Each ratio occupies a 6-char column: two bars + energy markers.
    columns = []
    for point in sig:
        perf_point = perf.get(point.ratio)
        col = {
            "ratio": point.ratio,
            "sig_bar": _scaled(goodness(point.quality), max_quality, height),
            "sig_dot": _scaled(point.joules, max_energy, height),
            "perf_bar": (
                _scaled(goodness(perf_point.quality), max_quality, height)
                if perf_point
                else None
            ),
            "perf_dot": (
                _scaled(perf_point.joules, max_energy, height)
                if perf_point
                else None
            ),
        }
        columns.append(col)

    if perf:
        legend = (
            f"quality {_BAR_SIG} sig / {_BAR_PERF} perf"
            f"   energy {_DOT_SIG} sig / {_DOT_PERF} perf"
        )
    else:
        legend = f"quality {_BAR_SIG} sig   energy {_DOT_SIG} sig"
    lines = [f"{sweep.benchmark:<28} {legend}"]
    for level in range(height, 0, -1):
        row = ["    |"]
        for col in columns:
            cell = [" "] * 5
            if col["sig_bar"] >= level:
                cell[0] = _BAR_SIG
            if col["perf_bar"] is not None and col["perf_bar"] >= level:
                cell[1] = _BAR_PERF
            if col["sig_dot"] == level:
                cell[3] = _DOT_SIG
            if col["perf_dot"] is not None and col["perf_dot"] == level:
                cell[4] = _DOT_PERF
            row.append("".join(cell) + " ")
        lines.append("".join(row))
    axis = ["    +"]
    labels = ["     "]
    for col in columns:
        axis.append("-" * 6)
        labels.append(f"{col['ratio']:<6.2f}")
    lines.append("".join(axis))
    lines.append("".join(labels) + " (accurate ratio)")
    return "\n".join(lines)


def render_all_panels(sweeps: dict[str, SweepResult], height: int = 10) -> str:
    """Render every panel, separated by blank lines (the full Figure 7)."""
    return "\n\n".join(
        render_panel(sweep, height=height) for sweep in sweeps.values()
    )
