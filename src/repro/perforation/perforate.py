"""Loop perforation — the paper's baseline (Sidiroglou-Douskos et al.).

Loop perforation skips a fraction of loop iterations to trade output
quality for time/energy.  The paper perforates each benchmark so that "the
same percentage of computations is skipped as the percentage of
computations approximated by our runtime" (Section 4.2), then compares
quality at equal accurate-computation ratio.

The central primitive is :func:`perforated_indices`: given an iteration
count and the accurate ratio ``r``, return the indices to *execute* such
that executed/total ≈ r and the executed iterations are spread uniformly
(interleaved perforation, the standard scheme).  Benchmarks build their
perforated variants on top of it (skip rows for Sobel/Fisheye, skip
coefficients for DCT, skip force contributions for N-Body).
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence, TypeVar

__all__ = [
    "perforated_indices",
    "perforate_sequence",
    "perforated_range",
    "PerforationScheme",
    "interleaved",
    "truncated",
    "modulo",
]

T = TypeVar("T")

PerforationScheme = Callable[[int, float], list[int]]


def interleaved(count: int, ratio: float) -> list[int]:
    """Evenly spread executed iterations (default scheme).

    Picks ``ceil(ratio * count)`` indices at (approximately) regular
    stride, always including index 0 when anything executes — skipped work
    is distributed uniformly, which is the best-behaved perforation for
    spatial loops.
    """
    _check(count, ratio)
    keep = math.ceil(ratio * count)
    if keep == 0:
        return []
    if keep >= count:
        return list(range(count))
    step = count / keep
    indices = sorted({min(count - 1, int(i * step)) for i in range(keep)})
    # Collisions from rounding can under-fill; pad from unused indices.
    if len(indices) < keep:
        used = set(indices)
        for i in range(count):
            if i not in used:
                indices.append(i)
                used.add(i)
                if len(indices) == keep:
                    break
        indices.sort()
    return indices


def truncated(count: int, ratio: float) -> list[int]:
    """Execute the first ``ceil(ratio*count)`` iterations, skip the tail."""
    _check(count, ratio)
    keep = math.ceil(ratio * count)
    return list(range(min(keep, count)))


def modulo(count: int, ratio: float) -> list[int]:
    """Classic modulo perforation: execute every k-th iteration.

    ``k = max(1, round(1/ratio))``; the realised ratio is the closest
    ``1/k`` to the requested one (coarser than :func:`interleaved`).
    """
    _check(count, ratio)
    if ratio == 0.0:
        return []
    k = max(1, round(1.0 / ratio))
    return list(range(0, count, k))


def perforated_indices(
    count: int, ratio: float, scheme: PerforationScheme = interleaved
) -> list[int]:
    """Indices to execute for an accurate ratio of ``ratio``."""
    return scheme(count, ratio)


def perforate_sequence(
    items: Sequence[T], ratio: float, scheme: PerforationScheme = interleaved
) -> Iterator[T]:
    """Yield only the items whose iterations survive perforation."""
    for i in perforated_indices(len(items), ratio, scheme):
        yield items[i]


def perforated_range(
    count: int, ratio: float, scheme: PerforationScheme = interleaved
) -> Iterator[int]:
    """``range(count)`` with perforation applied."""
    return iter(perforated_indices(count, ratio, scheme))


def _check(count: int, ratio: float) -> None:
    if count < 0:
        raise ValueError(f"iteration count must be >= 0, got {count}")
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must lie in [0, 1], got {ratio}")
