"""Algorithmic differentiation substrate (the paper's dco/c++ analogue).

Provides tape-based adjoint AD (scalar and interval), tangent-linear AD,
dispatching intrinsic functions, and high-level gradient drivers.

The interval-adjoint combination — :class:`ADouble` holding
:class:`~repro.intervals.Interval` values, recorded on a :class:`Tape` —
is the Python counterpart of the paper's ``dco::ia1s::type`` and the engine
underneath :mod:`repro.scorpio`.
"""

from . import intrinsics
from .adouble import ADouble, IntervalAdjoint
from .compiled import CompiledTape, ReplayLanes
from .replay import ForwardPlan, GuardDivergenceError, ReplayError
from .hessian import hessian, hessian_vector_product
from .derivatives import (
    adjoint_gradient,
    finite_difference_gradient,
    interval_gradient,
    tangent_gradient,
)
from .tangent import Tangent
from .tape import NoActiveTapeError, Node, Tape, active_tape, require_tape

__all__ = [
    "ADouble",
    "IntervalAdjoint",
    "Tangent",
    "Tape",
    "Node",
    "CompiledTape",
    "ReplayLanes",
    "ForwardPlan",
    "ReplayError",
    "GuardDivergenceError",
    "active_tape",
    "require_tape",
    "NoActiveTapeError",
    "intrinsics",
    "adjoint_gradient",
    "tangent_gradient",
    "finite_difference_gradient",
    "interval_gradient",
]
