"""DCT video-compression benchmark (paper Section 4.1.2)."""

from .analysis import DctAnalysis, analyse_dct, analyse_dct_block
from .perforated import dct_perforated
from .sequential import (
    BLOCK,
    QUANT_LUMA,
    quant_matrix,
    basis_tensor,
    blockify,
    dct_block,
    dct_image,
    dct_roundtrip_reference,
    dequantise_block,
    diagonal_of,
    idct_block,
    quantise_block,
    roundtrip_from_coefficients,
    unblockify,
    zigzag_order,
)
from .tasks import (
    N_DIAGONALS,
    dct_significance,
    diagonal_cells,
    diagonal_significance,
)

__all__ = [
    "BLOCK",
    "QUANT_LUMA",
    "quant_matrix",
    "basis_tensor",
    "zigzag_order",
    "diagonal_of",
    "dct_block",
    "quantise_block",
    "dequantise_block",
    "idct_block",
    "blockify",
    "unblockify",
    "dct_image",
    "roundtrip_from_coefficients",
    "dct_roundtrip_reference",
    "analyse_dct",
    "analyse_dct_block",
    "DctAnalysis",
    "dct_significance",
    "dct_perforated",
    "diagonal_cells",
    "diagonal_significance",
    "N_DIAGONALS",
]
