"""analyse(compiled=True) must be byte-identical to the object pipeline.

The compiled path replaces the reverse sweep, Eq. 11, simplify and the
variance scan with array code, but keeps the object pipeline as its
oracle: for every bundled kernel the serialized report (JSON, including
graph structure, adjoints, significances, levels and variances) must
match exactly.
"""

import numpy as np
import pytest

from repro.intervals.rounding import rounded_mode
from repro.kernels.blackscholes.analysis import analyse_option
from repro.kernels.dct.analysis import analyse_dct_block
from repro.kernels.maclaurin import analyse_maclaurin
from repro.kernels.sobel.analysis import analyse_sobel_pixel
from repro.scorpio import Analysis, analyse_compiled
from repro.scorpio.serialize import report_to_json


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


class TestKernelEquivalence:
    def test_maclaurin_report_json(self):
        obj = analyse_maclaurin(n=9)
        cmp = analyse_maclaurin(n=9, compiled=True)
        assert report_to_json(obj.report) == report_to_json(cmp.report)

    def test_maclaurin_rounding_disabled(self):
        with rounded_mode(False):
            obj = analyse_maclaurin(n=9)
            cmp = analyse_maclaurin(n=9, compiled=True)
        assert report_to_json(obj.report) == report_to_json(cmp.report)

    def test_sobel_pixel(self, rng):
        window = rng.uniform(0, 255, (3, 3))
        assert analyse_sobel_pixel(window) == analyse_sobel_pixel(
            window, compiled=True
        )

    def test_blackscholes_option(self):
        obj = analyse_option(100.0, 105.0, 0.02, 0.3, 1.5)
        cmp = analyse_option(100.0, 105.0, 0.02, 0.3, 1.5, compiled=True)
        assert obj == cmp

    def test_dct_block_maps_bitwise(self, rng):
        block = rng.uniform(0, 255, (8, 8))
        obj = analyse_dct_block(block)
        cmp = analyse_dct_block(block, compiled=True)
        assert np.array_equal(obj, cmp)


class TestApiBehaviour:
    def _analysis(self):
        an = Analysis()
        with an:
            x = an.input(2.0, width=0.5, name="x")
            z = an.intermediate(x * x, "z")
            an.output(z + x, name="y")
        return an

    def test_full_report_json(self):
        obj = self._analysis().analyse()
        cmp = self._analysis().analyse(compiled=True)
        assert report_to_json(obj) == report_to_json(cmp)

    def test_first_call_wins_cache(self):
        an = self._analysis()
        first = an.analyse(compiled=True)
        assert an.analyse() is first

    def test_report_views_match(self):
        obj = self._analysis().analyse()
        cmp = self._analysis().analyse(compiled=True)
        assert obj.labelled_significances() == cmp.labelled_significances()
        assert obj.input_significances() == cmp.input_significances()
        assert obj.significance_of("z") == cmp.significance_of("z")
        with pytest.raises(KeyError):
            cmp.significance_of("nope")

    def test_needs_an_output(self):
        an = Analysis()
        with an:
            an.input(1.0, width=0.1, name="x")
        with pytest.raises(Exception):
            an.analyse(compiled=True)

    def test_analyse_compiled_rejects_no_outputs(self):
        an = self._analysis()
        with pytest.raises(ValueError):
            analyse_compiled(an.tape, [])

    def test_simplify_false_identity(self):
        rep = self._analysis().analyse(compiled=True)
        # found-or-not, the graph triple keeps the object pipeline's
        # instance-sharing behaviour on serialization-relevant sizes
        obj = self._analysis().analyse()
        assert len(rep.raw_graph) == len(obj.raw_graph)
        assert len(rep.simplified_graph) == len(obj.simplified_graph)
