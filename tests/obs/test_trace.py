"""Span recording (:mod:`repro.obs.trace`): nesting, attrs, the ring."""

import threading

import pytest

from repro.obs import trace


@pytest.fixture
def tracing():
    """Enable tracing with a clean ring; restore everything after."""
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


class TestSpanBasics:
    def test_disabled_by_default_and_null(self):
        assert trace.enabled() is False
        before = trace.spans()
        sp = trace.span("anything", ignored=1)
        with sp as inner:
            assert inner is sp
        # The disabled path hands back one shared object: no allocation.
        assert trace.span("a") is trace.span("b")
        assert sp.set(x=1) is sp
        assert trace.spans() == before

    def test_records_wall_time_and_attrs(self, tracing):
        with trace.span("stage", nodes=3) as sp:
            sp.set(extra="yes")
        assert sp.elapsed_seconds is not None
        assert sp.elapsed_seconds >= 0.0
        assert sp.attrs == {"nodes": 3, "extra": "yes"}
        roots = trace.spans()
        assert [r.name for r in roots] == ["stage"]

    def test_nesting_builds_a_tree(self, tracing):
        with trace.span("outer"):
            with trace.span("mid"):
                with trace.span("leaf_a"):
                    pass
                with trace.span("leaf_b"):
                    pass
            with trace.span("mid2"):
                pass
        (root,) = trace.spans()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["mid", "mid2"]
        assert [c.name for c in root.children[0].children] == [
            "leaf_a",
            "leaf_b",
        ]
        assert [s.name for s in root.walk()] == [
            "outer",
            "mid",
            "leaf_a",
            "leaf_b",
            "mid2",
        ]

    def test_self_seconds_excludes_children(self, tracing):
        with trace.span("outer") as outer:
            with trace.span("inner"):
                pass
        inner = outer.children[0]
        assert outer.self_seconds == pytest.approx(
            outer.elapsed_seconds - inner.elapsed_seconds
        )

    def test_exception_unwind_closes_spans(self, tracing):
        with pytest.raises(ValueError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        (root,) = trace.spans()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert all(s.elapsed_seconds is not None for s in root.walk())

    def test_traced_decorator(self, tracing):
        @trace.traced("my.stage")
        def work(a, b=1):
            return a + b

        assert work(2, b=3) == 5
        assert [s.name for s in trace.spans()] == ["my.stage"]
        trace.disable()
        trace.clear()
        assert work(1) == 2  # runs untraced without a span
        assert trace.spans() == []

    def test_thread_local_stacks(self, tracing):
        def worker():
            with trace.span("worker"):
                pass

        with trace.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        names = sorted(s.name for s in trace.spans())
        # The worker span roots on its own thread, not under "main".
        assert names == ["main", "worker"]
        main = next(s for s in trace.spans() if s.name == "main")
        assert main.children == []


class TestRing:
    def test_eviction_keeps_newest(self, tracing):
        original = trace.ring_capacity()
        try:
            trace.set_ring_capacity(4)
            for i in range(10):
                with trace.span(f"s{i}"):
                    pass
            assert [s.name for s in trace.spans()] == [
                "s6",
                "s7",
                "s8",
                "s9",
            ]
        finally:
            trace.set_ring_capacity(original)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            trace.set_ring_capacity(0)

    def test_clear(self, tracing):
        with trace.span("x"):
            pass
        assert trace.spans()
        trace.clear()
        assert trace.spans() == []


class TestClearRace:
    """clear() racing an in-flight request must not orphan or duplicate
    root spans: the ring swap plus generation bump drops the stale root
    on the floor instead of resurrecting it into the fresh ring."""

    def test_clear_during_live_nested_span_drops_stale_root(self, tracing):
        with trace.span("request") as root:
            with trace.span("stage"):
                # A debugger clears the ring while the request is live.
                trace.clear()
            with trace.span("stage2"):
                pass
        # The stale root neither orphans into the fresh ring...
        assert trace.spans() == []
        # ...nor was its tree corrupted: it closed coherently off-ring.
        assert [c.name for c in root.children] == ["stage", "stage2"]
        assert all(s.elapsed_seconds is not None for s in root.walk())
        # And spans started after the clear record normally.
        with trace.span("fresh"):
            pass
        assert [s.name for s in trace.spans()] == ["fresh"]

    def test_clear_between_siblings_drops_only_stale_root(self, tracing):
        with trace.span("before"):
            pass
        with trace.span("during") as during:
            trace.clear()
        with trace.span("after"):
            pass
        names = [s.name for s in trace.spans()]
        assert names == ["after"]
        assert during.elapsed_seconds is not None

    def test_resize_keeps_live_span_recordable(self, tracing):
        """set_ring_capacity is not a clear: it keeps the generation, so
        a span that was open across the resize still lands in the ring."""
        original = trace.ring_capacity()
        try:
            with trace.span("live"):
                trace.set_ring_capacity(8)
            assert [s.name for s in trace.spans()] == ["live"]
        finally:
            trace.set_ring_capacity(original)

    def test_concurrent_clear_never_duplicates(self, tracing):
        """Hammer clear() against span recording; every surviving ring
        entry is unique and fully closed."""
        stop = threading.Event()

        def clearer():
            while not stop.is_set():
                trace.clear()

        t = threading.Thread(target=clearer)
        t.start()
        try:
            for i in range(200):
                with trace.span(f"r{i}"):
                    with trace.span("child"):
                        pass
        finally:
            stop.set()
            t.join()
        survivors = trace.spans()
        names = [s.name for s in survivors]
        assert len(names) == len(set(names)), "duplicated root spans"
        assert all(s.elapsed_seconds is not None for s in survivors)


class TestCollectAdopt:
    def test_collect_diverts_roots_from_ring(self, tracing):
        captured = []
        with trace.collect(captured):
            with trace.span("task"):
                with trace.span("step"):
                    pass
        assert trace.spans() == []
        (root,) = captured
        assert root.name == "task"
        assert [c.name for c in root.children] == ["step"]

    def test_collect_restores_previous_collector(self, tracing):
        outer, inner = [], []
        with trace.collect(outer):
            with trace.collect(inner):
                with trace.span("deep"):
                    pass
            with trace.span("shallow"):
                pass
        assert [s.name for s in inner] == ["deep"]
        assert [s.name for s in outer] == ["shallow"]

    def test_adopt_appends_roots(self, tracing):
        captured = []
        with trace.collect(captured):
            with trace.span("worker.task"):
                pass
        trace.adopt(captured)
        assert [s.name for s in trace.spans()] == ["worker.task"]

    def test_adopt_skips_null_spans(self, tracing):
        trace.disable()
        null = trace.manual_span("nope")
        trace.enable()
        trace.adopt([null])
        assert trace.spans() == []

    def test_spans_for_trace_matches_walk_and_links(self, tracing):
        from repro.obs import context

        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("mine"):
                pass
        with trace.span("unrelated"):
            pass
        # A batch-style span references the trace only via `links`.
        batch = trace.manual_span("batch", links=[ctx.trace_id]).finish()
        trace.adopt([batch])
        matched = trace.spans_for_trace(ctx.trace_id)
        assert sorted(s.name for s in matched) == ["batch", "mine"]
        assert trace.spans_for_trace("f" * 32) == []
