"""Visual artifacts: export the figure data as viewable PGM images.

The paper's Figures 4 and 5 are grayscale significance heat maps; this
module renders our measured maps (and the benchmark input/output images)
to PGM files so the reproduction can be inspected visually, not just
numerically.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.images import write_pgm

from .figure4 import Figure4, figure4
from .figure5 import Figure5, figure5

__all__ = [
    "heatmap_to_image",
    "save_figure4",
    "save_figure5",
    "save_all_artifacts",
]


def heatmap_to_image(
    values: np.ndarray, scale: int = 16, gamma: float = 0.5
) -> np.ndarray:
    """Upsample a small heat map to a viewable 8-bit image.

    ``gamma`` < 1 brightens the low end so the wave/radial patterns are
    visible despite the dominant peak cell (the paper's figures do the
    same implicitly via their colour map).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    peak = values.max()
    normalised = values / peak if peak > 0 else values
    shaped = np.power(np.clip(normalised, 0.0, 1.0), gamma)
    enlarged = np.repeat(np.repeat(shaped, scale, axis=0), scale, axis=1)
    return 255.0 * enlarged


def save_figure4(
    directory: str | pathlib.Path, fig: Figure4 | None = None
) -> pathlib.Path:
    """Write the DCT significance map as ``figure4_dct_map.pgm``."""
    fig = fig or figure4()
    path = pathlib.Path(directory) / "figure4_dct_map.pgm"
    write_pgm(path, heatmap_to_image(fig.significance_map, scale=32))
    return path


def save_figure5(
    directory: str | pathlib.Path, fig: Figure5 | None = None
) -> pathlib.Path:
    """Write the InverseMapping map as ``figure5_invmap.pgm``."""
    fig = fig or figure5()
    path = pathlib.Path(directory) / "figure5_invmap.pgm"
    write_pgm(path, heatmap_to_image(fig.analysis.significance, scale=16))
    return path


def save_all_artifacts(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Render every image artifact into ``directory`` (created if needed)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [save_figure4(directory), save_figure5(directory)]
