"""End-to-end tests of the significance service.

One server thread per module; every test talks to it through the stdlib
client exactly like an external tenant would.
"""

import json
import re

import pytest

from repro.runtime.tuning import min_ratio_for_quality
from repro.scorpio.advisor import suggest_approximations
from repro.scorpio.serialize import report_to_json
from repro.serve import ServiceError, ServiceThread, default_registry
from repro.serve.kernels import tune_setup

KERNELS = ("dct", "sobel", "blackscholes", "fisheye", "nbody")


@pytest.fixture(scope="module")
def service():
    with ServiceThread() as thread:
        yield thread


@pytest.fixture()
def client(service):
    with service.client() as c:
        yield c


class TestDiscovery:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert sorted(KERNELS) == health["kernels"]

    def test_kernels_lists_schemas(self, client):
        listing = {k["id"]: k for k in client.kernels()}
        assert set(listing) == set(KERNELS)
        assert listing["dct"]["inputs"] == 64
        assert listing["blackscholes"]["input_names"] == [
            "S",
            "K",
            "r",
            "v",
            "T",
        ]
        assert set(listing["sobel"]["cache"]) == {
            "records",
            "replays",
            "divergences",
            "validations",
            "traces",
        }


class TestAnalyse:
    @pytest.mark.parametrize("kernel_id", KERNELS)
    def test_byte_identical_to_in_process(self, client, kernel_id):
        """The acceptance gate: served bytes == in-process report JSON."""
        entry = default_registry()[kernel_id]
        served, _outcome = client.analyse_raw(kernel_id)
        expected = report_to_json(
            entry.analyse_in_process(entry.defaults())
        ).encode("utf-8")
        assert served == expected

    def test_repeat_request_replays(self, service, client):
        inputs = [[float(i) + 1.0, float(i) + 1.5] for i in range(5)]
        before = service.service.caches["blackscholes"].stats()
        first, outcome1 = client.analyse_raw("blackscholes", inputs)
        second, outcome2 = client.analyse_raw("blackscholes", inputs)
        after = service.service.caches["blackscholes"].stats()
        assert first == second
        assert outcome2 == "replay"
        # No new recording for the repeat: all increments are replays.
        assert after["records"] - before["records"] <= 1
        assert after["replays"] > before["replays"]

    def test_explicit_inputs_change_the_report(self, client):
        base = client.analyse("sobel")
        shifted = client.analyse(
            "sobel", [[10.0 * i, 10.0 * i + 1.0] for i in range(9)]
        )
        assert base["labelled_significances"] != shifted["labelled_significances"]

    def test_interval_forms_are_equivalent(self, client):
        pairs = [[1.0, 2.0]] * 5
        objects = [{"lo": 1.0, "hi": 2.0}] * 5
        a, _ = client.analyse_raw("blackscholes", pairs)
        b, _ = client.analyse_raw("blackscholes", objects)
        assert a == b

    def test_report_has_the_full_shape(self, client):
        report = client.analyse("dct")
        assert set(report) >= {
            "partition_level",
            "delta",
            "labelled_significances",
            "normalised_significances",
            "input_significances",
            "graph",
            "raw_graph_size",
            "simplified_graph_size",
        }
        # The serialized graph is the partition-level view, never larger
        # than the simplified tape.
        assert 0 < len(report["graph"]["nodes"]) <= report["simplified_graph_size"]


class TestAnalyseErrors:
    def test_unknown_kernel_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.analyse("mandelbrot")
        assert err.value.status == 404
        assert "mandelbrot" in err.value.detail
        assert "dct" in err.value.detail  # lists known kernels

    def test_missing_kernel_field_400(self, client):
        status, _, body = client.request_raw("POST", "/analyse", {})
        assert status == 400
        assert "kernel" in json.loads(body)["error"]["detail"]

    def test_wrong_input_count_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.analyse("sobel", [[0.0, 1.0]] * 4)
        assert err.value.status == 400
        assert "9 inputs" in err.value.detail

    def test_bad_interval_shape_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.analyse("blackscholes", [[1.0, 2.0, 3.0]] * 5)
        assert err.value.status == 400

    def test_inverted_bounds_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.analyse("blackscholes", [[2.0, 1.0]] * 5)
        assert err.value.status == 400
        assert "lo" in err.value.detail

    def test_non_finite_bounds_400(self, client):
        status, _, body = client.request_raw(
            "POST",
            "/analyse",
            {"kernel": "blackscholes", "inputs": [["inf", 1.0]] * 5},
        )
        assert status == 400

    def test_malformed_json_400(self, client):
        conn = client._connection()
        conn.request(
            "POST",
            "/analyse",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = response.read()
        assert response.status == 400
        assert "invalid JSON" in json.loads(body)["error"]["detail"]


class TestAdvise:
    def test_matches_in_process_advisor(self, client):
        entry = default_registry()["blackscholes"]
        served = client.advise("blackscholes", threshold=0.25)
        report = entry.analyse_in_process(entry.defaults())
        expected = suggest_approximations(report, 0.25)
        assert [s["op"] for s in served["suggestions"]] == [
            s.op for s in expected
        ]
        assert [s["node_id"] for s in served["suggestions"]] == [
            s.node_id for s in expected
        ]
        assert served["advice"].startswith(f"{len(expected)} operation(s)")

    def test_threshold_zero_yields_nothing(self, client):
        served = client.advise("blackscholes", threshold=0.0)
        assert served["suggestions"] == []
        assert "no low-significance" in served["advice"]

    def test_bad_threshold_400(self, client):
        status, _, _ = client.request_raw(
            "POST", "/advise", {"kernel": "dct", "threshold": "high"}
        )
        assert status == 400


class TestTune:
    def test_matches_in_process_tuner(self, client):
        served = client.tune("dct", target_quality=30.0, size=16)
        setup = tune_setup("dct", 16)
        expected = min_ratio_for_quality(
            setup.evaluate, 30.0, higher_is_better=True
        )
        assert served["taskwait"]["ratio"] == pytest.approx(expected.ratio)
        assert served["quality"] == pytest.approx(expected.quality)
        assert served["energy"] == pytest.approx(expected.energy)
        assert served["satisfied"] == expected.satisfied
        assert served["quality_metric"] == "psnr_db"
        assert len(served["probes"]) == len(expected.probes)

    def test_energy_budget_mode(self, client):
        served = client.tune("blackscholes", energy_budget=1e9, size=64)
        assert served["mode"] == "energy_budget"
        assert served["satisfied"] is True
        assert served["taskwait"]["ratio"] == 1.0

    def test_requires_exactly_one_objective(self, client):
        for payload in (
            {"kernel": "dct"},
            {"kernel": "dct", "target_quality": 30.0, "energy_budget": 5.0},
        ):
            status, _, body = client.request_raw("POST", "/tune", payload)
            assert status == 400
            assert "exactly one" in json.loads(body)["error"]["detail"]

    def test_bad_size_400(self, client):
        status, _, _ = client.request_raw(
            "POST", "/tune", {"kernel": "dct", "target_quality": 1.0, "size": 1}
        )
        assert status == 400


class TestMetrics:
    def test_prometheus_exposition_format(self, client):
        client.analyse("sobel")  # ensure serve counters are live
        exposition = client.metrics()
        lines = exposition.splitlines()
        assert lines, "metrics exposition is empty"
        sample_re = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]* \S+$")
        for line in lines:
            assert line.startswith("# TYPE ") or sample_re.match(line), line
        assert any(
            line.startswith("repro_serve_requests_total ") for line in lines
        )
        assert any(
            line.startswith("repro_serve_analyse_cache_hits_total ")
            for line in lines
        )
        assert any(
            line.startswith("repro_serve_latency_ms_analyse_count ")
            for line in lines
        )
        assert any(
            line.startswith("repro_trace_cache_replays_total ")
            for line in lines
        )

    def test_cache_hit_counter_increments_on_repeat(self, client):
        def hits() -> float:
            for line in client.metrics().splitlines():
                if line.startswith("repro_serve_analyse_cache_hits_total "):
                    return float(line.split()[1])
            return 0.0

        inputs = [[float(i) + 0.5, float(i) + 1.5] for i in range(5)]
        client.analyse("blackscholes", inputs)
        before = hits()
        client.analyse("blackscholes", inputs)
        assert hits() == before + 1
