"""Span recording (:mod:`repro.obs.trace`): nesting, attrs, the ring."""

import threading

import pytest

from repro.obs import trace


@pytest.fixture
def tracing():
    """Enable tracing with a clean ring; restore everything after."""
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


class TestSpanBasics:
    def test_disabled_by_default_and_null(self):
        assert trace.enabled() is False
        before = trace.spans()
        sp = trace.span("anything", ignored=1)
        with sp as inner:
            assert inner is sp
        # The disabled path hands back one shared object: no allocation.
        assert trace.span("a") is trace.span("b")
        assert sp.set(x=1) is sp
        assert trace.spans() == before

    def test_records_wall_time_and_attrs(self, tracing):
        with trace.span("stage", nodes=3) as sp:
            sp.set(extra="yes")
        assert sp.elapsed_seconds is not None
        assert sp.elapsed_seconds >= 0.0
        assert sp.attrs == {"nodes": 3, "extra": "yes"}
        roots = trace.spans()
        assert [r.name for r in roots] == ["stage"]

    def test_nesting_builds_a_tree(self, tracing):
        with trace.span("outer"):
            with trace.span("mid"):
                with trace.span("leaf_a"):
                    pass
                with trace.span("leaf_b"):
                    pass
            with trace.span("mid2"):
                pass
        (root,) = trace.spans()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["mid", "mid2"]
        assert [c.name for c in root.children[0].children] == [
            "leaf_a",
            "leaf_b",
        ]
        assert [s.name for s in root.walk()] == [
            "outer",
            "mid",
            "leaf_a",
            "leaf_b",
            "mid2",
        ]

    def test_self_seconds_excludes_children(self, tracing):
        with trace.span("outer") as outer:
            with trace.span("inner"):
                pass
        inner = outer.children[0]
        assert outer.self_seconds == pytest.approx(
            outer.elapsed_seconds - inner.elapsed_seconds
        )

    def test_exception_unwind_closes_spans(self, tracing):
        with pytest.raises(ValueError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        (root,) = trace.spans()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert all(s.elapsed_seconds is not None for s in root.walk())

    def test_traced_decorator(self, tracing):
        @trace.traced("my.stage")
        def work(a, b=1):
            return a + b

        assert work(2, b=3) == 5
        assert [s.name for s in trace.spans()] == ["my.stage"]
        trace.disable()
        trace.clear()
        assert work(1) == 2  # runs untraced without a span
        assert trace.spans() == []

    def test_thread_local_stacks(self, tracing):
        def worker():
            with trace.span("worker"):
                pass

        with trace.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        names = sorted(s.name for s in trace.spans())
        # The worker span roots on its own thread, not under "main".
        assert names == ["main", "worker"]
        main = next(s for s in trace.spans() if s.name == "main")
        assert main.children == []


class TestRing:
    def test_eviction_keeps_newest(self, tracing):
        original = trace.ring_capacity()
        try:
            trace.set_ring_capacity(4)
            for i in range(10):
                with trace.span(f"s{i}"):
                    pass
            assert [s.name for s in trace.spans()] == [
                "s6",
                "s7",
                "s8",
                "s9",
            ]
        finally:
            trace.set_ring_capacity(original)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            trace.set_ring_capacity(0)

    def test_clear(self, tracing):
        with trace.span("x"):
            pass
        assert trace.spans()
        trace.clear()
        assert trace.spans() == []
