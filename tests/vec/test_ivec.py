"""Unit tests for the lane-parallel interval array."""

import numpy as np
import pytest

from repro.intervals import EmptyIntervalError, Interval
from repro.intervals import functions as ifn
from repro.vec import AmbiguousLaneComparisonError, IntervalArray, as_interval_array
from repro.vec import ivec


class TestConstruction:
    def test_point_and_centered(self):
        a = IntervalArray.point([1.0, -2.0, 3.5])
        assert a.shape == (3,)
        assert np.all(a.lo == a.hi)
        b = IntervalArray.centered([0.0, 1.0], 0.5)
        assert b.lane(0) == Interval(-0.5, 0.5)
        assert b.lane(1) == Interval(0.5, 1.5)

    def test_invalid_bounds_raise(self):
        with pytest.raises(EmptyIntervalError):
            IntervalArray([0.0, 1.0], [1.0, 0.5])
        with pytest.raises(EmptyIntervalError):
            IntervalArray([np.nan], [1.0])

    def test_from_intervals_roundtrip(self):
        ivs = [Interval(-1.0, 2.0), Interval(0.25), Interval(3.0, 4.0)]
        arr = IntervalArray.from_intervals(ivs)
        assert arr.to_intervals() == ivs
        assert list(arr) == ivs

    def test_zeros_full(self):
        z = IntervalArray.zeros((2, 3))
        assert z.shape == (2, 3)
        assert not z.lo.any() and not z.hi.any()
        f = IntervalArray.full(4, Interval(1.0, 2.0))
        assert f.lane(3) == Interval(1.0, 2.0)

    def test_immutable(self):
        a = IntervalArray.point([1.0])
        with pytest.raises(AttributeError):
            a.lo = np.array([2.0])
        assert not a.lo.flags.writeable

    def test_lane_tuple_index_and_reshape(self):
        a = IntervalArray.centered(np.arange(6.0).reshape(2, 3), 0.1)
        assert a.lane((1, 2)) == a.reshape(6).lane(5)

    def test_as_interval_array_coercions(self):
        shape = (3,)
        assert as_interval_array(2.0, shape).lane(1) == Interval(2.0)
        assert as_interval_array(Interval(1, 2), shape).lane(2) == Interval(1, 2)
        arr = as_interval_array(np.array([1.0, 2.0, 3.0]), shape)
        assert arr.lane(2) == Interval(3.0)
        same = IntervalArray.point([1.0, 2.0, 3.0])
        assert as_interval_array(same, shape) is same


class TestArithmetic:
    def test_add_matches_scalar(self):
        a = IntervalArray.from_intervals([Interval(0, 1), Interval(-2, -1)])
        b = IntervalArray.from_intervals([Interval(5, 6), Interval(0.5, 0.75)])
        got = (a + b).to_intervals()
        want = [x + y for x, y in zip(a, b)]
        assert got == want

    def test_mul_matches_scalar_all_sign_cases(self):
        cases = [
            (Interval(1, 2), Interval(3, 4)),
            (Interval(-2, -1), Interval(3, 4)),
            (Interval(-2, 3), Interval(-1, 5)),
            (Interval(-2, 3), Interval(-4, -1)),
            (Interval(0.0), Interval(-1, 1)),
        ]
        a = IntervalArray.from_intervals([c[0] for c in cases])
        b = IntervalArray.from_intervals([c[1] for c in cases])
        assert (a * b).to_intervals() == [x * y for x, y in cases]

    def test_same_object_square_is_sharp(self):
        a = IntervalArray.from_intervals([Interval(-2, 3)])
        # Dependency-aware square: lower bound ~0 (a few ULPs of outward
        # rounding, like the scalar engine), not the generic product's -6.
        assert (a * a).lane(0).lo > -1e-300

    def test_div_matches_scalar(self):
        a = IntervalArray.from_intervals([Interval(1, 2), Interval(-4, 6)])
        b = IntervalArray.from_intervals([Interval(2, 4), Interval(-2, -1)])
        assert (a / b).to_intervals() == [x / y for x, y in zip(a, b)]

    def test_div_by_zero_lane_raises(self):
        a = IntervalArray.point([1.0, 1.0])
        b = IntervalArray.from_intervals([Interval(1, 2), Interval(-1, 1)])
        with pytest.raises(ZeroDivisionError):
            a / b

    def test_int_pow_matches_scalar(self):
        base = [Interval(-2, 3), Interval(0.5, 1.5), Interval(-3, -1)]
        arr = IntervalArray.from_intervals(base)
        for n in (0, 1, 2, 3, 4, -1, -2):
            if n < 0:
                vals = [iv for iv in base if not iv.contains(0.0)]
                a = IntervalArray.from_intervals(vals)
            else:
                vals, a = base, arr
            got = (a ** n).to_intervals()
            want = [iv ** n for iv in vals]
            for g, wv in zip(got, want):
                assert g.lo <= wv.lo and wv.hi <= g.hi

    def test_neg_abs(self):
        a = IntervalArray.from_intervals([Interval(-2, 1), Interval(3, 4)])
        assert (-a).to_intervals() == [-x for x in a]
        assert abs(a).to_intervals() == [abs(x) for x in a]

    def test_scalar_broadcast(self):
        a = IntervalArray.point([1.0, 2.0])
        # Broadcast const ops must agree with the scalar engine exactly
        # (same IEEE ops, same outward rounding).
        assert (a + 1.0).to_intervals() == [
            Interval(1.0) + 1.0,
            Interval(2.0) + 1.0,
        ]
        assert (3.0 - a).lane(0) == 3.0 - Interval(1.0)
        assert (a * Interval(0, 1)).lane(1) == Interval(2.0) * Interval(0, 1)


class TestComparisons:
    def test_unambiguous_masks(self):
        a = IntervalArray.from_intervals([Interval(0, 1), Interval(5, 6)])
        b = IntervalArray.from_intervals([Interval(2, 3), Interval(1, 2)])
        assert list(a < b) == [True, False]
        assert list(a > b) == [False, True]

    def test_ambiguous_lane_raises_with_lane_info(self):
        a = IntervalArray.from_intervals([Interval(0, 1), Interval(2, 4)])
        b = IntervalArray.from_intervals([Interval(2, 3), Interval(3, 5)])
        with pytest.raises(AmbiguousLaneComparisonError) as exc:
            a < b
        assert 1 in exc.value.lanes

    def test_ambiguous_subclasses_scalar_error(self):
        from repro.intervals import AmbiguousComparisonError

        a = IntervalArray.from_intervals([Interval(0, 2)])
        with pytest.raises(AmbiguousComparisonError):
            a < 1.0

    def test_eq_mask_and_certainly(self):
        a = IntervalArray.point([1.0, 2.0])
        assert list(a == IntervalArray.point([1.0, 3.0])) == [True, False]
        assert list(a.certainly_lt(IntervalArray.point([5.0, 0.0]))) == [
            True,
            False,
        ]


class TestIntrinsics:
    def test_domain_errors(self):
        with pytest.raises(ValueError):
            ivec.sqrt(IntervalArray.from_intervals([Interval(-1, 1)]))
        with pytest.raises(ValueError):
            ivec.log(IntervalArray.from_intervals([Interval(0, 1)]))
        with pytest.raises(ValueError):
            ivec.asin(IntervalArray.from_intervals([Interval(0.5, 2.0)]))

    def test_trig_hits_extrema(self):
        # Lane spanning pi/2 must reach sin's maximum 1.
        x = IntervalArray.from_intervals([Interval(1.0, 2.0)])
        s = ivec.sin(x).lane(0)
        assert s.hi >= 1.0
        c = ivec.cos(IntervalArray.from_intervals([Interval(3.0, 3.5)])).lane(0)
        assert c.lo <= -1.0

    def test_exact_ops_no_rounding(self):
        x = IntervalArray.from_intervals([Interval(0.25, 2.75)])
        assert ivec.floor(x).lane(0) == Interval(0.0, 2.0)
        assert ivec.ceil(x).lane(0) == Interval(1.0, 3.0)
        assert ivec.clip(x, 0.5, 2.0).lane(0) == Interval(0.5, 2.0)

    def test_min_max_match_scalar(self):
        a = IntervalArray.from_intervals([Interval(0, 3), Interval(-1, 1)])
        b = IntervalArray.from_intervals([Interval(1, 2), Interval(4, 5)])
        assert ivec.minimum(a, b).to_intervals() == [
            ifn.minimum(x, y) for x, y in zip(a, b)
        ]
        assert ivec.maximum(a, b).to_intervals() == [
            ifn.maximum(x, y) for x, y in zip(a, b)
        ]

    @pytest.mark.parametrize(
        "name,domain",
        [
            ("sqrt", Interval(0.1, 4.0)),
            ("exp", Interval(-2.0, 2.0)),
            ("log", Interval(0.5, 3.0)),
            ("sin", Interval(-1.0, 1.0)),
            ("cos", Interval(0.5, 2.5)),
            ("tanh", Interval(-2.0, 2.0)),
            ("erf", Interval(-1.5, 1.5)),
            ("atan", Interval(-3.0, 3.0)),
            ("sinh", Interval(-1.0, 2.0)),
            ("cosh", Interval(-1.0, 2.0)),
            ("expm1", Interval(-1.0, 1.0)),
            ("log1p", Interval(-0.5, 2.0)),
        ],
    )
    def test_unary_encloses_scalar(self, name, domain):
        lanes = [
            domain,
            Interval(domain.lo),
            Interval(domain.midpoint, domain.hi),
        ]
        arr = IntervalArray.from_intervals(lanes)
        got = getattr(ivec, name)(arr)
        want = IntervalArray.from_intervals(
            [getattr(ifn, name)(iv) for iv in lanes]
        )
        assert got.encloses(want).all()

    def test_hull_width_midpoint(self):
        a = IntervalArray.from_intervals([Interval(0, 1), Interval(2, 6)])
        assert list(a.width) == [1.0, 4.0]
        assert list(a.midpoint) == [0.5, 4.0]
        h = a.hull(IntervalArray.point([-1.0, 3.0]))
        assert h.to_intervals() == [Interval(-1, 1), Interval(2, 6)]
