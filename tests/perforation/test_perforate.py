"""Tests for the loop-perforation primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perforation import (
    interleaved,
    modulo,
    perforate_sequence,
    perforated_indices,
    perforated_range,
    truncated,
)


class TestInterleaved:
    def test_full_ratio(self):
        assert interleaved(10, 1.0) == list(range(10))

    def test_zero_ratio(self):
        assert interleaved(10, 0.0) == []

    def test_exact_count(self):
        assert len(interleaved(100, 0.5)) == 50

    def test_ceil_rounding(self):
        assert len(interleaved(3, 0.5)) == 2

    def test_spread_uniform(self):
        indices = interleaved(100, 0.25)
        gaps = [b - a for a, b in zip(indices, indices[1:])]
        assert max(gaps) <= 5  # roughly every 4th

    def test_includes_zero(self):
        assert 0 in interleaved(64, 0.1)

    def test_sorted_unique_in_range(self):
        indices = interleaved(37, 0.43)
        assert indices == sorted(set(indices))
        assert all(0 <= i < 37 for i in indices)

    def test_empty_loop(self):
        assert interleaved(0, 0.5) == []


class TestTruncated:
    def test_prefix(self):
        assert truncated(10, 0.3) == [0, 1, 2]

    def test_full(self):
        assert truncated(5, 1.0) == list(range(5))


class TestModulo:
    def test_every_other(self):
        assert modulo(10, 0.5) == [0, 2, 4, 6, 8]

    def test_zero(self):
        assert modulo(10, 0.0) == []

    def test_full(self):
        assert modulo(10, 1.0) == list(range(10))


class TestWrappers:
    def test_perforated_indices_default_scheme(self):
        assert perforated_indices(10, 0.5) == interleaved(10, 0.5)

    def test_custom_scheme(self):
        assert perforated_indices(10, 0.3, scheme=truncated) == [0, 1, 2]

    def test_perforate_sequence(self):
        items = list("abcdefghij")
        kept = list(perforate_sequence(items, 0.3))
        assert len(kept) == 3 and kept[0] == "a"

    def test_perforated_range(self):
        assert list(perforated_range(4, 0.5)) == interleaved(4, 0.5)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            perforated_indices(10, 1.5)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            perforated_indices(-1, 0.5)


@given(
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_interleaved_properties(count, ratio):
    indices = interleaved(count, ratio)
    assert len(indices) == min(count, math.ceil(ratio * count))
    assert indices == sorted(set(indices))
    assert all(0 <= i < count for i in indices)


@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_all_schemes_respect_ratio_at_least(count, ratio):
    for scheme in (interleaved, truncated):
        executed = len(scheme(count, ratio))
        assert executed >= math.floor(ratio * count)
