"""Tests for the Maclaurin running example."""

import math

import pytest

from repro.kernels.maclaurin import (
    analyse_maclaurin,
    maclaurin_series,
    maclaurin_tasks,
    pow_term,
    pow_term_fast,
)


class TestSeries:
    def test_matches_closed_form(self):
        x, n = 0.3, 20
        value = maclaurin_series(x, n)
        assert value == pytest.approx((1 - x**n) / (1 - x))

    def test_single_term(self):
        assert maclaurin_series(0.5, 1) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            maclaurin_series(0.5, 0)

    def test_negative_x(self):
        value = maclaurin_series(-0.5, 30)
        assert value == pytest.approx(1.0 / 1.5, rel=1e-6)


class TestTaskBodies:
    def test_pow_term_writes_output(self):
        out = [0.0] * 4
        assert pow_term(out, 2.0, 3) == 8.0
        assert out[3] == 8.0

    def test_pow_term_fast_close(self):
        out = [0.0] * 6
        pow_term_fast(out, 0.7, 5)
        assert out[5] == pytest.approx(0.7**5, rel=1e-3)

    def test_pow_term_fast_exponent_zero(self):
        out = [0.0]
        assert pow_term_fast(out, 0.7, 0) == 1.0

    def test_pow_term_fast_zero_base(self):
        out = [0.0, 0.0]
        assert pow_term_fast(out, 0.0, 1) == 0.0

    def test_pow_term_fast_negative_base(self):
        out = [0.0] * 4
        pow_term_fast(out, -0.5, 3)
        assert out[3] == pytest.approx(-0.125, rel=1e-3)


class TestTasks:
    def test_ratio_one_is_exact(self):
        value, _ = maclaurin_tasks(0.49, 10, 1.0)
        assert value == pytest.approx(maclaurin_series(0.49, 10))

    def test_ratio_zero_still_close(self):
        exact = maclaurin_series(0.49, 10)
        value, _ = maclaurin_tasks(0.49, 10, 0.0)
        assert value == pytest.approx(exact, rel=1e-2)

    def test_error_decreases_with_ratio(self):
        exact = maclaurin_series(0.49, 10)
        errors = []
        for ratio in (0.0, 0.5, 1.0):
            value, _ = maclaurin_tasks(0.49, 10, ratio)
            errors.append(abs(value - exact))
        assert errors[0] >= errors[1] >= errors[2]

    def test_energy_increases_with_ratio(self):
        energies = []
        for ratio in (0.0, 0.5, 1.0):
            _, rt = maclaurin_tasks(0.49, 10, ratio)
            energies.append(rt.total_energy.total)
        assert energies[0] < energies[1] < energies[2]

    def test_significance_ordering_listing7(self):
        # The (n-i+1)/(n+2) formula: earlier terms more significant.
        _, rt = maclaurin_tasks(0.49, 8, 0.5)
        group = rt.history[0]
        accurate = [r.task for r in group.results if r.was_accurate]
        dropped = [r.task for r in group.results if not r.was_accurate]
        if accurate and dropped:
            assert min(t.significance for t in accurate) >= max(
                t.significance for t in dropped
            )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            maclaurin_tasks(0.5, 0, 0.5)


class TestAnalysis:
    def test_partition_level(self):
        assert analyse_maclaurin().partition_level == 1

    def test_significances_sum_to_one(self):
        result = analyse_maclaurin()
        assert sum(result.normalised.values()) == pytest.approx(1.0)

    def test_custom_width(self):
        result = analyse_maclaurin(x_hat=0.2, width=0.2, n=4)
        assert result.term_significances["term0"] == pytest.approx(0.0, abs=1e-9)
