"""Named counters, gauges and histograms with a process-global registry.

Metrics are deliberately simpler than spans: a counter increment is one
float add on a slotted object, cheap enough to stay **always on** — that
is what lets :meth:`repro.scorpio.trace_cache.TraceCache.stats` remain a
thin view over real counters instead of a parallel bookkeeping dict, and
what gives BENCH runs replay-hit-rate context without enabling tracing.

Three instrument kinds:

* :class:`Counter` — monotonically increasing total (events, nodes).
* :class:`Gauge` — a set-to-current value (cached traces alive).
* :class:`Histogram` — count/sum/min/max of observed values (tape sizes,
  barrier wall times).  No buckets: the pipeline needs distribution
  *summaries*, not quantiles, and summaries keep ``observe`` allocation
  free.

The :class:`MetricsRegistry` maps dotted names to instruments
(get-or-create, kind-checked) and exports either a plain-dict
``snapshot()`` (JSON-friendly) or Prometheus text exposition via
``to_prometheus()`` (names prefixed ``repro_``, dots folded to
underscores, counters suffixed ``_total``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "snapshot_delta",
    "merge_snapshot",
    "reset_metrics",
    "to_prometheus",
    "to_json",
]


class Counter:
    """Monotone event total.  ``inc`` is the always-on hot path."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def get(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0

    def describe(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Set-to-current value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0

    def describe(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Count / sum / min / max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def describe(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Dotted-name → instrument map with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._metrics.items()))

    def get(self, name: str) -> Any | None:
        """The registered instrument, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter/gauge value by name (``default`` when unregistered)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.get()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain ``{name: {"type": ..., ...}}`` dict, names sorted."""
        return {name: m.describe() for name, m in self}

    @staticmethod
    def snapshot_delta(
        before: dict[str, dict[str, Any]], after: dict[str, dict[str, Any]]
    ) -> dict[str, dict[str, Any]]:
        """What changed between two :meth:`snapshot` dicts.

        Counters and histogram count/sum become differences; gauges carry
        their latest value; untouched instruments are dropped.  This is
        how a :mod:`repro.mp` worker describes the metrics it produced —
        snapshot at batch start and end, ship the delta — so the parent
        can fold worker activity into its own registry without double
        counting anything the worker inherited from a fork.  Histogram
        min/max are the worker's observed extremes (they cannot be
        differenced), so the merged min/max stay valid bounds over all
        observations, merely not tight to the delta window.
        """
        delta: dict[str, dict[str, Any]] = {}
        for name, cur in after.items():
            prev = before.get(name)
            kind = cur["type"]
            if kind == "counter":
                d = cur["value"] - (prev["value"] if prev else 0.0)
                if d:
                    delta[name] = {"type": "counter", "value": d}
            elif kind == "gauge":
                if prev is None or cur["value"] != prev["value"]:
                    delta[name] = {"type": "gauge", "value": cur["value"]}
            else:  # histogram
                d_count = cur["count"] - (prev["count"] if prev else 0)
                if d_count:
                    delta[name] = {
                        "type": "histogram",
                        "count": d_count,
                        "sum": cur["sum"] - (prev["sum"] if prev else 0.0),
                        "min": cur["min"],
                        "max": cur["max"],
                    }
        return delta

    def merge_snapshot(self, delta: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot_delta` dict into this registry.

        Counter deltas add, gauge values overwrite, histogram deltas add
        count/sum and widen min/max.  Get-or-create semantics apply, so a
        metric only a worker touched still appears in the parent.
        """
        for name, entry in delta.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).inc(float(entry["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(entry["value"]))
            else:
                h = self.histogram(name)
                h.count += int(entry["count"])
                h.total += float(entry["sum"])
                if entry["min"] is not None and entry["min"] < h.min:
                    h.min = float(entry["min"])
                if entry["max"] is not None and entry["max"] > h.max:
                    h.max = float(entry["max"])

    def reset(self, *, drop: bool = False) -> None:
        """Zero every instrument (``drop=True`` forgets them entirely).

        Instrument objects are kept by default so module-level references
        captured at import time keep feeding the same registry entries.
        """
        if drop:
            self._metrics.clear()
        else:
            for metric in self._metrics.values():
                metric.reset()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps({"metrics": self.snapshot()}, indent=indent)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (0.0.4).

        Counters get the conventional ``_total`` suffix; histograms are
        exported as ``_count`` / ``_sum`` / ``_min`` / ``_max`` gauges.
        """
        lines: list[str] = []
        for name, metric in self:
            base = _prom_name(prefix, name)
            if metric.kind == "counter":
                lines.append(f"# TYPE {base}_total counter")
                lines.append(f"{base}_total {_prom_value(metric.value)}")
            elif metric.kind == "gauge":
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base} {_prom_value(metric.value)}")
            else:
                lines.append(f"# TYPE {base} summary")
                lines.append(f"{base}_count {metric.count}")
                lines.append(f"{base}_sum {_prom_value(metric.total)}")
                if metric.count:
                    lines.append(f"{base}_min {_prom_value(metric.min)}")
                    lines.append(f"{base}_max {_prom_value(metric.max)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    safe = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name.replace(".", "_")
    )
    return f"{prefix}_{safe}"


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    # Integral values print without the trailing .0 (canonical form).
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Process-global default registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry all pipeline instrumentation uses."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get-or-create a counter in the global registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the global registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram in the global registry."""
    return _REGISTRY.histogram(name)


def snapshot() -> dict[str, dict[str, Any]]:
    """Snapshot of the global registry."""
    return _REGISTRY.snapshot()


def snapshot_delta(
    before: dict[str, dict[str, Any]], after: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Difference of two snapshots (see ``MetricsRegistry.snapshot_delta``)."""
    return MetricsRegistry.snapshot_delta(before, after)


def merge_snapshot(delta: dict[str, dict[str, Any]]) -> None:
    """Fold a worker's snapshot delta into the global registry."""
    _REGISTRY.merge_snapshot(delta)


def reset_metrics(*, drop: bool = False) -> None:
    """Zero (or drop) every instrument in the global registry."""
    _REGISTRY.reset(drop=drop)


def to_prometheus(prefix: str = "repro") -> str:
    """Prometheus text exposition of the global registry."""
    return _REGISTRY.to_prometheus(prefix)


def to_json(indent: int | None = 2) -> str:
    """JSON document of the global registry snapshot."""
    return _REGISTRY.to_json(indent)
