"""Significance-aware task runtime (the paper's OpenMP extension).

Public surface: :class:`TaskRuntime` (submit/taskwait), the energy models,
and the execution strategies.
"""

from .api import TaskRuntime
from .controller import RatioController
from .dependencies import (
    DependencyCycleError,
    DependencyGraph,
    run_with_dependencies,
)
from .energy import (
    AnalyticEnergyModel,
    EnergyBreakdown,
    EnergyModel,
    TimingEnergyModel,
    perforation_energy,
)
from .executor import Executor, SequentialExecutor, ThreadedExecutor
from .scheduler import plan_modes
from .stats import GroupResult, GroupStats
from .task import ExecutionMode, Task, TaskResult
from .tuning import TuningResult, best_quality_under_energy, min_ratio_for_quality

__all__ = [
    "TaskRuntime",
    "Task",
    "TaskResult",
    "ExecutionMode",
    "plan_modes",
    "SequentialExecutor",
    "ThreadedExecutor",
    "Executor",
    "AnalyticEnergyModel",
    "TimingEnergyModel",
    "EnergyModel",
    "EnergyBreakdown",
    "perforation_energy",
    "GroupResult",
    "GroupStats",
    "DependencyGraph",
    "DependencyCycleError",
    "run_with_dependencies",
    "TuningResult",
    "min_ratio_for_quality",
    "best_quality_under_energy",
    "RatioController",
]
