"""Failure-injection tests: how the runtime behaves when tasks misbehave."""

import numpy as np
import pytest

from repro.runtime import (
    AnalyticEnergyModel,
    DependencyGraph,
    SequentialExecutor,
    Task,
    TaskRuntime,
    ThreadedExecutor,
    run_with_dependencies,
)


def failing(message="injected failure"):
    def body():
        raise RuntimeError(message)

    return body


class TestTaskFailures:
    def test_sequential_propagates_with_message(self):
        rt = TaskRuntime()
        rt.submit(failing("boom-42"))
        with pytest.raises(RuntimeError, match="boom-42"):
            rt.taskwait()

    def test_threaded_propagates(self):
        rt = TaskRuntime(executor=ThreadedExecutor(2))
        rt.submit(lambda: None)
        rt.submit(failing())
        with pytest.raises(RuntimeError, match="injected"):
            rt.taskwait()

    def test_group_consumed_even_after_failure(self):
        rt = TaskRuntime()
        rt.submit(failing())
        with pytest.raises(RuntimeError):
            rt.taskwait()
        # The failed group was popped; a fresh submission starts clean.
        rt.submit(lambda: 1)
        group = rt.taskwait()
        assert group.stats.total == 1

    def test_failing_approx_version(self):
        rt = TaskRuntime()
        rt.submit(
            lambda: "accurate",
            significance=0.1,
            approx_fn=failing("approx broke"),
        )
        with pytest.raises(RuntimeError, match="approx broke"):
            rt.taskwait(ratio=0.0)

    def test_dropped_failing_task_never_runs(self):
        rt = TaskRuntime()
        rt.submit(failing(), significance=0.1)  # no approx -> dropped
        group = rt.taskwait(ratio=0.0)
        assert group.stats.dropped == 1

    def test_dependency_failure_stops_downstream(self):
        log = []
        g = DependencyGraph()
        g.add(Task(fn=failing()), writes=["a"])
        g.add(Task(fn=lambda: log.append("consumer")), reads=["a"])
        with pytest.raises(RuntimeError):
            run_with_dependencies(g)
        assert log == []  # the consumer wave never started


class TestBadMeasurements:
    def test_nan_output_poisons_psnr_not_crash(self):
        from repro.metrics import mse

        value = mse([1.0, 2.0], [float("nan"), 2.0])
        assert np.isnan(value)

    def test_energy_model_with_zero_tasks(self):
        model = AnalyticEnergyModel()
        assert model.measure([]).total == 0.0

    def test_executor_rejects_inconsistent_plan(self):
        with pytest.raises(ValueError):
            SequentialExecutor().run([Task(fn=lambda: None)], [])
