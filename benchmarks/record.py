"""Record headline benchmark numbers to ``BENCH_core.json``.

The pytest-benchmark harness measures everything, but its JSON output is
per-run and machine-relative.  This module keeps a small, curated set of
*headline* numbers — the speedups and costs the README quotes — in a
stable file at the repo root, written incrementally by the benchmarks as
they run::

    from record import record_value
    record_value("analysis.tree_dot_speedup", 8.3, unit="x")

and compared against a committed baseline in CI::

    python benchmarks/record.py --compare benchmarks/BENCH_baseline.json \
        --tolerance 2.0

The comparison is directional per unit: ``seconds`` and ``ms`` entries
fail when the current value is more than ``tolerance`` times *slower*
than baseline; ``x`` (speedup) and ``req/s`` (throughput) entries fail
when more than ``tolerance`` times *smaller*.
Entries present on only one side are reported but never fail the run, so
adding a new benchmark doesn't require touching the baseline first.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

__all__ = ["record_value", "load_results", "compare", "write_metrics_sidecar"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_core.json"


def load_results(path: Path = DEFAULT_PATH) -> dict[str, dict[str, Any]]:
    """The ``name -> entry`` mapping of a results file ({} if absent)."""
    if not Path(path).exists():
        return {}
    with open(path) as fh:
        data = json.load(fh)
    return data.get("results", {})


def record_value(
    name: str,
    value: float,
    *,
    unit: str = "seconds",
    path: Path = DEFAULT_PATH,
    **meta: Any,
) -> None:
    """Insert/overwrite one named result in the results file."""
    results = load_results(path)
    entry: dict[str, Any] = {"value": round(float(value), 6), "unit": unit}
    entry.update(meta)
    results[name] = entry
    with open(path, "w") as fh:
        json.dump({"results": results}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    write_metrics_sidecar(path)


def write_metrics_sidecar(path: Path = DEFAULT_PATH) -> Path | None:
    """Dump the live :mod:`repro.obs` metrics next to the results file.

    Benchmarks exercise the instrumented pipeline, so the always-on
    counters (tapes recorded, sweeps run, cache hits, ...) describe what a
    headline number actually measured.  The snapshot lands in
    ``<results stem>.metrics.json``; returns its path, or ``None`` when
    ``repro.obs`` is not importable or no metric has been touched yet.
    """
    try:
        from repro.obs import metrics as obs_metrics
    except ImportError:  # pragma: no cover - repro not on sys.path
        return None
    snap = obs_metrics.snapshot()
    if not snap:
        return None
    sidecar = Path(path).with_suffix(".metrics.json")
    with open(sidecar, "w") as fh:
        json.dump({"metrics": snap}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sidecar


def compare(
    current: dict[str, dict[str, Any]],
    baseline: dict[str, dict[str, Any]],
    tolerance: float,
) -> list[str]:
    """Regression messages (empty when everything is within tolerance)."""
    failures: list[str] = []
    for name in sorted(set(current) & set(baseline)):
        cur = float(current[name]["value"])
        base = float(baseline[name]["value"])
        unit = baseline[name].get("unit", "seconds")
        if unit == "seconds":
            ok = cur <= base * tolerance
            verdict = f"{cur:.4f}s vs baseline {base:.4f}s"
        elif unit == "ms":
            ok = cur <= base * tolerance
            verdict = f"{cur:.2f}ms vs baseline {base:.2f}ms"
        elif unit == "x":
            ok = cur >= base / tolerance
            verdict = f"{cur:.2f}x vs baseline {base:.2f}x"
        elif unit == "req/s":
            ok = cur >= base / tolerance
            verdict = f"{cur:.1f} req/s vs baseline {base:.1f} req/s"
        else:
            continue
        status = "ok" if ok else "REGRESSION"
        print(f"  {name}: {verdict} [{status}]")
        if not ok:
            failures.append(f"{name}: {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: {current[name]['value']} (no baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name}: not measured this run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=DEFAULT_PATH,
        help="results file written by the benchmarks",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        required=True,
        metavar="BASELINE",
        help="committed baseline results file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed slowdown factor before failing (default 2.0)",
    )
    args = parser.parse_args(argv)
    current = load_results(args.current)
    baseline = load_results(args.compare)
    if not current:
        print(f"no results found at {args.current}", file=sys.stderr)
        return 2
    print(f"comparing {args.current} against {args.compare} "
          f"(tolerance {args.tolerance}x):")
    failures = compare(current, baseline, args.tolerance)
    if failures:
        print(f"{len(failures)} regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("all tracked benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
