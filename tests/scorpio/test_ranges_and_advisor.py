"""Tests for the range study and the approximation advisor (§6 future work)."""

import pytest

from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.kernels.blackscholes.sequential import black_scholes_blocks
from repro.scorpio import (
    Analysis,
    RangeStudy,
    analyse_over_ranges,
    render_advice,
    suggest_approximations,
)


def weighted_sum(a, b):
    return 3.0 * a + 0.5 * b


class TestRangeStudy:
    def test_stable_ranking(self):
        study = analyse_over_ranges(
            weighted_sum,
            [
                [Interval(0, 1), Interval(0, 1)],
                [Interval(-2, 2), Interval(-2, 2)],
                [Interval(5, 6), Interval(5, 6)],
            ],
            names=["a", "b"],
        )
        assert study.ranking_stability() == pytest.approx(1.0)
        assert study.most_significant() == "a"

    def test_input_dependent_ranking_detected(self):
        # f = a*b: over boxes where |a| dominates, b is more significant,
        # and vice versa — the instability §6 warns about.
        study = analyse_over_ranges(
            lambda a, b: a * b,
            [
                [Interval(10, 11), Interval(0, 0.1)],
                [Interval(0, 0.1), Interval(10, 11)],
            ],
            names=["a", "b"],
        )
        assert study.ranking_stability() < 0.5

    def test_aggregate_min_max(self):
        study = analyse_over_ranges(
            weighted_sum,
            [[Interval(0, 1), Interval(0, 1)], [Interval(0, 2), Interval(0, 2)]],
            names=["a", "b"],
        )
        agg = study.aggregate()
        assert agg["a"]["max"] >= agg["a"]["mean"] >= agg["a"]["min"]

    def test_single_box_trivially_stable(self):
        study = analyse_over_ranges(
            weighted_sum, [[Interval(0, 1), Interval(0, 1)]], names=["a", "b"]
        )
        assert study.ranking_stability() == 1.0

    def test_empty_boxes_rejected(self):
        with pytest.raises(ValueError):
            analyse_over_ranges(weighted_sum, [])

    def test_to_text(self):
        study = analyse_over_ranges(
            weighted_sum,
            [[Interval(0, 1), Interval(0, 1)]],
            names=["a", "b"],
        )
        text = study.to_text()
        assert "ranking stability" in text and "a" in text


def blackscholes_report():
    an = Analysis()
    with an:
        s = an.input(100.0, width=4.0, name="S")
        k = an.input(95.0, width=4.0, name="K")
        r = an.input(0.03, width=0.002, name="r")
        v = an.input(0.3, width=0.02, name="v")
        t = an.input(1.0, width=0.05, name="T")
        blocks = black_scholes_blocks(s, k, r, v, t)
        an.output(blocks["call"], name="price")
    return an.analyse()


class TestAdvisor:
    @pytest.fixture(scope="class")
    def report(self):
        return blackscholes_report()

    def test_suggests_blackscholes_cd_ops(self, report):
        suggestions = suggest_approximations(report)
        ops = {s.op for s in suggestions}
        # The paper's manual choice: exp/sqrt-family ops in the least
        # significant blocks (one erf is the d2-side CDF of block C).
        assert "erf" in ops or "log" in ops or "sqrt" in ops

    def test_high_significance_ops_spared(self, report):
        suggestions = suggest_approximations(report, significance_threshold=0.25)
        assert all(s.significance <= 0.25 for s in suggestions)

    def test_sorted_by_score(self, report):
        suggestions = suggest_approximations(report)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_zero_spares_everything_significant(self, report):
        none_allowed = suggest_approximations(report, significance_threshold=-1.0)
        assert none_allowed == []

    def test_replacement_names_valid(self, report):
        import repro.fastmath as fm

        for s in suggest_approximations(report):
            assert hasattr(fm, s.replacement)
            assert s.cost_saving > 0

    def test_render_advice(self, report):
        text = render_advice(suggest_approximations(report))
        assert "fastapprox" in text

    def test_render_empty(self):
        assert "no low-significance" in render_advice([])

    def test_trig_ops_suggestable(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0.0, 0.1), name="x")
            big = an.intermediate(x * 100.0, "big")
            small = op.sin(x) * 1e-4
            an.output(big + small, name="y")
        report = an.analyse()
        suggestions = suggest_approximations(report)
        assert any(s.op == "sin" for s in suggestions)
