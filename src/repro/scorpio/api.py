"""User-facing significance-analysis API — the Table 1 macros.

The paper's C++ workflow annotates code with ``INPUT`` / ``INTERMEDIATE``
/ ``OUTPUT`` / ``ANALYSE`` macros around ``dco::ia1s::type`` variables.
The Python counterpart is :class:`Analysis`::

    an = Analysis()
    with an:
        x = an.input(0.45, width=1.0, name="x")      # INPUT
        result = ADouble.constant(0.0)
        for i in range(5):
            term = x ** i
            an.intermediate(term, f"term{i}")        # INTERMEDIATE
            result = result + term
        an.output(result, name="result")             # OUTPUT
    report = an.analyse()                            # ANALYSE

``analyse`` runs the reverse sweep (Eq. 7–9), computes every node's
significance (Eq. 11), and applies Algorithm 1 (simplify + variance scan),
returning a :class:`~repro.scorpio.report.SignificanceReport`.

For vector-valued functions, register every output: a single sweep with
all outputs seeded yields ``S_y(uj) = Σ_i S_{y_i}(uj)`` exactly as in
Section 2.3.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ad.adouble import ADouble
from repro.ad.tape import Tape
from repro.intervals import Interval, as_interval
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span as _obs_span

from .dyndfg import DynDFG
from .report import SignificanceReport
from .significance import significance_map, significance_map_vector
from .simplify import simplify as _simplify
from .variance import find_significance_variance

__all__ = ["Analysis", "analyse_function"]

_C_ANALYSES = _obs_metrics.counter("scorpio.analyses")
_C_SIMPLIFY_REMOVED = _obs_metrics.counter("scorpio.simplify_removed")
_C_SCANS = _obs_metrics.counter("scorpio.scans")
_C_SCAN_LEVELS = _obs_metrics.counter("scorpio.scan_levels_visited")


class AnalysisStateError(RuntimeError):
    """Macro used out of order (e.g. OUTPUT before any INPUT)."""


class Analysis:
    """One significance-analysis profile run (a dco/scorpio session)."""

    def __init__(self, delta: float = 1e-6):
        self.tape = Tape()
        self.delta = delta
        self._inputs: list[ADouble] = []
        self._intermediates: list[ADouble] = []
        self._outputs: list[ADouble] = []
        self._analysed: SignificanceReport | None = None

    # ------------------------------------------------------------------
    # Context management (activates the tape)
    # ------------------------------------------------------------------
    def __enter__(self) -> "Analysis":
        self.tape.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.tape.__exit__(*exc_info)

    # ------------------------------------------------------------------
    # Table 1 macros
    # ------------------------------------------------------------------
    def input(
        self,
        value: float | Interval,
        *,
        lo: float | None = None,
        hi: float | None = None,
        width: float | None = None,
        name: str | None = None,
    ) -> ADouble:
        """``INPUT(x, xl, xu)``: register an input with its range.

        The range can be given as an :class:`Interval`, as explicit
        ``lo``/``hi`` bounds, or as a ``width`` centred on ``value`` (the
        Maclaurin listing uses ``[x-0.5, x+0.5]``, i.e. ``width=1``).
        """
        if isinstance(value, Interval):
            iv = value
        elif lo is not None or hi is not None:
            if lo is None or hi is None:
                raise ValueError("both lo and hi must be given")
            iv = Interval(lo, hi)
        elif width is not None:
            iv = Interval.centered(float(value), 0.5 * width)
        else:
            iv = as_interval(float(value))
        if name is None:
            name = f"x{len(self._inputs)}"
        var = ADouble.input(iv, label=name, tape=self.tape)
        self._inputs.append(var)
        return var

    def intermediate(self, var: ADouble, name: str | None = None) -> ADouble:
        """``INTERMEDIATE(z)``: tag the last computed node with a label."""
        if not isinstance(var, ADouble):
            raise TypeError(
                f"intermediate() expects a taped value, got {type(var).__name__}"
            )
        if var.tape is not self.tape:
            raise AnalysisStateError("variable was recorded on another tape")
        if name is None:
            name = f"z{len(self._intermediates)}"
        var.node.label = name
        self._intermediates.append(var)
        return var

    def output(self, var: ADouble, name: str | None = None) -> ADouble:
        """``OUTPUT(y)``: register an output (adjoint will be seeded to 1)."""
        if not isinstance(var, ADouble):
            raise TypeError(
                f"output() expects a taped value, got {type(var).__name__}"
            )
        if var.tape is not self.tape:
            raise AnalysisStateError("variable was recorded on another tape")
        if name is None:
            name = f"y{len(self._outputs)}"
        var.node.label = name
        self._outputs.append(var)
        return var

    def analyse(
        self, simplify: bool = True, compiled: bool = False
    ) -> SignificanceReport:
        """``ANALYSE()``: reverse sweep, Eq. 11, Algorithm 1 S4+S5.

        With ``compiled=True`` the whole pipeline (sweep, Eq. 11, S4, S5)
        runs on :class:`~repro.ad.compiled.CompiledTape` arrays instead of
        per-node Python loops.  The resulting report is byte-identical
        (through ``report_to_json``) to the object path — the fast path is
        a speedup, not an approximation.  The first call wins the cache:
        repeated ``analyse`` calls return the first report regardless of
        flags.
        """
        if not self._inputs:
            raise AnalysisStateError("no inputs registered (INPUT macro)")
        if not self._outputs:
            raise AnalysisStateError("no outputs registered (OUTPUT macro)")
        if self._analysed is not None:
            return self._analysed

        output_ids = [o.node.index for o in self._outputs]
        if compiled:
            from .compiled import analyse_compiled

            self._analysed = analyse_compiled(
                self.tape,
                output_ids,
                input_ids=[v.node.index for v in self._inputs],
                intermediate_ids=[v.node.index for v in self._intermediates],
                delta=self.delta,
                simplify=simplify,
            )
            return self._analysed
        _C_ANALYSES.inc()
        with _obs_span("scorpio.analyse") as span_:
            span_.set(nodes=len(self.tape.nodes), backend="object")
            if len(output_ids) == 1:
                seeds = {
                    out.node.index: (
                        Interval(1.0) if out.interval_mode else 1.0
                    )
                    for out in self._outputs
                }
                self.tape.adjoint(seeds)
                with _obs_span("scorpio.eq11"):
                    sig = significance_map(self.tape)
            else:
                # Vector function: one sweep with m adjoint components so
                # S_y(uj) = Σ_i S_{y_i}(uj) (Section 2.3) without the
                # signed cancellation a summed scalar seed would cause.
                with _obs_span("scorpio.eq11"):
                    sig = significance_map_vector(self.tape, output_ids)
            raw = DynDFG.from_tape(
                self.tape, [o.node.index for o in self._outputs], sig
            )
            if simplify:
                with _obs_span("scorpio.simplify") as sp:
                    simplified = _simplify(raw)
                    removed = len(raw.nodes) - len(simplified.nodes)
                    _C_SIMPLIFY_REMOVED.inc(removed)
                    sp.set(
                        nodes=len(raw.nodes),
                        removed=removed,
                        backend="object",
                    )
            else:
                simplified = raw
            _C_SCANS.inc()
            with _obs_span("scorpio.scan") as sp:
                scan = find_significance_variance(
                    simplified, delta=self.delta
                )
                _C_SCAN_LEVELS.inc(len(scan.variances))
                sp.set(levels=len(scan.variances), found=scan.found_level)
        self._analysed = SignificanceReport(
            raw_graph=raw,
            simplified_graph=simplified,
            scan=scan,
            input_ids=[v.node.index for v in self._inputs],
            intermediate_ids=[v.node.index for v in self._intermediates],
            output_ids=[v.node.index for v in self._outputs],
        )
        return self._analysed


def analyse_function(
    fn: Callable[..., ADouble | Sequence[ADouble]],
    inputs: Sequence[Interval | tuple[float, float] | float],
    *,
    names: Sequence[str] | None = None,
    delta: float = 1e-6,
    simplify: bool = True,
    compiled: bool = False,
) -> SignificanceReport:
    """One-call analysis of a Python function over an input box.

    ``fn`` receives one :class:`ADouble` per entry of ``inputs`` and
    returns the output value (or a sequence of outputs for vector
    functions).  Each input spec may be an :class:`Interval`, a
    ``(lo, hi)`` tuple, or a plain scalar (degenerate interval).
    """
    an = Analysis(delta=delta)
    with an:
        args = []
        for i, spec in enumerate(inputs):
            name = names[i] if names else None
            if isinstance(spec, Interval):
                args.append(an.input(spec, name=name))
            elif isinstance(spec, tuple):
                lo, hi = spec
                args.append(an.input(0.0, lo=lo, hi=hi, name=name))
            else:
                args.append(an.input(float(spec), name=name))
        result = fn(*args)
        if isinstance(result, ADouble):
            an.output(result)
        else:
            for j, out in enumerate(result):
                an.output(out, name=f"y{j}")
    return an.analyse(simplify=simplify, compiled=compiled)
