"""Significance analysis of the DCT round-trip (Section 4.1.2, Figure 4).

Per sampled 8x8 block: register the 64 pixels as inputs (±half gray level
quantisation uncertainty), run DCT → quantise → de-quantise → IDCT in
interval-adjoint mode, tag every frequency coefficient as an intermediate
and register all 64 reconstructed pixels as outputs (vector output: one
sweep accumulates ``S = Σ_pixels S_pixel``).

The per-coefficient significances, averaged over blocks and normalised,
form the 8x8 map of Figure 4: the DC corner is the most significant and
significance falls in a wave-like pattern along the zig-zag diagonal —
matching image/video-compression expert wisdom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scorpio import Analysis

from .sequential import (
    BLOCK,
    blockify,
    dct_block,
    dequantise_block,
    idct_block,
    quantise_block,
    zigzag_order,
)

__all__ = ["DctAnalysis", "analyse_dct_block", "analyse_dct"]


@dataclass
class DctAnalysis:
    """Figure 4 data."""

    significance_map: np.ndarray  # (8, 8), normalised to max 1
    per_block_maps: list[np.ndarray]
    samples: int

    def zigzag_profile(self) -> list[float]:
        """Significances read out in zig-zag order (should tend downward)."""
        return [float(self.significance_map[v, u]) for v, u in zigzag_order()]

    def diagonal_means(self) -> list[float]:
        """Mean significance per anti-diagonal d = v+u (15 values)."""
        means = []
        for d in range(2 * BLOCK - 1):
            cells = [
                self.significance_map[v, d - v]
                for v in range(BLOCK)
                if 0 <= d - v < BLOCK
            ]
            means.append(float(np.mean(cells)))
        return means


def analyse_dct_block(
    block: np.ndarray,
    pixel_uncertainty: float = 0.5,
    compiled: bool = False,
) -> np.ndarray:
    """Raw (unnormalised) 8x8 coefficient significance map of one block."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {block.shape}")

    an = Analysis()
    with an:
        pixels = [
            [
                an.input(
                    float(block[y, x]),
                    width=2.0 * pixel_uncertainty,
                    name=f"p_{y}_{x}",
                )
                for x in range(BLOCK)
            ]
            for y in range(BLOCK)
        ]
        coeffs = dct_block(pixels)
        for v in range(BLOCK):
            for u in range(BLOCK):
                an.intermediate(coeffs[v][u], f"c_{v}_{u}")
        reconstructed = idct_block(dequantise_block(quantise_block(coeffs)))
        for y in range(BLOCK):
            for x in range(BLOCK):
                an.output(reconstructed[y][x], name=f"out_{y}_{x}")
    # level scan not needed per block
    report = an.analyse(simplify=False, compiled=compiled)

    sigs = report.labelled_significances()
    result = np.zeros((BLOCK, BLOCK), dtype=np.float64)
    for v in range(BLOCK):
        for u in range(BLOCK):
            result[v, u] = sigs[f"c_{v}_{u}"]
    return result


def analyse_dct(
    image: np.ndarray,
    samples: int = 6,
    pixel_uncertainty: float = 0.5,
    seed: int = 9,
    compiled: bool = False,
) -> DctAnalysis:
    """Figure 4: averaged, max-normalised coefficient significance map."""
    blocks = blockify(image)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(blocks), size=min(samples, len(blocks)), replace=False)
    maps = [
        analyse_dct_block(
            blocks[i], pixel_uncertainty=pixel_uncertainty, compiled=compiled
        )
        for i in chosen
    ]
    mean_map = np.mean(maps, axis=0)
    peak = mean_map.max()
    if peak > 0:
        mean_map = mean_map / peak
    return DctAnalysis(
        significance_map=mean_map, per_block_maps=maps, samples=len(maps)
    )
