"""Fisheye correction pipeline — reference implementation (Section 4.1.3).

``fisheye_reference`` undistorts a fisheye image back to perspective:
InverseMapping computes real-valued source coordinates for every output
pixel, BicubicInterp samples the input there.

``make_fisheye_input`` builds the distorted input from a synthetic scene
(the inverse of the correction, with bilinear sampling) so the benchmark
is self-contained without camera captures.
"""

from __future__ import annotations

import math

import numpy as np

from .bicubic import bicubic_sample, bilinear_sample
from .geometry import LensConfig, inverse_map_grid

__all__ = ["fisheye_reference", "make_fisheye_input", "default_config"]


def default_config(
    out_width: int = 256, out_height: int = 192, fov_degrees: float = 120.0
) -> LensConfig:
    """Benchmark lens: rectangular output, *square* fisheye input.

    An equidistant fisheye produces a circular image, so the input frame
    is square with side = the output diagonal (plus margin) — otherwise
    the inverse mapping of the output edge midpoints would land outside a
    same-size rectangular input.  120° diagonal FOV compresses the scene
    periphery ~4x more than the centre — strong enough to show the
    Figure 5 pattern, mild enough that the synthetic scene stays above
    Nyquist everywhere.
    """
    cx, cy = (out_width - 1) / 2.0, (out_height - 1) / 2.0
    in_side = 2 * math.ceil(math.hypot(cx, cy)) + 8
    return LensConfig(
        out_width=out_width,
        out_height=out_height,
        in_width=in_side,
        in_height=in_side,
        fov_degrees=fov_degrees,
    )


def fisheye_reference(
    input_image: np.ndarray, config: LensConfig
) -> np.ndarray:
    """Fully accurate correction: per-pixel inverse map + bicubic."""
    input_image = np.asarray(input_image, dtype=np.float64)
    ys, xs = np.mgrid[0 : config.out_height, 0 : config.out_width]
    sx, sy = inverse_map_grid(config, xs.astype(np.float64), ys.astype(np.float64))
    return bicubic_sample(input_image, sx, sy)


def make_fisheye_input(scene: np.ndarray, config: LensConfig) -> np.ndarray:
    """Distort a perspective scene into the fisheye input image.

    For each *input* pixel at fisheye radius ``r_d``: θ = r_d / f_d,
    perspective radius ``r_p = f_p·tan θ``, sample the scene bilinearly.
    """
    scene = np.asarray(scene, dtype=np.float64)
    h_s, w_s = scene.shape
    cx_i, cy_i = config.in_center
    f_d = config.f_fisheye
    f_p = config.f_perspective
    # The scene is addressed in output-image coordinates.
    cx_o, cy_o = config.out_center
    sx_scale = (w_s - 1) / max(config.out_width - 1, 1)
    sy_scale = (h_s - 1) / max(config.out_height - 1, 1)

    ys, xs = np.mgrid[0 : config.in_height, 0 : config.in_width]
    dx = xs.astype(np.float64) - cx_i
    dy = ys.astype(np.float64) - cy_i
    r_d = np.hypot(dx, dy)
    theta = np.clip(r_d / f_d, 0.0, config.theta_max)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(r_d > 0, f_p * np.tan(theta) / np.maximum(r_d, 1e-12), 1.0)
    px = (cx_o + dx * scale) * sx_scale
    py = (cy_o + dy * scale) * sy_scale
    return bilinear_sample(scene, px, py)
