"""Property-based tests: inclusion isotonicity of interval arithmetic.

The defining property of the whole substrate: for any operation f and any
point x inside interval [x], f(x) must lie inside f([x]).  Significance
analysis is only sound if this holds for every elementary operation.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.intervals import Interval
from repro.intervals import functions as fn

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
unit = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def interval_and_point(draw, values=finite):
    a = draw(values)
    b = draw(values)
    lo, hi = min(a, b), max(a, b)
    t = draw(unit)
    point = lo + t * (hi - lo)
    return Interval(lo, hi), min(max(point, lo), hi)


@given(interval_and_point(), interval_and_point())
def test_add_isotonic(ap, bp):
    (ia, a), (ib, b) = ap, bp
    assert (ia + ib).contains(a + b)


@given(interval_and_point(), interval_and_point())
def test_sub_isotonic(ap, bp):
    (ia, a), (ib, b) = ap, bp
    assert (ia - ib).contains(a - b)


@given(
    interval_and_point(st.floats(min_value=-1e3, max_value=1e3)),
    interval_and_point(st.floats(min_value=-1e3, max_value=1e3)),
)
def test_mul_isotonic(ap, bp):
    (ia, a), (ib, b) = ap, bp
    assert (ia * ib).contains(a * b)


@given(
    interval_and_point(st.floats(min_value=-1e3, max_value=1e3)),
    interval_and_point(st.floats(min_value=0.5, max_value=1e3)),
)
def test_div_isotonic(ap, bp):
    (ia, a), (ib, b) = ap, bp
    assert (ia / ib).contains(a / b)


@given(interval_and_point())
def test_neg_abs_isotonic(ap):
    ia, a = ap
    assert (-ia).contains(-a)
    assert abs(ia).contains(abs(a))


@given(interval_and_point(st.floats(min_value=-30, max_value=30)))
def test_exp_isotonic(ap):
    ia, a = ap
    assert fn.exp(ia).contains(math.exp(a))


@given(interval_and_point(st.floats(min_value=1e-6, max_value=1e6)))
def test_log_isotonic(ap):
    ia, a = ap
    assume(ia.lo > 0)
    assert fn.log(ia).contains(math.log(a))


@given(interval_and_point(st.floats(min_value=0.0, max_value=1e6)))
def test_sqrt_isotonic(ap):
    ia, a = ap
    assume(ia.lo >= 0)
    assert fn.sqrt(ia).contains(math.sqrt(a))


@given(interval_and_point(st.floats(min_value=-100, max_value=100)))
def test_sin_cos_isotonic(ap):
    ia, a = ap
    assert fn.sin(ia).contains(math.sin(a))
    assert fn.cos(ia).contains(math.cos(a))


@given(interval_and_point(st.floats(min_value=-10, max_value=10)))
def test_tanh_erf_isotonic(ap):
    ia, a = ap
    assert fn.tanh(ia).contains(math.tanh(a))
    assert fn.erf(ia).contains(math.erf(a))


@given(
    interval_and_point(st.floats(min_value=-20, max_value=20)),
    st.integers(min_value=0, max_value=6),
)
def test_int_pow_isotonic(ap, n):
    ia, a = ap
    assert (ia**n).contains(a**n)


@given(interval_and_point(st.floats(min_value=-50, max_value=50)))
def test_round_floor_isotonic(ap):
    ia, a = ap
    assert fn.floor(ia).contains(math.floor(a))
    assert fn.round_st(ia).contains(float(round(a)))


@given(interval_and_point(), interval_and_point())
def test_minmax_isotonic(ap, bp):
    (ia, a), (ib, b) = ap, bp
    assert fn.minimum(ia, ib).contains(min(a, b))
    assert fn.maximum(ia, ib).contains(max(a, b))


@given(interval_and_point())
def test_clip_isotonic(ap):
    ia, a = ap
    assert fn.clip(ia, -1.0, 1.0).contains(min(max(a, -1.0), 1.0))


@given(interval_and_point(), interval_and_point())
def test_hull_contains_both(ap, bp):
    (ia, _), (ib, _) = ap, bp
    hull = ia.hull(ib)
    assert hull.contains_interval(ia) and hull.contains_interval(ib)


@given(interval_and_point())
def test_split_partitions(ap):
    ia, a = ap
    assume(ia.width > 0)
    left, right = ia.split()
    assert left.hull(right) == ia
    assert left.contains(a) or right.contains(a)


@given(interval_and_point(st.floats(min_value=-1e3, max_value=1e3)))
def test_width_subadditive_under_subset(ap):
    ia, a = ap
    sub = Interval(ia.lo + 0.25 * ia.width, ia.hi - 0.25 * ia.width)
    assert sub.width <= ia.width + 1e-9
    assert fn.exp(Interval(min(sub.lo, 30), min(sub.hi, 30))).width <= (
        fn.exp(Interval(min(ia.lo, 30), min(ia.hi, 30))).width + 1e-9
    )
