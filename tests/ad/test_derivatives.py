"""Tests for the high-level gradient drivers, including hypothesis checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ad import (
    ADouble,
    adjoint_gradient,
    finite_difference_gradient,
    interval_gradient,
    tangent_gradient,
)
from repro.ad import intrinsics as op
from repro.intervals import Interval


def paper_example(xs):
    x = xs[0]
    return op.cos(op.exp(op.sin(x) + x) - x)


class TestPaperExample:
    """Listing 1-3: f(x) = cos(exp(sin(x) + x) - x)."""

    def test_value(self):
        v, _ = adjoint_gradient(paper_example, [0.3])
        expected = math.cos(math.exp(math.sin(0.3) + 0.3) - 0.3)
        assert v == pytest.approx(expected)

    def test_gradient_matches_fd(self):
        _, grad = adjoint_gradient(paper_example, [0.3])
        fd = finite_difference_gradient(
            lambda p: math.cos(math.exp(math.sin(p[0]) + p[0]) - p[0]), [0.3]
        )
        assert grad[0] == pytest.approx(fd[0], rel=1e-5)

    def test_interval_gradient_encloses(self):
        box_value, box_grad = interval_gradient(
            paper_example, [Interval(0.2, 0.4)]
        )
        for x in (0.2, 0.25, 0.3, 0.35, 0.4):
            v, g = adjoint_gradient(paper_example, [x])
            assert box_value.contains(v)
            assert box_grad[0].contains(g[0])


class TestDriverValidation:
    def test_adjoint_rejects_untaped_result(self):
        with pytest.raises(TypeError):
            adjoint_gradient(lambda xs: 1.0, [2.0])

    def test_tangent_rejects_untaped_result(self):
        with pytest.raises(TypeError):
            tangent_gradient(lambda xs: 1.0, [2.0])

    def test_tangent_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            tangent_gradient(lambda xs: xs and xs[0], [])

    def test_interval_gradient_rejects_untaped(self):
        with pytest.raises(TypeError):
            interval_gradient(lambda xs: 1.0, [Interval(0, 1)])


class TestMultivariate:
    def test_three_input_gradient(self):
        def f(xs):
            a, b, c = xs
            return a * op.sin(b) + op.exp(c) / a

        point = [2.0, 0.5, 1.0]
        _, g_adj = adjoint_gradient(f, point)
        _, g_tan = tangent_gradient(f, point)
        fd = finite_difference_gradient(
            lambda p: p[0] * math.sin(p[1]) + math.exp(p[2]) / p[0], point
        )
        for a, t, d in zip(g_adj, g_tan, fd):
            assert a == pytest.approx(t, rel=1e-12)
            assert a == pytest.approx(d, rel=1e-4)


# --- property-based: random polynomials have analytic gradients ---------
coeffs = st.lists(
    st.floats(min_value=-5, max_value=5, allow_nan=False),
    min_size=1,
    max_size=6,
)
points = st.floats(min_value=-3, max_value=3, allow_nan=False)


@given(coeffs, points)
@settings(max_examples=60)
def test_polynomial_gradient_analytic(cs, x):
    def poly(xs):
        acc = ADouble.constant(0.0, tape=xs[0].tape)
        for k, c in enumerate(cs):
            acc = acc + c * xs[0] ** k
        return acc

    _, grad = adjoint_gradient(poly, [x])
    expected = sum(k * c * x ** (k - 1) for k, c in enumerate(cs) if k >= 1)
    assert grad[0] == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(coeffs, points)
@settings(max_examples=60)
def test_polynomial_tangent_equals_adjoint(cs, x):
    def poly(xs):
        acc = None
        for k, c in enumerate(cs):
            term = c * xs[0] ** k
            acc = term if acc is None else acc + term
        return acc

    _, g_adj = adjoint_gradient(poly, [x])
    _, g_tan = tangent_gradient(poly, [x])
    assert g_adj[0] == pytest.approx(g_tan[0], rel=1e-12, abs=1e-12)


@given(
    st.floats(min_value=-2, max_value=2, allow_nan=False),
    st.floats(min_value=0.05, max_value=0.5),
)
@settings(max_examples=40)
def test_interval_gradient_encloses_point_gradients(center, radius):
    def f(xs):
        return op.tanh(xs[0]) * xs[0] + op.cos(xs[0])

    box_value, box_grad = interval_gradient(f, [Interval(center - radius, center + radius)])
    for t in (-1.0, 0.0, 1.0):
        x = center + t * radius
        v, g = adjoint_gradient(f, [x])
        assert box_value.contains(v)
        assert box_grad[0].contains(g[0])
