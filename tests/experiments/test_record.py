"""Tests for the experiment recorder."""

import json

import pytest

from repro.experiments.record import record_all, save_record


@pytest.fixture(scope="module")
def record():
    return record_all(fast=True)


class TestRecordAll:
    def test_all_sections_present(self, record):
        assert set(record) >= {
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "headline",
            "table2",
        }

    def test_figure3_values(self, record):
        terms = record["figure3"]["normalised_terms"]
        assert terms["term0"] == pytest.approx(0.0, abs=1e-9)
        assert record["figure3"]["partition_level"] == 1

    def test_figure7_all_benchmarks(self, record):
        assert set(record["figure7"]) == {
            "sobel",
            "dct",
            "fisheye",
            "nbody",
            "blackscholes",
        }
        for payload in record["figure7"].values():
            assert len(payload["points"]) >= 5
            assert 0.0 < payload["energy_reduction"] < 1.0

    def test_headline_consistency(self, record):
        head = record["headline"]
        values = list(head["per_benchmark"].values())
        assert head["min"] == min(values)
        assert head["max"] == max(values)
        assert head["mean"] == pytest.approx(sum(values) / len(values))

    def test_json_serialisable(self, record):
        text = json.dumps(record)
        assert "sobel" in text


class TestSaveRecord:
    def test_writes_both_files(self, tmp_path, record, monkeypatch):
        import repro.experiments.record as module

        monkeypatch.setattr(module, "record_all", lambda fast=True: record)
        json_path, md_path = save_record(tmp_path / "out")
        assert json_path.exists() and md_path.exists()
        parsed = json.loads(json_path.read_text())
        assert parsed["headline"] == record["headline"]
        assert "Measured experiment digest" in md_path.read_text()
