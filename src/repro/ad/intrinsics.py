"""Generic intrinsic functions over all evaluation modes.

The paper's kernels call ``sin``, ``exp``, ``sqrt`` ... on whatever numeric
type is active: plain ``double`` for production runs, ``dco::ia1s::type``
for significance analysis.  This module is the Python counterpart of that
overload set.  Every function dispatches on its argument type:

* :class:`~repro.ad.adouble.ADouble` — record the elementary operation on
  the tape with its local partial derivative (in the value's algebra);
* :class:`~repro.ad.tangent.Tangent`  — propagate value and derivative
  forward;
* :class:`~repro.intervals.Interval` / ``float`` — evaluate directly via
  :mod:`repro.intervals.functions` (which itself falls back to :mod:`math`
  for scalars).

Kernels written against this module therefore run unchanged in accurate,
interval, tangent, and interval-adjoint (significance) modes.
"""

from __future__ import annotations

import math
import sys
from typing import Any, Callable

from repro.intervals import Interval
from repro.intervals import functions as ifn

from .adouble import ADouble
from .tangent import Tangent

__all__ = [
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sqrt",
    "cbrt",
    "erf",
    "erfc",
    "pow",
    "hypot",
    "round_st",
    "floor",
    "minimum",
    "maximum",
    "clip",
]

_TWO_OVER_SQRT_PI = 2.0 / math.sqrt(math.pi)
_LN2 = math.log(2.0)
_LN10 = math.log(10.0)


def _vec_module(x: Any):
    """Return :mod:`repro.vec.ivec` when ``x`` is an IntervalArray.

    Looked up through ``sys.modules`` so the scalar path pays only a dict
    probe and no import: if ``repro.vec`` was never imported, no value can
    be an ``IntervalArray`` and the probe short-circuits.
    """
    mod = sys.modules.get("repro.vec.ivec")
    if mod is not None and isinstance(x, mod.IntervalArray):
        return mod
    return None


def _make_unary(
    name: str,
    value_fn: Callable[[Any], Any],
    partial_fn: Callable[[Any, Any], Any],
) -> Callable[[Any], Any]:
    """Build a dispatching unary intrinsic.

    ``partial_fn(x_value, result_value)`` returns the local derivative; it
    receives the already-computed result so derivatives like ``exp' = exp``
    reuse it.
    """

    def intrinsic(x: Any) -> Any:
        if isinstance(x, ADouble):
            # Recursive dispatch on the wrapped value: plain floats and
            # Intervals go through value_fn, while Tangent values (the
            # second-order tangent-over-adjoint composition, see
            # repro.ad.hessian) re-enter this intrinsic so both lanes
            # propagate.
            value = intrinsic(x.value)
            return x.record_unary(name, value, partial_fn(x.value, value))
        if isinstance(x, Tangent):
            value = value_fn(x.value)
            return Tangent(value, partial_fn(x.value, value) * x.dot)
        vec = _vec_module(x)
        if vec is not None:
            # Lane-parallel value algebra (repro.vec): one array op.
            return getattr(vec, name)(x)
        return value_fn(x)

    intrinsic.__name__ = name
    intrinsic.__qualname__ = name
    intrinsic.__doc__ = (
        f"Dispatching `{name}` intrinsic (float / Interval / Tangent / "
        f"ADouble)."
    )
    return intrinsic


# Partial-derivative lambdas reference the module-level dispatchers (they
# resolve at call time), so partials themselves propagate through Tangent
# operands in second-order mode.
sin = _make_unary("sin", ifn.sin, lambda v, r: cos(v))
cos = _make_unary("cos", ifn.cos, lambda v, r: -sin(v))
tan = _make_unary("tan", ifn.tan, lambda v, r: 1.0 + r * r)
asin = _make_unary("asin", ifn.asin, lambda v, r: 1.0 / sqrt(1.0 - v * v))
acos = _make_unary("acos", ifn.acos, lambda v, r: -1.0 / sqrt(1.0 - v * v))
atan = _make_unary("atan", ifn.atan, lambda v, r: 1.0 / (1.0 + v * v))
sinh = _make_unary("sinh", ifn.sinh, lambda v, r: cosh(v))
cosh = _make_unary("cosh", ifn.cosh, lambda v, r: sinh(v))
tanh = _make_unary("tanh", ifn.tanh, lambda v, r: 1.0 - r * r)
exp = _make_unary("exp", ifn.exp, lambda v, r: r)
expm1 = _make_unary("expm1", ifn.expm1, lambda v, r: r + 1.0)
log = _make_unary("log", ifn.log, lambda v, r: 1.0 / v)
log1p = _make_unary("log1p", ifn.log1p, lambda v, r: 1.0 / (1.0 + v))
log2 = _make_unary("log2", ifn.log2, lambda v, r: 1.0 / (v * _LN2))
log10 = _make_unary("log10", ifn.log10, lambda v, r: 1.0 / (v * _LN10))
sqrt = _make_unary("sqrt", ifn.sqrt, lambda v, r: 0.5 / r)
cbrt = _make_unary("cbrt", ifn.cbrt, lambda v, r: 1.0 / (3.0 * r * r))
erf = _make_unary(
    "erf", ifn.erf, lambda v, r: _TWO_OVER_SQRT_PI * exp(-(v * v))
)
erfc = _make_unary(
    "erfc", ifn.erfc, lambda v, r: -_TWO_OVER_SQRT_PI * exp(-(v * v))
)


def _round_partial(value: Any) -> Any:
    # Straight-through derivative enclosure, see DESIGN.md §4: [0, 1] in
    # interval mode, 1.0 (plain straight-through estimator) for scalars.
    vec = _vec_module(value)
    if vec is not None:
        return vec.IntervalArray.full(value.shape, Interval(0.0, 1.0))
    return Interval(0.0, 1.0) if isinstance(value, Interval) else 1.0


def _value_fn(name: str, x: Any):
    """The direct evaluator for ``x``'s algebra (scalar ifn or vec)."""
    vec = _vec_module(x)
    return getattr(vec, name) if vec is not None else getattr(ifn, name)


def round_st(x: Any) -> Any:
    """Straight-through rounding (used by DCT quantisation)."""
    if isinstance(x, ADouble):
        value = _value_fn("round_st", x.value)(x.value)
        return x.record_unary("round_st", value, _round_partial(x.value))
    if isinstance(x, Tangent):
        return Tangent(ifn.round_st(x.value), _round_partial(x.value) * x.dot)
    return _value_fn("round_st", x)(x)


def floor(x: Any) -> Any:
    """Floor with zero derivative (piecewise constant a.e.)."""
    if isinstance(x, ADouble):
        value = _value_fn("floor", x.value)(x.value)
        return x.record_unary("floor", value, 0.0)
    if isinstance(x, Tangent):
        zero = Interval(0.0) if isinstance(x.value, Interval) else 0.0
        return Tangent(ifn.floor(x.value), zero)
    return _value_fn("floor", x)(x)


def pow(x: Any, y: Any) -> Any:
    """Dispatching power (see :meth:`ADouble.__pow__` for taped semantics)."""
    if isinstance(x, (ADouble, Tangent)):
        return x**y
    if isinstance(y, (ADouble, Tangent)):
        return y.__rpow__(x)
    vec = _vec_module(x)
    if vec is not None:
        return vec.pow(x, y)
    return ifn.pow(x, y)


def hypot(x: Any, y: Any) -> Any:
    """``sqrt(x^2 + y^2)`` in any mode (composed from taped primitives)."""
    if isinstance(x, (ADouble, Tangent)) or isinstance(y, (ADouble, Tangent)):
        return sqrt(x * x + y * y)
    if _vec_module(x) is not None or _vec_module(y) is not None:
        return sqrt(x * x + y * y)
    return ifn.hypot(x, y)


def atan2(y: Any, x: Any) -> Any:
    """Two-argument arctangent restricted to ``x > 0`` (see intervals)."""
    if isinstance(y, (ADouble, Tangent)) or isinstance(x, (ADouble, Tangent)):
        return atan(y / x)
    vec = _vec_module(y) or _vec_module(x)
    if vec is not None:
        return vec.atan2(y, x)
    return ifn.atan2(y, x)


def _select_partials(a_val: Any, b_val: Any, picking_min: bool) -> tuple:
    """Subgradient enclosures for min/max in any algebra."""
    vec = _vec_module(a_val) or _vec_module(b_val)
    if vec is not None:
        return _vec_select_partials(vec, a_val, b_val, picking_min)
    if isinstance(a_val, Interval) or isinstance(b_val, Interval):
        from repro.intervals import as_interval

        ia, ib = as_interval(a_val), as_interval(b_val)
        if picking_min:
            if ia.hi <= ib.lo:
                return 1.0, 0.0
            if ib.hi <= ia.lo:
                return 0.0, 1.0
        else:
            if ia.lo >= ib.hi:
                return 1.0, 0.0
            if ib.lo >= ia.hi:
                return 0.0, 1.0
        amb = Interval(0.0, 1.0)
        return amb, amb
    if picking_min:
        return (1.0, 0.0) if a_val <= b_val else (0.0, 1.0)
    return (1.0, 0.0) if a_val >= b_val else (0.0, 1.0)


def _vec_select_partials(vec: Any, a_val: Any, b_val: Any, picking_min: bool) -> tuple:
    """Per-lane subgradient enclosures for min/max over IntervalArrays."""
    import numpy as np

    shape = a_val.shape if vec.IntervalArray is type(a_val) else b_val.shape
    ia = vec.as_interval_array(a_val, shape)
    ib = vec.as_interval_array(b_val, shape)
    if picking_min:
        a_wins = ia.hi <= ib.lo
        b_wins = ib.hi <= ia.lo
    else:
        a_wins = ia.lo >= ib.hi
        b_wins = ib.lo >= ia.hi
    # Decided lanes get the 0/1 point partial; straddling lanes [0, 1].
    pa = vec.IntervalArray(
        np.where(a_wins, 1.0, 0.0),
        np.where(b_wins, 0.0, 1.0),
    )
    pb = vec.IntervalArray(
        np.where(b_wins, 1.0, 0.0),
        np.where(a_wins, 0.0, 1.0),
    )
    return pa, pb


def _min_max(x: Any, y: Any, picking_min: bool) -> Any:
    op = "min" if picking_min else "max"

    def value_fn(a_val: Any, b_val: Any) -> Any:
        vec = _vec_module(a_val) or _vec_module(b_val)
        if vec is not None:
            return (vec.minimum if picking_min else vec.maximum)(a_val, b_val)
        return (ifn.minimum if picking_min else ifn.maximum)(a_val, b_val)

    if isinstance(x, ADouble) or isinstance(y, ADouble):
        taped_cls = type(x) if isinstance(x, ADouble) else type(y)
        a = x if isinstance(x, ADouble) else taped_cls.constant(
            x, tape=y.tape  # type: ignore[union-attr]
        )
        b = y if isinstance(y, ADouble) else taped_cls.constant(y, tape=a.tape)
        value = value_fn(a.value, b.value)
        pa, pb = _select_partials(a.value, b.value, picking_min)
        node = a.tape.record(
            op, value, (a.node.index, b.node.index), (pa, pb)
        )
        return taped_cls(value, node, a.tape)
    if isinstance(x, Tangent) or isinstance(y, Tangent):
        a = x if isinstance(x, Tangent) else Tangent.lift(x)
        b = y if isinstance(y, Tangent) else Tangent.lift(y)
        value = value_fn(a.value, b.value)
        pa, pb = _select_partials(a.value, b.value, picking_min)
        return Tangent(value, pa * a.dot + pb * b.dot)
    return value_fn(x, y)


def minimum(x: Any, y: Any) -> Any:
    """Pointwise minimum in any mode."""
    return _min_max(x, y, picking_min=True)


def maximum(x: Any, y: Any) -> Any:
    """Pointwise maximum in any mode."""
    return _min_max(x, y, picking_min=False)


def clip(x: Any, lo: float, hi: float) -> Any:
    """Clamp to ``[lo, hi]`` in any mode (e.g. Sobel's pixel clipping)."""
    if isinstance(x, ADouble):
        vec = _vec_module(x.value)
        if vec is not None:
            value = vec.clip(x.value, lo, hi)
            partial = _vec_clip_partial(vec, x.value, lo, hi)
        else:
            value = ifn.clip(x.value, lo, hi)
            if isinstance(x.value, Interval):
                iv = x.value
                if lo <= iv.lo and iv.hi <= hi:
                    partial: Any = 1.0
                elif iv.hi < lo or iv.lo > hi:
                    partial = 0.0
                else:
                    partial = Interval(0.0, 1.0)
            else:
                partial = 1.0 if lo <= x.value <= hi else 0.0
        # Clamp bounds are not recoverable from value/partial; the replay
        # engine needs them to recompute the node on fresh inputs.
        return x.record_unary("clip", value, partial, aux=(lo, hi))
    if isinstance(x, Tangent):
        inner = minimum(maximum(x, lo), hi)
        return inner
    vec = _vec_module(x)
    if vec is not None:
        return vec.clip(x, lo, hi)
    return ifn.clip(x, lo, hi)


def _vec_clip_partial(vec: Any, value: Any, lo: float, hi: float) -> Any:
    """Per-lane clip subgradient: [1,1] inside, [0,0] outside, else [0,1]."""
    import numpy as np

    inside = (lo <= value.lo) & (value.hi <= hi)
    outside = (value.hi < lo) | (value.lo > hi)
    return vec.IntervalArray(
        np.where(inside, 1.0, 0.0),
        np.where(outside, 0.0, 1.0),
    )
