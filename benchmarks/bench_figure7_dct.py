"""Figure 7 (DCT panel): quality + energy vs accurate-task ratio."""

import pytest

from repro.experiments import figure7_dct
from repro.experiments.sweep import format_sweep


def test_figure7_dct(benchmark):
    sweep = benchmark.pedantic(
        figure7_dct, kwargs={"size": 128}, rounds=1, iterations=1
    )

    sig_quality = [p.quality for p in sweep.series("significance")]
    assert sig_quality == sorted(sig_quality)

    # "DCT produces high-quality output even for relatively low accurate
    # task ratios" — already > 25 dB at ratio 0 (DC diagonal pinned).
    assert sweep.quality_at(0.0) > 25.0

    # The paper's headline DCT gap: significance-ordered diagonals beat
    # raster-order perforation decisively at interior ratios.
    for ratio in (0.0, 0.2, 0.5, 0.8):
        assert sweep.quality_at(ratio) >= sweep.quality_at(ratio, "perforation")
    assert sweep.quality_at(0.2) - sweep.quality_at(0.2, "perforation") > 1.5

    benchmark.extra_info["table"] = format_sweep(sweep)
