"""Interval versions of the C++ intrinsic functions used by the paper.

Each function maps intervals to an enclosure of the true range.  Monotone
functions evaluate at the endpoints (rounded outward); periodic functions
(`sin`, `cos`) additionally check for enclosed extrema; `round`/`floor` use
the straight-through enclosure discussed in DESIGN.md §4 (needed by the DCT
quantisation chain).

All functions accept plain scalars as well, returning scalar results, so
kernels can be written once and run in either mode (the dispatch layer in
:mod:`repro.ad.intrinsics` builds on this).
"""

from __future__ import annotations

import math

from . import rounding as _rnd
from .interval import Interval, as_interval

__all__ = [
    "sqrt",
    "cbrt",
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "erf",
    "erfc",
    "pow",
    "hypot",
    "floor",
    "ceil",
    "round_st",
    "minimum",
    "maximum",
    "clip",
]

_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi


def _monotone_inc(fn, x: Interval) -> Interval:
    lo, hi = _rnd.outward(fn(x.lo), fn(x.hi))
    return Interval(lo, hi)


def _monotone_dec(fn, x: Interval) -> Interval:
    lo, hi = _rnd.outward(fn(x.hi), fn(x.lo))
    return Interval(lo, hi)


def sqrt(x):
    """Interval square root; domain error if the interval dips below 0."""
    if not isinstance(x, Interval):
        return math.sqrt(x)
    if x.lo < 0:
        raise ValueError(f"sqrt domain error: {x!r} extends below zero")
    return _monotone_inc(math.sqrt, x)


def cbrt(x):
    """Interval cube root (monotone on all of R)."""
    if not isinstance(x, Interval):
        return math.cbrt(x)
    return _monotone_inc(math.cbrt, x)


def exp(x):
    """Interval exponential."""
    if not isinstance(x, Interval):
        return math.exp(x)
    return _monotone_inc(math.exp, x)


def expm1(x):
    """Interval ``exp(x) - 1``."""
    if not isinstance(x, Interval):
        return math.expm1(x)
    return _monotone_inc(math.expm1, x)


def log(x):
    """Interval natural logarithm; domain error if the interval reaches 0."""
    if not isinstance(x, Interval):
        return math.log(x)
    if x.lo <= 0:
        raise ValueError(f"log domain error: {x!r} reaches zero or below")
    return _monotone_inc(math.log, x)


def log1p(x):
    """Interval ``log(1 + x)``."""
    if not isinstance(x, Interval):
        return math.log1p(x)
    if x.lo <= -1:
        raise ValueError(f"log1p domain error: {x!r} reaches -1 or below")
    return _monotone_inc(math.log1p, x)


def log2(x):
    """Interval base-2 logarithm."""
    if not isinstance(x, Interval):
        return math.log2(x)
    if x.lo <= 0:
        raise ValueError(f"log2 domain error: {x!r} reaches zero or below")
    return _monotone_inc(math.log2, x)


def log10(x):
    """Interval base-10 logarithm."""
    if not isinstance(x, Interval):
        return math.log10(x)
    if x.lo <= 0:
        raise ValueError(f"log10 domain error: {x!r} reaches zero or below")
    return _monotone_inc(math.log10, x)


def _trig_range(x: Interval, fn, crit_offset: float) -> Interval:
    """Range of sin/cos over ``x``.

    ``crit_offset`` positions the critical points: maxima of ``fn`` occur at
    ``crit_offset + 2k*pi`` and minima at ``crit_offset + (2k+1)*pi``.
    """
    if x.width >= _TWO_PI:
        return Interval(-1.0, 1.0)
    lo_val, hi_val = fn(x.lo), fn(x.hi)
    lo, hi = min(lo_val, hi_val), max(lo_val, hi_val)
    # Smallest critical point >= x.lo of the form crit_offset + k*pi.
    k = math.ceil((x.lo - crit_offset) / math.pi)
    crit = crit_offset + k * math.pi
    while crit <= x.hi:
        # Even multiples of pi from crit_offset are maxima (+1), odd minima.
        if k % 2 == 0:
            hi = 1.0
        else:
            lo = -1.0
        k += 1
        crit += math.pi
    lo, hi = _rnd.outward(lo, hi)
    return Interval(max(lo, -1.0), min(hi, 1.0))


def sin(x):
    """Interval sine with extremum detection."""
    if not isinstance(x, Interval):
        return math.sin(x)
    return _trig_range(x, math.sin, _HALF_PI)


def cos(x):
    """Interval cosine with extremum detection."""
    if not isinstance(x, Interval):
        return math.cos(x)
    return _trig_range(x, math.cos, 0.0)


def tan(x):
    """Interval tangent; domain error when a pole lies inside the interval."""
    if not isinstance(x, Interval):
        return math.tan(x)
    # Poles at pi/2 + k*pi.
    k = math.ceil((x.lo - _HALF_PI) / math.pi)
    pole = _HALF_PI + k * math.pi
    if pole <= x.hi:
        raise ValueError(f"tan domain error: pole at {pole} inside {x!r}")
    return _monotone_inc(math.tan, x)


def asin(x):
    """Interval arcsine on [-1, 1]."""
    if not isinstance(x, Interval):
        return math.asin(x)
    if x.lo < -1 or x.hi > 1:
        raise ValueError(f"asin domain error: {x!r} not within [-1, 1]")
    return _monotone_inc(math.asin, x)


def acos(x):
    """Interval arccosine on [-1, 1] (monotone decreasing)."""
    if not isinstance(x, Interval):
        return math.acos(x)
    if x.lo < -1 or x.hi > 1:
        raise ValueError(f"acos domain error: {x!r} not within [-1, 1]")
    return _monotone_dec(math.acos, x)


def atan(x):
    """Interval arctangent."""
    if not isinstance(x, Interval):
        return math.atan(x)
    return _monotone_inc(math.atan, x)


def atan2(y, x):
    """Interval two-argument arctangent, restricted to the right half plane.

    Full interval atan2 needs branch-cut handling; the kernels in this
    repository only evaluate it for ``x > 0`` (fisheye radial geometry), so
    anything touching the cut raises a domain error rather than silently
    returning a wrong enclosure.
    """
    if not isinstance(y, Interval) and not isinstance(x, Interval):
        return math.atan2(y, x)
    y, x = as_interval(y), as_interval(x)
    if x.lo <= 0:
        raise ValueError(
            f"interval atan2 restricted to x > 0, got x = {x!r}"
        )
    return atan(y / x)


def sinh(x):
    """Interval hyperbolic sine."""
    if not isinstance(x, Interval):
        return math.sinh(x)
    return _monotone_inc(math.sinh, x)


def cosh(x):
    """Interval hyperbolic cosine (minimum at 0)."""
    if not isinstance(x, Interval):
        return math.cosh(x)
    vals = (math.cosh(x.lo), math.cosh(x.hi))
    lo = 1.0 if x.contains(0.0) else min(vals)
    lo, hi = _rnd.outward(lo, max(vals))
    return Interval(max(lo, 1.0), hi)


def tanh(x):
    """Interval hyperbolic tangent."""
    if not isinstance(x, Interval):
        return math.tanh(x)
    return _monotone_inc(math.tanh, x)


def erf(x):
    """Interval error function (monotone increasing)."""
    if not isinstance(x, Interval):
        return math.erf(x)
    return _monotone_inc(math.erf, x)


def erfc(x):
    """Interval complementary error function (monotone decreasing)."""
    if not isinstance(x, Interval):
        return math.erfc(x)
    return _monotone_dec(math.erfc, x)


def pow(x, y):
    """Interval power.

    Integer exponents use the sharp sign-aware rule in
    :meth:`Interval._int_pow`; real exponents require a positive base and
    evaluate through ``exp(y * log(x))``.
    """
    if not isinstance(x, Interval) and not isinstance(y, Interval):
        return math.pow(x, y)
    x = as_interval(x)
    if isinstance(y, (int, float)) and float(y).is_integer():
        return x._int_pow(int(y))
    y = as_interval(y)
    if y.is_point() and y.lo.is_integer():
        return x._int_pow(int(y.lo))
    if x.lo <= 0:
        raise ValueError(
            f"pow domain error: non-integer exponent {y!r} with base {x!r} "
            "not strictly positive"
        )
    return exp(y * log(x))


def hypot(x, y):
    """Interval ``sqrt(x^2 + y^2)``."""
    if not isinstance(x, Interval) and not isinstance(y, Interval):
        return math.hypot(x, y)
    x, y = as_interval(x), as_interval(y)
    return sqrt(x * x + y * y)


def floor(x):
    """Interval floor: ``[floor(lo), floor(hi)]`` (exact range enclosure)."""
    if not isinstance(x, Interval):
        return math.floor(x)
    return Interval(math.floor(x.lo), math.floor(x.hi))


def ceil(x):
    """Interval ceiling: ``[ceil(lo), ceil(hi)]``."""
    if not isinstance(x, Interval):
        return math.ceil(x)
    return Interval(math.ceil(x.lo), math.ceil(x.hi))


def round_st(x):
    """Straight-through rounding enclosure (used by DCT quantisation).

    For a scalar this is plain ``round``.  For an interval ``[a, b]`` it
    returns ``[a - 0.5, b + 0.5]``, which encloses ``round(t)`` for every
    ``t`` in ``[a, b]``; the matching derivative enclosure ``[0, 1]`` lives
    in the AD layer (see DESIGN.md §4 for the justification).
    """
    if not isinstance(x, Interval):
        return float(round(x))
    return Interval(x.lo - 0.5, x.hi + 0.5)


def minimum(x, y):
    """Pointwise interval minimum (exact range of ``min`` over the box)."""
    if not isinstance(x, Interval) and not isinstance(y, Interval):
        return min(x, y)
    x, y = as_interval(x), as_interval(y)
    return Interval(min(x.lo, y.lo), min(x.hi, y.hi))


def maximum(x, y):
    """Pointwise interval maximum."""
    if not isinstance(x, Interval) and not isinstance(y, Interval):
        return max(x, y)
    x, y = as_interval(x), as_interval(y)
    return Interval(max(x.lo, y.lo), max(x.hi, y.hi))


def clip(x, lo: float, hi: float):
    """Clamp to ``[lo, hi]`` (exact range of the pointwise clamp)."""
    if not isinstance(x, Interval):
        return min(max(x, lo), hi)
    return Interval(min(max(x.lo, lo), hi), min(max(x.hi, lo), hi))
