"""The debug surface: trace propagation, /debug endpoints, SLO health.

End-to-end contract: a client request's trace id — whether minted by the
client or injected by an already-traced tenant — names one coherent span
forest on the server, retrievable at ``GET /debug/trace/<id>`` alongside
the request's flight record; blowing a latency SLO turns ``/healthz``
degraded until the kernel recovers.
"""

import pytest

from repro.obs import context, trace
from repro.serve import ServiceConfig, ServiceThread
from repro.serve.client import ServiceError


@pytest.fixture(scope="class")
def service():
    with ServiceThread(config=ServiceConfig(port=0)) as thread:
        yield thread


class TestTracePropagation:
    def test_client_reports_server_stamped_trace_id(self, service):
        client = service.client()
        _, _, _, trace_id = client.analyse_detail("blackscholes")
        assert len(trace_id) == 32
        assert client.last_trace_id == trace_id

    def test_caller_supplied_context_wins(self, service):
        ctx = context.new_trace()
        client = service.client()
        with context.use(ctx):
            _, _, _, trace_id = client.analyse_detail("blackscholes")
        assert trace_id == ctx.trace_id
        assert client.last_trace_id == ctx.trace_id

    def test_each_untraced_request_gets_a_fresh_trace(self, service):
        client = service.client()
        client.analyse_raw("blackscholes")
        first = client.last_trace_id
        client.analyse_raw("blackscholes")
        assert client.last_trace_id != first

    def test_healthz_reports_tracing_on(self, service):
        health = service.client().healthz()
        assert health["tracing"] is True
        assert health["degraded"] is False
        assert health["degraded_kernels"] == []


class TestDebugRequests:
    def test_flight_record_carries_attribution(self, service):
        client = service.client()
        _, outcome, (size, index), trace_id = client.analyse_detail(
            "blackscholes"
        )
        body = client.debug_requests()
        assert body["recorded"] >= 1
        rec = next(
            r for r in body["requests"] if r["trace_id"] == trace_id
        )
        assert rec["kernel"] == "blackscholes"
        assert rec["path"] == "/analyse"
        assert rec["status"] == 200
        assert rec["outcome"] == outcome
        assert rec["batch"] == {"size": size, "index": index}
        assert rec["executor"] == "thread"
        assert rec["duration_ms"] > 0
        assert "dispatch" in rec["stages_ms"]

    def test_newest_first_and_limit(self, service):
        client = service.client()
        client.analyse_raw("blackscholes")
        first = client.last_trace_id
        client.analyse_raw("blackscholes")
        second = client.last_trace_id
        body = client.debug_requests(limit=2)
        ids = [r["trace_id"] for r in body["requests"]]
        assert ids[:2] == [second, first]
        assert len(body["requests"]) <= 2

    def test_errors_are_recorded_too(self, service):
        client = service.client()
        with pytest.raises(ServiceError):
            client.analyse("no-such-kernel")
        failed = client.last_trace_id
        rec = next(
            r
            for r in client.debug_requests()["requests"]
            if r["trace_id"] == failed
        )
        assert rec["status"] == 404
        assert "no-such-kernel" in rec["error"]

    def test_debug_traffic_not_self_recorded(self, service):
        client = service.client()
        client.analyse_raw("blackscholes")
        client.debug_requests()
        probe = client.last_trace_id  # the debug request's own trace
        paths = {r["path"] for r in client.debug_requests()["requests"]}
        ids = {r["trace_id"] for r in client.debug_requests()["requests"]}
        assert "/debug/requests" not in paths
        assert probe not in ids

    def test_bad_limit_is_400(self, service):
        client = service.client()
        with pytest.raises(ServiceError) as exc_info:
            client.debug_requests(limit="soon")
        assert exc_info.value.status == 400


class TestDebugTrace:
    def test_trace_joins_record_and_span_tree(self, service):
        client = service.client()
        # Warm first so the inspected request replays through the batcher.
        client.analyse_raw("blackscholes")
        _, outcome, (size, _), trace_id = client.analyse_detail(
            "blackscholes"
        )
        body = client.debug_trace(trace_id)
        assert body["trace_id"] == trace_id
        assert body["request"]["kernel"] == "blackscholes"
        assert body["request"]["batch"]["size"] == size

        def names(nodes):
            for node in nodes:
                yield node["name"]
                yield from names(node["children"])

        seen = list(names(body["spans"]))
        assert "serve.analyse" in seen
        assert "serve.batch" in seen
        if outcome == "replay":
            assert "trace_cache.replay" in seen
        # The HTTP span is the forest root and the batch span hangs off
        # the request (directly, or via the batch span's links).
        root = body["spans"][0]
        assert root["name"] == "serve.analyse"
        assert root["trace_id"] == trace_id

    def test_default_argument_is_last_trace(self, service):
        client = service.client()
        client.analyse_raw("blackscholes")
        expected = client.last_trace_id
        assert client.debug_trace()["trace_id"] == expected

    def test_malformed_id_is_400(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.client().debug_trace("not-a-trace-id")
        assert exc_info.value.status == 400

    def test_unknown_id_is_404(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.client().debug_trace("f" * 32)
        assert exc_info.value.status == 404


class TestSloHealth:
    def test_blown_slo_degrades_healthz_until_recovery(self):
        # An SLO no real request can meet: everything is degraded...
        config = ServiceConfig(port=0, default_slo_ms=0.000001)
        with ServiceThread(config=config) as service:
            client = service.client()
            client.analyse_raw("blackscholes")
            health = client.healthz()
            assert health["degraded"] is True
            assert health["degraded_kernels"] == ["blackscholes"]
            rec = client.debug_requests()["requests"][0]
            assert rec["slo_ms"] == 0.000001
            assert rec["slo_violated"] is True
            # ...until the kernel's next request comes in under the bar.
            service.service.flight.set_slo("blackscholes", 60_000.0)
            client.analyse_raw("blackscholes")
            health = client.healthz()
            assert health["degraded"] is False

    def test_no_slo_by_default(self, service):
        assert service.service.flight.slo_for("blackscholes") is None


class TestTracingDisabled:
    def test_flight_recorder_still_on_without_tracing(self):
        config = ServiceConfig(port=0, tracing=False)
        with ServiceThread(config=config) as service:
            client = service.client()
            _, _, _, trace_id = client.analyse_detail("blackscholes")
            assert client.healthz()["tracing"] is False
            body = client.debug_trace(trace_id)
            # The flight record survives; no spans were retained.
            assert body["request"]["kernel"] == "blackscholes"
            assert body["spans"] == []
