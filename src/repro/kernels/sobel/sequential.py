"""Sobel filter — reference implementation (paper Section 4.1.1).

Convolves the image with the two 3x3 Sobel kernels::

          | -1  0  1 |          | -1 -2 -1 |
    Gx =  | -2  0  2 |    Gy =  |  0  0  0 |
          | -1  0  1 |          |  1  2  1 |

then combines ``t = sqrt(tx^2 + ty^2)`` and clips to [0, 255].

The convolution is expressed as the three blocks the paper's analysis
identifies (Section 4.1.1):

* **A** — the terms with coefficients ±2 (centre row of Gx, centre column
  of Gy);
* **B** — the ±1 terms of the first off-row/off-column;
* **C** — the ±1 terms of the other off-row/off-column.

``sobel_parts_pixel`` exposes the blocks for a single pixel in generic
numerics (used by the significance analysis), and the NumPy helpers
compute whole-image block contributions (used by the task runtime).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ad import intrinsics as op

__all__ = [
    "sobel_parts_pixel",
    "combine_parts_pixel",
    "sobel_pixel",
    "part_contributions",
    "combine_image",
    "sobel_reference",
    "OPS_PART_A",
    "OPS_PART_B",
    "OPS_PART_C",
    "OPS_COMBINE",
]

# Abstract per-pixel operation counts of each block (energy model input).
OPS_PART_A = 8.0  # 4 subs/adds + 2 muls per direction
OPS_PART_B = 6.0
OPS_PART_C = 6.0
OPS_COMBINE = 24.0  # squares, add, sqrt (~20 ops), clip

# Smoothing constant added under the sqrt in the *generic* (analysis)
# path so the derivative enclosure stays finite on flat windows where
# tx = ty = 0 (|.| is non-differentiable there).  One gray-level², i.e.
# at most half a gray level of output shift — irrelevant to significance
# ratios, essential for well-defined interval adjoints.
_ANALYSIS_SMOOTHING = 1.0


def sobel_parts_pixel(window: list[list[Any]]) -> dict[str, Any]:
    """Block contributions A/B/C for both directions on a 3x3 window.

    ``window[dy][dx]`` is the pixel at offset ``(dy-1, dx-1)`` from the
    centre.  Works on floats, Intervals, Tangents and ADoubles.
    """
    if len(window) != 3 or any(len(row) != 3 for row in window):
        raise ValueError("sobel needs a 3x3 window")
    w = window
    return {
        # Gx: centre row carries the ±2 coefficients.
        "a_x": 2.0 * w[1][2] - 2.0 * w[1][0],
        "b_x": w[0][2] - w[0][0],
        "c_x": w[2][2] - w[2][0],
        # Gy: centre column carries the ±2 coefficients.
        "a_y": 2.0 * w[2][1] - 2.0 * w[0][1],
        "b_y": w[2][0] - w[0][0],
        "c_y": w[2][2] - w[0][2],
    }


def combine_parts_pixel(parts: dict[str, Any], smooth: bool = False) -> Any:
    """Combine block contributions into the clipped edge magnitude."""
    tx = parts["a_x"] + parts["b_x"] + parts["c_x"]
    ty = parts["a_y"] + parts["b_y"] + parts["c_y"]
    magnitude_sq = tx * tx + ty * ty
    if smooth:
        magnitude_sq = magnitude_sq + _ANALYSIS_SMOOTHING
    t = op.sqrt(magnitude_sq)
    return op.clip(t, 0.0, 255.0)


def sobel_pixel(window: list[list[Any]], smooth: bool = False) -> Any:
    """Full Sobel response of one pixel in generic numerics."""
    return combine_parts_pixel(sobel_parts_pixel(window), smooth=smooth)


# ----------------------------------------------------------------------
# NumPy whole-image helpers
# ----------------------------------------------------------------------
def _shift(padded: np.ndarray, dy: int, dx: int, shape: tuple[int, int]) -> np.ndarray:
    """Neighbour view of the edge-padded image at offset (dy, dx)."""
    h, w = shape
    return padded[1 + dy : 1 + dy + h, 1 + dx : 1 + dx + w]


def part_contributions(image: np.ndarray) -> dict[str, np.ndarray]:
    """Whole-image A/B/C contributions to (tx, ty).

    Returns a dict with keys ``"A"``, ``"B"``, ``"C"``, each a pair-array
    of shape ``(2, H, W)`` holding the (tx, ty) contribution of the block.
    """
    image = np.asarray(image, dtype=np.float64)
    padded = np.pad(image, 1, mode="edge")
    s = image.shape

    a_x = 2.0 * _shift(padded, 0, 1, s) - 2.0 * _shift(padded, 0, -1, s)
    a_y = 2.0 * _shift(padded, 1, 0, s) - 2.0 * _shift(padded, -1, 0, s)
    b_x = _shift(padded, -1, 1, s) - _shift(padded, -1, -1, s)
    b_y = _shift(padded, 1, -1, s) - _shift(padded, -1, -1, s)
    c_x = _shift(padded, 1, 1, s) - _shift(padded, 1, -1, s)
    c_y = _shift(padded, 1, 1, s) - _shift(padded, -1, 1, s)

    return {
        "A": np.stack([a_x, a_y]),
        "B": np.stack([b_x, b_y]),
        "C": np.stack([c_x, c_y]),
    }


def combine_image(tx: np.ndarray, ty: np.ndarray) -> np.ndarray:
    """Magnitude + clip over whole arrays."""
    return np.clip(np.sqrt(tx * tx + ty * ty), 0.0, 255.0)


def sobel_reference(image: np.ndarray) -> np.ndarray:
    """Fully accurate Sobel filter of a grayscale image."""
    parts = part_contributions(image)
    tx = parts["A"][0] + parts["B"][0] + parts["C"][0]
    ty = parts["A"][1] + parts["B"][1] + parts["C"][1]
    return combine_image(tx, ty)
