"""Profile rendering / dumping (:mod:`repro.obs.profile`) and the CLI."""

import json

import pytest

from repro.obs import profile as obs_profile
from repro.obs import trace


@pytest.fixture
def tracing():
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


def _sample_forest():
    for _ in range(3):
        with trace.span("outer") as sp:
            sp.set(nodes=8)
            with trace.span("inner"):
                pass
    return trace.spans()


class TestRendering:
    def test_aggregate_folds_same_named_spans(self, tracing):
        roots = _sample_forest()
        aggs = obs_profile.aggregate_spans(roots)
        assert list(aggs) == ["outer"]
        outer = aggs["outer"]
        assert outer.count == 3
        assert outer.children["inner"].count == 3
        assert outer.total >= outer.children["inner"].total

    def test_format_span_tree(self, tracing):
        text = obs_profile.format_span_tree(_sample_forest())
        lines = text.splitlines()
        assert lines[0].split() == ["span", "calls", "total", "ms", "self", "ms"]
        assert any(line.startswith("outer") and " 3 " in line for line in lines)
        assert any(line.strip().startswith("inner") for line in lines)

    def test_format_span_tree_empty(self):
        assert "no spans recorded" in obs_profile.format_span_tree([])

    def test_format_profile_has_both_sections(self, tracing):
        _sample_forest()
        text = obs_profile.format_profile()
        assert "== span tree" in text
        assert "== metrics" in text

    def test_dump_profile_writes_json_and_prom(self, tracing, tmp_path):
        _sample_forest()
        json_path, prom_path = obs_profile.dump_profile(tmp_path / "out")
        data = json.loads(json_path.read_text())
        assert set(data) == {"spans", "aggregated", "metrics"}
        assert data["spans"][0]["name"] == "outer"
        assert data["spans"][0]["attrs"] == {"nodes": 8}
        assert data["aggregated"][0]["count"] == 3
        assert prom_path.read_text().startswith("# TYPE repro_")


class TestCli:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "prof"
        assert main(["profile", "figure3", "--out-dir", str(out_dir)]) == 0
        printed = capsys.readouterr().out
        assert "profiled: figure3" in printed
        assert "== span tree" in printed
        assert "scorpio.analyse" in printed
        assert "scorpio.simplify" in printed
        assert "scorpio.scan" in printed
        assert (out_dir / "obs.json").exists()
        assert (out_dir / "metrics.prom").exists()
        # Tracing is switched back off after the command.
        assert trace.enabled() is False

    def test_profile_flag_appends_summary(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "figure4",
                "--size",
                "16",
                "--samples",
                "2",
                "--profile",
                str(tmp_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Figure 4" in printed
        assert "== span tree" in printed
        assert "trace_cache.replays" in printed
        assert (tmp_path / "obs.json").exists()
        assert (tmp_path / "metrics.prom").exists()
        assert trace.enabled() is False
