"""Ratio-driven significance scheduling (the ``taskwait ratio()`` clause).

Given a group of tasks and a requested ratio ``r``, the runtime must run
*at least* ``r · N`` tasks accurately while respecting significance: more
significant tasks are chosen for accurate execution first (Section 3.2).
Tasks with significance ``1.0`` are always accurate, even at ``r = 0``
(the paper's Sobel uses this to pin its A tasks).

The remaining tasks run their approximate version when one exists and are
dropped otherwise.
"""

from __future__ import annotations

import math
from typing import Sequence

from .task import ExecutionMode, Task

__all__ = ["plan_modes"]


def plan_modes(tasks: Sequence[Task], ratio: float) -> list[ExecutionMode]:
    """Assign an :class:`ExecutionMode` to every task of a group.

    Selection is by descending significance with submission order as the
    tie-break (stable), so equally-significant tasks degrade in a
    deterministic, spatially-uniform way.

    Args:
        tasks: the group, in submission order.
        ratio: requested minimum fraction of accurate tasks, in [0, 1].

    Returns:
        Modes parallel to ``tasks``.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must lie in [0, 1], got {ratio}")
    n = len(tasks)
    if n == 0:
        return []

    order = sorted(
        range(n), key=lambda i: (-tasks[i].significance, i)
    )
    forced = sum(1 for t in tasks if t.significance >= 1.0)
    accurate_count = max(forced, math.ceil(ratio * n))
    accurate_set = set(order[:accurate_count])

    modes: list[ExecutionMode] = []
    for i, task in enumerate(tasks):
        if i in accurate_set:
            modes.append(ExecutionMode.ACCURATE)
        elif task.approx_fn is not None:
            modes.append(ExecutionMode.APPROXIMATE)
        else:
            modes.append(ExecutionMode.DROPPED)
    return modes
