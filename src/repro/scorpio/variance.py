"""Step S5 of Algorithm 1: find the first level with significance variance.

Starting at level 1 (level 0 is the outputs) and moving toward the inputs,
compute the statistical variance of node significances per BFS level; the
first level whose variance exceeds the threshold ``δ`` is where the code
can be partitioned into tasks of *different* significance.  The analysis
result keeps the graph up to level ``L + 1`` (``removeAbove``).

If no level exceeds ``δ`` the scan reaches the inputs: nodes on the same
level are then (almost) equally important, and the whole (simplified)
graph is returned with ``found_level = None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dyndfg import DynDFG

__all__ = ["VarianceScan", "level_variance", "find_significance_variance"]


def level_variance(graph: DynDFG, level: int) -> float:
    """Population variance of node significances at ``level``.

    Unscored nodes (no significance computed) count as 0, matching the
    treatment of unregistered helper nodes.  Levels with fewer than two
    nodes have variance 0 by definition.
    """
    sigs = [
        n.significance if n.significance is not None else 0.0
        for n in graph.level(level)
    ]
    if len(sigs) < 2:
        return 0.0
    mean = sum(sigs) / len(sigs)
    return sum((s - mean) ** 2 for s in sigs) / len(sigs)


@dataclass
class VarianceScan:
    """Result of :func:`find_significance_variance`.

    Attributes:
        graph: ``Gout`` — the input graph truncated above ``found_level+1``
            (or the untruncated graph when no variance was found).
        found_level: the first level with variance > δ, or ``None``.
        delta: the threshold used.
        variances: per-level variance actually computed (levels visited by
            the scan, in order).
    """

    graph: DynDFG
    found_level: int | None
    delta: float
    variances: dict[int, float] = field(default_factory=dict)

    @property
    def task_nodes(self):
        """Nodes at the partitioning level (task outputs, Section 3.2)."""
        if self.found_level is None:
            return self.graph.inputs()
        return self.graph.level(self.found_level)


def find_significance_variance(
    graph: DynDFG, delta: float = 1e-6
) -> VarianceScan:
    """Algorithm 1's ``findSgnfVariance`` on a (simplified) DynDFG."""
    variances: dict[int, float] = {}
    for level in range(1, graph.height):
        var = level_variance(graph, level)
        variances[level] = var
        if var > delta:
            return VarianceScan(
                graph=graph.remove_above(level + 1),
                found_level=level,
                delta=delta,
                variances=variances,
            )
    return VarianceScan(
        graph=graph, found_level=None, delta=delta, variances=variances
    )
