"""JSON serialisation of analysis results.

Significance analysis is an *offline* step; its results need to travel —
into build systems, dashboards, or the runtime configuration of a
deployed application.  This module renders a
:class:`~repro.scorpio.report.SignificanceReport` (and DynDFG graphs) as
plain JSON-compatible dictionaries and back-of-the-envelope round-trips
the graph structure.
"""

from __future__ import annotations

import json
from typing import Any

from repro.intervals import Interval

from .dyndfg import DFGNode, DynDFG
from .report import SignificanceReport

__all__ = [
    "interval_to_json",
    "graph_to_dict",
    "graph_from_dict",
    "report_to_dict",
    "report_to_json",
]


def interval_to_json(value: Any) -> Any:
    """Interval -> ``{"lo":…, "hi":…}``; scalars pass through."""
    if isinstance(value, Interval):
        return {"lo": value.lo, "hi": value.hi}
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    return repr(value)


def _interval_from_json(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"lo", "hi"}:
        return Interval(value["lo"], value["hi"])
    return value


def graph_to_dict(graph: DynDFG) -> dict:
    """DynDFG -> JSON-compatible dict (values/adjoints as interval dicts)."""
    return {
        "outputs": list(graph.outputs),
        "nodes": [
            {
                "id": node.id,
                "op": node.op,
                "label": node.label,
                "value": interval_to_json(node.value),
                "adjoint": interval_to_json(node.adjoint),
                "significance": node.significance,
                "parents": list(node.parents),
                "level": node.level,
                "merged": list(node.merged),
            }
            for node in graph
        ],
    }


def graph_from_dict(data: dict) -> DynDFG:
    """Inverse of :func:`graph_to_dict`."""
    nodes = [
        DFGNode(
            id=entry["id"],
            op=entry["op"],
            label=entry["label"],
            value=_interval_from_json(entry["value"]),
            adjoint=_interval_from_json(entry["adjoint"]),
            significance=entry["significance"],
            parents=tuple(entry["parents"]),
            merged=tuple(entry.get("merged", ())),
        )
        for entry in data["nodes"]
    ]
    return DynDFG(nodes, data["outputs"])


def report_to_dict(report: SignificanceReport) -> dict:
    """SignificanceReport -> JSON-compatible dict."""
    return {
        "partition_level": report.partition_level,
        "delta": report.scan.delta,
        "level_variances": {
            str(level): var for level, var in report.scan.variances.items()
        },
        "labelled_significances": report.labelled_significances(),
        "normalised_significances": report.normalised_significances(),
        "input_significances": report.input_significances(),
        "graph": graph_to_dict(report.graph),
        "raw_graph_size": len(report.raw_graph),
        "simplified_graph_size": len(report.simplified_graph),
    }


def report_to_json(report: SignificanceReport, indent: int | None = 2) -> str:
    """SignificanceReport -> JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)
