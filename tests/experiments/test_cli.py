"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_figure7_benchmark_choices(self):
        args = build_parser().parse_args(["figure7", "--benchmark", "sobel"])
        assert args.benchmark == "sobel"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7", "--benchmark", "bogus"])


class TestCommands:
    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "term1" in out and "L = 1" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--size", "32", "--samples", "2"]) == 0
        assert "diagonal means" in capsys.readouterr().out

    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "(c)" in out and "ranking" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Overhead" in capsys.readouterr().out

    def test_figure7_single_fast(self, capsys):
        assert main(["figure7", "--benchmark", "blackscholes"]) == 0
        assert "BlackScholes" in capsys.readouterr().out

    def test_headline_fast(self, capsys):
        assert main(["headline", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out and "paper" in out

    def test_tune(self, capsys):
        assert main(
            ["tune", "--benchmark", "dct", "--target-psnr", "30", "--size", "48"]
        ) == 0
        out = capsys.readouterr().out
        assert "chosen ratio" in out
