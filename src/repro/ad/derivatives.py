"""High-level derivative drivers built on the tape and tangent types.

These wrap the machinery of :mod:`repro.ad` into one-call gradient
evaluators used throughout the tests and the Monte-Carlo significance
cross-check:

* :func:`adjoint_gradient` — one reverse sweep, exact scalar gradient.
* :func:`tangent_gradient` — n forward sweeps (validation reference).
* :func:`finite_difference_gradient` — central differences (ground truth
  up to truncation error).
* :func:`interval_gradient` — interval enclosure of the gradient over a
  box (Eq. 10 of the paper).

``fn`` is any Python callable written against
:mod:`repro.ad.intrinsics`-style generic numerics, taking a sequence of
scalars (or interval-mode values) and returning a single value.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.intervals import Interval

from .adouble import ADouble
from .tangent import Tangent
from .tape import Tape

__all__ = [
    "adjoint_gradient",
    "tangent_gradient",
    "finite_difference_gradient",
    "interval_gradient",
]

Function = Callable[[Sequence[Any]], Any]


def adjoint_gradient(fn: Function, point: Sequence[float]) -> tuple[float, list[float]]:
    """Value and exact gradient of ``fn`` at ``point`` via one reverse sweep."""
    with Tape() as tape:
        inputs = [ADouble.input(float(p), tape=tape) for p in point]
        output = fn(inputs)
        if not isinstance(output, ADouble):
            raise TypeError(
                "fn must return a taped value; did it ignore its inputs?"
            )
        tape.adjoint({output.node.index: 1.0})
        grad = [node.adjoint for node in tape.inputs()]
        return float(output.value), [float(g) for g in grad]


def tangent_gradient(fn: Function, point: Sequence[float]) -> tuple[float, list[float]]:
    """Value and gradient via n tangent-linear sweeps (one per input)."""
    n = len(point)
    grad: list[float] = []
    value: float | None = None
    for seed_index in range(n):
        inputs = [
            Tangent.seed(float(p)) if i == seed_index else Tangent(float(p))
            for i, p in enumerate(point)
        ]
        output = fn(inputs)
        if not isinstance(output, Tangent):
            raise TypeError("fn must return a Tangent in tangent mode")
        grad.append(float(output.dot))
        value = float(output.value)
    if value is None:
        raise ValueError("cannot differentiate a 0-input function")
    return value, grad


def finite_difference_gradient(
    fn: Function, point: Sequence[float], step: float = 1e-6
) -> list[float]:
    """Central finite-difference gradient (validation ground truth)."""
    point = [float(p) for p in point]
    grad: list[float] = []
    for i in range(len(point)):
        bumped_up = list(point)
        bumped_dn = list(point)
        bumped_up[i] += step
        bumped_dn[i] -= step
        f_up = float(fn(bumped_up))
        f_dn = float(fn(bumped_dn))
        grad.append((f_up - f_dn) / (2.0 * step))
    return grad


def interval_gradient(
    fn: Function, box: Sequence[Interval]
) -> tuple[Interval, list[Interval]]:
    """Interval enclosures of value and gradient over ``box`` (Eq. 10)."""
    with Tape() as tape:
        inputs = [ADouble.input(iv, tape=tape) for iv in box]
        output = fn(inputs)
        if not isinstance(output, ADouble):
            raise TypeError("fn must return a taped value")
        tape.adjoint({output.node.index: Interval(1.0)})
        grad = [node.adjoint for node in tape.inputs()]
        return output.value, list(grad)
