#!/usr/bin/env python
"""Approximate option-risk engine — first tenant of the analysis service.

A derivatives desk reprices a large portfolio continuously; most of the
book only needs indicative prices, but the largest positions need full
precision.  Instead of linking the analysis framework into the pricing
process, this tenant asks the significance service
(:mod:`repro.serve`, spawned in-process so the example runs offline):

1. ``POST /analyse`` for the BlackScholes block significances
   (A = d1 dominates) — the first call records the pricing trace, every
   later call is a cached replay;
2. ``POST /advise`` for which math calls are safe to swap for their
   fastapprox versions;
3. ``POST /tune`` for the cheapest ``taskwait(ratio=...)`` that holds the
   desk's price-error tolerance;

then prices the portfolio locally at the recommended ratio, and
demonstrates *selective* precision: pinning the top decile of positions
(by notional) to significance 1.0 so they are always priced accurately
regardless of the knob.

Run:  python examples/risk_engine.py [--count 8192]
"""

import argparse
import time

import numpy as np

from repro.kernels.blackscholes import (
    blackscholes_significance,
    make_portfolio,
    price_portfolio,
)
from repro.kernels.blackscholes.tasks import (
    ENERGY_MODEL,
    _price_chunk_accurate,
    price_chunk_approx,
)
from repro.kernels.blackscholes.sequential import (
    OPS_PER_OPTION_ACCURATE,
    OPS_PER_OPTION_APPROX,
)
from repro.metrics import aggregate_relative_error
from repro.runtime import TaskRuntime
from repro.serve import ServiceThread

BLOCKS = "ABCD"


def block_significances_from_report(report: dict) -> dict[str, float]:
    """Max-normalised A-D block significances out of a served report."""
    labelled = report["labelled_significances"]
    peak = max(labelled[name] for name in BLOCKS)
    return {
        name: labelled[name] / peak if peak > 0 else 0.0 for name in BLOCKS
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=8192)
    parser.add_argument(
        "--error-tolerance",
        type=float,
        default=0.002,
        help="acceptable aggregate relative price error for the book",
    )
    args = parser.parse_args()

    with ServiceThread() as service:
        client = service.client()

        # Every request carries an X-Repro-Trace id; remember each call's
        # latency and id so the slowest one can be pulled apart below.
        timings: list[tuple[str, float, str]] = []

        def timed(label, fn, *fn_args, **fn_kwargs):
            t0 = time.perf_counter()
            result = fn(*fn_args, **fn_kwargs)
            timings.append(
                (label, time.perf_counter() - t0, client.last_trace_id)
            )
            return result

        # 1. Significance analysis, served.  Repeating the call shows the
        # record-once/replay-many serving core at work.
        report = timed("analyse", client.analyse, "blackscholes")
        _, outcome = timed("analyse", client.analyse_raw, "blackscholes")
        sig = block_significances_from_report(report)
        print("block significances (normalised, served):")
        for name in BLOCKS:
            print(f"  {name}: {sig[name]:.3f}")
        ranking = sorted(BLOCKS, key=lambda n: sig[n], reverse=True)
        print(f"ranking: {' > '.join(ranking)}")
        print(f"repeat request served by: {outcome}\n")

        # 2. Which math calls tolerate fastapprox substitutes?
        advice = timed(
            "advise", client.advise, "blackscholes", threshold=0.25
        )
        print(advice["advice"])

        # 3. The cheapest ratio holding the desk's error tolerance.
        tuned = timed(
            "tune",
            client.tune,
            "blackscholes",
            target_quality=args.error_tolerance,
            size=min(args.count, 1024),
        )
        ratio = tuned["taskwait"]["ratio"]
        print(
            f"\ntuned taskwait(ratio={ratio:.4f}) for rel. error <= "
            f"{args.error_tolerance:.4%} "
            f"(measured {tuned['quality']:.4%}, {len(tuned['probes'])} probes)"
        )

        # Which request cost the most, and where did its time go?  The
        # trace id names the request on the server's debug surface too.
        label, seconds, trace_id = max(timings, key=lambda t: t[1])
        detail = client.debug_trace(trace_id)
        stages = detail["request"]["stages_ms"]
        print(
            f"\nslowest request: {label} at {seconds * 1e3:.1f} ms "
            f"(trace {trace_id})"
        )
        print(
            f"  server-side: {detail['request']['duration_ms']:.1f} ms, "
            f"{len(detail['spans'])} span tree(s)"
            + (f", stages {stages}" if stages else "")
        )

    # --- Local pricing at the served recommendation -------------------
    portfolio = make_portfolio(count=args.count)
    reference = price_portfolio(
        portfolio.spots,
        portfolio.strikes,
        portfolio.rates,
        portfolio.volatilities,
        portfolio.expiries,
        portfolio.puts,
    )

    run = blackscholes_significance(portfolio, ratio)
    err = aggregate_relative_error(reference, run.output)
    print(
        f"\nbook at served ratio {ratio:.4f}: rel error {err * 100:.4f}%  "
        f"energy {run.joules:.1f} J"
    )

    # Selective precision: big positions always accurate.
    chunk = 128
    notionals = np.array(
        [
            float(np.sum(portfolio.spots[s : s + chunk]))
            for s in range(0, portfolio.count, chunk)
        ]
    )
    threshold = np.quantile(notionals, 0.9)
    rt = TaskRuntime(energy_model=ENERGY_MODEL)
    prices = np.zeros(portfolio.count)
    for i, start in enumerate(range(0, portfolio.count, chunk)):
        stop = min(start + chunk, portfolio.count)
        piece = portfolio.slice(start, stop)
        significance = 1.0 if notionals[i] >= threshold else 0.4
        rt.submit(
            _price_chunk_accurate,
            args=(prices, piece, start),
            significance=significance,
            approx_fn=price_chunk_approx,
            label="book",
            work=OPS_PER_OPTION_ACCURATE * piece.count,
            approx_work=OPS_PER_OPTION_APPROX * piece.count,
        )
    group = rt.taskwait("book", ratio=0.0)

    big = notionals >= threshold
    chunk_err = []
    for i, start in enumerate(range(0, portfolio.count, chunk)):
        stop = min(start + chunk, portfolio.count)
        chunk_err.append(
            aggregate_relative_error(reference[start:stop], prices[start:stop])
        )
    chunk_err = np.array(chunk_err)
    print(
        f"\nselective run at ratio 0.0: {group.stats.accurate} of "
        f"{group.stats.total} chunks accurate (the big positions)"
    )
    print(f"  error on big positions:   {chunk_err[big].mean() * 100:.4f}%")
    print(f"  error on the rest:        {chunk_err[~big].mean() * 100:.4f}%")
    print(f"  energy: {group.energy.total:.1f} J")


if __name__ == "__main__":
    main()
