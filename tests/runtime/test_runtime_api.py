"""Tests for the TaskRuntime submit/taskwait API."""

import pytest

from repro.runtime import (
    AnalyticEnergyModel,
    ExecutionMode,
    GroupStats,
    TaskRuntime,
)


def rt():
    return TaskRuntime(
        energy_model=AnalyticEnergyModel(
            energy_per_op=1.0, task_overhead=0.0, static_power=0.0
        )
    )


class TestSubmitAndWait:
    def test_basic_flow(self):
        runtime = rt()
        out = []
        for i in range(4):
            runtime.submit(out.append, args=(i,), significance=0.5, work=1.0)
        group = runtime.taskwait(ratio=1.0)
        assert out == [0, 1, 2, 3]
        assert group.stats.accurate == 4

    def test_group_consumed_after_wait(self):
        runtime = rt()
        runtime.submit(lambda: None)
        assert runtime.pending() == 1
        runtime.taskwait()
        assert runtime.pending() == 0

    def test_labels_isolate_groups(self):
        runtime = rt()
        runtime.submit(lambda: "a", label="g1")
        runtime.submit(lambda: "b", label="g2")
        g1 = runtime.taskwait("g1")
        assert g1.stats.total == 1
        assert runtime.pending("g2") == 1

    def test_wait_all(self):
        runtime = rt()
        runtime.submit(lambda: None, label="g1")
        runtime.submit(lambda: None, label="g2")
        groups = runtime.wait_all(ratio=1.0)
        assert set(groups) == {"g1", "g2"}

    def test_empty_taskwait(self):
        group = rt().taskwait("nothing")
        assert group.stats.total == 0

    def test_ratio_passes_through(self):
        runtime = rt()
        for s in (0.9, 0.5, 0.1):
            runtime.submit(lambda: None, significance=s, work=1.0)
        group = runtime.taskwait(ratio=1 / 3)
        assert group.stats.accurate == 1
        assert group.stats.dropped == 2

    def test_task_ids_unique_across_groups(self):
        runtime = rt()
        t1 = runtime.submit(lambda: None, label="a")
        t2 = runtime.submit(lambda: None, label="b")
        assert t1.task_id != t2.task_id


class TestAccounting:
    def test_energy_counts_executed_work(self):
        runtime = rt()
        runtime.submit(lambda: None, significance=1.0, work=10.0)
        runtime.submit(lambda: None, significance=0.1, work=7.0)
        group = runtime.taskwait(ratio=0.5)
        assert group.energy.dynamic == pytest.approx(10.0)

    def test_history_and_total_energy(self):
        runtime = rt()
        runtime.submit(lambda: None, work=3.0, label="a")
        runtime.taskwait("a")
        runtime.submit(lambda: None, work=4.0, label="b")
        runtime.taskwait("b")
        assert len(runtime.history) == 2
        assert runtime.total_energy.dynamic == pytest.approx(7.0)

    def test_reset(self):
        runtime = rt()
        runtime.submit(lambda: None)
        runtime.taskwait()
        runtime.submit(lambda: None)
        runtime.reset()
        assert runtime.pending() == 0 and not runtime.history

    def test_group_values(self):
        runtime = rt()
        runtime.submit(lambda: 7, significance=1.0)
        runtime.submit(lambda: 8, significance=0.0)
        group = runtime.taskwait(ratio=0.0)
        assert group.values() == [7, None]


class TestGroupStats:
    def test_from_results_counts(self):
        runtime = rt()
        runtime.submit(lambda: None, significance=1.0, work=2.0)
        runtime.submit(
            lambda: None,
            significance=0.1,
            approx_fn=lambda: None,
            work=2.0,
            approx_work=1.0,
        )
        runtime.submit(lambda: None, significance=0.1, work=2.0)
        group = runtime.taskwait(ratio=0.0)
        stats = group.stats
        assert (stats.accurate, stats.approximate, stats.dropped) == (1, 1, 1)
        assert stats.executed_work == pytest.approx(3.0)
        assert stats.accurate_ratio == pytest.approx(1 / 3)

    def test_empty_stats(self):
        assert GroupStats().accurate_ratio == 0.0
