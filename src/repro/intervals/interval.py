"""Core interval type for significance analysis.

An :class:`Interval` ``[a, b]`` represents the set ``{x : a <= x <= b}``.
All arithmetic is *inclusion isotonic*: the result interval encloses every
real result obtainable from points of the operand intervals.  With outward
rounding enabled (the default, see :mod:`repro.intervals.rounding`) the
enclosures are rigorous with respect to IEEE-754 double arithmetic.

The paper evaluates C++ code on intervals via the ``dco::ia1s::type``
overloading type (Section 2.3).  This module provides the interval *base*
layer of that type; the AD/tape layer lives in :mod:`repro.ad`.

Comparison semantics follow Section 2.2 of the paper: when a comparison
between intervals (or an interval and a scalar) is *ambiguous* — i.e. the
answer is true for some points of the intervals and false for others — the
analysis cannot proceed with a fixed control flow, so an
:class:`AmbiguousComparisonError` is raised, carrying the operands so the
caller can report the offending condition (or split the interval, see
:mod:`repro.intervals.splitting`).
"""

from __future__ import annotations

import math
from typing import Iterator, Union

from . import rounding as _rnd

__all__ = ["Interval", "AmbiguousComparisonError", "EmptyIntervalError", "as_interval"]

_IntervalLike = Union["Interval", int, float]


class AmbiguousComparisonError(ValueError):
    """A relational operator on intervals had no unique truth value.

    Mirrors the paper's Section 2.2: interval evaluation requires a fixed
    control flow; an ambiguous branch condition terminates the analysis and
    is reported to the user.  The offending operands and operator are kept
    so tooling can point at the condition (and optionally bisect, see
    :func:`repro.intervals.splitting.split_until_decidable`).
    """

    def __init__(self, op: str, left: "Interval", right: "Interval"):
        self.op = op
        self.left = left
        self.right = right
        super().__init__(
            f"ambiguous interval comparison: {left!r} {op} {right!r}; "
            "the branch condition is not uniquely decidable over the given "
            "input ranges (see paper Section 2.2)"
        )


class EmptyIntervalError(ValueError):
    """Raised when an operation would produce an empty interval."""


def _validate(lo: float, hi: float) -> tuple[float, float]:
    if math.isnan(lo) or math.isnan(hi):
        raise ValueError(f"interval bounds must not be NaN: [{lo}, {hi}]")
    if lo > hi:
        raise ValueError(f"invalid interval: lower bound {lo} > upper bound {hi}")
    return float(lo), float(hi)


class Interval:
    """A closed real interval ``[lo, hi]`` with inclusion-isotonic arithmetic."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float | None = None):
        if hi is None:
            hi = lo
        lo, hi = _validate(float(lo), float(hi))
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval is immutable")

    def __reduce__(self):
        # Immutability breaks the default slot-setting unpickle path;
        # rebuild through the constructor so intervals can cross process
        # boundaries (repro.mp ships guard/aux intervals to workers).
        return (Interval, (self.lo, self.hi))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "Interval":
        """Degenerate interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def centered(cls, mid: float, radius: float) -> "Interval":
        """Interval ``[mid - radius, mid + radius]`` (radius >= 0)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        return cls(mid - radius, mid + radius)

    @classmethod
    def hull_of(cls, *values: float) -> "Interval":
        """Smallest interval containing all given scalar values."""
        if not values:
            raise EmptyIntervalError("hull of no values is empty")
        return cls(min(values), max(values))

    @classmethod
    def entire(cls) -> "Interval":
        """The interval ``[-inf, +inf]``."""
        return cls(-math.inf, math.inf)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Width ``w([a,b]) = b - a`` (the paper's influence measure)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Midpoint of the interval; finite bounds assumed."""
        if math.isinf(self.lo) or math.isinf(self.hi):
            if self.lo == -math.inf and self.hi == math.inf:
                return 0.0
            return self.lo if math.isinf(self.hi) else self.hi
        # Written to avoid overflow of lo + hi.
        return self.lo + 0.5 * (self.hi - self.lo)

    @property
    def radius(self) -> float:
        """Half the width."""
        return 0.5 * self.width

    @property
    def mag(self) -> float:
        """Magnitude: ``max{|x| : x in [a,b]}``."""
        return max(abs(self.lo), abs(self.hi))

    @property
    def mig(self) -> float:
        """Mignitude: ``min{|x| : x in [a,b]}`` (0 if the interval spans 0)."""
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def is_point(self) -> bool:
        """True for a degenerate interval ``[a, a]``."""
        return self.lo == self.hi

    def is_finite(self) -> bool:
        """True when both bounds are finite."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, value: float) -> bool:
        """Membership test for a scalar."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def strictly_contains(self, other: "Interval") -> bool:
        """True when ``other`` lies in the interior of this interval."""
        return self.lo < other.lo and other.hi < self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def __contains__(self, value: object) -> bool:
        if isinstance(value, Interval):
            return self.contains_interval(value)
        return self.contains(float(value))  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """Intersection; raises :class:`EmptyIntervalError` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            raise EmptyIntervalError(f"{self!r} and {other!r} are disjoint")
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands (interval union hull)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def split(self, at: float | None = None) -> tuple["Interval", "Interval"]:
        """Bisect at ``at`` (default: midpoint) into two sub-intervals."""
        if at is None:
            at = self.midpoint
        if not self.contains(at):
            raise ValueError(f"split point {at} not inside {self!r}")
        return Interval(self.lo, at), Interval(at, self.hi)

    def widened(self, amount: float) -> "Interval":
        """Interval widened outward by ``amount`` on each side."""
        if amount < 0:
            raise ValueError("widening amount must be non-negative")
        return Interval(self.lo - amount, self.hi + amount)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __pos__(self) -> "Interval":
        return self

    def __abs__(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def __add__(self, other: _IntervalLike) -> "Interval":
        other = as_interval(other)
        lo, hi = _rnd.outward(self.lo + other.lo, self.hi + other.hi)
        return Interval(lo, hi)

    __radd__ = __add__

    def __sub__(self, other: _IntervalLike) -> "Interval":
        other = as_interval(other)
        lo, hi = _rnd.outward(self.lo - other.hi, self.hi - other.lo)
        return Interval(lo, hi)

    def __rsub__(self, other: _IntervalLike) -> "Interval":
        return as_interval(other).__sub__(self)

    def __mul__(self, other: _IntervalLike) -> "Interval":
        if other is self:
            # x * x with the *same* interval object is a square; the naive
            # product rule would lose the sign correlation ([-1,2]*[-1,2]
            # = [-2,4] instead of the true range [0,4]).
            return self._int_pow(2)
        other = as_interval(other)
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        # 0 * inf produces NaN under IEEE; treat such products as 0, the
        # correct limit for interval endpoints (e.g. [0,0] * [-inf,inf] = 0).
        cleaned = [0.0 if p != p else p for p in products]
        lo, hi = _rnd.outward(min(cleaned), max(cleaned))
        return Interval(lo, hi)

    __rmul__ = __mul__

    def __truediv__(self, other: _IntervalLike) -> "Interval":
        other = as_interval(other)
        if other.lo <= 0.0 <= other.hi:
            raise ZeroDivisionError(
                f"interval division by {other!r} which contains zero"
            )
        return self * Interval(
            _rnd.down(1.0 / other.hi), _rnd.up(1.0 / other.lo)
        )

    def __rtruediv__(self, other: _IntervalLike) -> "Interval":
        return as_interval(other).__truediv__(self)

    def __pow__(self, exponent: _IntervalLike) -> "Interval":
        # Integer powers get the sharp, sign-aware evaluation; everything
        # else goes through exp(y * log(x)) in functions.py.
        if isinstance(exponent, (int, float)) and float(exponent).is_integer():
            return self._int_pow(int(exponent))
        from .functions import pow as _ipow  # local import avoids a cycle

        return _ipow(self, exponent)

    def _int_pow(self, n: int) -> "Interval":
        if n == 0:
            return Interval(1.0, 1.0)
        if n < 0:
            return Interval(1.0, 1.0) / self._int_pow(-n)
        lo_p, hi_p = self.lo**n, self.hi**n
        if n % 2 == 1:
            lo, hi = lo_p, hi_p
        elif self.lo >= 0:
            lo, hi = lo_p, hi_p
        elif self.hi <= 0:
            lo, hi = hi_p, lo_p
        else:  # interval spans zero, even power
            lo, hi = 0.0, max(lo_p, hi_p)
        lo, hi = _rnd.outward(lo, hi)
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # Comparisons (paper Section 2.2 semantics)
    # ------------------------------------------------------------------
    def _compare(self, other: _IntervalLike, op: str) -> bool:
        other = as_interval(other)
        if op == "<":
            if self.hi < other.lo:
                return True
            if self.lo >= other.hi:
                return False
        elif op == "<=":
            if self.hi <= other.lo:
                return True
            if self.lo > other.hi:
                return False
        elif op == ">":
            if self.lo > other.hi:
                return True
            if self.hi <= other.lo:
                return False
        elif op == ">=":
            if self.lo >= other.hi:
                return True
            if self.hi < other.lo:
                return False
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown comparison {op}")
        raise AmbiguousComparisonError(op, self, other)

    def __lt__(self, other: _IntervalLike) -> bool:
        return self._compare(other, "<")

    def __le__(self, other: _IntervalLike) -> bool:
        return self._compare(other, "<=")

    def __gt__(self, other: _IntervalLike) -> bool:
        return self._compare(other, ">")

    def __ge__(self, other: _IntervalLike) -> bool:
        return self._compare(other, ">=")

    def __eq__(self, other: object) -> bool:
        """Set equality of bounds (not the ambiguous pointwise relation)."""
        if isinstance(other, Interval):
            return self.lo == other.lo and self.hi == other.hi
        if isinstance(other, (int, float)):
            return self.is_point() and self.lo == float(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    # -- certainty predicates (explicit, never ambiguous) ---------------
    def certainly_lt(self, other: _IntervalLike) -> bool:
        """True iff every pair of points satisfies ``self < other``."""
        other = as_interval(other)
        return self.hi < other.lo

    def certainly_gt(self, other: _IntervalLike) -> bool:
        """True iff every pair of points satisfies ``self > other``."""
        other = as_interval(other)
        return self.lo > other.hi

    def possibly_lt(self, other: _IntervalLike) -> bool:
        """True iff some pair of points satisfies ``self < other``."""
        other = as_interval(other)
        return self.lo < other.hi

    def possibly_gt(self, other: _IntervalLike) -> bool:
        """True iff some pair of points satisfies ``self > other``."""
        other = as_interval(other)
        return self.hi > other.lo

    # ------------------------------------------------------------------
    # Conversions / display
    # ------------------------------------------------------------------
    def to_float(self) -> float:
        """Midpoint as a plain double (``toDouble()`` in the paper's API)."""
        return self.midpoint

    def __float__(self) -> float:
        if not self.is_point():
            raise TypeError(
                f"cannot convert non-degenerate interval {self!r} to float; "
                "use .midpoint or .to_float() explicitly"
            )
        return self.lo

    def __repr__(self) -> str:
        return f"Interval({self.lo!r}, {self.hi!r})"

    def __str__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


def as_interval(value: _IntervalLike) -> Interval:
    """Coerce a scalar (or interval) to an :class:`Interval`."""
    if isinstance(value, Interval):
        return value
    if isinstance(value, (int, float)):
        return Interval(float(value), float(value))
    raise TypeError(f"cannot interpret {value!r} as an interval")
