"""Synthetic option portfolios (the PARSEC input substitute, DESIGN.md §4).

Parameters are drawn from the ranges of the PARSEC blackscholes input
files: spots and strikes around 100, short-term rates of a few percent,
volatilities 10-60%, expiries up to two years, a mix of calls and puts.
Fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Portfolio", "make_portfolio"]


@dataclass
class Portfolio:
    """Arrays of option parameters, all shaped (n,)."""

    spots: np.ndarray
    strikes: np.ndarray
    rates: np.ndarray
    volatilities: np.ndarray
    expiries: np.ndarray
    puts: np.ndarray

    @property
    def count(self) -> int:
        """Number of options."""
        return len(self.spots)

    def slice(self, start: int, stop: int) -> "Portfolio":
        """Contiguous sub-portfolio [start, stop)."""
        return Portfolio(
            self.spots[start:stop],
            self.strikes[start:stop],
            self.rates[start:stop],
            self.volatilities[start:stop],
            self.expiries[start:stop],
            self.puts[start:stop],
        )


def make_portfolio(count: int = 16384, seed: int = 23) -> Portfolio:
    """Deterministic synthetic portfolio of ``count`` options."""
    if count <= 0:
        raise ValueError(f"portfolio needs at least one option, got {count}")
    rng = np.random.default_rng(seed)
    spots = rng.uniform(40.0, 160.0, size=count)
    strikes = spots * rng.uniform(0.6, 1.4, size=count)
    rates = rng.uniform(0.005, 0.08, size=count)
    volatilities = rng.uniform(0.10, 0.60, size=count)
    expiries = rng.uniform(0.1, 2.0, size=count)
    puts = rng.random(count) < 0.5
    return Portfolio(
        spots=spots,
        strikes=strikes,
        rates=rates,
        volatilities=volatilities,
        expiries=expiries,
        puts=puts,
    )
