"""repro.obs — zero-dependency structured tracing, metrics and profiling.

The analysis pipeline grew from one object tape into a multi-backend
stack (object tape, compiled SoA tape, vec lanes, record-once/replay-many
trace cache) and a significance-aware task runtime.  This package is the
shared observability layer for all of them:

* :mod:`repro.obs.trace` — nestable wall-clock **spans** recorded into an
  in-memory ring buffer.  Tracing is off by default; the disabled path is
  a single attribute check so instrumented hot paths stay hot.
* :mod:`repro.obs.metrics` — named **counters / gauges / histograms** in
  a process-global registry, with ``snapshot()`` → plain dict and JSON /
  Prometheus-text exporters.  Counters are always on (one float add).
* :mod:`repro.obs.profile` — render span trees and metric tables for the
  ``repro profile`` CLI subcommand / ``--profile`` flag, and dump
  ``obs.json`` / ``metrics.prom`` artifacts.
* :mod:`repro.obs.context` — the request-scoped
  :class:`~repro.obs.context.TraceContext` (trace id / span id / parent
  id) carried in a contextvar; spans stamp themselves from it so trees
  recorded in different threads or processes re-link by id.
* :mod:`repro.obs.export` — lower span forests to Chrome trace-event
  JSON (Perfetto-loadable), real worker pids and flow arrows included.
* :mod:`repro.obs.flight` — the always-on per-request flight recorder
  behind the service's ``/debug/requests`` and ``/debug/trace/<id>``.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("experiment.figure4"):
        figure4()
    print(obs.format_profile(obs.spans(), obs.snapshot()))
"""

from . import context
from .context import TraceContext, new_trace, parse_header
from .export import chrome_trace_events, dump_chrome_trace
from .flight import FlightRecorder, RequestRecord
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    reset_metrics,
    snapshot,
    to_prometheus,
)
from .profile import (
    aggregate_spans,
    dump_profile,
    format_metrics_table,
    format_profile,
    format_span_tree,
    spans_to_dicts,
)
from .trace import (
    Span,
    adopt,
    clear,
    collect,
    disable,
    enable,
    enabled,
    manual_span,
    set_enabled,
    set_ring_capacity,
    span,
    spans,
    spans_for_trace,
    traced,
)

__all__ = [
    # trace
    "Span",
    "span",
    "manual_span",
    "traced",
    "spans",
    "spans_for_trace",
    "adopt",
    "collect",
    "clear",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "set_ring_capacity",
    # context
    "context",
    "TraceContext",
    "new_trace",
    "parse_header",
    # export
    "chrome_trace_events",
    "dump_chrome_trace",
    # flight
    "FlightRecorder",
    "RequestRecord",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
    "to_prometheus",
    # profile
    "aggregate_spans",
    "format_span_tree",
    "format_metrics_table",
    "format_profile",
    "dump_profile",
    "spans_to_dicts",
]
