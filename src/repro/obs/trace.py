"""Nestable wall-clock spans with a process-global enable flag.

A *span* measures one stage of the pipeline (``scorpio.simplify``, one
``ad.forward`` replay, one ``runtime.taskwait`` barrier...).  Spans nest:
a span opened while another is active becomes its child, so a profiled
run produces a tree mirroring the call structure.  Completed *root* spans
land in a bounded in-memory ring buffer (oldest evicted first) read back
via :func:`spans`.

Tracing is **disabled by default** and the disabled path is engineered to
be a single attribute check: :func:`span` loads one module global, tests
one slot attribute and returns a shared no-op context manager.  No
``Span`` object, no clock read, no lock.  Instrumented hot paths
(``CompiledTape.forward``, adjoint sweeps, per-task execution) therefore
cost a few hundred nanoseconds per call when tracing is off — bounded by
``tests/obs/test_overhead.py`` and measured honestly by
``benchmarks/bench_obs_overhead.py``.

Span stacks are per-thread (the :class:`~repro.runtime.executor.ThreadedExecutor`
runs task spans on worker threads); the ring buffer is shared and
lock-guarded, but the lock is only ever taken while tracing is enabled.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from time import perf_counter, time
from typing import Any, Callable, Iterable

from . import context as _context

__all__ = [
    "Span",
    "span",
    "manual_span",
    "traced",
    "spans",
    "spans_for_trace",
    "adopt",
    "collect",
    "clear",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "set_ring_capacity",
    "ring_capacity",
]

_DEFAULT_RING_CAPACITY = 512


class _State:
    """The one-attribute gate every instrumented call site checks."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self

    # Stamp fields read by callers that hold either kind of span.
    trace_id = None
    span_id = None
    parent_id = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<null span>"


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed region of the pipeline.

    Attributes:
        name: dotted stage name (``"scorpio.scan"``).
        attrs: key/value annotations (``{"nodes": 16384}``).
        elapsed_seconds: wall time between ``__enter__`` and ``__exit__``
            (``None`` while still open).
        children: spans opened (and closed) while this one was active.
        trace_id / span_id / parent_id: trace-context stamps, set when a
            :class:`~repro.obs.context.TraceContext` was active at entry
            (``None`` otherwise).  ``parent_id`` names the enclosing
            context's span — possibly in another thread or *process* —
            which is what lets merged span forests re-link by id.
        start_epoch: ``time.time()`` at entry (wall clock, comparable
            across processes on one host; feeds the Chrome exporter).
        pid / tid: recording process id and thread id.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "elapsed_seconds",
        "trace_id",
        "span_id",
        "parent_id",
        "start_epoch",
        "pid",
        "tid",
        "_t0",
        "_gen",
        "_token",
    )

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.elapsed_seconds: float | None = None
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.start_epoch = 0.0
        self.pid = 0
        self.tid = 0
        self._t0 = 0.0
        self._gen = 0
        self._token: Any = None

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        _LOCAL_STACK().append(self)
        self._gen = _GENERATION
        ctx = _context.current()
        if ctx is not None:
            child = ctx.child()
            self.trace_id = child.trace_id
            self.span_id = child.span_id
            self.parent_id = child.parent_id
            self._token = _context.activate(child)
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start_epoch = time()
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = perf_counter() - self._t0
        self.elapsed_seconds = elapsed
        if self._token is not None:
            _context.restore(self._token)
            self._token = None  # tokens must not outlive the scope
        stack = _LOCAL_STACK()
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans): pop up to and including this span.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].children.append(self)
            return False
        collector = getattr(_THREAD_LOCAL, "collector", None)
        if collector is not None:
            collector.append(self)
            return False
        with _RING_LOCK:
            # A clear() since this span opened dropped the request it
            # belongs to: discard instead of resurrecting a stale root.
            if self._gen == _GENERATION:
                _RING.append(self)
        return False

    def finish(self) -> "Span":
        """Close a :func:`manual_span` (idempotent); returns self."""
        if self.elapsed_seconds is None:
            self.elapsed_seconds = perf_counter() - self._t0
        return self

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by (closed) child spans."""
        total = self.elapsed_seconds or 0.0
        return max(
            0.0,
            total - sum(c.elapsed_seconds or 0.0 for c in self.children),
        )

    def walk(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        t = (
            f"{self.elapsed_seconds * 1e3:.3f}ms"
            if self.elapsed_seconds is not None
            else "open"
        )
        return f"Span({self.name!r}, {t}, children={len(self.children)})"


_THREAD_LOCAL = threading.local()


def _LOCAL_STACK() -> list[Span]:
    stack = getattr(_THREAD_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _THREAD_LOCAL.stack = stack
    return stack


_RING_LOCK = threading.Lock()
_RING: deque[Span] = deque(maxlen=_DEFAULT_RING_CAPACITY)
# Bumped by clear() under _RING_LOCK.  A root span finishing after a
# clear() that happened mid-flight compares its recorded generation and
# drops itself instead of landing in the (conceptually fresh) ring.
_GENERATION = 0


def _after_fork_in_child() -> None:
    """Reset span state inherited by a fork-started worker.

    A fork taken while a span is open duplicates the parent's thread
    stack, collector and ring into the child — all garbage there: those
    spans belong to the parent, and a worker-side span closing onto the
    inherited stack would silently attach to a tree nobody will ever
    read (instead of the collector :func:`repro.mp._worker_run` set up).
    Recording also restarts disabled; the pool carries the parent's flag
    per task.
    """
    global _RING
    _STATE.enabled = False
    _THREAD_LOCAL.stack = []
    _THREAD_LOCAL.collector = None
    _RING = deque(maxlen=_RING.maxlen)


if hasattr(os, "register_at_fork"):  # POSIX only; spawn starts clean
    os.register_at_fork(after_in_child=_after_fork_in_child)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any) -> Any:
    """Open a span (use as a context manager).

    While tracing is disabled this returns a shared no-op object without
    reading the clock or allocating — the single-attribute-check fast
    path.  Avoid passing ``attrs`` at hot call sites (building the kwargs
    dict is the only cost that cannot be skipped); use
    :meth:`Span.set` inside the ``with`` block instead.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def manual_span(
    name: str, ctx: "_context.TraceContext | None" = None, **attrs: Any
) -> "Span | _NullSpan":
    """A caller-managed span for async code, stamped from an explicit
    context.

    The stack-based ``with span(...)`` protocol assumes the span opens
    and closes on one thread with nothing else interleaving — wrong for
    an asyncio handler that awaits (other requests run on the same
    thread meanwhile).  A manual span never touches the thread-local
    stack: it starts timing immediately, is closed by :meth:`Span.finish`
    and becomes visible only when handed to :func:`adopt`.  ``ctx`` is
    the span's *own* context (its ``span_id`` is the span's id), so the
    caller typically passes ``parent.child()``.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    sp = Span(name, attrs)
    sp._gen = _GENERATION
    if ctx is not None:
        sp.trace_id = ctx.trace_id
        sp.span_id = ctx.span_id
        sp.parent_id = ctx.parent_id
    sp.pid = os.getpid()
    sp.tid = threading.get_ident()
    sp.start_epoch = time()
    sp._t0 = perf_counter()
    return sp


def traced(name: str | None = None) -> Callable:
    """Decorator flavour of :func:`span` (span per call, function name by
    default)."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            with Span(span_name, {}):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate


def enabled() -> bool:
    """Whether spans are being recorded."""
    return _STATE.enabled


def set_enabled(value: bool) -> bool:
    """Set the global tracing flag; returns the previous value."""
    previous = _STATE.enabled
    _STATE.enabled = bool(value)
    return previous


def enable() -> None:
    """Turn span recording on."""
    _STATE.enabled = True


def disable() -> None:
    """Turn span recording off (the default)."""
    _STATE.enabled = False


def spans() -> list[Span]:
    """Completed root spans currently in the ring buffer (oldest first)."""
    with _RING_LOCK:
        return list(_RING)


def spans_for_trace(trace_id: str) -> list[Span]:
    """Ring roots whose subtree belongs to (or links to) one trace.

    A root qualifies when any span in its walk carries ``trace_id``, or
    carries it in a ``links`` attribute — the convention batch spans use
    to reference the other requests that shared their sweep.
    """
    out: list[Span] = []
    for root in spans():
        for sp in root.walk():
            if sp.trace_id == trace_id:
                out.append(root)
                break
            links = sp.attrs.get("links")
            if links and trace_id in links:
                out.append(root)
                break
    return out


def adopt(roots: Iterable[Span]) -> None:
    """Append foreign completed root spans to the ring.

    This is how cross-boundary spans come home: worker processes collect
    their root spans (see :func:`collect`), ship them back pickled, and
    the parent adopts them — already stamped with the originating trace
    context, so id-based re-linking just works.  Null spans (from the
    disabled path) are skipped.
    """
    with _RING_LOCK:
        for sp in roots:
            if isinstance(sp, Span):
                _RING.append(sp)


class collect:
    """Scoped redirect of this thread's finished root spans into a list.

    Used by :mod:`repro.mp` workers to capture exactly the spans one task
    produced without disturbing the worker's own ring::

        captured: list[Span] = []
        with collect(captured):
            run_task()
        ship(captured)
    """

    __slots__ = ("into", "_previous")

    def __init__(self, into: list[Span]):
        self.into = into
        self._previous: Any = None

    def __enter__(self) -> list[Span]:
        self._previous = getattr(_THREAD_LOCAL, "collector", None)
        _THREAD_LOCAL.collector = self.into
        return self.into

    def __exit__(self, *exc_info: object) -> bool:
        _THREAD_LOCAL.collector = self._previous
        return False


def clear() -> None:
    """Drop all recorded spans — including the roots of spans still open.

    The ring is swapped for a fresh one under the lock and the ring
    *generation* is bumped: a root span that was open across the clear
    discards itself at exit instead of reappearing in the new ring, so a
    clear racing an in-flight request neither orphans a half-done tree
    into the fresh ring nor (via the swap) duplicates anything.
    """
    global _RING, _GENERATION
    with _RING_LOCK:
        _RING = deque(maxlen=_RING.maxlen)
        _GENERATION += 1


def ring_capacity() -> int:
    """Maximum number of retained root spans."""
    return _RING.maxlen or 0


def set_ring_capacity(capacity: int) -> None:
    """Resize the ring buffer, keeping the newest spans."""
    global _RING
    if capacity < 1:
        raise ValueError("ring capacity must be >= 1")
    with _RING_LOCK:
        _RING = deque(_RING, maxlen=capacity)
