"""AD-computed greeks vs the Black-Scholes closed forms."""

import math

import pytest

from repro.kernels.blackscholes.greeks import (
    Greeks,
    analytic_call_greeks,
    greeks,
)

CASES = [
    (100.0, 100.0, 0.05, 0.2, 1.0),  # at the money
    (120.0, 100.0, 0.03, 0.25, 0.5),  # in the money
    (80.0, 100.0, 0.02, 0.35, 2.0),  # out of the money
    (55.0, 60.0, 0.07, 0.15, 0.25),  # short-dated
]


class TestCallGreeks:
    @pytest.mark.parametrize("case", CASES)
    def test_all_greeks_match_closed_form(self, case):
        measured = greeks(*case)
        analytic = analytic_call_greeks(*case)
        for name in ("price", "delta", "dual_delta", "rho", "vega", "theta", "gamma"):
            assert getattr(measured, name) == pytest.approx(
                getattr(analytic, name), rel=1e-8, abs=1e-10
            ), name

    def test_delta_bounds(self):
        for case in CASES:
            delta = greeks(*case).delta
            assert 0.0 < delta < 1.0

    def test_gamma_positive(self):
        for case in CASES:
            assert greeks(*case).gamma > 0.0

    def test_vega_positive(self):
        for case in CASES:
            assert greeks(*case).vega > 0.0


class TestPutGreeks:
    @pytest.mark.parametrize("case", CASES)
    def test_put_call_delta_parity(self, case):
        call = greeks(*case)
        put = greeks(*case, put=True)
        # dC/dS - dP/dS = 1 by put-call parity.
        assert call.delta - put.delta == pytest.approx(1.0, rel=1e-9)

    def test_put_delta_negative(self):
        assert greeks(100.0, 100.0, 0.05, 0.2, 1.0, put=True).delta < 0.0

    @pytest.mark.parametrize("case", CASES)
    def test_gamma_identical_for_puts(self, case):
        # Gamma is the same for calls and puts.
        assert greeks(*case).gamma == pytest.approx(
            greeks(*case, put=True).gamma, rel=1e-8
        )

    @pytest.mark.parametrize("case", CASES)
    def test_put_rho_negative(self, case):
        assert greeks(*case, put=True).rho < 0.0
