#!/usr/bin/env python
"""Significance explorer: analyse *your own* Python function.

Demonstrates the library as a general tool rather than a benchmark rig:
write any differentiable function against ``repro.ad.intrinsics``, give
input ranges, and get the Eq. 11 significance ranking, the DynDFG in DOT,
and a Monte-Carlo cross-check of the ranking.

Run:  python examples/significance_explorer.py
"""

import math

from repro.ad import intrinsics as op
from repro.intervals import Box, Interval
from repro.scorpio import (
    Analysis,
    perturbation_significance,
    rank_correlation,
)


def damped_oscillator(t, amplitude, decay, frequency, phase):
    """A little signal model: A·e^{-λt}·sin(ωt + φ)."""
    return amplitude * op.exp(-decay * t) * op.sin(frequency * t + phase)


def main() -> None:
    ranges = {
        "t": Interval(1.8, 2.2),
        "amplitude": Interval(0.9, 1.1),
        "decay": Interval(0.45, 0.55),
        "frequency": Interval(2.9, 3.1),
        "phase": Interval(-0.1, 0.1),
    }

    # IA + AD analysis (one profile run, Eq. 11 for every variable).
    an = Analysis()
    with an:
        taped = {name: an.input(iv, name=name) for name, iv in ranges.items()}
        envelope = taped["amplitude"] * op.exp(-taped["decay"] * taped["t"])
        an.intermediate(envelope, "envelope")
        carrier = op.sin(taped["frequency"] * taped["t"] + taped["phase"])
        an.intermediate(carrier, "carrier")
        an.output(envelope * carrier, name="signal")
    report = an.analyse()

    print("significance ranking (inputs + tagged intermediates):")
    for label, value in report.ranking():
        print(f"  {label:<10} {value:.4f}")

    # Monte-Carlo cross-check of the *input* ranking (ASAC-style).
    def plain(args):
        t, a, lam, w, phi = args
        return a * math.exp(-lam * t) * math.sin(w * t + phi)

    names = list(ranges)
    box = Box([ranges[n] for n in names])
    mc_scores = perturbation_significance(plain, box, samples=256)
    ia_scores = [report.input_significances()[n] for n in names]
    rho = rank_correlation(ia_scores, mc_scores)
    print("\nMonte-Carlo perturbation cross-check:")
    for name, score in zip(names, mc_scores):
        print(f"  {name:<10} {score:.4f}")
    print(f"rank correlation IA+AD vs Monte-Carlo: {rho:+.3f}")

    print("\nDynDFG (DOT, paste into graphviz):")
    print(report.to_dot())


if __name__ == "__main__":
    main()
