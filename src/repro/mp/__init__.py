"""repro.mp — multiprocess runtime with shared-memory compiled tapes.

Breaks the GIL for the two places it hurts most:

* **Task execution** — :class:`ProcessExecutor` satisfies the
  :class:`repro.runtime.executor.Executor` protocol (dense,
  submission-ordered results; dropped tasks never reach the pool) on a
  real process pool, with crash/timeout fallback to sequential execution
  and worker :mod:`repro.obs` metrics merged back into the parent.
* **Lane sweeps** — :class:`SharedTape` freezes a compiled trace's
  structure-of-arrays into :mod:`multiprocessing.shared_memory` once;
  :func:`parallel_lane_significances` fans lane chunks out across
  workers over zero-copy views, bit-identical to the sequential replay.

This maps to the significance-aware task runtime the paper builds on
(an OpenMP-style multicore task system): the significance-driven
scheduler decides *what* runs, :mod:`repro.mp` decides *where*, and the
shared tapes make the analysis itself scale with cores.

Everything here is stdlib + NumPy; ``executor="process"`` knobs on
:class:`repro.runtime.TaskRuntime`, the ``analyse_*`` entry points,
``repro serve`` and the CLI all resolve through :func:`make_executor`.
"""

from .executor import ProcessExecutor, default_workers, make_executor
from .drivers import (
    default_chunk_lanes,
    lane_chunks,
    parallel_lane_significances,
    process_requested,
)
from .shared import SharedArray, SharedTape, live_segments, unlink_all

__all__ = [
    "ProcessExecutor",
    "SharedArray",
    "SharedTape",
    "default_chunk_lanes",
    "default_workers",
    "lane_chunks",
    "live_segments",
    "make_executor",
    "parallel_lane_significances",
    "process_requested",
    "unlink_all",
]
