"""Figure 4: DCT coefficient significance mapped on the 8x8 block.

"The top left corner has the highest value and drops in a wave-like
pattern towards the opposite corner", matching the zig-zag wisdom of
compression experts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.images import natural_image
from repro.kernels.dct import DctAnalysis, analyse_dct

__all__ = ["Figure4", "figure4", "main"]


@dataclass
class Figure4:
    """The significance map plus derived profiles."""

    analysis: DctAnalysis

    @property
    def significance_map(self) -> np.ndarray:
        """(8, 8) max-normalised coefficient significances."""
        return self.analysis.significance_map

    def to_text(self) -> str:
        """ASCII heat table of the 8x8 map plus the diagonal profile."""
        lines = ["Figure 4 — DCT coefficient significance (normalised)"]
        for row in self.significance_map:
            lines.append("  " + " ".join(f"{v:5.3f}" for v in row))
        means = self.analysis.diagonal_means()
        lines.append(
            "diagonal means: " + " ".join(f"{m:.3f}" for m in means)
        )
        return "\n".join(lines)


def figure4(
    size: int = 64,
    samples: int = 6,
    seed: int = 7,
    replay: bool | None = None,
) -> Figure4:
    """Run the Figure 4 analysis on sampled blocks of a natural image.

    ``replay`` (default: the module replay setting) records the DCT trace
    once and replays the remaining sampled blocks — same map bit-for-bit.
    """
    image = natural_image(size, size, seed=seed)
    return Figure4(analysis=analyse_dct(image, samples=samples, replay=replay))


def main() -> None:
    """Print the Figure 4 map."""
    print(figure4().to_text())


if __name__ == "__main__":
    main()
