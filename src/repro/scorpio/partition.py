"""Task-partition suggestion — "a first step towards automating the
exploitation of analysis information to partition code in tasks" (§5).

Given a :class:`~repro.scorpio.report.SignificanceReport`, propose the
task structure the programmer would write by hand in Section 3.2:

* the nodes at the variance level L become *task outputs*;
* each suggestion carries a normalised significance in [0, 1] ready for
  the ``significance=`` clause (most significant task pinned to 1.0);
* nodes whose significance is (near) zero are flagged as droppable
  (their computation can be replaced by a constant — the paper's
  ``term0`` observation).

``render_partition`` produces a textual skeleton mirroring Listing 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import SignificanceReport

__all__ = ["TaskSuggestion", "propose_tasks", "render_partition"]


@dataclass
class TaskSuggestion:
    """One proposed task."""

    name: str
    node_id: int
    raw_significance: float
    significance: float  # normalised to max 1 (the clause value)
    droppable: bool

    def clause(self) -> str:
        """The pragma-style clause string."""
        return f"significance({self.significance:.3f})"


def propose_tasks(
    report: SignificanceReport,
    drop_threshold: float = 1e-9,
) -> list[TaskSuggestion]:
    """Task suggestions from the variance-level nodes of ``Gout``.

    Falls back to the registered inputs when no variance level was found
    (all same-level nodes equally important — Algorithm 1's terminal
    case); suggestions are ordered by descending significance.
    """
    nodes = report.task_partition()
    raw = [
        (n, n.significance if n.significance is not None else 0.0)
        for n in nodes
    ]
    peak = max((s for _, s in raw), default=0.0)
    suggestions = [
        TaskSuggestion(
            name=node.display_name,
            node_id=node.id,
            raw_significance=sig,
            significance=(sig / peak) if peak > 0 else 0.0,
            droppable=sig <= drop_threshold,
        )
        for node, sig in raw
    ]
    suggestions.sort(key=lambda s: s.significance, reverse=True)
    return suggestions


def render_partition(
    suggestions: list[TaskSuggestion], label: str = "kernel"
) -> str:
    """Listing-7-style skeleton for the suggested tasks."""
    lines = [
        f"# suggested task partition (group label: {label!r})",
        f"# {len(suggestions)} tasks; ratio knob controls accurate fraction",
    ]
    for s in suggestions:
        if s.droppable:
            lines.append(
                f"# {s.name}: significance ~ 0 -> replace with constant "
                "(no task needed)"
            )
            continue
        lines.append(
            f"rt.submit(compute_{s.name}, significance={s.significance:.3f}, "
            f"label={label!r})  # S={s.raw_significance:.4g}"
        )
    lines.append(f"rt.taskwait({label!r}, ratio=wait_ratio)")
    return "\n".join(lines)
