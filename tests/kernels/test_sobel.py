"""Tests for the Sobel benchmark."""

import numpy as np
import pytest

from repro.images import checkerboard, gradient_image, natural_image
from repro.kernels.sobel import (
    analyse_sobel,
    analyse_sobel_pixel,
    combine_image,
    combine_parts_pixel,
    part_contributions,
    sobel_parts_pixel,
    sobel_perforated,
    sobel_pixel,
    sobel_reference,
    sobel_significance,
)
from repro.metrics import psnr


@pytest.fixture(scope="module")
def image():
    return natural_image(64, 64, seed=5)


class TestSequential:
    def test_flat_image_zero_response(self):
        flat = np.full((8, 8), 77.0)
        assert np.allclose(sobel_reference(flat), 0.0)

    def test_vertical_edge_detected(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 255.0
        out = sobel_reference(img)
        assert out[4, 4] > 200.0  # clipped strong response at the edge
        assert out[4, 0] == 0.0

    def test_gradient_constant_response(self):
        img = gradient_image(32, 32)
        out = sobel_reference(img)
        interior = out[2:-2, 2:-2]
        assert interior.std() < 1.0  # linear ramp -> uniform response

    def test_output_clipped(self, image):
        out = sobel_reference(image)
        assert out.min() >= 0.0 and out.max() <= 255.0

    def test_parts_sum_to_reference(self, image):
        parts = part_contributions(image)
        tx = sum(parts[k][0] for k in "ABC")
        ty = sum(parts[k][1] for k in "ABC")
        assert np.allclose(combine_image(tx, ty), sobel_reference(image))

    def test_pixel_matches_image_version(self, image):
        out = sobel_reference(image)
        for y, x in [(5, 5), (20, 33), (50, 10)]:
            window = image[y - 1 : y + 2, x - 1 : x + 2].tolist()
            assert sobel_pixel(window) == pytest.approx(out[y, x])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sobel_parts_pixel([[1, 2], [3, 4]])

    def test_combine_smoothing_optional(self):
        parts = sobel_parts_pixel([[0.0] * 3] * 3)
        assert combine_parts_pixel(parts) == 0.0
        assert combine_parts_pixel(parts, smooth=True) == pytest.approx(1.0)


class TestAnalysis:
    def test_flat_window_exact_paper_ratios(self):
        sigs = analyse_sobel_pixel(np.full((3, 3), 100.0))
        assert sigs["A"] == pytest.approx(2 * sigs["B"], rel=1e-6)
        assert sigs["A"] == pytest.approx(2 * sigs["C"], rel=1e-6)

    def test_saturated_window_insignificant(self):
        # A strong edge clips the output at 255 -> zero significance.
        window = np.array([[0.0, 128.0, 255.0]] * 3) * 2
        sigs = analyse_sobel_pixel(np.clip(window, 0, 255))
        assert sigs["A"] < 1e-6

    def test_aggregate_a_dominates(self, image):
        result = analyse_sobel(image, samples=8)
        assert result.block_significance["A"] > result.block_significance["B"]
        assert result.block_significance["A"] > result.block_significance["C"]
        assert 1.2 < result.a_to_b_ratio < 2.3

    def test_window_shape_validated(self):
        with pytest.raises(ValueError):
            analyse_sobel_pixel(np.zeros((4, 4)))

    def test_small_image_rejected(self):
        with pytest.raises(ValueError):
            analyse_sobel(np.zeros((2, 2)))


class TestSignificanceVersion:
    def test_ratio_one_exact(self, image):
        run = sobel_significance(image, 1.0)
        assert np.allclose(run.output, sobel_reference(image))

    def test_ratio_zero_keeps_a_block(self, image):
        run = sobel_significance(image, 0.0)
        # A tasks are pinned: output not all zero, roughly follows edges.
        assert run.output.max() > 0.0
        assert run.stats.accurate > 0

    def test_quality_monotone(self, image):
        ref = sobel_reference(image)
        values = [
            psnr(ref, sobel_significance(image, r).output)
            for r in (0.0, 0.5, 0.8, 1.0)
        ]
        assert values == sorted(values)

    def test_energy_monotone(self, image):
        energies = [
            sobel_significance(image, r).joules for r in (0.0, 0.5, 1.0)
        ]
        assert energies == sorted(energies)

    def test_stats_counts(self, image):
        run = sobel_significance(image, 0.0, block_rows=16)
        blocks = 64 // 16
        # 3 conv tasks per block + 1 combine per block.
        assert run.stats.total == blocks * 4


class TestPerforated:
    def test_ratio_one_exact(self, image):
        run = sobel_perforated(image, 1.0)
        assert np.allclose(run.output, sobel_reference(image))

    def test_ratio_zero_black(self, image):
        run = sobel_perforated(image, 0.0)
        assert np.allclose(run.output, 0.0)
        assert run.joules == 0.0

    def test_replicate_fill(self, image):
        run = sobel_perforated(image, 0.5, fill="replicate")
        assert (run.output.sum(axis=1) > 0).mean() > 0.9  # rows filled

    def test_invalid_fill(self, image):
        with pytest.raises(ValueError):
            sobel_perforated(image, 0.5, fill="mirror")

    def test_sig_beats_perforation_on_quality(self, image):
        ref = sobel_reference(image)
        for ratio in (0.2, 0.5, 0.8):
            sig_q = psnr(ref, sobel_significance(image, ratio).output)
            perf_q = psnr(ref, sobel_perforated(image, ratio).output)
            assert sig_q > perf_q

    def test_perforation_cheaper_at_equal_ratio(self, image):
        # The paper's energy observation: no task overhead.
        sig = sobel_significance(image, 1.0)
        perf = sobel_perforated(image, 1.0)
        assert perf.joules < sig.joules
