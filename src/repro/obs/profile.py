"""Render span trees and metric tables; dump ``obs.json`` / ``metrics.prom``.

The profile view is an *aggregated* span tree: sibling spans with the
same name are folded into one row (count, total wall time, self time,
min/max), recursively, so a figure-4 run with hundreds of per-block
replays prints as a dozen readable rows instead of a scroll of repeats.
The raw (unaggregated) trees are preserved in the ``obs.json`` dump for
tooling that wants every span.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "aggregate_spans",
    "format_span_tree",
    "format_metrics_table",
    "format_profile",
    "spans_to_dicts",
    "dump_profile",
]


class SpanAggregate:
    """One row of the aggregated tree: all same-named siblings folded."""

    __slots__ = ("name", "count", "total", "self_total", "min", "max", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.children: dict[str, "SpanAggregate"] = {}

    def add(self, sp: _trace.Span) -> None:
        elapsed = sp.elapsed_seconds or 0.0
        self.count += 1
        self.total += elapsed
        self.self_total += sp.self_seconds
        self.min = min(self.min, elapsed)
        self.max = max(self.max, elapsed)
        for child in sp.children:
            agg = self.children.get(child.name)
            if agg is None:
                agg = SpanAggregate(child.name)
                self.children[child.name] = agg
            agg.add(child)


def aggregate_spans(
    roots: Iterable[_trace.Span],
) -> dict[str, SpanAggregate]:
    """Fold a forest of spans into name-keyed aggregate rows."""
    out: dict[str, SpanAggregate] = {}
    for sp in roots:
        agg = out.get(sp.name)
        if agg is None:
            agg = SpanAggregate(sp.name)
            out[sp.name] = agg
        agg.add(sp)
    return out


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.3f}"


def format_span_tree(roots: Sequence[_trace.Span]) -> str:
    """The aggregated span tree as an indented fixed-width table."""
    lines = [
        f"{'span':<44} {'calls':>6} {'total ms':>10} {'self ms':>10}"
    ]
    lines.append("-" * len(lines[0]))

    def emit(agg: SpanAggregate, depth: int) -> None:
        label = "  " * depth + agg.name
        lines.append(
            f"{label:<44} {agg.count:>6} {_ms(agg.total)} "
            f"{_ms(agg.self_total)}"
        )
        for child in sorted(
            agg.children.values(), key=lambda a: -a.total
        ):
            emit(child, depth + 1)

    top = aggregate_spans(roots)
    if not top:
        return "(no spans recorded — is tracing enabled?)"
    for agg in sorted(top.values(), key=lambda a: -a.total):
        emit(agg, 0)
    return "\n".join(lines)


def format_metrics_table(
    snapshot: Mapping[str, Mapping[str, Any]] | None = None,
) -> str:
    """The metrics snapshot as a two-column table (histograms summarised)."""
    snapshot = _metrics.snapshot() if snapshot is None else snapshot
    if not snapshot:
        return "(no metrics recorded)"
    lines = [f"{'metric':<44} {'value':>18}"]
    lines.append("-" * len(lines[0]))
    for name, entry in snapshot.items():
        if entry["type"] == "histogram":
            value = (
                f"n={entry['count']} sum={_num(entry['sum'])} "
                f"mean={_num(entry['mean'])}"
            )
            lines.append(f"{name:<44} {value:>18}")
        else:
            lines.append(f"{name:<44} {_num(entry['value']):>18}")
    return "\n".join(lines)


def _num(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def format_profile(
    roots: Sequence[_trace.Span] | None = None,
    snapshot: Mapping[str, Mapping[str, Any]] | None = None,
) -> str:
    """Span tree + metrics table, the ``repro profile`` output body."""
    roots = _trace.spans() if roots is None else roots
    return (
        "== span tree "
        + "=" * 60
        + "\n"
        + format_span_tree(roots)
        + "\n\n== metrics "
        + "=" * 62
        + "\n"
        + format_metrics_table(snapshot)
    )


def spans_to_dicts(roots: Iterable[_trace.Span]) -> list[dict[str, Any]]:
    """Raw span forest as JSON-serialisable dicts.

    Trace-context stamps (trace/span/parent ids) and the recording
    pid/tid are included only when present, so dumps from untraced runs
    stay as small as before.
    """
    out: list[dict[str, Any]] = []
    for sp in roots:
        entry: dict[str, Any] = {
            "name": sp.name,
            "elapsed_seconds": sp.elapsed_seconds,
            "attrs": dict(sp.attrs),
            "children": spans_to_dicts(sp.children),
        }
        if sp.trace_id:
            entry["trace_id"] = sp.trace_id
            entry["span_id"] = sp.span_id
            entry["parent_id"] = sp.parent_id
        if sp.pid:
            entry["pid"] = sp.pid
            entry["tid"] = sp.tid
            entry["start_epoch"] = sp.start_epoch
        out.append(entry)
    return out


def dump_profile(
    out_dir: str | Path,
    *,
    roots: Sequence[_trace.Span] | None = None,
    json_name: str = "obs.json",
    prom_name: str = "metrics.prom",
) -> tuple[Path, Path]:
    """Write ``obs.json`` (spans + metrics) and ``metrics.prom`` to a dir.

    Returns the two paths written.  ``obs.json`` carries the raw span
    forest, the metrics snapshot and the aggregated rows the table view
    prints, so offline tooling needs no access to the live process.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    roots = _trace.spans() if roots is None else roots

    def agg_dicts(aggs: Mapping[str, SpanAggregate]) -> list[dict[str, Any]]:
        return [
            {
                "name": a.name,
                "count": a.count,
                "total_seconds": a.total,
                "self_seconds": a.self_total,
                "children": agg_dicts(a.children),
            }
            for a in sorted(aggs.values(), key=lambda a: -a.total)
        ]

    json_path = out / json_name
    with open(json_path, "w") as fh:
        json.dump(
            {
                "spans": spans_to_dicts(roots),
                "aggregated": agg_dicts(aggregate_spans(roots)),
                "metrics": _metrics.snapshot(),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
    prom_path = out / prom_name
    with open(prom_path, "w") as fh:
        fh.write(_metrics.to_prometheus())
    return json_path, prom_path
