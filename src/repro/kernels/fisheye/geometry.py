"""Fisheye lens geometry (Section 4.1.3, InverseMapping kernel).

Model: an equidistant fisheye lens.  Scene points at view angle θ land at
radius ``r_d = f_d · θ`` on the distorted (captured) image, while the
natural-looking perspective image places them at ``r_p = f_p · tan θ``.
The correction therefore maps an output (perspective) pixel at radius
``r_p`` back to the distorted input at::

    θ   = atan(r_p / f_p)
    r_d = f_d · θ

Because ``tan`` grows faster than the identity, scene periphery is
*compressed* in the fisheye image: content per input pixel (and hence the
input gradient magnitude) grows with radius like ``sec²θ``.  That is what
makes the coordinate computation near the border more sensitive to
imprecision — the paper's Figure 5 pattern, which
:mod:`repro.kernels.fisheye.analysis` reproduces.

The functions are written against generic numerics so they run on floats,
Intervals and ADoubles; NumPy versions handle whole coordinate grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ad import intrinsics as op

__all__ = ["LensConfig", "inverse_map_point", "inverse_map_grid", "OPS_INVERSE_MAP"]

# Abstract per-pixel op cost of InverseMapping (atan + sqrt + divides).
OPS_INVERSE_MAP = 30.0

# Guard added under the radius sqrt so the derivative enclosure stays
# finite at the exact image centre (r = 0).
_RADIUS_EPSILON = 1e-9


@dataclass(frozen=True)
class LensConfig:
    """Geometry of one correction setup.

    Attributes:
        out_width/out_height: perspective (output) image size.
        in_width/in_height: distorted (input) image size.
        fov_degrees: full diagonal field of view of the output image.
    """

    out_width: int
    out_height: int
    in_width: int
    in_height: int
    fov_degrees: float = 140.0

    @property
    def out_center(self) -> tuple[float, float]:
        """(cx, cy) of the output image."""
        return ((self.out_width - 1) / 2.0, (self.out_height - 1) / 2.0)

    @property
    def in_center(self) -> tuple[float, float]:
        """(cx, cy) of the input (fisheye) image."""
        return ((self.in_width - 1) / 2.0, (self.in_height - 1) / 2.0)

    @property
    def theta_max(self) -> float:
        """Half the diagonal field of view, radians."""
        return math.radians(self.fov_degrees) / 2.0

    @property
    def f_perspective(self) -> float:
        """Perspective focal length: corner radius = f_p·tan(θ_max)."""
        cx, cy = self.out_center
        corner = math.hypot(cx, cy)
        return corner / math.tan(self.theta_max)

    @property
    def f_fisheye(self) -> float:
        """Fisheye focal length: the image circle inscribed in the input.

        An equidistant fisheye produces a circular image; it must fit the
        input frame, so ``f_d·θ_max`` equals the inscribed-circle radius
        (half the smaller input dimension), guaranteeing every mapped
        output pixel lands inside the frame.
        """
        cx, cy = self.in_center
        return min(cx, cy) / self.theta_max


def inverse_map_point(config: LensConfig, x_out: Any, y_out: Any) -> tuple[Any, Any]:
    """Map one output pixel to real-valued input coordinates.

    Generic numerics: pass floats for execution, ADoubles for analysis.
    """
    cx_o, cy_o = config.out_center
    cx_i, cy_i = config.in_center
    f_p = config.f_perspective
    f_d = config.f_fisheye

    dx = x_out - cx_o
    dy = y_out - cy_o
    r_p = op.sqrt(dx * dx + dy * dy + _RADIUS_EPSILON)
    theta = op.atan(r_p / f_p)
    r_d = f_d * theta
    scale = r_d / r_p
    return cx_i + dx * scale, cy_i + dy * scale


def inverse_map_grid(
    config: LensConfig, xs: np.ndarray, ys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`inverse_map_point` over coordinate arrays."""
    cx_o, cy_o = config.out_center
    cx_i, cy_i = config.in_center
    f_p = config.f_perspective
    f_d = config.f_fisheye

    dx = np.asarray(xs, dtype=np.float64) - cx_o
    dy = np.asarray(ys, dtype=np.float64) - cy_o
    r_p = np.sqrt(dx * dx + dy * dy + _RADIUS_EPSILON)
    theta = np.arctan(r_p / f_p)
    scale = f_d * theta / r_p
    return cx_i + dx * scale, cy_i + dy * scale
