"""Scalar ↔ batched adapters.

The batched engine intentionally keeps the scalar node layout
(:class:`repro.vec.vtape.VNode` *is* :class:`repro.ad.tape.Node`), so a
lane of a swept :class:`~repro.vec.vtape.VTape` can be *lowered* to an
ordinary scalar :class:`~repro.ad.tape.Tape` — same indices, ops, labels
and edges, with every :class:`~repro.vec.ivec.IntervalArray` sliced down to
that lane's :class:`~repro.intervals.Interval`.  The lowered tape is
indistinguishable from one the scalar engine recorded, which means the
entire existing scorpio post-processing stack (DynDFG construction,
Algorithm 1 simplify, variance scan, reports, JSON serialisation) runs on
batched results without modification.

The other direction, *lifting*, broadcasts scalar intervals into lanes —
used to seed batched computations from scalar configuration values.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.ad.tape import Node, Tape
from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array
from .vtape import VTape

__all__ = ["lift", "lower", "lower_value", "lower_tape", "lane_report"]


def lift(
    value: Interval | float | np.ndarray | Sequence[Interval],
    shape: tuple[int, ...] | int,
) -> IntervalArray:
    """Broadcast a scalar interval / array of midpoints into lanes."""
    if isinstance(shape, int):
        shape = (shape,)
    if (
        isinstance(value, Sequence)
        and value
        and isinstance(value[0], Interval)
    ):
        arr = IntervalArray.from_intervals(value)
        return arr.reshape(shape) if arr.shape != shape else arr
    return as_interval_array(value, shape)


def lower(array: IntervalArray, lane: int | tuple[int, ...]) -> Interval:
    """Extract one lane of an :class:`IntervalArray` as an ``Interval``."""
    return array.lane(lane)


def lower_value(value: Any, lane: int | tuple[int, ...]) -> Any:
    """Lower any node value/partial/adjoint to its scalar lane equivalent."""
    if isinstance(value, IntervalArray):
        return value.lane(lane)
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return float(value)
        return float(value[lane])
    return value


def lower_tape(vtape: VTape, lane: int | tuple[int, ...]) -> Tape:
    """Slice one lane of a batched tape into a scalar :class:`Tape`.

    Node indices, ops, parents and labels are preserved verbatim; values,
    partials and (if the batched sweep already ran) adjoints are lowered
    per :func:`lower_value`.  The result is a valid scalar DynDFG recording
    ready for :meth:`Tape.adjoint` or :class:`DynDFG.from_tape`.
    """
    shape = vtape.require_lane_shape()
    if isinstance(lane, (int, np.integer)):
        lane = (
            (int(lane),)
            if len(shape) == 1
            else tuple(int(i) for i in np.unravel_index(int(lane), shape))
        )
    tape = Tape()
    for vnode in vtape:
        node = Node(
            index=vnode.index,
            op=vnode.op,
            value=lower_value(vnode.value, lane),
            parents=vnode.parents,
            partials=tuple(
                lower_value(p, lane) for p in vnode.partials
            ),
            label=vnode.label,
        )
        if vnode.adjoint is not None:
            node.adjoint = lower_value(vnode.adjoint, lane)
        tape.nodes.append(node)
    return tape


def lane_report(
    vreport: "Any",
    lane: int | tuple[int, ...],
    *,
    delta: float = 1e-6,
    simplify: bool = True,
):
    """Full scalar scorpio analysis of one lane of a batched report.

    Lowers the lane's tape, recomputes Eq. 11 per node from the lowered
    values/adjoints, then runs Algorithm 1 (simplify + variance scan) —
    producing a :class:`repro.scorpio.report.SignificanceReport` identical
    in kind to what the scalar :class:`repro.scorpio.api.Analysis` yields.
    """
    from repro.scorpio.dyndfg import DynDFG
    from repro.scorpio.report import SignificanceReport
    from repro.scorpio.significance import significance_map
    from repro.scorpio.simplify import simplify as _simplify
    from repro.scorpio.variance import find_significance_variance

    tape = lower_tape(vreport.tape, lane)
    sig = significance_map(tape)
    raw = DynDFG.from_tape(tape, list(vreport.output_ids), sig)
    simplified = _simplify(raw) if simplify else raw
    scan = find_significance_variance(simplified, delta=delta)
    return SignificanceReport(
        raw_graph=raw,
        simplified_graph=simplified,
        scan=scan,
        input_ids=list(vreport.input_ids),
        intermediate_ids=list(vreport.intermediate_ids),
        output_ids=list(vreport.output_ids),
    )
