"""Scalar ↔ batched adapters.

The batched engine intentionally keeps the scalar node layout
(:class:`repro.vec.vtape.VNode` *is* :class:`repro.ad.tape.Node`), so a
lane of a swept :class:`~repro.vec.vtape.VTape` can be *lowered* to an
ordinary scalar :class:`~repro.ad.tape.Tape` — same indices, ops, labels
and edges, with every :class:`~repro.vec.ivec.IntervalArray` sliced down to
that lane's :class:`~repro.intervals.Interval`.  The lowered tape is
indistinguishable from one the scalar engine recorded, which means the
entire existing scorpio post-processing stack (DynDFG construction,
Algorithm 1 simplify, variance scan, reports, JSON serialisation) runs on
batched results without modification.

The other direction, *lifting*, broadcasts scalar intervals into lanes —
used to seed batched computations from scalar configuration values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.ad.tape import Node, Tape
from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array
from .vtape import VTape

__all__ = [
    "lift",
    "lower",
    "lower_value",
    "lower_tape",
    "lane_report",
    "lane_scan_map",
    "LaneScanMap",
]


def lift(
    value: Interval | float | np.ndarray | Sequence[Interval],
    shape: tuple[int, ...] | int,
) -> IntervalArray:
    """Broadcast a scalar interval / array of midpoints into lanes."""
    if isinstance(shape, int):
        shape = (shape,)
    if (
        isinstance(value, Sequence)
        and value
        and isinstance(value[0], Interval)
    ):
        arr = IntervalArray.from_intervals(value)
        return arr.reshape(shape) if arr.shape != shape else arr
    return as_interval_array(value, shape)


def lower(array: IntervalArray, lane: int | tuple[int, ...]) -> Interval:
    """Extract one lane of an :class:`IntervalArray` as an ``Interval``."""
    return array.lane(lane)


def lower_value(value: Any, lane: int | tuple[int, ...]) -> Any:
    """Lower any node value/partial/adjoint to its scalar lane equivalent."""
    if isinstance(value, IntervalArray):
        return value.lane(lane)
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return float(value)
        return float(value[lane])
    return value


def lower_tape(vtape: VTape, lane: int | tuple[int, ...]) -> Tape:
    """Slice one lane of a batched tape into a scalar :class:`Tape`.

    Node indices, ops, parents and labels are preserved verbatim; values,
    partials and (if the batched sweep already ran) adjoints are lowered
    per :func:`lower_value`.  The result is a valid scalar DynDFG recording
    ready for :meth:`Tape.adjoint` or :class:`DynDFG.from_tape`.
    """
    shape = vtape.require_lane_shape()
    if isinstance(lane, (int, np.integer)):
        lane = (
            (int(lane),)
            if len(shape) == 1
            else tuple(int(i) for i in np.unravel_index(int(lane), shape))
        )
    tape = Tape()
    for vnode in vtape:
        node = Node(
            index=vnode.index,
            op=vnode.op,
            value=lower_value(vnode.value, lane),
            parents=vnode.parents,
            partials=tuple(
                lower_value(p, lane) for p in vnode.partials
            ),
            label=vnode.label,
        )
        if vnode.adjoint is not None:
            node.adjoint = lower_value(vnode.adjoint, lane)
        tape.nodes.append(node)
    return tape


def lane_report(
    vreport: "Any",
    lane: int | tuple[int, ...],
    *,
    delta: float = 1e-6,
    simplify: bool = True,
    compiled: bool = False,
):
    """Full scalar scorpio analysis of one lane of a batched report.

    Lowers the lane's tape, recomputes Eq. 11 per node from the lowered
    values/adjoints, then runs Algorithm 1 (simplify + variance scan) —
    producing a :class:`repro.scorpio.report.SignificanceReport` identical
    in kind to what the scalar :class:`repro.scorpio.api.Analysis` yields.

    With ``compiled=True`` the Eq. 11 significances of *all* lanes are
    computed in one vectorized pass (cached on ``vreport``) and the
    lane-independent graph structure (simplify, BFS levels) is shared
    across lanes, so asking for many lane reports costs one array sweep
    plus a cheap per-lane variance scan.  The report is byte-identical to
    the ``compiled=False`` one (through ``report_to_json``).
    """
    if compiled:
        return _lane_report_compiled(
            vreport, lane, delta=delta, simplify=simplify
        )

    from repro.scorpio.dyndfg import DynDFG
    from repro.scorpio.report import SignificanceReport
    from repro.scorpio.significance import significance_map
    from repro.scorpio.simplify import simplify as _simplify
    from repro.scorpio.variance import find_significance_variance

    tape = lower_tape(vreport.tape, lane)
    sig = significance_map(tape)
    raw = DynDFG.from_tape(tape, list(vreport.output_ids), sig)
    simplified = _simplify(raw) if simplify else raw
    scan = find_significance_variance(simplified, delta=delta)
    return SignificanceReport(
        raw_graph=raw,
        simplified_graph=simplified,
        scan=scan,
        input_ids=list(vreport.input_ids),
        intermediate_ids=list(vreport.intermediate_ids),
        output_ids=list(vreport.output_ids),
    )


# ----------------------------------------------------------------------
# Compiled lane analysis: Eq. 11 for all lanes at once, structure shared
# ----------------------------------------------------------------------
class _LaneColumns:
    """Per-``vreport`` cache of lane-major columns and shared structure.

    Values and adjoints of every node are laid out as ``(n_nodes,
    n_lanes)`` lo/hi arrays (the lane twin of
    :class:`repro.ad.compiled.CompiledTape`'s columns), Eq. 11 runs once
    over the whole matrix, and the purely structural parts of Algorithm 1
    (S4 simplify, BFS levels) — identical in every lane — are computed a
    single time.
    """

    def __init__(self, vreport: Any) -> None:
        from repro.scorpio.compiled import (
            eq11_from_sweep,
            levels_from_parents,
        )

        vtape: VTape = vreport.tape
        self.vtape = vtape
        shape = vtape.require_lane_shape()
        self.lane_shape = shape
        lanes = int(np.prod(shape)) if shape else 1
        self.n_lanes = lanes
        nodes = vtape.nodes
        n = len(nodes)
        self.n = n

        vlo = np.empty((n, lanes))
        vhi = np.empty((n, lanes))
        alo = np.zeros((n, lanes))
        ahi = np.zeros((n, lanes))
        has_adj = np.zeros(n, dtype=bool)
        adj_float = np.zeros(n, dtype=bool)
        val_float = np.zeros(n, dtype=bool)
        for i, vnode in enumerate(nodes):
            value = vnode.value
            if isinstance(value, IntervalArray):
                vlo[i] = value.lo.reshape(-1)
                vhi[i] = value.hi.reshape(-1)
            elif isinstance(value, Interval):
                vlo[i] = value.lo
                vhi[i] = value.hi
            else:
                flat = np.broadcast_to(
                    np.asarray(value, dtype=np.float64), shape
                ).reshape(-1)
                vlo[i] = flat
                vhi[i] = flat
                val_float[i] = True
            adj = vnode.adjoint
            if adj is None:
                continue
            has_adj[i] = True
            if isinstance(adj, IntervalArray):
                alo[i] = adj.lo.reshape(-1)
                ahi[i] = adj.hi.reshape(-1)
            elif isinstance(adj, Interval):
                alo[i] = adj.lo
                ahi[i] = adj.hi
            else:
                flat = np.broadcast_to(
                    np.asarray(adj, dtype=np.float64), shape
                ).reshape(-1)
                alo[i] = flat
                ahi[i] = flat
                adj_float[i] = True

        # Eq. 11 per (node, lane): same branch structure as
        # significance_value on the lowered scalars.  A VTape sweep makes
        # every adjoint an IntervalArray, so the scalar |u·∂y/∂u| fallback
        # (both operands non-interval) and the unswept-node zero are edge
        # cases kept for parity with hand-built tapes.
        sig = eq11_from_sweep(vlo, vhi, alo, ahi, interval_mode=True)
        scalar_rows = val_float & adj_float
        if scalar_rows.any():
            sig[scalar_rows] = np.abs(
                vlo[scalar_rows] * alo[scalar_rows]
            )
        sig[~has_adj] = 0.0
        self.sig = sig

        self.ops = [nd.op for nd in nodes]
        self.parents = [nd.parents for nd in nodes]
        self.labels = {
            i: nd.label for i, nd in enumerate(nodes) if nd.label is not None
        }
        self.outputs = list(vreport.output_ids)
        self.raw_levels = levels_from_parents(
            dict(enumerate(self.parents)), n, self.outputs
        )
        self._structure: dict[bool, tuple] = {}

    def structure(self, simplify: bool) -> tuple:
        """(survivors, parents, merged, levels) for the given S4 setting."""
        if simplify not in self._structure:
            if simplify:
                from repro.scorpio.compiled import (
                    levels_from_parents,
                    simplify_structure,
                )

                surv, s_parents, s_merged = simplify_structure(
                    self.ops, self.parents, self.outputs
                )
                s_levels = levels_from_parents(
                    s_parents, self.n, self.outputs
                )
                self._structure[True] = (surv, s_parents, s_merged, s_levels)
            else:
                self._structure[False] = (
                    range(self.n),
                    self.parents,
                    None,
                    self.raw_levels,
                )
        return self._structure[simplify]

    def lane_index(self, lane: int | tuple[int, ...]) -> tuple[int, ...]:
        if isinstance(lane, (int, np.integer)):
            if len(self.lane_shape) == 1:
                return (int(lane),)
            return tuple(
                int(i)
                for i in np.unravel_index(int(lane), self.lane_shape)
            )
        return tuple(int(i) for i in lane)


def _lane_columns(vreport: Any) -> _LaneColumns:
    cols = getattr(vreport, "_lane_columns_cache", None)
    if cols is None:
        cols = _LaneColumns(vreport)
        vreport._lane_columns_cache = cols
    return cols


def _lane_report_compiled(
    vreport: Any,
    lane: int | tuple[int, ...],
    *,
    delta: float,
    simplify: bool,
):
    from repro.scorpio.compiled import (
        _LazyDynDFG,
        _scan_and_assemble,
    )
    from repro.scorpio.dyndfg import DFGNode

    cols = _lane_columns(vreport)
    lane_t = cols.lane_index(lane)
    col = int(np.ravel_multi_index(lane_t, cols.lane_shape))
    sig_list = cols.sig[:, col].tolist()
    surv, s_parents, s_merged, s_levels = cols.structure(simplify)
    vnodes = cols.vtape.nodes
    outputs = cols.outputs

    def lazy_graph(ids, parents, merged, levels) -> _LazyDynDFG:
        def build() -> dict[int, DFGNode]:
            return {
                i: DFGNode(
                    id=i,
                    op=vnodes[i].op,
                    label=vnodes[i].label,
                    value=lower_value(vnodes[i].value, lane_t),
                    adjoint=(
                        lower_value(vnodes[i].adjoint, lane_t)
                        if vnodes[i].adjoint is not None
                        else None
                    ),
                    significance=sig_list[i],
                    parents=parents[i],
                    level=levels.get(i),
                    merged=merged[i] if merged is not None else (),
                )
                for i in ids
            }

        return _LazyDynDFG(build, outputs)

    raw = lazy_graph(range(cols.n), cols.parents, None, cols.raw_levels)
    if simplify:
        simplified = lazy_graph(surv, s_parents, s_merged, s_levels)
    else:
        simplified = raw
    return _scan_and_assemble(
        lazy_graph=lazy_graph,
        raw=raw,
        simplified=simplified,
        surv=surv,
        s_parents=s_parents,
        s_merged=s_merged,
        s_levels=s_levels,
        sig_list=sig_list,
        delta=delta,
        input_ids=list(vreport.input_ids),
        intermediate_ids=list(vreport.intermediate_ids),
        output_ids=outputs,
        labels=cols.labels,
        n=cols.n,
    )


@dataclass
class LaneScanMap:
    """Per-lane S5 results for a whole batched analysis.

    Attributes:
        lane_shape: the batch's lane shape.
        found_level: int array over lanes — first BFS level whose
            significance variance exceeds ``delta`` in that lane, or -1
            when the scan reached the inputs without finding one (the
            scalar scan's ``found_level is None``).
        variances: per-level variance arrays over lanes.  Levels are
            scanned until every lane has found a partition level, so a
            lane that found level 2 still gets level-3+ entries here if
            some other lane scanned deeper (the scalar per-lane scan
            stops earlier; entries up to a lane's found level are
            bit-identical to it).
        delta: the threshold used.
    """

    lane_shape: tuple[int, ...]
    found_level: np.ndarray
    variances: dict[int, np.ndarray] = field(default_factory=dict)
    delta: float = 1e-6

    def found_counts(self) -> dict[int, int]:
        """Histogram of found levels across lanes (-1 = none found)."""
        levels, counts = np.unique(self.found_level, return_counts=True)
        return dict(
            zip((int(l) for l in levels), (int(c) for c in counts))
        )


def lane_scan_map(
    vreport: Any,
    *,
    delta: float = 1e-6,
    simplify: bool = True,
    exact_variance: bool = True,
) -> LaneScanMap:
    """Algorithm 1 step S5 for every lane of a batched report at once.

    The graph structure (and therefore the BFS levels and level
    membership) is identical in every lane; only the significances — and
    hence the per-level variances and the first level exceeding ``delta``
    — differ.  This runs the variance scan lane-parallel: one pass over
    the levels, each computing a whole array of variances, instead of one
    scalar scan per lane via :func:`lane_report`.

    ``exact_variance=True`` (default) squares the deviations through
    Python's ``float.__pow__`` so every variance is bit-identical to the
    scalar scan's ``(s - mean) ** 2`` chain (libm ``pow`` differs from a
    plain multiply by 1 ulp on ~0.1% of inputs).  ``exact_variance=False``
    uses the vectorized multiply — up to 1 ulp off, which can flip the
    found level only when a variance lands within 1 ulp of ``delta``.
    """
    cols = _lane_columns(vreport)
    surv, _s_parents, _s_merged, s_levels = cols.structure(simplify)
    return _scan_columns(
        cols.sig,
        cols.lane_shape,
        surv,
        s_levels,
        delta=delta,
        exact_variance=exact_variance,
    )


def _scan_columns(
    sig: np.ndarray,
    lane_shape: tuple[int, ...],
    surv,
    s_levels,
    *,
    delta: float,
    exact_variance: bool,
) -> LaneScanMap:
    """Lane-parallel S5 over an ``(n_nodes, n_lanes)`` significance matrix.

    The structural inputs (``surv``, ``s_levels``) come either from a
    batched recording (:meth:`_LaneColumns.structure`) or from a replayed
    trace (:class:`repro.scorpio.compiled.TraceStructure`) — the scan is
    the same either way.
    """
    members_by_level: dict[int, list[int]] = {}
    for nid in sorted(i for i in surv if i in s_levels):
        members_by_level.setdefault(s_levels[nid], []).append(nid)
    height = (max(members_by_level) + 1) if members_by_level else 0

    lanes = sig.shape[1]
    found = np.full(lanes, -1, dtype=np.int64)
    variances: dict[int, np.ndarray] = {}
    for level in range(1, height):
        ids = members_by_level.get(level, [])
        if len(ids) < 2:
            var = np.zeros(lanes)
        else:
            # Same association order as level_variance: sequential sum
            # over members in ascending id order, population variance.
            total = sig[ids[0]].copy()
            for i in ids[1:]:
                total += sig[i]
            mean = total / len(ids)
            sq = np.zeros(lanes)
            for i in ids:
                sq += _square(sig[i] - mean, exact_variance)
            var = sq / len(ids)
        variances[level] = var.reshape(lane_shape)
        newly = (found < 0) & (var > delta)
        found[newly] = level
        if (found >= 0).all():
            break
    return LaneScanMap(
        lane_shape=lane_shape,
        found_level=found.reshape(lane_shape),
        variances=variances,
        delta=delta,
    )


def _square(diff: np.ndarray, exact: bool) -> np.ndarray:
    """``diff ** 2`` elementwise, optionally via Python's libm ``pow``."""
    if not exact:
        return diff * diff
    return np.fromiter(
        (x ** 2 for x in diff.tolist()),
        dtype=np.float64,
        count=diff.size,
    )
