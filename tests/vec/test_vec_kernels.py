"""Equivalence of the batched kernel analyses with the scalar engine.

Acceptance criterion from the subsystem issue: the vectorized BlackScholes
analysis must produce the *same significance ordering* as running the
scalar analysis per option, across a 64-option portfolio.
"""

import numpy as np
import pytest

from repro.images import natural_image, radial_scene
from repro.kernels.blackscholes import analyse_blackscholes, make_portfolio
from repro.kernels.blackscholes.analysis import (
    analyse_option,
    analyse_portfolio_vec,
)
from repro.kernels.fisheye import (
    analyse_inverse_mapping,
    default_config,
    make_fisheye_input,
)
from repro.kernels.sobel import analyse_sobel
from repro.kernels.sobel.analysis import (
    analyse_sobel_map,
    analyse_sobel_pixel,
    analyse_sobel_windows_vec,
)

_BLOCKS = ("A", "B", "C", "D")


class TestBlackScholesVec:
    @pytest.fixture(scope="class")
    def portfolio(self):
        return make_portfolio(count=64, seed=11)

    @pytest.fixture(scope="class")
    def vec_report(self, portfolio):
        return analyse_portfolio_vec(
            portfolio.spots,
            portfolio.strikes,
            portfolio.rates,
            portfolio.volatilities,
            portfolio.expiries,
        )

    def test_per_option_ranking_matches_scalar(self, portfolio, vec_report):
        """Every option's block ordering equals its scalar analysis.

        Blocks C and D carry *exactly* equal significance for many options,
        so the order within a near-tie (rel < 1e-9) is floating-point noise
        in both engines; rankings are compared pair-wise over the decisively
        separated pairs only.
        """
        lanes = vec_report.labelled_significances()
        for i in range(portfolio.count):
            scalar = analyse_option(
                float(portfolio.spots[i]),
                float(portfolio.strikes[i]),
                float(portfolio.rates[i]),
                float(portfolio.volatilities[i]),
                float(portfolio.expiries[i]),
            )
            vec = {name: float(lanes[name][i]) for name in _BLOCKS}
            for name in _BLOCKS:
                assert vec[name] == pytest.approx(scalar[name], rel=1e-9)
            for a in _BLOCKS:
                for b in _BLOCKS:
                    gap = scalar[a] - scalar[b]
                    if gap > 1e-9 * max(scalar[a], scalar[b]):
                        assert vec[a] > vec[b], (
                            f"option {i}: scalar ranks {a} above {b} "
                            f"but vec does not"
                        )

    def test_paper_block_ordering(self, vec_report):
        """sig(A) > sig(B) >> sig(C) (Section 4.1.5) holds lane-averaged."""
        means = vec_report.mean_significances()
        assert means["A"] > means["B"] > means["C"]

    def test_analyse_blackscholes_vec_flag(self):
        scalar = analyse_blackscholes(samples=16, seed=7)
        vec = analyse_blackscholes(samples=16, seed=7, vec=True)
        assert vec.ranking() == scalar.ranking()
        for name in _BLOCKS:
            assert vec.block_significance[name] == pytest.approx(
                scalar.block_significance[name], rel=1e-9
            )
        assert len(vec.per_option) == len(scalar.per_option) == 16


class TestSobelVec:
    @pytest.fixture(scope="class")
    def image(self):
        return natural_image(48, 48, seed=5)

    def test_windows_vec_matches_scalar(self, image):
        windows = np.stack(
            [
                image[y - 1 : y + 2, x - 1 : x + 2]
                for y, x in [(5, 5), (10, 31), (40, 7), (23, 23)]
            ]
        )
        vec = analyse_sobel_windows_vec(windows)
        for k in range(windows.shape[0]):
            scalar = analyse_sobel_pixel(windows[k])
            for key in ("A", "B", "C"):
                assert vec[k][key] == pytest.approx(scalar[key], rel=1e-9)

    def test_analyse_sobel_vec_flag(self, image):
        scalar = analyse_sobel(image, samples=8, seed=3)
        vec = analyse_sobel(image, samples=8, seed=3, vec=True)
        for key in ("A", "B", "C"):
            assert vec.block_significance[key] == pytest.approx(
                scalar.block_significance[key], rel=1e-9
            )
        assert vec.a_to_b_ratio == pytest.approx(2.0, rel=0.2)

    def test_full_image_map(self, image):
        maps = analyse_sobel_map(image)
        assert set(maps) == {"A", "B", "C"}
        for arr in maps.values():
            assert arr.shape == image.shape
            assert (arr >= 0.0).all()
        # The paper's A:B ~ 2:1 ratio holds pixel-wise, not just on average.
        interior = (slice(1, -1), slice(1, -1))
        ratio = maps["A"][interior] / np.maximum(maps["B"][interior], 1e-12)
        assert np.median(ratio) == pytest.approx(2.0, rel=0.25)

    def test_map_agrees_with_per_pixel_scalar(self, image):
        maps = analyse_sobel_map(image)
        for y, x in [(7, 9), (20, 20), (33, 12)]:
            scalar = analyse_sobel_pixel(image[y - 1 : y + 2, x - 1 : x + 2])
            for key in ("A", "B", "C"):
                assert maps[key][y, x] == pytest.approx(scalar[key], rel=1e-9)


class TestFisheyeVec:
    def test_inverse_mapping_vec_matches_scalar(self):
        config = default_config(64, 48)
        image = make_fisheye_input(radial_scene(64, 48), config)
        scalar = analyse_inverse_mapping(
            image, config, grid=(4, 6), jitter_samples=2
        )
        vec = analyse_inverse_mapping(
            image, config, grid=(4, 6), jitter_samples=2, vec=True
        )
        assert vec.significance.shape == scalar.significance.shape
        np.testing.assert_allclose(
            vec.significance, scalar.significance, rtol=1e-7, atol=1e-10
        )

    def test_radial_growth_preserved(self):
        config = default_config(64, 48)
        image = make_fisheye_input(radial_scene(64, 48), config)
        vec = analyse_inverse_mapping(
            image, config, grid=(6, 8), jitter_samples=2, vec=True
        )
        profile = [
            p for p in vec.radial_profile(config, bins=6) if not np.isnan(p)
        ]
        # Border pixels must be more coordinate-sensitive than the centre.
        assert profile[-1] > profile[0]
