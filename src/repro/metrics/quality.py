"""Output-quality metrics used by the evaluation (Section 4.3).

Sobel / DCT / Fisheye report **PSNR** with respect to the fully accurate
execution (higher is better, logarithmic); N-Body / BlackScholes report
**relative error** (lower is better).  All metrics accept NumPy arrays or
nested sequences.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "mse",
    "rmse",
    "psnr",
    "mean_absolute_error",
    "relative_error",
    "max_relative_error",
    "aggregate_relative_error",
]

_ArrayLike = Sequence | np.ndarray


def _pair(reference: _ArrayLike, test: _ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    if ref.size == 0:
        raise ValueError("cannot score empty arrays")
    return ref, tst


def mse(reference: _ArrayLike, test: _ArrayLike) -> float:
    """Mean squared error."""
    ref, tst = _pair(reference, test)
    return float(np.mean((ref - tst) ** 2))


def rmse(reference: _ArrayLike, test: _ArrayLike) -> float:
    """Root mean squared error."""
    return math.sqrt(mse(reference, test))


def psnr(reference: _ArrayLike, test: _ArrayLike, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical inputs.

    The paper computes PSNR of the approximate output against the fully
    accurate execution, with 8-bit image peak 255.
    """
    err = mse(reference, test)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / err)


def mean_absolute_error(reference: _ArrayLike, test: _ArrayLike) -> float:
    """Mean absolute error."""
    ref, tst = _pair(reference, test)
    return float(np.mean(np.abs(ref - tst)))


def relative_error(
    reference: _ArrayLike, test: _ArrayLike, epsilon: float = 1e-12
) -> float:
    """Mean relative error ``|test - ref| / max(|ref|, epsilon)``.

    ``epsilon`` guards elements whose reference value is (near) zero.
    Reported as a fraction (multiply by 100 for the paper's percent axis).
    """
    ref, tst = _pair(reference, test)
    denom = np.maximum(np.abs(ref), epsilon)
    return float(np.mean(np.abs(tst - ref) / denom))


def aggregate_relative_error(reference: _ArrayLike, test: _ArrayLike) -> float:
    """Aggregate relative error ``Σ|test - ref| / Σ|ref|``.

    Stable when individual reference elements are near zero (deep
    out-of-the-money option prices, coordinates at the origin) — the
    per-element ratio would explode there without carrying information.
    Used as the paper-style "relative error" for N-Body and BlackScholes.
    """
    ref, tst = _pair(reference, test)
    denom = float(np.sum(np.abs(ref)))
    if denom == 0.0:
        return 0.0 if float(np.sum(np.abs(tst))) == 0.0 else math.inf
    return float(np.sum(np.abs(tst - ref)) / denom)


def max_relative_error(
    reference: _ArrayLike, test: _ArrayLike, epsilon: float = 1e-12
) -> float:
    """Worst-case relative error over all elements."""
    ref, tst = _pair(reference, test)
    denom = np.maximum(np.abs(ref), epsilon)
    return float(np.max(np.abs(tst - ref) / denom))
