"""Significance analysis of BlackScholes (Section 4.1.5).

"Significance analysis indicates that the computation of a stock price
can be broken down to 4 blocks of code A, B, C, D, with
sig(A) > sig(B) ≫ sig(C) > sig(D)."

We register the five option parameters as inputs over realistic market
ranges, tag the four blocks as intermediates and analyse against the call
price.  The analysis is repeated over sampled options and the block
significances averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scorpio import Analysis

from .data import Portfolio, make_portfolio
from .sequential import black_scholes_blocks

__all__ = [
    "BlackScholesAnalysis",
    "analyse_option",
    "analyse_portfolio_vec",
    "analyse_blackscholes",
]

_BLOCKS = ("A", "B", "C", "D")


@dataclass
class BlackScholesAnalysis:
    """Mean per-block significances, max-normalised."""

    block_significance: dict[str, float]
    per_option: list[dict[str, float]]
    samples: int

    def ranking(self) -> list[str]:
        """Block letters, most significant first."""
        return sorted(
            self.block_significance,
            key=lambda k: self.block_significance[k],
            reverse=True,
        )


def analyse_option(
    spot: float,
    strike: float,
    rate: float,
    volatility: float,
    expiry: float,
    relative_uncertainty: float = 0.02,
    compiled: bool = False,
) -> dict[str, float]:
    """Block significances for one option (±2% parameter uncertainty)."""
    an = Analysis()
    with an:
        s = an.input(spot, width=2 * relative_uncertainty * spot, name="S")
        k = an.input(strike, width=2 * relative_uncertainty * strike, name="K")
        r = an.input(rate, width=2 * relative_uncertainty * rate, name="r")
        v = an.input(
            volatility, width=2 * relative_uncertainty * volatility, name="v"
        )
        t = an.input(expiry, width=2 * relative_uncertainty * expiry, name="T")
        blocks = black_scholes_blocks(s, k, r, v, t)
        for name in _BLOCKS:
            an.intermediate(blocks[name], name)
        an.output(blocks["call"], name="price")
    sigs = an.analyse(
        simplify=False, compiled=compiled
    ).labelled_significances()
    return {name: sigs[name] for name in _BLOCKS}


def analyse_portfolio_vec(
    spots: np.ndarray,
    strikes: np.ndarray,
    rates: np.ndarray,
    volatilities: np.ndarray,
    expiries: np.ndarray,
    relative_uncertainty: float = 0.02,
):
    """Batched block analysis: every option is one lane of a single tape.

    Records the BlackScholes DynDFG *once* with array-valued nodes and runs
    one lane-parallel reverse sweep, returning a
    :class:`repro.vec.VecSignificanceReport` whose labelled significances
    are per-option arrays.  The kernel source is the same
    :func:`black_scholes_blocks` the scalar analysis uses — only the
    overloaded type changes.
    """
    from repro.vec import IntervalArray, VAnalysis

    spots = np.asarray(spots, dtype=np.float64)
    va = VAnalysis(lane_shape=spots.shape)
    with va:
        s = va.input(
            IntervalArray.centered(spots, relative_uncertainty * spots),
            name="S",
        )
        k = va.input(
            IntervalArray.centered(
                strikes, relative_uncertainty * np.asarray(strikes)
            ),
            name="K",
        )
        r = va.input(
            IntervalArray.centered(
                rates, relative_uncertainty * np.asarray(rates)
            ),
            name="r",
        )
        v = va.input(
            IntervalArray.centered(
                volatilities, relative_uncertainty * np.asarray(volatilities)
            ),
            name="v",
        )
        t = va.input(
            IntervalArray.centered(
                expiries, relative_uncertainty * np.asarray(expiries)
            ),
            name="T",
        )
        blocks = black_scholes_blocks(s, k, r, v, t)
        for name in _BLOCKS:
            va.intermediate(blocks[name], name)
        va.output(blocks["call"], name="price")
    return va.analyse()


def analyse_blackscholes(
    portfolio: Portfolio | None = None,
    samples: int = 24,
    seed: int = 5,
    vec: bool = False,
) -> BlackScholesAnalysis:
    """Averaged block significances over sampled options.

    With ``vec=True`` the sampled options are analysed as lanes of one
    batched tape (one reverse sweep total) instead of one scalar tape per
    option; the same options are drawn either way, so the resulting block
    ranking matches.
    """
    if portfolio is None:
        portfolio = make_portfolio(count=max(samples, 64), seed=seed)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        portfolio.count, size=min(samples, portfolio.count), replace=False
    )
    per_option: list[dict[str, float]] = []
    if vec:
        vreport = analyse_portfolio_vec(
            portfolio.spots[chosen],
            portfolio.strikes[chosen],
            portfolio.rates[chosen],
            portfolio.volatilities[chosen],
            portfolio.expiries[chosen],
        )
        lanes = vreport.labelled_significances()
        per_option = [
            {name: float(lanes[name][j]) for name in _BLOCKS}
            for j in range(len(chosen))
        ]
    else:
        for i in chosen:
            per_option.append(
                analyse_option(
                    float(portfolio.spots[i]),
                    float(portfolio.strikes[i]),
                    float(portfolio.rates[i]),
                    float(portfolio.volatilities[i]),
                    float(portfolio.expiries[i]),
                )
            )
    mean = {
        name: float(np.mean([p[name] for p in per_option])) for name in _BLOCKS
    }
    peak = max(mean.values())
    if peak > 0:
        mean = {k: v / peak for k, v in mean.items()}
    return BlackScholesAnalysis(
        block_significance=mean, per_option=per_option, samples=len(per_option)
    )
