"""Replay byte-identity on the five paper kernels.

The trace cache's bit-identity contract, checked end to end on real
kernel traces: for DCT, Sobel, BlackScholes, fisheye BicubicInterp and
N-Body, a report served by replaying a cached trace on fresh inputs must
serialize byte-for-byte equal to recording the kernel on those inputs.
``validate=True`` makes the cache additionally re-record one replayed
sample per trace and compare op-sequence hash and values bitwise, so the
straight-line assumption itself is asserted for every kernel here.
"""

import numpy as np
import pytest

from repro.intervals import Interval
from repro.scorpio import Analysis, TraceCache
from repro.scorpio.serialize import report_to_json


def _assert_replay_identity(recorder, inputs_list, simplify=False):
    """Record on the first input set, replay the rest, compare reports."""
    cache = TraceCache(validate=True)
    for ivs in inputs_list:
        rep = cache.analyse(("k",), recorder, ivs, simplify=simplify)
        ref = recorder(ivs).analyse(simplify=simplify, compiled=True)
        assert report_to_json(rep) == report_to_json(ref)
    stats = cache.stats()
    assert stats["records"] == 1 and stats["divergences"] == 0
    assert stats["replays"] == len(inputs_list) - 1


def test_dct_block():
    from repro.kernels.dct.analysis import _record_dct_block

    rng = np.random.default_rng(21)
    _assert_replay_identity(
        _record_dct_block,
        [
            [
                Interval.centered(float(v), 0.5)
                for v in rng.uniform(0.0, 255.0, 64)
            ]
            for _ in range(3)
        ],
    )


def test_sobel_pixel():
    from repro.kernels.sobel.analysis import _record_sobel_pixel

    rng = np.random.default_rng(22)
    _assert_replay_identity(
        _record_sobel_pixel,
        [
            [
                Interval.centered(float(v), 0.5)
                for v in rng.uniform(0.0, 255.0, 9)
            ]
            for _ in range(3)
        ],
    )


def test_blackscholes_option():
    from repro.kernels.blackscholes.analysis import _record_option

    rng = np.random.default_rng(23)

    def option():
        s = rng.uniform(20.0, 120.0)
        k = s * rng.uniform(0.8, 1.2)
        params = (s, k, rng.uniform(0.01, 0.06), rng.uniform(0.1, 0.5),
                  rng.uniform(0.25, 2.0))
        return [Interval.centered(p, 0.02 * p) for p in params]

    _assert_replay_identity(_record_option, [option() for _ in range(3)])


def test_fisheye_bicubic_window():
    from repro.kernels.fisheye.bicubic import bicubic_interp

    rng = np.random.default_rng(24)
    window = rng.uniform(0.0, 255.0, (4, 4))
    window = (window - window.mean()).tolist()

    def record_window(ivs):
        an = Analysis()
        with an:
            tx = an.input(ivs[0], name="x_frac")
            ty = an.input(ivs[1], name="y_frac")
            an.output(bicubic_interp(window, tx, ty), name="pixel")
        return an

    _assert_replay_identity(
        record_window,
        [
            [
                Interval.centered(float(f), 0.5)
                for f in rng.uniform(0.0, 1.0, 2)
            ]
            for _ in range(3)
        ],
    )


def test_nbody_force():
    from repro.kernels.nbody.simulation import lj_pair_force

    def record_force(ivs):
        an = Analysis()
        with an:
            coords = [
                an.input(iv, name=f"c{i}") for i, iv in enumerate(ivs)
            ]
            fx = fy = fz = None
            for a in range(len(coords) // 3):
                sx, sy, sz = coords[3 * a : 3 * a + 3]
                dfx, dfy, dfz = lj_pair_force(0.0 - sx, 0.0 - sy, 0.0 - sz)
                fx = dfx if fx is None else fx + dfx
                fy = dfy if fy is None else fy + dfy
                fz = dfz if fz is None else fz + dfz
            an.output(fx, name="fx")
            an.output(fy, name="fy")
            an.output(fz, name="fz")
        return an

    rng = np.random.default_rng(25)

    def atoms():
        # Two source atoms well away from the origin so the interval
        # distances stay clear of the LJ singularity.
        pos = rng.uniform(1.2, 2.5, 6) * np.sign(rng.uniform(-1, 1, 6))
        return [Interval.centered(float(p), 0.02) for p in pos]

    _assert_replay_identity(record_force, [atoms() for _ in range(3)])
