"""The paper's running examples, end to end (Listings 1-6, Figures 1 & 3)."""

import math

import pytest

from repro.ad import ADouble, Tape
from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.kernels.maclaurin import analyse_maclaurin
from repro.scorpio import Analysis


class TestListing1Example:
    """f(x) = cos(exp(sin(x) + x) - x): tape structure and significances."""

    def _run(self, iv=Interval(0.2, 0.4)):
        an = Analysis()
        with an:
            x = an.input(iv, name="x0")
            u1 = op.sin(x)
            an.intermediate(u1, "u1")
            u2 = u1 + x
            an.intermediate(u2, "u2")
            u3 = op.exp(u2)
            an.intermediate(u3, "u3")
            u4 = u3 - x
            an.intermediate(u4, "u4")
            u5 = op.cos(u4)
            an.output(u5, name="y")
        return an.analyse()

    def test_elementary_sequence_matches_listing2(self):
        report = self._run()
        ops = [n.op for n in report.raw_graph]
        assert ops == ["input", "sin", "add", "exp", "sub", "cos"]

    def test_all_variables_scored(self):
        report = self._run()
        sigs = report.labelled_significances()
        assert set(sigs) == {"x0", "u1", "u2", "u3", "u4"}
        assert all(v >= 0 for v in sigs.values())

    def test_adjoints_available_for_all_nodes(self):
        report = self._run()
        for node in report.raw_graph:
            assert node.adjoint is not None

    def test_input_adjoint_encloses_true_derivative(self):
        report = self._run()
        x_node = report.raw_graph.labelled("x0")[0]
        for x in (0.2, 0.3, 0.4):
            inner = math.exp(math.sin(x) + x) - x
            true = -math.sin(inner) * (
                math.exp(math.sin(x) + x) * (math.cos(x) + 1.0) - 1.0
            )
            assert x_node.adjoint.contains(true)

    def test_degenerate_input_zero_significance(self):
        report = self._run(Interval(0.3, 0.3))
        sigs = report.labelled_significances()
        # No input variation -> no significance anywhere (up to rounding).
        assert all(v < 1e-9 for v in sigs.values())


class TestFigure3Maclaurin:
    def test_term0_insignificant(self):
        result = analyse_maclaurin()
        assert result.normalised["term0"] == pytest.approx(0.0, abs=1e-9)

    def test_term1_most_significant(self):
        result = analyse_maclaurin()
        terms = {k: v for k, v in result.normalised.items() if k != "term0"}
        assert max(terms, key=terms.get) == "term1"

    def test_monotone_decay(self):
        result = analyse_maclaurin(n=6)
        values = [result.normalised[f"term{i}"] for i in range(1, 6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_matches_paper_values(self):
        # Paper Figure 3b: 0.259 / 0.254 / 0.245 / 0.241 for terms 1-4.
        result = analyse_maclaurin(x_hat=0.49, n=5)
        paper = {"term1": 0.259, "term2": 0.254, "term3": 0.245, "term4": 0.241}
        for term, expected in paper.items():
            assert result.normalised[term] == pytest.approx(expected, abs=0.012)

    def test_variance_found_at_level_one(self):
        result = analyse_maclaurin()
        assert result.partition_level == 1

    def test_simplified_graph_has_terms_on_one_level(self):
        result = analyse_maclaurin()
        graph = result.report.simplified_graph
        term_levels = {
            n.level
            for n in graph
            if n.label is not None and n.label.startswith("term")
        }
        assert term_levels == {1}
