"""The serve process backend: byte-identity and /healthz exposure."""

import pytest

from repro.serve import ServiceConfig, ServiceThread


class TestServeProcessBackend:
    @pytest.fixture(scope="class")
    def service(self):
        config = ServiceConfig(port=0, executor="process", workers=2)
        with ServiceThread(config=config) as thread:
            yield thread

    def test_healthz_reports_backend(self, service):
        health = service.client().healthz()
        assert health["executor"] == "process"
        assert health["workers"] == 2

    def test_responses_byte_identical_to_thread_backend(self, service):
        with ServiceThread(config=ServiceConfig(port=0)) as reference:
            ref_body, _ = reference.client().analyse_raw("blackscholes")
        client = service.client()
        first, _ = client.analyse_raw("blackscholes")
        second, _ = client.analyse_raw("blackscholes")
        assert first == ref_body
        assert second == ref_body

    def test_custom_inputs_round_trip(self, service):
        inputs = [[99.0, 101.0], [104.0, 106.0], 0.03, 0.25, 1.0]
        report = service.client().analyse("blackscholes", inputs)
        assert "graph" in report and "labelled_significances" in report


class TestServeConfigValidation:
    def test_unknown_backend_rejected(self):
        from repro.serve.app import SignificanceService

        with pytest.raises(ValueError, match="executor"):
            SignificanceService(config=ServiceConfig(executor="fibers"))

    def test_custom_registry_needs_thread_backend(self):
        from repro.serve.app import SignificanceService
        from repro.serve.kernels import default_registry

        with pytest.raises(ValueError, match="default registry"):
            SignificanceService(
                registry=default_registry(),
                config=ServiceConfig(executor="process"),
            )

    def test_thread_default_unchanged(self):
        with ServiceThread() as thread:
            health = thread.client().healthz()
            assert health["executor"] == "thread"
