"""Service throughput/latency: warm-cache ``POST /analyse`` under load.

Starts the significance service in-process (:class:`ServiceThread`), warms
one kernel trace, then drives it with several concurrent stdlib clients —
the deployment shape the serving layer is built for: record once, then
absorb a stream of identical-shape requests as vectorized replays off the
event loop.  Records the headline ``service.req_per_sec`` and
``service.p99_ms`` to ``BENCH_core.json`` via :mod:`record`.
"""

import threading
import time

import numpy as np
from record import record_value

from repro.serve import ServiceThread

KERNEL = "sobel"
CLIENTS = 4
REQUESTS_PER_CLIENT = 25


def _drive(service, n_clients: int, per_client: int):
    """Concurrent warm-path requests; returns per-request seconds."""
    barrier = threading.Barrier(n_clients)
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker() -> None:
        try:
            with service.client() as client:
                barrier.wait()
                local = []
                for _ in range(per_client):
                    t0 = time.perf_counter()
                    client.analyse_raw(KERNEL)
                    local.append(time.perf_counter() - t0)
            with lock:
                latencies.extend(local)
        except BaseException as exc:
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return wall, latencies


def test_service_throughput(benchmark):
    """Warm /analyse sustains a multi-client request stream from replays."""
    with ServiceThread() as service:
        # Warm: the first request records the trace; everything after is
        # a cached replay (the steady state being measured).
        with service.client() as client:
            _, outcome = client.analyse_raw(KERNEL)
            assert outcome == "record"
            _, outcome = client.analyse_raw(KERNEL)
            assert outcome == "replay"

        wall, latencies = _drive(service, CLIENTS, REQUESTS_PER_CLIENT)

        total = CLIENTS * REQUESTS_PER_CLIENT
        stats = service.service.caches[KERNEL].stats()
        # Everything measured must have come from the cache.
        assert stats["records"] == 1
        assert stats["replays"] >= total
        assert len(latencies) == total

        # One warm request through pytest-benchmark for its own report.
        with service.client() as client:
            benchmark.pedantic(
                client.analyse_raw, args=(KERNEL,), rounds=5, iterations=1
            )

    req_per_sec = total / wall
    p99_ms = float(np.percentile(np.array(latencies), 99.0)) * 1e3
    p50_ms = float(np.percentile(np.array(latencies), 50.0)) * 1e3

    benchmark.extra_info["req_per_sec"] = round(req_per_sec, 1)
    benchmark.extra_info["p50_ms"] = round(p50_ms, 2)
    benchmark.extra_info["p99_ms"] = round(p99_ms, 2)
    record_value(
        "service.req_per_sec",
        req_per_sec,
        unit="req/s",
        clients=CLIENTS,
        requests=total,
        kernel=KERNEL,
    )
    record_value(
        "service.p99_ms",
        p99_ms,
        unit="ms",
        clients=CLIENTS,
        requests=total,
        kernel=KERNEL,
    )

    # Sanity floor, far below any real machine: the service must not be
    # re-recording per request (~100x slower than replay for sobel).
    assert req_per_sec > 5.0, f"only {req_per_sec:.1f} req/s served warm"
