"""Tests for Task and TaskResult."""

import pytest

from repro.runtime import ExecutionMode, Task, TaskResult


class TestValidation:
    def test_significance_bounds(self):
        with pytest.raises(ValueError):
            Task(fn=lambda: None, significance=1.5)
        with pytest.raises(ValueError):
            Task(fn=lambda: None, significance=-0.1)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Task(fn=lambda: None, work=-1.0)
        with pytest.raises(ValueError):
            Task(fn=lambda: None, approx_work=-1.0)

    def test_defaults(self):
        t = Task(fn=lambda: 42)
        assert t.significance == 1.0 and t.label == "default"
        assert t.approx_fn is None


class TestRun:
    def test_accurate_runs_fn(self):
        t = Task(fn=lambda a, b: a + b, args=(1, 2))
        assert t.run(ExecutionMode.ACCURATE) == 3

    def test_kwargs_passed(self):
        t = Task(fn=lambda a, b=0: a + b, args=(1,), kwargs={"b": 5})
        assert t.run(ExecutionMode.ACCURATE) == 6

    def test_approximate_runs_approx_fn(self):
        t = Task(fn=lambda: "slow", approx_fn=lambda: "fast")
        assert t.run(ExecutionMode.APPROXIMATE) == "fast"

    def test_approximate_without_fn_rejected(self):
        t = Task(fn=lambda: None)
        with pytest.raises(ValueError, match="no approximate version"):
            t.run(ExecutionMode.APPROXIMATE)

    def test_dropped_returns_none(self):
        t = Task(fn=lambda: "never")
        assert t.run(ExecutionMode.DROPPED) is None


class TestWork:
    def test_executed_work_per_mode(self):
        t = Task(fn=lambda: None, approx_fn=lambda: None, work=10.0, approx_work=2.0)
        assert t.executed_work(ExecutionMode.ACCURATE) == 10.0
        assert t.executed_work(ExecutionMode.APPROXIMATE) == 2.0
        assert t.executed_work(ExecutionMode.DROPPED) == 0.0


class TestTaskResult:
    def test_was_accurate(self):
        t = Task(fn=lambda: None)
        assert TaskResult(t, ExecutionMode.ACCURATE, None, 0.0).was_accurate
        assert not TaskResult(t, ExecutionMode.DROPPED, None, 0.0).was_accurate
