"""Record-vs-replay benchmarks: the trace cache against re-recording.

The per-item analysis loops (every DCT block, every Sobel window, every
BlackScholes option) re-run identical straight-line traces; the trace
cache records each trace once and replays the rest as vectorized forward
sweeps (:mod:`repro.scorpio.trace_cache`).  These benchmarks time the
replayed path against the object pipeline on the same inputs, assert the
results are bit-identical, and record the headline speedups to
``BENCH_core.json`` via :mod:`record`.
"""

import time

import numpy as np
from record import record_value

from repro.scorpio import TraceCache
from repro.scorpio.serialize import report_to_json

DCT_BLOCKS = 6
BS_OPTIONS = 64
SOBEL_HW = 24


def _timed(fn):
    """(seconds, result) of one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_dct_replay_speedup(benchmark):
    """Replaying the shared DCT trace >= 6x over re-recording per block."""
    from repro.kernels.dct.analysis import analyse_dct_block

    rng = np.random.default_rng(11)
    blocks = [rng.uniform(0.0, 255.0, (8, 8)) for _ in range(DCT_BLOCKS)]

    cache = TraceCache()
    # Record the trace (and warm both paths) outside the measurements.
    analyse_dct_block(blocks[0], cache=cache)
    analyse_dct_block(blocks[0])

    t_obj, obj = _timed(lambda: [analyse_dct_block(b) for b in blocks])
    t_rep = min(
        _timed(lambda: [analyse_dct_block(b, cache=cache) for b in blocks])[0]
        for _ in range(3)
    )
    rep = [analyse_dct_block(b, cache=cache) for b in blocks]

    for m_obj, m_rep in zip(obj, rep):
        assert np.array_equal(m_obj, m_rep)
    assert cache.stats()["divergences"] == 0

    benchmark.pedantic(
        analyse_dct_block,
        args=(blocks[0],),
        kwargs={"cache": cache},
        rounds=3,
        iterations=1,
    )

    speedup = t_obj / t_rep
    benchmark.extra_info["record_seconds"] = round(t_obj, 3)
    benchmark.extra_info["replay_seconds"] = round(t_rep, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "analysis.dct_replay_speedup", speedup, unit="x", blocks=DCT_BLOCKS
    )
    assert speedup >= 6.0, (
        f"DCT replay only {speedup:.1f}x faster "
        f"({t_obj:.3f}s record vs {t_rep:.3f}s replay)"
    )


def test_blackscholes_replay_speedup(benchmark):
    """One lane-replayed sweep across the sampled options vs recording a
    scalar tape per option (the trace is ~40 nodes, so the win comes from
    batching every option into one vectorized forward + adjoint)."""
    from repro.kernels.blackscholes.analysis import analyse_blackscholes

    kwargs = {"samples": BS_OPTIONS, "seed": 2}
    # Warm both paths.
    analyse_blackscholes(replay=True, **kwargs)
    analyse_blackscholes(replay=False, **kwargs)

    t_obj = min(
        _timed(lambda: analyse_blackscholes(replay=False, **kwargs))[0]
        for _ in range(3)
    )
    obj = analyse_blackscholes(replay=False, **kwargs)

    t_rep = min(
        _timed(lambda: analyse_blackscholes(replay=True, **kwargs))[0]
        for _ in range(3)
    )
    rep = analyse_blackscholes(replay=True, **kwargs)

    assert rep.per_option == obj.per_option
    assert rep.block_significance == obj.block_significance

    benchmark.pedantic(
        analyse_blackscholes,
        kwargs={"replay": True, **kwargs},
        rounds=3,
        iterations=1,
    )

    speedup = t_obj / t_rep
    benchmark.extra_info["record_seconds"] = round(t_obj, 3)
    benchmark.extra_info["replay_seconds"] = round(t_rep, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "analysis.blackscholes_replay_speedup",
        speedup,
        unit="x",
        options=BS_OPTIONS,
    )
    assert speedup >= 2.0, (
        f"BlackScholes replay only {speedup:.1f}x faster "
        f"({t_obj:.3f}s record vs {t_rep:.3f}s replay)"
    )


def test_sobel_map_replay_speedup(benchmark):
    """Whole-image maps: one replayed trace vs one recording per pixel.

    The per-pixel scalar loop is the only other path that produces the
    replay's exact bits (the batched vec re-recording agrees to ~1e-9
    relative and is timed alongside for reference).
    """
    from repro.kernels.sobel.analysis import (
        analyse_sobel_map,
        analyse_sobel_pixel,
    )

    rng = np.random.default_rng(5)
    image = rng.uniform(0.0, 255.0, (SOBEL_HW, SOBEL_HW))

    # Warm every path.
    analyse_sobel_map(image[:4, :4], replay=True)
    analyse_sobel_map(image[:4, :4], replay=False)
    analyse_sobel_pixel(image[:3, :3])

    def scalar_maps():
        padded = np.pad(image, 1, mode="edge")
        h, w = image.shape
        maps = {key: np.empty((h, w)) for key in ("A", "B", "C")}
        for y in range(h):
            for x in range(w):
                sigs = analyse_sobel_pixel(padded[y : y + 3, x : x + 3])
                for key in maps:
                    maps[key][y, x] = sigs[key]
        return maps

    t_obj, recorded = _timed(scalar_maps)
    t_rep = min(
        _timed(lambda: analyse_sobel_map(image, replay=True))[0]
        for _ in range(3)
    )
    replayed = analyse_sobel_map(image, replay=True)
    t_vec, vec_maps = _timed(lambda: analyse_sobel_map(image, replay=False))

    for key in ("A", "B", "C"):
        assert recorded[key].tobytes() == replayed[key].tobytes()
        assert np.allclose(vec_maps[key], replayed[key], rtol=1e-9)

    benchmark.pedantic(
        analyse_sobel_map,
        args=(image,),
        kwargs={"replay": True},
        rounds=3,
        iterations=1,
    )

    speedup = t_obj / t_rep
    benchmark.extra_info["scalar_record_seconds"] = round(t_obj, 3)
    benchmark.extra_info["replay_seconds"] = round(t_rep, 3)
    benchmark.extra_info["vec_record_seconds"] = round(t_vec, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    record_value(
        "analysis.sobel_map_replay_speedup",
        speedup,
        unit="x",
        pixels=SOBEL_HW * SOBEL_HW,
    )
    assert speedup >= 20.0, (
        f"sobel map replay only {speedup:.1f}x faster "
        f"({t_obj:.3f}s scalar record vs {t_rep:.3f}s replay)"
    )


def test_replay_report_byte_identity():
    """Replayed kernel reports serialize byte-for-byte like recorded ones.

    Not a timing benchmark — the acceptance gate for the replay engine on
    real kernel traces, kept next to the speedup numbers it justifies.
    """
    from repro.kernels.dct.analysis import _record_dct_block
    from repro.intervals import Interval

    rng = np.random.default_rng(3)
    cache = TraceCache(validate=True)
    for _ in range(3):
        block = rng.uniform(0.0, 255.0, (8, 8))
        ivs = [Interval.centered(float(v), 0.5) for v in block.ravel()]
        rep = cache.analyse(("dct",), _record_dct_block, ivs, simplify=False)
        ref = _record_dct_block(ivs).analyse(simplify=False, compiled=True)
        assert report_to_json(rep) == report_to_json(ref)
