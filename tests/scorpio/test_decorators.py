"""Tests for the @significance decorator API."""

import pytest

from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.scorpio.decorators import AnalysedFunction, significance


@significance(x=(0.0, 1.0), y=Interval(2.0, 3.0))
def model(x, y):
    return op.exp(x) * y


class TestDecorator:
    def test_still_callable(self):
        import math

        assert model(0.0, 2.0) == pytest.approx(2.0)
        assert model(1.0, 2.0) == pytest.approx(2.0 * math.e)

    def test_wrapped_metadata(self):
        assert model.__name__ == "model"

    def test_analyse_returns_report(self):
        report = model.analyse()
        sigs = report.input_significances()
        assert set(sigs) == {"x", "y"}
        assert sigs["x"] > 0 and sigs["y"] > 0

    def test_analysis_cached(self):
        assert model.analyse() is model.analyse()

    def test_reanalyse_after_range_change(self):
        @significance(a=(0.0, 1.0), b=(0.0, 1.0))
        def weighted(a, b):
            return 5.0 * a + b

        first = weighted.analyse()
        weighted.ranges["b"] = Interval(0.0, 100.0)
        second = weighted.reanalyse()
        assert second is not first
        assert second.input_significances()["b"] > first.input_significances()["b"]

    def test_ranking_helper(self):
        @significance(a=(0.0, 1.0), b=(0.0, 1.0))
        def weighted(a, b):
            return 5.0 * a + b

        ranking = weighted.ranking()
        assert ranking[0][0] == "a"

    def test_report_text(self):
        assert "significance analysis report" in model.report_text()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError, match="unknown parameter"):

            @significance(x=(0, 1), z=(0, 1))
            def f(x):
                return x

    def test_missing_parameter_rejected(self):
        with pytest.raises(TypeError, match="missing range"):

            @significance(x=(0, 1))
            def f(x, y):
                return x + y

    def test_bare_decorator_rejected(self):
        with pytest.raises(TypeError, match="keyword"):
            significance(lambda x: x)

    def test_type(self):
        assert isinstance(model, AnalysedFunction)
