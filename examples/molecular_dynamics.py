#!/usr/bin/env python
"""Approximate molecular dynamics: energy-aware Lennard-Jones simulation.

The paper's N-Body scenario end to end:

1. significance analysis confirms that an atom's influence decays with
   distance (rank correlation ≈ -1);
2. the region-decomposed task simulation runs at several accuracy ratios,
   comparing trajectory error and energy against loop perforation;
3. physics sanity: total energy drift of the approximate runs stays
   bounded.

Run:  python examples/molecular_dynamics.py [--side 7] [--steps 4]
"""

import argparse

import numpy as np

from repro.kernels.nbody import (
    analyse_nbody,
    lattice_system,
    nbody_perforated,
    nbody_significance,
    potential_energy,
    simulate_reference,
)
from repro.metrics import aggregate_relative_error


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=7)
    parser.add_argument("--steps", type=int, default=4)
    args = parser.parse_args()

    # Stage 1: analysis on a small configuration.
    small = lattice_system(side=3, seed=1)
    analysis = analyse_nbody(small.positions, target=13)  # centre atom
    print(
        "significance vs distance rank correlation: "
        f"{analysis.distance_rank_correlation:+.3f} (paper: strongly negative)"
    )

    # Stage 2: ratio sweep.
    system = lattice_system(side=args.side)
    reference = simulate_reference(system, steps=args.steps)
    e0 = potential_energy(system.positions)
    print(f"\n{args.side ** 3} atoms, {args.steps} steps; initial PE {e0:.1f} ε")
    print(
        f"{'ratio':>6} | {'sig rel.err':>12} {'sig energy':>11} | "
        f"{'perf rel.err':>12} {'perf energy':>11}"
    )
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        sig_run, sig_state = nbody_significance(system, ratio, steps=args.steps)
        perf_run, _ = nbody_perforated(system, ratio, steps=args.steps)
        sig_err = aggregate_relative_error(reference.positions, sig_run.output)
        perf_err = aggregate_relative_error(reference.positions, perf_run.output)
        print(
            f"{ratio:>6.2f} | {sig_err * 100:>11.5f}% {sig_run.joules:>10.1f} J | "
            f"{perf_err * 100:>11.5f}% {perf_run.joules:>10.1f} J"
        )

    # Stage 3: physics sanity at the cheapest setting.
    _, cheap_state = nbody_significance(system, 0.0, steps=args.steps)
    drift = abs(potential_energy(cheap_state.positions) - potential_energy(reference.positions))
    print(
        f"\npotential-energy drift of the fully approximate run vs accurate: "
        f"{drift:.3f} ε ({100 * drift / abs(e0):.4f}% of initial)"
    )


if __name__ == "__main__":
    main()
