"""Trace context (:mod:`repro.obs.context`): ids, headers, propagation."""

import threading

import pytest

from repro.obs import context, trace


@pytest.fixture
def tracing():
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


class TestIds:
    def test_new_trace_shape(self):
        ctx = context.new_trace()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None
        int(ctx.trace_id, 16)  # all hex
        int(ctx.span_id, 16)

    def test_trace_ids_unique(self):
        ids = {context.new_trace().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_child_keeps_trace_and_reparents(self):
        root = context.new_trace()
        child = root.child()
        grand = child.child()
        assert child.trace_id == root.trace_id == grand.trace_id
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert len({root.span_id, child.span_id, grand.span_id}) == 3

    def test_context_is_immutable(self):
        ctx = context.new_trace()
        with pytest.raises(AttributeError):
            ctx.trace_id = "0" * 32


class TestHeader:
    def test_round_trip(self):
        ctx = context.new_trace()
        parsed = context.parse_header(ctx.to_header())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_bare_trace_id_mints_span(self):
        ctx = context.new_trace()
        parsed = context.parse_header(ctx.trace_id)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert len(parsed.span_id) == 16
        assert parsed.span_id != ctx.span_id

    def test_case_and_whitespace_tolerated(self):
        ctx = context.new_trace()
        parsed = context.parse_header(f"  {ctx.to_header().upper()}  ")
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "not-a-trace",
            "zz" * 16,  # right length, not hex
            "ab" * 15,  # short trace id
            "ab" * 17,  # long trace id
            ("ab" * 16) + "-dead",  # short span id
            ("ab" * 16) + "-" + ("zz" * 8),  # non-hex span id
            123,  # not a string at all
        ],
    )
    def test_malformed_returns_none(self, bad):
        assert context.parse_header(bad) is None


class TestPropagation:
    def test_no_context_by_default(self):
        assert context.current() is None

    def test_use_scopes_activation(self):
        ctx = context.new_trace()
        with context.use(ctx) as active:
            assert active is ctx
            assert context.current() is ctx
            inner = ctx.child()
            with context.use(inner):
                assert context.current() is inner
            assert context.current() is ctx
        assert context.current() is None

    def test_use_none_detaches(self):
        ctx = context.new_trace()
        with context.use(ctx):
            with context.use(None):
                assert context.current() is None
            assert context.current() is ctx

    def test_run_with_crosses_threads(self):
        ctx = context.new_trace()
        seen = []

        def worker():
            # A plain thread does not inherit the contextvar...
            seen.append(context.current())
            # ...but run_with carries it explicitly.
            context.run_with(ctx, lambda: seen.append(context.current()))

        t = threading.Thread(target=worker)
        with context.use(ctx):
            t.start()
            t.join()
        assert seen == [None, ctx]

    def test_run_with_none_is_plain_call(self):
        assert context.run_with(None, lambda: 41 + 1) == 42


class TestSpanStamping:
    def test_spans_unstamped_without_context(self, tracing):
        with trace.span("bare") as sp:
            pass
        assert sp.trace_id is None
        assert sp.span_id is None
        assert sp.parent_id is None

    def test_spans_stamp_and_chain_under_context(self, tracing):
        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    pass
        assert outer.trace_id == ctx.trace_id
        assert outer.parent_id == ctx.span_id
        assert inner.trace_id == ctx.trace_id
        # The inner span parents on the outer *span*, not on ctx.
        assert inner.parent_id == outer.span_id

    def test_span_restores_context_on_exit(self, tracing):
        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("op"):
                assert context.current() is not ctx
                assert context.current().trace_id == ctx.trace_id
            assert context.current() is ctx

    def test_manual_span_uses_explicit_context(self, tracing):
        parent = context.new_trace()
        own = parent.child()
        sp = trace.manual_span("async.op", own, lane=3)
        assert sp.trace_id == parent.trace_id
        assert sp.span_id == own.span_id
        assert sp.parent_id == parent.span_id
        assert sp.elapsed_seconds is None
        sp.finish()
        first = sp.elapsed_seconds
        assert first is not None and first >= 0.0
        sp.finish()  # idempotent: a second finish keeps the first timing
        assert sp.elapsed_seconds == first
        assert sp.attrs == {"lane": 3}

    def test_manual_span_disabled_is_null(self):
        assert trace.enabled() is False
        sp = trace.manual_span("nope", context.new_trace())
        assert sp.finish() is sp
        assert sp.trace_id is None
