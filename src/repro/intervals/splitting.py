"""Automatic interval splitting for ambiguous branch conditions.

Section 2.2 of the paper: when a comparison such as ``c < [x]`` is
ambiguous, the analysis terminates and reports the condition; circumventing
this "by an automatic interval splitting approach is part of ongoing
research".  This module implements that ongoing-research feature: it
re-runs an interval computation on recursively bisected sub-boxes until
every branch condition is decidable on each sub-box, then hulls the
partial results.

This turns programs with data-dependent control flow (e.g. the clipping
branch of Sobel) into analysable ones at the cost of multiple profile runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .boxes import Box
from .interval import AmbiguousComparisonError, Interval, as_interval

__all__ = [
    "SplitResult",
    "ReplayEvaluator",
    "split_until_decidable",
    "evaluate_with_splitting",
]


@dataclass
class SplitResult:
    """Outcome of a splitting evaluation.

    Attributes:
        value: hull of the per-sub-box result intervals.
        boxes: the decidable sub-boxes actually evaluated.
        splits: number of bisections performed.
        point_sampled: slivers thinner than the point tolerance whose
            branch condition stayed ambiguous (ties at a comparison
            boundary, e.g. ``x >= 0`` on ``[-ε, 0]``); these were
            evaluated at their midpoint trace — a non-rigorous but
            measure-tiny contribution to ``value``.
        failures: sub-boxes abandoned entirely (ambiguous even as points);
            non-empty means ``value`` under-covers the true range.
        replay_stats: record/replay counters when the evaluation ran
            through a :class:`ReplayEvaluator`, else ``None``.
    """

    value: Interval
    boxes: list[Box] = field(default_factory=list)
    splits: int = 0
    point_sampled: list[Box] = field(default_factory=list)
    failures: list[Box] = field(default_factory=list)
    replay_stats: dict[str, int] | None = None

    @property
    def complete(self) -> bool:
        """True when no sub-box was abandoned."""
        return not self.failures


class ReplayEvaluator:
    """Record ``fn`` once per branch signature, replay it per sub-box.

    A splitting evaluation calls the same expression on hundreds of
    sub-boxes, and on every decidable sub-box the expression runs the same
    straight-line trace for that branch combination.  This wrapper tapes
    ``fn`` (an args-style ``fn(*intervals) -> Interval``) the first time
    each branch signature is seen and afterwards re-evaluates sub-boxes
    with the vectorized forward sweep
    (:meth:`repro.ad.CompiledTape.forward`) — no Python re-execution.

    Semantics are preserved exactly:

    * a replayed value is bit-identical to calling ``fn`` directly (the
      forward sweep reproduces every rounding point of the recording);
    * a sub-box whose recorded comparisons decide *differently* raises
      ``GuardDivergenceError`` internally and falls through to the next
      cached trace, or to a fresh recording of that branch;
    * a sub-box on which a recorded comparison is *ambiguous* propagates
      :class:`AmbiguousComparisonError` — exactly what direct evaluation
      would raise — so :func:`split_until_decidable` bisects as usual;
    * domain errors during replay are treated as divergence (the forward
      sweep runs every op before re-checking the comparisons, so a
      diverged branch can fault on operations direct evaluation never
      reaches); re-recording reproduces genuine errors in program order.

    Instances are ``Box -> Interval`` callables, directly usable as the
    ``fn`` of :func:`split_until_decidable`.
    """

    def __init__(self, fn: Callable[..., Interval], max_traces: int = 32):
        self.fn = fn
        self.max_traces = max_traces
        self._traces: list[tuple] = []  # (CompiledTape, output index)
        self._disabled = False
        self.records = 0
        self.replays = 0
        self.divergences = 0

    def stats(self) -> dict[str, int]:
        return {
            "records": self.records,
            "replays": self.replays,
            "divergences": self.divergences,
            "traces": len(self._traces),
        }

    def __call__(self, box: Box) -> Interval:
        intervals = list(box)
        if self._traces:
            from repro.ad.replay import GuardDivergenceError

            for ct, out_idx in self._traces:
                try:
                    ct.forward(intervals)
                except GuardDivergenceError:
                    self.divergences += 1
                    continue
                except (ValueError, ZeroDivisionError, OverflowError):
                    # Spurious fault on a diverged branch (see class
                    # docstring); a genuine one re-raises from _record.
                    continue
                self.replays += 1
                return Interval(
                    float(ct.value_lo[out_idx]), float(ct.value_hi[out_idx])
                )
        return self._record(intervals)

    def _record(self, intervals: list[Interval]) -> Interval:
        self.records += 1
        if self._disabled:
            return as_interval(self.fn(*intervals))
        from repro.ad.adouble import ADouble
        from repro.ad.compiled import CompiledTape
        from repro.ad.replay import ReplayError
        from repro.ad.tape import Tape

        tape = Tape()
        with tape:
            args = [ADouble.input(iv, tape=tape) for iv in intervals]
            out = self.fn(*args)
        if not isinstance(out, ADouble) or out.tape is not tape:
            # fn ignored the taped arguments; nothing to replay.
            self._disabled = True
            return as_interval(out)
        value = out.value
        try:
            ct = CompiledTape(tape)
            ct._forward_plan()
        except ReplayError:
            self._disabled = True
            return as_interval(value)
        if len(self._traces) < self.max_traces:
            self._traces.append((ct, out.node.index))
        return as_interval(value)


def split_until_decidable(
    fn: Callable[[Box], Interval],
    box: Box,
    max_depth: int = 12,
    point_tolerance: float = 1e-6,
) -> SplitResult:
    """Evaluate ``fn`` over ``box``, bisecting on ambiguous comparisons.

    ``fn`` receives a :class:`Box` and returns an :class:`Interval`; if it
    raises :class:`AmbiguousComparisonError` the box is bisected along its
    widest dimension and both halves are retried, up to ``max_depth``
    levels of recursion per branch of the split tree.

    Bisection alone cannot resolve a condition whose tie point lies *on* a
    sub-box boundary (``x >= 0`` over ``[-ε, 0]`` is ambiguous at every
    depth).  Sub-boxes thinner than ``point_tolerance`` in every dimension
    are therefore evaluated at their midpoint — fixing the control flow
    from a point trace, exactly what a profile run does — and recorded in
    ``point_sampled``.
    """
    result_hull: Interval | None = None
    evaluated: list[Box] = []
    point_sampled: list[Box] = []
    failures: list[Box] = []
    splits = 0

    stack: list[tuple[Box, int]] = [(box, 0)]
    while stack:
        current, depth = stack.pop()
        try:
            value = fn(current)
        except AmbiguousComparisonError:
            if current.max_width <= point_tolerance or depth >= max_depth:
                # Sliver (or depth exhausted): sample the midpoint trace.
                point_box = Box.from_point(current.midpoint)
                try:
                    value = fn(point_box)
                except AmbiguousComparisonError:
                    failures.append(current)
                    continue
                point_sampled.append(current)
                result_hull = (
                    value if result_hull is None else result_hull.hull(value)
                )
                continue
            left, right = current.split()
            splits += 1
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
            continue
        evaluated.append(current)
        result_hull = value if result_hull is None else result_hull.hull(value)

    if result_hull is None:
        raise AmbiguousComparisonError(
            "<unresolved>", Interval.entire(), Interval.entire()
        )
    return SplitResult(
        value=result_hull,
        boxes=evaluated,
        splits=splits,
        point_sampled=point_sampled,
        failures=failures,
    )


def evaluate_with_splitting(
    fn: Callable[..., Interval],
    inputs: Sequence[Interval],
    max_depth: int = 12,
    replay: bool | None = None,
) -> SplitResult:
    """Convenience wrapper: ``fn`` takes one interval per input component.

    ``replay`` (default: the module replay setting,
    :func:`repro.scorpio.trace_cache.replay_enabled`) routes the sub-box
    evaluations through a :class:`ReplayEvaluator` — ``fn`` is recorded
    once per branch signature and every further sub-box of that branch is
    a vectorized forward replay instead of a Python re-execution.  The
    result is identical either way; replay counters land in
    ``SplitResult.replay_stats``.
    """
    from repro.scorpio.trace_cache import replay_enabled

    box = Box(inputs)
    if replay_enabled(replay):
        evaluator = ReplayEvaluator(fn)
        result = split_until_decidable(evaluator, box, max_depth=max_depth)
        result.replay_stats = evaluator.stats()
        return result

    def on_box(b: Box) -> Interval:
        return fn(*list(b))

    return split_until_decidable(on_box, box, max_depth=max_depth)
