"""Tests for the visual artifact exports."""

import numpy as np
import pytest

from repro.experiments.artifacts import (
    heatmap_to_image,
    save_all_artifacts,
    save_figure4,
)
from repro.experiments.figure4 import figure4
from repro.images import read_pgm


class TestHeatmap:
    def test_upsampling(self):
        img = heatmap_to_image(np.array([[0.0, 1.0]]), scale=4)
        assert img.shape == (4, 8)

    def test_range(self):
        img = heatmap_to_image(np.array([[0.0, 0.5, 1.0]]))
        assert img.min() == 0.0 and img.max() == 255.0

    def test_gamma_brightens_low_end(self):
        values = np.array([[0.25, 1.0]])  # peak normalises to 1.0
        linear = heatmap_to_image(values, scale=1, gamma=1.0)
        bright = heatmap_to_image(values, scale=1, gamma=0.5)
        assert bright[0, 0] > linear[0, 0]

    def test_all_zero_map(self):
        img = heatmap_to_image(np.zeros((2, 2)))
        assert np.all(img == 0.0)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            heatmap_to_image(np.zeros((2, 2)), scale=0)


class TestSaving:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4(size=32, samples=2)

    def test_save_figure4(self, tmp_path, fig4):
        path = save_figure4(tmp_path, fig4)
        assert path.exists()
        image = read_pgm(path)
        assert image.shape == (256, 256)  # 8x8 map at scale 32
        # The DC corner block is the brightest region.
        assert image[0, 0] == image.max()

    def test_save_all_creates_directory(self, tmp_path, fig4, monkeypatch):
        # Patch the figure builders so the full-size defaults are not run.
        import repro.experiments.artifacts as artifacts

        monkeypatch.setattr(artifacts, "figure4", lambda: fig4)

        from repro.experiments.figure5 import figure5

        small5 = figure5(width=64, height=48, grid=(4, 5), jitter_samples=2)
        monkeypatch.setattr(artifacts, "figure5", lambda: small5)

        target = tmp_path / "nested" / "dir"
        paths = save_all_artifacts(target)
        assert all(p.exists() for p in paths)
        assert len(paths) == 2
