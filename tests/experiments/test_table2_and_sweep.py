"""Tests for Table 2 (LoC accounting) and the sweep harness plumbing."""

import pytest

from repro.experiments import (
    RATIOS,
    SweepPoint,
    SweepResult,
    count_loc,
    format_table2,
    run_sweep,
    table2,
)
from repro.kernels.common import KernelRun, QUALITY_PSNR
from repro.runtime import EnergyBreakdown


class TestCountLoc:
    def test_counts_statements_not_docstrings(self):
        def sample():
            """Docstring line one.

            More docstring.
            """
            a = 1
            b = 2
            return a + b

        assert count_loc(sample) == 4  # def + 3 statements

    def test_multiline_statement_counts_lines(self):
        def sample():
            return (
                1
                + 2
            )

        assert count_loc(sample) == 5

    def test_comments_not_counted(self):
        def sample():
            # a comment
            # another
            return 1

        assert count_loc(sample) == 2


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2()

    def test_all_benchmarks_present(self, rows):
        names = {r.benchmark for r in rows}
        assert names == {
            "Sobel Filter",
            "DCT",
            "Fisheye",
            "N-Body",
            "BlackScholes",
        }

    def test_parallel_exceeds_sequential(self, rows):
        for row in rows:
            assert row.parallel > row.sequential > 0

    def test_significance_clauses_small(self, rows):
        for row in rows:
            assert 1 <= row.significance <= 40

    def test_dct_approx_is_drop(self, rows):
        dct_row = next(r for r in rows if r.benchmark == "DCT")
        assert dct_row.approx == 0  # paper also reports ~0

    def test_overheads_modest(self, rows):
        for row in rows:
            assert 0.0 <= row.overhead_percent < 40.0

    def test_format(self, rows):
        text = format_table2(rows)
        assert "Overhead" in text and "BlackScholes" in text


class TestRunSweep:
    def _fake(self, ratio):
        return KernelRun(
            output=[ratio],
            energy=EnergyBreakdown(dynamic=ratio * 10),
            ratio=ratio,
            variant="x",
        )

    def test_runs_all_ratios(self):
        result = run_sweep(
            "fake",
            QUALITY_PSNR,
            [1.0],
            self._fake,
            None,
            lambda ref, out: 50.0,
        )
        assert len(result.points) == len(RATIOS)

    def test_psnr_capped(self):
        result = run_sweep(
            "fake",
            QUALITY_PSNR,
            [1.0],
            self._fake,
            None,
            lambda ref, out: float("inf"),
        )
        assert all(p.quality == 99.0 for p in result.points)

    def test_quality_at_unknown_ratio(self):
        result = SweepResult("x", QUALITY_PSNR, [SweepPoint(0.5, "significance", 1, 1)])
        with pytest.raises(KeyError):
            result.quality_at(0.7)

    def test_energy_reduction(self):
        result = SweepResult(
            "x",
            QUALITY_PSNR,
            [
                SweepPoint(0.0, "significance", 1, 25.0),
                SweepPoint(1.0, "significance", 1, 100.0),
            ],
        )
        assert result.energy_reduction == pytest.approx(0.75)
