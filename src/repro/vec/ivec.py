"""NumPy-backed interval arrays — the value algebra of the batched engine.

An :class:`IntervalArray` holds two parallel ``float64`` ndarrays ``lo`` and
``hi``: lane ``i`` represents the closed interval ``[lo[i], hi[i]]``.  All
arithmetic is inclusion isotonic *per lane* and mirrors the scalar
:class:`repro.intervals.Interval` semantics operation for operation, so one
array op stands in for a whole batch of scalar interval ops (the same move a
tensor autograd makes over scalar autograd).

Outward rounding uses ``np.nextafter`` and honours the same process-wide
switch as the scalar layer (:mod:`repro.intervals.rounding`):

* the four IEEE-exact operations (``+ - * /``, plus ``sqrt``) are nudged one
  ULP outward — bit-identical to the scalar path, since NumPy and CPython
  both use correctly-rounded binary64 arithmetic for these;
* transcendental endpoints (``exp``, ``log``, ``sin`` ...) are nudged *two*
  ULPs outward.  libm and NumPy's SIMD loops may legitimately disagree by
  one ULP on these functions; the extra ULP keeps every lane a rigorous
  enclosure of the scalar result regardless of which library computed it.

Comparison semantics follow the paper's Section 2.2 per lane: a relational
operator returns a boolean lane mask when every lane is decidable and raises
:class:`AmbiguousLaneComparisonError` (a subclass of the scalar
:class:`~repro.intervals.AmbiguousComparisonError`) naming the offending
lanes otherwise.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence, Union

import numpy as np

from repro.intervals import rounding as _rnd
from repro.intervals.interval import (
    AmbiguousComparisonError,
    EmptyIntervalError,
    Interval,
)

__all__ = [
    "IntervalArray",
    "AmbiguousLaneComparisonError",
    "as_interval_array",
    # intrinsics (mirroring repro.intervals.functions)
    "sqrt",
    "cbrt",
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "erf",
    "erfc",
    "pow",
    "hypot",
    "floor",
    "ceil",
    "round_st",
    "minimum",
    "maximum",
    "clip",
]

_ArrayLike = Union["IntervalArray", Interval, int, float, np.ndarray]

_INF = np.inf
_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi

try:  # vectorised erf in C when scipy is present (same fallback as kernels)
    from scipy.special import erf as _np_erf
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _np_erf = np.vectorize(math.erf, otypes=[np.float64])
# No scipy for erfc: Cephes' erfc drifts tens of ULPs from libm's (observed
# 64), which no fixed nudge covers honestly.  erfc is not on any hot kernel
# path, so the per-element libm call keeps lanes consistent with the scalar
# engine instead.
_np_erfc = np.vectorize(math.erfc, otypes=[np.float64])


class AmbiguousLaneComparisonError(AmbiguousComparisonError):
    """A lane-wise relational operator was undecidable in >= 1 lane.

    ``lanes`` holds the flat indices of the offending lanes; ``left`` and
    ``right`` are the scalar :class:`Interval` operands of the *first*
    ambiguous lane, so existing tooling written against the scalar error
    (splitting, reporting) keeps working on the batched engine.
    """

    def __init__(self, op: str, lanes: np.ndarray, left: Interval, right: Interval):
        super().__init__(op, left, right)
        self.lanes = lanes
        # Refine the scalar message with the lane context.
        self.args = (
            f"ambiguous interval comparison in {lanes.size} lane(s) "
            f"(first: lane {int(lanes[0])}: {left!r} {op} {right!r}); "
            "the branch condition is not uniquely decidable over the given "
            "input ranges (see paper Section 2.2)",
        )


# ----------------------------------------------------------------------
# Outward rounding (array versions of repro.intervals.rounding)
# ----------------------------------------------------------------------
def _down(values: np.ndarray, ulps: int = 1) -> np.ndarray:
    if not _rnd.rounding_enabled():
        return values
    out = values
    for _ in range(ulps):
        out = np.nextafter(out, -_INF)
    # NaN passes through nextafter unchanged; -inf is already the floor.
    return np.where(np.isneginf(values), values, out)


def _up(values: np.ndarray, ulps: int = 1) -> np.ndarray:
    if not _rnd.rounding_enabled():
        return values
    out = values
    for _ in range(ulps):
        out = np.nextafter(out, _INF)
    return np.where(np.isposinf(values), values, out)


def _outward(lo: np.ndarray, hi: np.ndarray, ulps: int = 1) -> tuple[np.ndarray, np.ndarray]:
    return _down(lo, ulps), _up(hi, ulps)


def _asarray(values: Any) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


class IntervalArray:
    """A lane-parallel array of closed intervals ``[lo[i], hi[i]]``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Any, hi: Any | None = None):
        if hi is None:
            hi = lo
        lo_a, hi_a = np.broadcast_arrays(_asarray(lo), _asarray(hi))
        lo_a = np.array(lo_a, dtype=np.float64)  # own writable copies
        hi_a = np.array(hi_a, dtype=np.float64)
        if np.isnan(lo_a).any() or np.isnan(hi_a).any():
            raise EmptyIntervalError("interval bounds must not be NaN")
        if (lo_a > hi_a).any():
            bad = int(np.argmax(lo_a > hi_a))
            raise EmptyIntervalError(
                f"invalid interval in lane {bad}: lower bound "
                f"{lo_a.flat[bad]} > upper bound {hi_a.flat[bad]}"
            )
        lo_a.flags.writeable = False
        hi_a.flags.writeable = False
        object.__setattr__(self, "lo", lo_a)
        object.__setattr__(self, "hi", hi_a)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalArray is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(cls, lo: np.ndarray, hi: np.ndarray) -> "IntervalArray":
        """Trusted constructor: bounds already validated/ordered."""
        lo.flags.writeable = False
        hi.flags.writeable = False
        out = object.__new__(cls)
        object.__setattr__(out, "lo", lo)
        object.__setattr__(out, "hi", hi)
        return out

    @classmethod
    def point(cls, values: Any) -> "IntervalArray":
        """Degenerate lanes ``[v, v]``."""
        v = _asarray(values)
        return cls(v, v.copy())

    @classmethod
    def centered(cls, mid: Any, radius: Any) -> "IntervalArray":
        """Lanes ``[mid - radius, mid + radius]`` (radius >= 0, broadcast)."""
        mid = _asarray(mid)
        radius = _asarray(radius)
        if (radius < 0).any():
            raise ValueError("radius must be non-negative")
        return cls(mid - radius, mid + radius)

    @classmethod
    def zeros(cls, shape: tuple[int, ...] | int) -> "IntervalArray":
        """All-zero degenerate lanes (the sweep's additive identity)."""
        z = np.zeros(shape, dtype=np.float64)
        return cls._wrap(z, z.copy())

    @classmethod
    def full(cls, shape: tuple[int, ...] | int, interval: Interval | float) -> "IntervalArray":
        """Every lane equal to the given scalar interval."""
        if isinstance(interval, Interval):
            lo, hi = interval.lo, interval.hi
        else:
            lo = hi = float(interval)
        return cls._wrap(
            np.full(shape, lo, dtype=np.float64),
            np.full(shape, hi, dtype=np.float64),
        )

    @classmethod
    def from_intervals(cls, intervals: Sequence[Interval]) -> "IntervalArray":
        """Pack scalar :class:`Interval`s into lanes (the lift direction)."""
        if not len(intervals):
            raise EmptyIntervalError("cannot build an IntervalArray of 0 lanes")
        return cls(
            np.array([iv.lo for iv in intervals], dtype=np.float64),
            np.array([iv.hi for iv in intervals], dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.lo.shape

    @property
    def size(self) -> int:
        return self.lo.size

    def __len__(self) -> int:
        if self.lo.ndim == 0:
            raise TypeError("len() of a 0-d IntervalArray")
        return self.lo.shape[0]

    @property
    def width(self) -> np.ndarray:
        """Per-lane width ``w([a,b]) = b - a`` (the influence measure)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> np.ndarray:
        """Per-lane midpoint, written to avoid overflow of ``lo + hi``."""
        return self.lo + 0.5 * (self.hi - self.lo)

    @property
    def radius(self) -> np.ndarray:
        return 0.5 * self.width

    @property
    def mag(self) -> np.ndarray:
        """Per-lane magnitude ``max{|x| : x in lane}``."""
        return np.maximum(np.abs(self.lo), np.abs(self.hi))

    @property
    def mig(self) -> np.ndarray:
        """Per-lane mignitude (0 where the lane spans 0)."""
        spans = (self.lo <= 0.0) & (0.0 <= self.hi)
        return np.where(spans, 0.0, np.minimum(np.abs(self.lo), np.abs(self.hi)))

    def lane(self, index: int | tuple[int, ...]) -> Interval:
        """Lane ``index`` as a scalar :class:`Interval` (the lower direction).

        Accepts a flat index or a multi-dimensional lane coordinate.
        """
        if isinstance(index, tuple):
            return Interval(float(self.lo[index]), float(self.hi[index]))
        return Interval(float(self.lo.flat[index]), float(self.hi.flat[index]))

    def reshape(self, shape: tuple[int, ...] | int) -> "IntervalArray":
        """Same lanes, different lane-axis layout."""
        return IntervalArray._wrap(self.lo.reshape(shape), self.hi.reshape(shape))

    def to_intervals(self) -> list[Interval]:
        """All lanes as scalar :class:`Interval`s, flat lane order."""
        return [
            Interval(float(a), float(b))
            for a, b in zip(self.lo.flat, self.hi.flat)
        ]

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.to_intervals())

    def contains(self, values: Any) -> np.ndarray:
        """Per-lane membership mask for scalar values (broadcast)."""
        v = _asarray(values)
        return (self.lo <= v) & (v <= self.hi)

    def encloses(self, other: "IntervalArray") -> np.ndarray:
        """Per-lane mask: lane of ``other`` is a subset of this lane."""
        return (self.lo <= other.lo) & (other.hi <= self.hi)

    def hull(self, other: _ArrayLike) -> "IntervalArray":
        """Per-lane interval union hull."""
        other = as_interval_array(other, self.shape)
        return IntervalArray._wrap(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    # ------------------------------------------------------------------
    # Arithmetic (lane-parallel mirrors of Interval's operations)
    # ------------------------------------------------------------------
    def __neg__(self) -> "IntervalArray":
        return IntervalArray._wrap(-self.hi, -self.lo)

    def __pos__(self) -> "IntervalArray":
        return self

    def __abs__(self) -> "IntervalArray":
        lo = np.where(
            self.lo >= 0, self.lo, np.where(self.hi <= 0, -self.hi, 0.0)
        )
        hi = np.maximum(np.abs(self.lo), np.abs(self.hi))
        return IntervalArray._wrap(lo, hi)

    def __add__(self, other: _ArrayLike) -> "IntervalArray":
        other = as_interval_array(other, self.shape)
        lo, hi = _outward(self.lo + other.lo, self.hi + other.hi)
        return IntervalArray._wrap(lo, hi)

    __radd__ = __add__

    def __sub__(self, other: _ArrayLike) -> "IntervalArray":
        other = as_interval_array(other, self.shape)
        lo, hi = _outward(self.lo - other.hi, self.hi - other.lo)
        return IntervalArray._wrap(lo, hi)

    def __rsub__(self, other: _ArrayLike) -> "IntervalArray":
        return as_interval_array(other, self.shape).__sub__(self)

    def __mul__(self, other: _ArrayLike) -> "IntervalArray":
        if other is self:
            # Same-object square keeps the sign correlation, as the scalar
            # Interval does for `x * x` on identity.
            return self._int_pow(2)
        other = as_interval_array(other, self.shape)
        # Overflow to ±inf is a valid (outward) endpoint, not an error.
        with np.errstate(invalid="ignore", over="ignore"):
            p1 = self.lo * other.lo
            p2 = self.lo * other.hi
            p3 = self.hi * other.lo
            p4 = self.hi * other.hi
        # 0 * inf -> NaN under IEEE; the correct endpoint limit is 0.
        products = np.stack([p1, p2, p3, p4])
        products = np.where(np.isnan(products), 0.0, products)
        lo, hi = _outward(products.min(axis=0), products.max(axis=0))
        return IntervalArray._wrap(lo, hi)

    __rmul__ = __mul__

    def __truediv__(self, other: _ArrayLike) -> "IntervalArray":
        other = as_interval_array(other, self.shape)
        zero_lanes = (other.lo <= 0.0) & (0.0 <= other.hi)
        if zero_lanes.any():
            bad = int(np.argmax(zero_lanes.ravel()))
            raise ZeroDivisionError(
                f"interval division by {other.lane(bad)!r} which contains "
                f"zero (lane {bad})"
            )
        with np.errstate(over="ignore"):
            recip = IntervalArray._wrap(
                _down(1.0 / other.hi), _up(1.0 / other.lo)
            )
        return self * recip

    def __rtruediv__(self, other: _ArrayLike) -> "IntervalArray":
        return as_interval_array(other, self.shape).__truediv__(self)

    def __pow__(self, exponent: Any) -> "IntervalArray":
        if isinstance(exponent, (int, float)) and float(exponent).is_integer():
            return self._int_pow(int(exponent))
        return pow(self, exponent)

    def _int_pow(self, n: int) -> "IntervalArray":
        if n == 0:
            return IntervalArray.full(self.shape, 1.0)
        if n < 0:
            return IntervalArray.full(self.shape, 1.0) / self._int_pow(-n)
        with np.errstate(over="ignore"):
            lo_p = self.lo**n
            hi_p = self.hi**n
        if n % 2 == 1:
            lo, hi = lo_p, hi_p
        else:
            lo = np.where(self.lo >= 0, lo_p, np.where(self.hi <= 0, hi_p, 0.0))
            hi = np.where(
                self.lo >= 0, hi_p, np.where(self.hi <= 0, lo_p, np.maximum(lo_p, hi_p))
            )
        # Two-ULP nudge: C pow() is not guaranteed correctly rounded, and
        # NumPy's power may differ from CPython's ** by one ULP; two ULPs
        # keep every lane enclosing the scalar (one-ULP-widened) result.
        lo, hi = _outward(lo, hi, ulps=2)
        return IntervalArray._wrap(lo, hi)

    # ------------------------------------------------------------------
    # Comparisons (paper Section 2.2 semantics, per lane)
    # ------------------------------------------------------------------
    def _compare(self, other: _ArrayLike, op: str) -> np.ndarray:
        other = as_interval_array(other, self.shape)
        if op == "<":
            true_mask = self.hi < other.lo
            false_mask = self.lo >= other.hi
        elif op == "<=":
            true_mask = self.hi <= other.lo
            false_mask = self.lo > other.hi
        elif op == ">":
            true_mask = self.lo > other.hi
            false_mask = self.hi <= other.lo
        elif op == ">=":
            true_mask = self.lo >= other.hi
            false_mask = self.hi < other.lo
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown comparison {op}")
        ambiguous = ~(true_mask | false_mask)
        if ambiguous.any():
            lanes = np.flatnonzero(ambiguous)
            first = int(lanes[0])
            raise AmbiguousLaneComparisonError(
                op, lanes, self.lane(first), other.lane(first)
            )
        return true_mask

    def __lt__(self, other: _ArrayLike) -> np.ndarray:
        return self._compare(other, "<")

    def __le__(self, other: _ArrayLike) -> np.ndarray:
        return self._compare(other, "<=")

    def __gt__(self, other: _ArrayLike) -> np.ndarray:
        return self._compare(other, ">")

    def __ge__(self, other: _ArrayLike) -> np.ndarray:
        return self._compare(other, ">=")

    def __eq__(self, other: object) -> Any:
        """Per-lane set equality of bounds (not the pointwise relation)."""
        if isinstance(other, IntervalArray):
            return (self.lo == other.lo) & (self.hi == other.hi)
        if isinstance(other, Interval):
            return (self.lo == other.lo) & (self.hi == other.hi)
        return NotImplemented

    def __ne__(self, other: object) -> Any:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return ~result

    __hash__ = None  # type: ignore[assignment]  # mutable ndarray payload

    def certainly_lt(self, other: _ArrayLike) -> np.ndarray:
        other = as_interval_array(other, self.shape)
        return self.hi < other.lo

    def certainly_gt(self, other: _ArrayLike) -> np.ndarray:
        other = as_interval_array(other, self.shape)
        return self.lo > other.hi

    # ------------------------------------------------------------------
    # Conversions / display
    # ------------------------------------------------------------------
    def to_float(self) -> np.ndarray:
        """Per-lane midpoint (``toDouble()`` over the batch)."""
        return self.midpoint

    def __repr__(self) -> str:
        if self.size <= 4:
            lanes = ", ".join(f"[{a:.6g}, {b:.6g}]" for a, b in zip(self.lo.flat, self.hi.flat))
            return f"IntervalArray({lanes})"
        return (
            f"IntervalArray(shape={self.shape}, "
            f"lo[0]={self.lo.flat[0]:.6g}, hi[0]={self.hi.flat[0]:.6g}, ...)"
        )


def as_interval_array(value: _ArrayLike, shape: tuple[int, ...]) -> IntervalArray:
    """Coerce scalars, ndarrays and Intervals to lanes of ``shape``."""
    if isinstance(value, IntervalArray):
        return value
    if isinstance(value, Interval):
        return IntervalArray._wrap(
            np.broadcast_to(np.float64(value.lo), shape),
            np.broadcast_to(np.float64(value.hi), shape),
        )
    if isinstance(value, (int, float, np.floating, np.integer)):
        v = np.broadcast_to(np.float64(value), shape)
        return IntervalArray._wrap(v, v)
    if isinstance(value, np.ndarray):
        v = _asarray(value)
        return IntervalArray._wrap(v, v.copy())
    raise TypeError(f"cannot interpret {value!r} as an IntervalArray")


# ----------------------------------------------------------------------
# Intrinsics (lane-parallel mirrors of repro.intervals.functions)
# ----------------------------------------------------------------------
def _monotone_inc(fn, x: IntervalArray, ulps: int = 2) -> IntervalArray:
    lo, hi = _outward(fn(x.lo), fn(x.hi), ulps=ulps)
    return IntervalArray._wrap(lo, hi)


def _monotone_dec(fn, x: IntervalArray, ulps: int = 2) -> IntervalArray:
    lo, hi = _outward(fn(x.hi), fn(x.lo), ulps=ulps)
    return IntervalArray._wrap(lo, hi)


def _domain_error(name: str, mask: np.ndarray, x: IntervalArray, what: str) -> None:
    mask = np.asarray(mask)
    if mask.any():
        bad = int(np.argmax(mask.ravel()))
        raise ValueError(
            f"{name} domain error in lane {bad}: {x.lane(bad)!r} {what}"
        )


def sqrt(x: IntervalArray) -> IntervalArray:
    """Lane-wise square root (IEEE-exact: one-ULP outward, as scalar)."""
    _domain_error("sqrt", x.lo < 0, x, "extends below zero")
    return _monotone_inc(np.sqrt, x, ulps=1)


def cbrt(x: IntervalArray) -> IntervalArray:
    # np.cbrt strays up to ~3 ULPs from libm's correctly-rounded cbrt.
    return _monotone_inc(np.cbrt, x, ulps=4)


def exp(x: IntervalArray) -> IntervalArray:
    return _monotone_inc(np.exp, x)


def expm1(x: IntervalArray) -> IntervalArray:
    return _monotone_inc(np.expm1, x)


def log(x: IntervalArray) -> IntervalArray:
    _domain_error("log", x.lo <= 0, x, "reaches zero or below")
    return _monotone_inc(np.log, x)


def log1p(x: IntervalArray) -> IntervalArray:
    _domain_error("log1p", x.lo <= -1, x, "reaches -1 or below")
    return _monotone_inc(np.log1p, x)


def log2(x: IntervalArray) -> IntervalArray:
    _domain_error("log2", x.lo <= 0, x, "reaches zero or below")
    return _monotone_inc(np.log2, x)


def log10(x: IntervalArray) -> IntervalArray:
    _domain_error("log10", x.lo <= 0, x, "reaches zero or below")
    return _monotone_inc(np.log10, x)


def _trig_range(x: IntervalArray, fn, crit_offset: float) -> IntervalArray:
    """Per-lane range of sin/cos with enclosed-extremum detection.

    Maxima of ``fn`` sit at ``crit_offset + 2k*pi``, minima half a period
    later — same construction as the scalar ``_trig_range``, vectorised:
    a maximum lies inside a lane iff the smallest such point >= lo is <= hi.
    """
    lo_val = fn(x.lo)
    hi_val = fn(x.hi)
    lo = np.minimum(lo_val, hi_val)
    hi = np.maximum(lo_val, hi_val)
    first_max = crit_offset + _TWO_PI * np.ceil((x.lo - crit_offset) / _TWO_PI)
    has_max = first_max <= x.hi
    min_offset = crit_offset + math.pi
    first_min = min_offset + _TWO_PI * np.ceil((x.lo - min_offset) / _TWO_PI)
    has_min = first_min <= x.hi
    wide = x.width >= _TWO_PI
    hi = np.where(has_max | wide, 1.0, hi)
    lo = np.where(has_min | wide, -1.0, lo)
    # Four ULPs: NumPy's SIMD sin/cos loops are documented to stray a few
    # ULPs from libm on large arguments; significance widths don't care.
    lo, hi = _outward(lo, hi, ulps=4)
    return IntervalArray._wrap(np.maximum(lo, -1.0), np.minimum(hi, 1.0))


def sin(x: IntervalArray) -> IntervalArray:
    return _trig_range(x, np.sin, _HALF_PI)


def cos(x: IntervalArray) -> IntervalArray:
    return _trig_range(x, np.cos, 0.0)


def tan(x: IntervalArray) -> IntervalArray:
    pole = _HALF_PI + math.pi * np.ceil((x.lo - _HALF_PI) / math.pi)
    _domain_error("tan", pole <= x.hi, x, "contains a pole")
    return _monotone_inc(np.tan, x)


def asin(x: IntervalArray) -> IntervalArray:
    _domain_error("asin", (x.lo < -1) | (x.hi > 1), x, "not within [-1, 1]")
    return _monotone_inc(np.arcsin, x)


def acos(x: IntervalArray) -> IntervalArray:
    _domain_error("acos", (x.lo < -1) | (x.hi > 1), x, "not within [-1, 1]")
    return _monotone_dec(np.arccos, x)


def atan(x: IntervalArray) -> IntervalArray:
    return _monotone_inc(np.arctan, x)


def atan2(y: _ArrayLike, x: _ArrayLike) -> IntervalArray:
    """Lane-wise atan2 restricted to ``x > 0`` (as the scalar layer)."""
    if isinstance(y, IntervalArray):
        x = as_interval_array(x, y.shape)
    else:
        assert isinstance(x, IntervalArray)
        y = as_interval_array(y, x.shape)
    _domain_error("atan2", x.lo <= 0, x, "not restricted to x > 0")
    return atan(y / x)


def sinh(x: IntervalArray) -> IntervalArray:
    # np.sinh/np.tanh stray up to 2 ULPs from the correctly-rounded value,
    # the same as the default nudge; 4 ULPs restores the safety margin.
    return _monotone_inc(np.sinh, x, ulps=4)


def cosh(x: IntervalArray) -> IntervalArray:
    vals_lo = np.cosh(x.lo)
    vals_hi = np.cosh(x.hi)
    spans = (x.lo <= 0.0) & (0.0 <= x.hi)
    lo = np.where(spans, 1.0, np.minimum(vals_lo, vals_hi))
    hi = np.maximum(vals_lo, vals_hi)
    lo, hi = _outward(lo, hi, ulps=2)
    return IntervalArray._wrap(np.maximum(lo, 1.0), hi)


def tanh(x: IntervalArray) -> IntervalArray:
    return _monotone_inc(np.tanh, x, ulps=4)  # see sinh


def erf(x: IntervalArray) -> IntervalArray:
    # Cephes (scipy) and libm erf each sit within a few ULPs of the true
    # value; 16 ULPs of slack covers their worst mutual disagreement with a
    # wide margin at ~1e-15 relative cost.
    return _monotone_inc(_np_erf, x, ulps=16)


def erfc(x: IntervalArray) -> IntervalArray:
    return _monotone_dec(_np_erfc, x)


def pow(x: IntervalArray, y: Any) -> IntervalArray:
    """Lane-wise power: sharp integer rule, else ``exp(y * log(x))``."""
    if isinstance(y, (int, float)) and float(y).is_integer():
        return x._int_pow(int(y))
    if isinstance(y, Interval) and y.is_point() and float(y.lo).is_integer():
        return x._int_pow(int(y.lo))
    _domain_error(
        "pow", x.lo <= 0, x, "not strictly positive for a non-integer exponent"
    )
    y = as_interval_array(y, x.shape)
    return exp(y * log(x))


def hypot(x: _ArrayLike, y: _ArrayLike) -> IntervalArray:
    if isinstance(x, IntervalArray):
        y = as_interval_array(y, x.shape)
    else:
        assert isinstance(y, IntervalArray)
        x = as_interval_array(x, y.shape)
    return sqrt(x * x + y * y)


def floor(x: IntervalArray) -> IntervalArray:
    """Exact range enclosure ``[floor(lo), floor(hi)]`` (no rounding)."""
    return IntervalArray._wrap(np.floor(x.lo), np.floor(x.hi))


def ceil(x: IntervalArray) -> IntervalArray:
    return IntervalArray._wrap(np.ceil(x.lo), np.ceil(x.hi))


def round_st(x: IntervalArray) -> IntervalArray:
    """Straight-through rounding enclosure ``[lo - 0.5, hi + 0.5]``."""
    return IntervalArray._wrap(x.lo - 0.5, x.hi + 0.5)


def minimum(x: _ArrayLike, y: _ArrayLike) -> IntervalArray:
    if not isinstance(x, IntervalArray):
        x = as_interval_array(x, y.shape)  # type: ignore[union-attr]
    y = as_interval_array(y, x.shape)
    return IntervalArray._wrap(np.minimum(x.lo, y.lo), np.minimum(x.hi, y.hi))


def maximum(x: _ArrayLike, y: _ArrayLike) -> IntervalArray:
    if not isinstance(x, IntervalArray):
        x = as_interval_array(x, y.shape)  # type: ignore[union-attr]
    y = as_interval_array(y, x.shape)
    return IntervalArray._wrap(np.maximum(x.lo, y.lo), np.maximum(x.hi, y.hi))


def clip(x: IntervalArray, lo: float, hi: float) -> IntervalArray:
    """Exact range of the pointwise clamp, per lane."""
    return IntervalArray._wrap(
        np.clip(x.lo, lo, hi), np.clip(x.hi, lo, hi)
    )
