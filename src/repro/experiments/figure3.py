"""Figure 3: Maclaurin-series DynDFG with significance values.

Regenerates both halves of the figure: (a) the raw DynDFG produced by the
analysis (with the aggregation chain), (b) the simplified graph after S4
with the normalised per-term significances — term0 = 0, term1 highest,
monotone decay (the paper reports 0 / 0.259 / 0.254 / 0.245 / 0.241).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.maclaurin import MaclaurinAnalysis, analyse_maclaurin

__all__ = ["Figure3", "figure3", "main"]


@dataclass
class Figure3:
    """The figure's data plus renderings."""

    analysis: MaclaurinAnalysis
    raw_dot: str
    simplified_dot: str

    def to_text(self) -> str:
        """Table of normalised term significances (Figure 3b labels)."""
        lines = [
            "Figure 3 — Maclaurin series term significances (normalised)",
            f"variance found at level L = {self.analysis.partition_level}",
        ]
        for term in sorted(self.analysis.normalised):
            lines.append(f"  {term}: {self.analysis.normalised[term]:.3f}")
        return "\n".join(lines)


def figure3(x_hat: float = 0.49, n: int = 5) -> Figure3:
    """Run the Figure 3 analysis and build its renderings."""
    analysis = analyse_maclaurin(x_hat=x_hat, n=n)
    return Figure3(
        analysis=analysis,
        raw_dot=analysis.report.raw_graph.to_dot("Figure3a"),
        simplified_dot=analysis.report.simplified_graph.to_dot("Figure3b"),
    )


def main() -> None:
    """Print the Figure 3 table and the simplified DynDFG in DOT."""
    fig = figure3()
    print(fig.to_text())
    print()
    print(fig.simplified_dot)


if __name__ == "__main__":
    main()
