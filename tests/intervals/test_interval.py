"""Tests for the core Interval type."""

import math

import pytest

from repro.intervals import (
    AmbiguousComparisonError,
    EmptyIntervalError,
    Interval,
    as_interval,
)


class TestConstruction:
    def test_two_bounds(self):
        iv = Interval(1.0, 2.0)
        assert iv.lo == 1.0 and iv.hi == 2.0

    def test_single_value_degenerate(self):
        iv = Interval(3.0)
        assert iv.lo == iv.hi == 3.0

    def test_integer_coercion(self):
        iv = Interval(1, 2)
        assert isinstance(iv.lo, float) and isinstance(iv.hi, float)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError, match="lower bound"):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Interval(math.nan, 1.0)

    def test_immutable(self):
        iv = Interval(0.0, 1.0)
        with pytest.raises(AttributeError):
            iv.lo = 5.0

    def test_point_constructor(self):
        assert Interval.point(4.0) == Interval(4.0, 4.0)

    def test_centered(self):
        assert Interval.centered(1.0, 0.5) == Interval(0.5, 1.5)

    def test_centered_negative_radius(self):
        with pytest.raises(ValueError, match="radius"):
            Interval.centered(0.0, -1.0)

    def test_hull_of(self):
        assert Interval.hull_of(3.0, -1.0, 2.0) == Interval(-1.0, 3.0)

    def test_hull_of_empty(self):
        with pytest.raises(EmptyIntervalError):
            Interval.hull_of()

    def test_entire(self):
        iv = Interval.entire()
        assert iv.lo == -math.inf and iv.hi == math.inf

    def test_as_interval_passthrough(self):
        iv = Interval(0, 1)
        assert as_interval(iv) is iv

    def test_as_interval_scalar(self):
        assert as_interval(2.5) == Interval(2.5, 2.5)

    def test_as_interval_rejects_strings(self):
        with pytest.raises(TypeError):
            as_interval("nope")


class TestInspection:
    def test_width(self):
        assert Interval(1.0, 4.0).width == 3.0

    def test_midpoint(self):
        assert Interval(1.0, 3.0).midpoint == 2.0

    def test_midpoint_entire(self):
        assert Interval.entire().midpoint == 0.0

    def test_radius(self):
        assert Interval(1.0, 3.0).radius == 1.0

    def test_mag(self):
        assert Interval(-5.0, 2.0).mag == 5.0

    def test_mig_spanning_zero(self):
        assert Interval(-1.0, 2.0).mig == 0.0

    def test_mig_positive(self):
        assert Interval(2.0, 5.0).mig == 2.0

    def test_is_point(self):
        assert Interval(2.0).is_point()
        assert not Interval(1.0, 2.0).is_point()

    def test_is_finite(self):
        assert Interval(0, 1).is_finite()
        assert not Interval(0, math.inf).is_finite()

    def test_contains_scalar(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.5) and iv.contains(0.0) and iv.contains(1.0)
        assert not iv.contains(1.5)

    def test_contains_interval(self):
        assert Interval(0, 2).contains_interval(Interval(0.5, 1.5))
        assert not Interval(0, 2).contains_interval(Interval(1.5, 2.5))

    def test_strictly_contains(self):
        assert Interval(0, 2).strictly_contains(Interval(0.5, 1.5))
        assert not Interval(0, 2).strictly_contains(Interval(0.0, 1.0))

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_dunder_contains(self):
        assert 0.5 in Interval(0, 1)
        assert Interval(0.2, 0.8) in Interval(0, 1)

    def test_iter_unpacks(self):
        lo, hi = Interval(1.0, 2.0)
        assert (lo, hi) == (1.0, 2.0)


class TestSetOps:
    def test_intersect(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)

    def test_intersect_disjoint(self):
        with pytest.raises(EmptyIntervalError):
            Interval(0, 1).intersect(Interval(2, 3))

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)

    def test_split_midpoint(self):
        left, right = Interval(0.0, 2.0).split()
        assert left == Interval(0.0, 1.0) and right == Interval(1.0, 2.0)

    def test_split_custom_point(self):
        left, right = Interval(0.0, 4.0).split(1.0)
        assert left.hi == 1.0 and right.lo == 1.0

    def test_split_outside_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 1).split(5.0)

    def test_widened(self):
        assert Interval(0, 1).widened(0.5) == Interval(-0.5, 1.5)

    def test_widened_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 1).widened(-0.1)


class TestArithmetic:
    def test_add_contains_exact(self):
        result = Interval(1, 2) + Interval(3, 4)
        assert result.contains(4.0) and result.contains(6.0)

    def test_add_scalar_both_sides(self):
        assert (Interval(0, 1) + 1.0).contains(1.5)
        assert (1.0 + Interval(0, 1)).contains(1.5)

    def test_sub(self):
        result = Interval(1, 2) - Interval(0.5, 1.0)
        assert result.contains(0.0) and result.contains(1.5)

    def test_rsub(self):
        result = 1.0 - Interval(0, 1)
        assert result.contains(0.0) and result.contains(1.0)

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_pos(self):
        iv = Interval(1, 2)
        assert +iv is iv

    def test_mul_sign_cases(self):
        result = Interval(-1, 2) * Interval(-3, 4)
        # Extremes: (-1)*4=-4, 2*(-3)=-6, 2*4=8, (-1)*(-3)=3.
        assert result.contains(-6.0) and result.contains(8.0)

    def test_mul_zero_times_entire(self):
        result = Interval(0.0, 0.0) * Interval.entire()
        assert result.contains(0.0) and result.is_finite()

    def test_self_mul_is_square(self):
        iv = Interval(-1.0, 2.0)
        sq = iv * iv
        assert sq.lo >= -1e-12  # sharp square: no negative part
        assert sq.contains(4.0) and sq.contains(0.0)

    def test_div(self):
        result = Interval(1, 2) / Interval(2, 4)
        assert result.contains(0.25) and result.contains(1.0)

    def test_div_by_zero_spanning(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2) / Interval(-1, 1)

    def test_rdiv(self):
        result = 1.0 / Interval(2, 4)
        assert result.contains(0.25) and result.contains(0.5)

    def test_abs_positive(self):
        assert abs(Interval(1, 2)) == Interval(1, 2)

    def test_abs_negative(self):
        assert abs(Interval(-2, -1)) == Interval(1, 2)

    def test_abs_spanning(self):
        assert abs(Interval(-3, 2)) == Interval(0, 3)


class TestIntPow:
    def test_zero_exponent(self):
        assert Interval(-5, 5) ** 0 == Interval(1, 1)

    def test_odd_preserves_sign(self):
        result = Interval(-2, 3) ** 3
        assert result.contains(-8.0) and result.contains(27.0)

    def test_even_spanning_zero(self):
        result = Interval(-2, 3) ** 2
        assert result.lo >= -1e-12 and result.contains(9.0)

    def test_even_negative_operand(self):
        result = Interval(-3, -2) ** 2
        assert result.contains(4.0) and result.contains(9.0)
        assert result.lo > 0

    def test_negative_exponent(self):
        result = Interval(2, 4) ** -1
        assert result.contains(0.25) and result.contains(0.5)

    def test_negative_exponent_zero_spanning_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Interval(-1, 1) ** -2


class TestComparisons:
    def test_certain_lt(self):
        assert Interval(0, 1) < Interval(2, 3)

    def test_certain_not_lt(self):
        assert not (Interval(2, 3) < Interval(0, 1))

    def test_ambiguous_lt_raises(self):
        with pytest.raises(AmbiguousComparisonError) as exc:
            Interval(0, 2) < Interval(1, 3)
        assert exc.value.op == "<"

    def test_ambiguous_vs_scalar(self):
        with pytest.raises(AmbiguousComparisonError):
            Interval(0, 2) < 1.0

    def test_le_touching(self):
        assert Interval(0, 1) <= Interval(1, 2)

    def test_gt(self):
        assert Interval(5, 6) > Interval(1, 2)

    def test_ge(self):
        assert Interval(2, 3) >= Interval(1, 2)

    def test_certainly_predicates_never_raise(self):
        a, b = Interval(0, 2), Interval(1, 3)
        assert not a.certainly_lt(b)
        assert not a.certainly_gt(b)
        assert a.possibly_lt(b)
        assert a.possibly_gt(b)

    def test_error_carries_operands(self):
        try:
            Interval(0, 2) > Interval(1, 3)
        except AmbiguousComparisonError as e:
            assert e.left == Interval(0, 2)
            assert e.right == Interval(1, 3)
        else:  # pragma: no cover
            pytest.fail("expected ambiguity")


class TestEqualityAndDisplay:
    def test_eq_set_semantics(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert Interval(1, 2) != Interval(1, 3)

    def test_eq_scalar_point_only(self):
        assert Interval(2.0) == 2.0
        assert Interval(1, 3) != 2.0

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(0, 1)}) == 2

    def test_float_conversion_point(self):
        assert float(Interval(2.5)) == 2.5

    def test_float_conversion_wide_rejected(self):
        with pytest.raises(TypeError):
            float(Interval(1, 2))

    def test_to_float_midpoint(self):
        assert Interval(1, 3).to_float() == 2.0

    def test_repr_roundtrip(self):
        iv = Interval(1.25, 2.5)
        assert eval(repr(iv)) == iv

    def test_str_format(self):
        assert str(Interval(1, 2)) == "[1, 2]"
