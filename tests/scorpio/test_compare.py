"""Tests for the significance-regression diff tool."""

import pytest

from repro.kernels.maclaurin import analyse_maclaurin
from repro.scorpio import Analysis, compare_reports
from repro.intervals import Interval


def simple_report(weight_a=3.0, weight_b=1.0, extra=False):
    an = Analysis()
    with an:
        x = an.input(Interval(0, 1), name="x")
        a = an.intermediate(x * weight_a, "a")
        b = an.intermediate(x * weight_b, "b")
        total = a + b
        if extra:
            c = an.intermediate(x * 0.1, "c")
            total = total + c
        an.output(total, name="y")
    return an.analyse()


class TestCompareReports:
    def test_identical_reports(self):
        diff = compare_reports(simple_report(), simple_report())
        assert not diff.ranking_changed
        assert not diff.partition_moved
        assert diff.max_drift() == pytest.approx(0.0, abs=1e-12)
        assert not diff.added_labels and not diff.removed_labels

    def test_ranking_flip_detected(self):
        old = simple_report(weight_a=3.0, weight_b=1.0)
        new = simple_report(weight_a=1.0, weight_b=3.0)
        diff = compare_reports(old, new)
        assert diff.ranking_changed
        assert diff.max_drift() > 0.1

    def test_added_and_removed_labels(self):
        old = simple_report()
        new = simple_report(extra=True)
        diff = compare_reports(old, new)
        assert diff.added_labels == ["c"]
        assert compare_reports(new, old).removed_labels == ["c"]

    def test_drift_signs(self):
        old = simple_report(weight_a=3.0, weight_b=1.0)
        new = simple_report(weight_a=2.0, weight_b=2.0)
        diff = compare_reports(old, new)
        assert diff.drift["a"] < 0 < diff.drift["b"]

    def test_proportional_scaling_is_no_drift(self):
        # Doubling every weight scales all significances equally; the
        # normalised comparison must report (near) zero drift.
        old = simple_report(weight_a=3.0, weight_b=1.0)
        new = simple_report(weight_a=6.0, weight_b=2.0)
        diff = compare_reports(old, new)
        assert diff.max_drift() < 1e-9
        assert not diff.ranking_changed

    def test_maclaurin_stable_across_nearby_ranges(self):
        old = analyse_maclaurin(x_hat=0.49).report
        new = analyse_maclaurin(x_hat=0.47).report
        diff = compare_reports(old, new)
        assert not diff.ranking_changed
        assert diff.max_drift() < 0.05

    def test_partition_move_detected(self):
        old = analyse_maclaurin(delta=1e-4).report
        new = analyse_maclaurin(delta=1e6).report  # variance never found
        diff = compare_reports(old, new)
        assert diff.partition_moved

    def test_to_text(self):
        diff = compare_reports(
            simple_report(), simple_report(weight_a=1.0, weight_b=3.0)
        )
        text = diff.to_text()
        assert "CHANGED" in text and "partition level" in text
