"""Integration tests: the Figure 7 sweeps and the headline energy claim.

These run the full significance-vs-perforation pipeline at reduced
workload sizes (``fast=True``) and assert the *shape* results the paper
reports: quality rises with the accurate ratio, the significance-driven
version beats perforation on quality, perforation is cheaper at equal
ratio, and full-approximation saves substantial energy.
"""

import math

import pytest

from repro.experiments import figure7_all, format_sweep, headline
from repro.experiments.headline import format_headline
from repro.kernels.common import QUALITY_PSNR, QUALITY_REL_ERR


@pytest.fixture(scope="module")
def sweeps():
    return figure7_all(fast=True)


class TestPanels:
    def test_all_five_benchmarks_present(self, sweeps):
        assert set(sweeps) == {"sobel", "dct", "fisheye", "nbody", "blackscholes"}

    def test_quality_kinds(self, sweeps):
        assert sweeps["sobel"].quality_kind == QUALITY_PSNR
        assert sweeps["nbody"].quality_kind == QUALITY_REL_ERR

    @pytest.mark.parametrize("name", ["sobel", "dct", "fisheye"])
    def test_psnr_quality_monotone(self, sweeps, name):
        series = sweeps[name].series("significance")
        values = [p.quality for p in series]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("name", ["nbody", "blackscholes"])
    def test_error_quality_monotone(self, sweeps, name):
        series = sweeps[name].series("significance")
        values = [p.quality for p in series]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("name", ["sobel", "dct", "fisheye", "nbody", "blackscholes"])
    def test_energy_monotone_in_ratio(self, sweeps, name):
        series = sweeps[name].series("significance")
        joules = [p.joules for p in series]
        assert all(a <= b + 1e-9 for a, b in zip(joules, joules[1:]))

    @pytest.mark.parametrize("name", ["sobel", "dct", "fisheye"])
    def test_significance_beats_perforation_on_quality(self, sweeps, name):
        sweep = sweeps[name]
        for ratio in (0.2, 0.5, 0.8):
            assert sweep.quality_at(ratio, "significance") >= sweep.quality_at(
                ratio, "perforation"
            )

    def test_nbody_significance_much_lower_error(self, sweeps):
        sweep = sweeps["nbody"]
        for ratio in (0.0, 0.2, 0.5):
            sig = sweep.quality_at(ratio, "significance")
            perf = sweep.quality_at(ratio, "perforation")
            assert perf > sig

    def test_perforation_cheaper_at_full_ratio(self, sweeps):
        for name in ("sobel", "dct", "fisheye"):
            sweep = sweeps[name]
            assert sweep.energy_at(1.0, "perforation") < sweep.energy_at(
                1.0, "significance"
            )

    def test_blackscholes_has_no_perforation(self, sweeps):
        assert sweeps["blackscholes"].series("perforation") == []

    def test_exact_at_full_ratio(self, sweeps):
        # PSNR capped at 99 = identical; relative error exactly 0.
        for name in ("sobel", "dct", "fisheye"):
            assert sweeps[name].quality_at(1.0) == pytest.approx(99.0)
        for name in ("nbody", "blackscholes"):
            assert sweeps[name].quality_at(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_mean_quality_gap_positive(self, sweeps):
        for name in ("sobel", "dct", "fisheye"):
            gap = sweeps[name].mean_quality_gap()
            assert gap is not None and gap > 0
        assert sweeps["blackscholes"].mean_quality_gap() is None


class TestFormatting:
    def test_format_sweep_contains_rows(self, sweeps):
        text = format_sweep(sweeps["sobel"])
        assert "Sobel" in text
        assert "0.50" in text and "1.00" in text

    def test_format_sweep_relative_error_percent(self, sweeps):
        text = format_sweep(sweeps["nbody"])
        assert "%" in text

    def test_format_na_for_missing_perforation(self, sweeps):
        text = format_sweep(sweeps["blackscholes"])
        assert "n/a" in text


class TestHeadline:
    def test_energy_reductions_substantial(self, sweeps):
        result = headline(sweeps)
        assert 0.10 < result.minimum < result.maximum < 0.98
        assert 0.30 < result.mean < 0.85  # paper: 31%..91%, mean 56%

    def test_per_benchmark_entries(self, sweeps):
        result = headline(sweeps)
        assert set(result.per_benchmark) == set(sweeps)

    def test_format_headline(self, sweeps):
        text = format_headline(headline(sweeps))
        assert "mean" in text and "paper" in text
