"""Interval vectors (boxes) — the paper's ``[x] = [x̲, x̄] ⊂ IR^n``.

A :class:`Box` is an axis-aligned product of intervals.  It is the input
object of a significance analysis run: the user registers each input
variable with its range, and the box records the full input domain (used by
the splitting machinery and the Monte-Carlo cross-check).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from .interval import Interval, as_interval

__all__ = ["Box"]


class Box:
    """An n-dimensional interval vector."""

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[Interval | float]):
        self._components: tuple[Interval, ...] = tuple(
            as_interval(c) for c in components
        )

    @classmethod
    def from_bounds(
        cls, lower: Sequence[float], upper: Sequence[float]
    ) -> "Box":
        """Build a box from parallel lower/upper bound sequences."""
        if len(lower) != len(upper):
            raise ValueError(
                f"bound lengths differ: {len(lower)} vs {len(upper)}"
            )
        return cls(Interval(lo, hi) for lo, hi in zip(lower, upper))

    @classmethod
    def from_point(cls, point: Sequence[float], radius: float = 0.0) -> "Box":
        """Box centred at ``point`` with uniform ``radius`` per component."""
        return cls(Interval.centered(p, radius) for p in point)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of components."""
        return len(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._components)

    def __getitem__(self, index: int) -> Interval:
        return self._components[index]

    @property
    def widths(self) -> tuple[float, ...]:
        """Per-component widths."""
        return tuple(c.width for c in self._components)

    @property
    def max_width(self) -> float:
        """Largest component width (0 for an empty box)."""
        return max(self.widths, default=0.0)

    @property
    def midpoint(self) -> tuple[float, ...]:
        """Component-wise midpoint vector."""
        return tuple(c.midpoint for c in self._components)

    @property
    def volume(self) -> float:
        """Product of widths (0 if any component is degenerate)."""
        return math.prod(self.widths)

    def contains(self, point: Sequence[float]) -> bool:
        """Membership test for a point vector."""
        if len(point) != len(self._components):
            return False
        return all(c.contains(p) for c, p in zip(self._components, point))

    def widest_dimension(self) -> int:
        """Index of the component with the largest width."""
        if not self._components:
            raise ValueError("empty box has no widest dimension")
        return max(range(len(self)), key=lambda i: self._components[i].width)

    def split(self, dimension: int | None = None) -> tuple["Box", "Box"]:
        """Bisect along ``dimension`` (default: the widest one)."""
        if dimension is None:
            dimension = self.widest_dimension()
        left, right = self._components[dimension].split()
        comps = list(self._components)
        comps_l, comps_r = comps.copy(), comps.copy()
        comps_l[dimension] = left
        comps_r[dimension] = right
        return Box(comps_l), Box(comps_r)

    def sample(self, rng, count: int) -> list[tuple[float, ...]]:
        """Draw ``count`` uniform sample points (for Monte-Carlo checks)."""
        return [
            tuple(rng.uniform(c.lo, c.hi) for c in self._components)
            for _ in range(count)
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self._components)
        return f"Box([{inner}])"
