"""Micro-batched /analyse throughput vs the per-request path.

Drives one kernel with 16 concurrent clients against two in-process
servers: one with dynamic micro-batching enabled (the default config)
and one with ``max_batch=1`` (every request pays its own replay sweep).
Under concurrency the coalescer packs companion requests as extra lanes
of one ``forward_lanes`` + lane-batched adjoint sweep, so batched
throughput should scale well past the per-request ceiling.  Records
``service.batched_req_per_sec`` (with the measured speedup as metadata)
to ``BENCH_core.json`` via :mod:`record`.
"""

import threading
import time

from record import record_value

from repro.serve import ServiceConfig, ServiceThread

KERNEL = "blackscholes"
CLIENTS = 16
REQUESTS_PER_CLIENT = 12


def _drive(service, n_clients: int, per_client: int):
    """Concurrent warm-path requests; returns (wall seconds, batch sizes)."""
    barrier = threading.Barrier(n_clients)
    sizes: list[int] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker() -> None:
        try:
            with service.client() as client:
                barrier.wait()
                local = []
                for _ in range(per_client):
                    _, _, (size, _), _ = client.analyse_detail(KERNEL)
                    local.append(size)
            with lock:
                sizes.extend(local)
        except BaseException as exc:
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return wall, sizes


def _throughput(config: ServiceConfig) -> tuple[float, list[int]]:
    with ServiceThread(config=config) as service:
        with service.client() as client:
            _, outcome = client.analyse_raw(KERNEL)
            assert outcome == "record"
            _, outcome = client.analyse_raw(KERNEL)
            assert outcome == "replay"
        wall, sizes = _drive(service, CLIENTS, REQUESTS_PER_CLIENT)
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(sizes) == total
    return total / wall, sizes


def test_batched_throughput(benchmark):
    """Coalesced lane sweeps beat per-request replay under concurrency."""
    batched_rps, sizes = _throughput(ServiceConfig(port=0))
    unbatched_rps, solo_sizes = _throughput(
        ServiceConfig(port=0, max_batch=1)
    )
    assert all(size == 1 for size in solo_sizes)
    assert max(sizes) > 1, "the coalescer never batched anything"
    speedup = batched_rps / unbatched_rps
    mean_batch = sum(sizes) / len(sizes)

    # One batched warm request for pytest-benchmark's own table.
    with ServiceThread(config=ServiceConfig(port=0)) as service:
        with service.client() as client:
            client.analyse_raw(KERNEL)
            benchmark.pedantic(
                client.analyse_raw, args=(KERNEL,), rounds=5, iterations=1
            )

    benchmark.extra_info["batched_req_per_sec"] = round(batched_rps, 1)
    benchmark.extra_info["unbatched_req_per_sec"] = round(unbatched_rps, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mean_batch"] = round(mean_batch, 2)
    record_value(
        "service.batched_req_per_sec",
        batched_rps,
        unit="req/s",
        clients=CLIENTS,
        requests=CLIENTS * REQUESTS_PER_CLIENT,
        kernel=KERNEL,
        unbatched_req_per_sec=round(unbatched_rps, 1),
        speedup=round(speedup, 2),
        mean_batch=round(mean_batch, 2),
    )

    # The acceptance bar: at 16 concurrent clients, coalescing must at
    # least double the per-request path's throughput.
    assert speedup >= 2.0, (
        f"batched {batched_rps:.1f} req/s is only {speedup:.2f}x the "
        f"per-request {unbatched_rps:.1f} req/s"
    )
