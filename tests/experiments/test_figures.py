"""Tests for the figure regenerators (paper-shape assertions)."""

import numpy as np
import pytest

from repro.experiments import figure3, figure4, figure5, figure6


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure3()

    def test_paper_values(self, fig):
        paper = {"term1": 0.259, "term2": 0.254, "term3": 0.245, "term4": 0.241}
        for term, expected in paper.items():
            assert fig.analysis.normalised[term] == pytest.approx(
                expected, abs=0.012
            )

    def test_term0_zero(self, fig):
        assert fig.analysis.normalised["term0"] == pytest.approx(0.0, abs=1e-9)

    def test_dot_renderings(self, fig):
        assert 'digraph "Figure3a"' in fig.raw_dot
        assert 'digraph "Figure3b"' in fig.simplified_dot
        # Simplified graph is strictly smaller (aggregation collapsed).
        assert fig.simplified_dot.count("->") < fig.raw_dot.count("->")

    def test_to_text(self, fig):
        text = fig.to_text()
        assert "term1" in text and "L = 1" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure4(size=48, samples=3)

    def test_dc_corner_peak(self, fig):
        m = fig.significance_map
        assert m[0, 0] == pytest.approx(1.0)
        assert m[0, 0] == m.max()

    def test_wave_decay_along_diagonals(self, fig):
        means = fig.analysis.diagonal_means()
        assert means[0] == max(means)
        assert np.mean(means[:4]) > np.mean(means[-4:])

    def test_map_normalised(self, fig):
        assert fig.significance_map.min() >= 0.0
        assert fig.significance_map.max() <= 1.0

    def test_to_text(self, fig):
        assert "diagonal means" in fig.to_text()


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure5(width=96, height=64, grid=(6, 8), jitter_samples=6)

    def test_border_more_significant_than_centre(self, fig):
        profile = fig.radial_profile(bins=4)
        assert profile[-1] > 1.2 * profile[0]

    def test_monotone_trend(self, fig):
        profile = fig.radial_profile(bins=4)
        # Allow one local inversion but require an overall upward trend.
        assert profile[-1] > profile[0] and profile[-2] > profile[0]

    def test_to_text(self, fig):
        assert "radial profile" in fig.to_text()


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure6(positions=3)

    def test_inner_pairs_top(self, fig):
        assert set(fig.analysis.ranking()[:2]) == {"c", "e"}

    def test_outer_corner_pairs_bottom(self, fig):
        assert set(fig.analysis.ranking()[-2:]) == {"b", "h"}

    def test_to_text_lists_all_pairs(self, fig):
        text = fig.to_text()
        for letter in "abcdefgh":
            assert f"({letter})" in text
