"""Significance analysis of the N-Body kernel (Section 4.1.4).

"We compute the significance of each atom's state with respect to the
state of all other atoms.  The results, once again, confirm domain expert
wisdom: the significance is strongly correlated with the distance between
atoms."

For a small configuration, register every source atom's coordinates as
inputs (± a position uncertainty), evaluate the Lennard-Jones force on a
target atom in interval-adjoint mode (three outputs — vector mode), and
aggregate per-atom significance.  The test of success is the rank
correlation between atom distance and significance: strongly negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scorpio import Analysis, rank_correlation

from .simulation import lj_pair_force

__all__ = ["NBodyAnalysis", "analyse_nbody"]


@dataclass
class NBodyAnalysis:
    """Per-source-atom significance for a fixed target atom."""

    distances: np.ndarray  # (n_sources,)
    significances: np.ndarray  # (n_sources,), max-normalised

    @property
    def distance_rank_correlation(self) -> float:
        """Spearman correlation of distance vs significance (≈ -1)."""
        return rank_correlation(
            list(self.distances), list(self.significances)
        )


def analyse_nbody(
    positions: np.ndarray,
    target: int = 0,
    position_uncertainty: float = 0.02,
) -> NBodyAnalysis:
    """Significance of each source atom for the force on ``target``."""
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if not 0 <= target < n:
        raise ValueError(f"target index {target} out of range")
    sources = [i for i in range(n) if i != target]

    # Work in coordinates centred on the target atom: Eq. 11's interval
    # product scales with the variable's absolute magnitude (the paper's
    # overestimation caveat), so a translation-invariant quantity like the
    # LJ force should be analysed in translation-normalised coordinates.
    centred = positions - positions[target]

    an = Analysis()
    with an:
        taped = {}
        for i in sources:
            taped[i] = [
                an.input(
                    float(centred[i, k]),
                    width=2.0 * position_uncertainty,
                    name=f"atom{i}_{'xyz'[k]}",
                )
                for k in range(3)
            ]

        fx = fy = fz = None
        for i in sources:
            sx, sy, sz = taped[i]
            dfx, dfy, dfz = lj_pair_force(0.0 - sx, 0.0 - sy, 0.0 - sz)
            fx = dfx if fx is None else fx + dfx
            fy = dfy if fy is None else fy + dfy
            fz = dfz if fz is None else fz + dfz
        an.output(fx, name="fx")
        an.output(fy, name="fy")
        an.output(fz, name="fz")
    report = an.analyse(simplify=False)
    sigs = report.input_significances()

    distances = np.array(
        [float(np.linalg.norm(positions[i] - positions[target])) for i in sources]
    )
    per_atom = np.array(
        [
            sum(sigs[f"atom{i}_{axis}"] for axis in "xyz")
            for i in sources
        ]
    )
    peak = per_atom.max()
    if peak > 0:
        per_atom = per_atom / peak
    return NBodyAnalysis(distances=distances, significances=per_atom)
