"""Flight recorder (:mod:`repro.obs.flight`): ring, SLOs, lookups."""

import pytest

from repro.obs import FlightRecorder, RequestRecord


def _rec(trace_id="ab" * 16, kernel="dct", seconds=0.01, **kw):
    return RequestRecord(
        trace_id=trace_id,
        path="/analyse/" + kernel,
        kernel=kernel,
        duration_seconds=seconds,
        **kw,
    )


class TestRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_eviction_keeps_newest(self):
        fr = FlightRecorder(capacity=3)
        for i in range(6):
            fr.record(_rec(trace_id=f"{i:032x}"))
        assert len(fr) == 3
        ids = [r["trace_id"] for r in fr.requests()]
        assert ids == [f"{i:032x}" for i in (5, 4, 3)]

    def test_requests_newest_first_with_limit(self):
        fr = FlightRecorder()
        for i in range(5):
            fr.record(_rec(trace_id=f"{i:032x}"))
        ids = [r["trace_id"] for r in fr.requests(limit=2)]
        assert ids == [f"{4:032x}", f"{3:032x}"]
        assert len(fr.requests(limit=0)) == 5  # non-positive = everything

    def test_record_stamps_completion_time(self):
        fr = FlightRecorder()
        rec = fr.record(_rec())
        assert rec.when > 0

    def test_to_dict_shape(self):
        fr = FlightRecorder()
        fr.record(
            _rec(
                seconds=0.0125,
                outcome="replay",
                batch_size=4,
                batch_index=1,
                stages={"dispatch": 0.01},
            )
        )
        (d,) = fr.requests()
        assert d["kernel"] == "dct"
        assert d["outcome"] == "replay"
        assert d["batch"] == {"size": 4, "index": 1}
        assert d["duration_ms"] == pytest.approx(12.5)
        assert d["stages_ms"] == {"dispatch": 10.0}
        assert d["slo_ms"] is None and d["slo_violated"] is False

    def test_clear(self):
        fr = FlightRecorder()
        fr.set_slo("dct", 0.001)
        fr.record(_rec(seconds=1.0))
        assert fr.degraded_kernels() == ["dct"]
        fr.clear()
        assert len(fr) == 0
        assert fr.degraded_kernels() == []


class TestTraceLookup:
    def test_for_trace_returns_newest_match(self):
        fr = FlightRecorder()
        fr.record(_rec(trace_id="aa" * 16, outcome="record"))
        fr.record(_rec(trace_id="bb" * 16))
        fr.record(_rec(trace_id="aa" * 16, outcome="replay"))
        match = fr.for_trace("aa" * 16)
        assert match is not None and match["outcome"] == "replay"
        assert fr.for_trace("ff" * 16) is None


class TestSlos:
    def test_violation_marks_kernel_degraded(self):
        fr = FlightRecorder()
        fr.set_slo("dct", 5.0)
        rec = fr.record(_rec(seconds=0.5))  # 500 ms >> 5 ms
        assert rec.slo_ms == 5.0 and rec.slo_violated is True
        assert fr.degraded_kernels() == ["dct"]

    def test_recovery_clears_degraded(self):
        fr = FlightRecorder()
        fr.set_slo("dct", 5.0)
        fr.record(_rec(seconds=0.5))
        fr.record(_rec(seconds=0.001))  # back under the threshold
        assert fr.degraded_kernels() == []

    def test_only_latest_request_counts(self):
        fr = FlightRecorder()
        fr.set_slo("dct", 5.0)
        fr.set_slo("sobel", 5.0)
        fr.record(_rec(kernel="dct", seconds=0.001))
        fr.record(_rec(kernel="sobel", seconds=0.5))
        fr.record(_rec(kernel="dct", seconds=0.5))
        fr.record(_rec(kernel="dct", seconds=0.001))
        assert fr.degraded_kernels() == ["sobel"]

    def test_no_slo_means_no_verdict(self):
        fr = FlightRecorder()
        rec = fr.record(_rec(seconds=10.0))
        assert rec.slo_ms is None and rec.slo_violated is False
        assert fr.degraded_kernels() == []

    def test_clearing_slo_forgets_violations(self):
        fr = FlightRecorder()
        fr.set_slo("dct", 5.0)
        fr.record(_rec(seconds=0.5))
        fr.set_slo("dct", None)
        assert fr.slo_for("dct") is None
        assert fr.degraded_kernels() == []

    def test_extend_slos(self):
        fr = FlightRecorder()
        fr.extend_slos([("dct", 5.0), ("sobel", None), ("nbody", 2.5)])
        assert fr.slo_for("dct") == 5.0
        assert fr.slo_for("sobel") is None
        assert fr.slo_for("nbody") == 2.5
