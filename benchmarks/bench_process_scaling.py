"""Process-parallel lane-sweep scaling (:mod:`repro.mp`).

One big BlackScholes lane sweep, sequential versus fanned out across
worker processes over a shared frozen tape.  Records
``runtime.process_scaling`` — the wall-clock speedup at the measured
worker count — to ``BENCH_core.json`` and asserts the two paths are
bitwise identical (the whole point of the chunk-invariant sweep design).

The speedup is machine-honest: on a single-core box the process pool
cannot win and the recorded value sits near (or below) 1.0x; the
committed baseline reflects that, and CI's directional comparison only
fails on a collapse, not on core-count differences.
"""

import time

import numpy as np
from record import record_value

from repro.intervals import Interval
from repro.mp import (
    ProcessExecutor,
    default_workers,
    live_segments,
    parallel_lane_significances,
)
from repro.scorpio import CachedTrace

LANES = 20_000


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _blackscholes_case():
    from repro.kernels.blackscholes.analysis import _record_option

    centre = np.array([100.0, 105.0, 0.03, 0.25, 1.0])
    ivs = [Interval.centered(p, 0.02 * p) for p in centre]
    trace = CachedTrace(_record_option(ivs), simplify=False)
    rng = np.random.default_rng(23)
    jitter = 1.0 + 0.05 * rng.uniform(-1.0, 1.0, size=(5, LANES))
    params = centre[:, None] * jitter
    radius = 0.02 * params
    return trace, params - radius, params + radius


def test_process_scaling(benchmark):
    """Speedup of the process fan-out over the sequential sweep."""
    trace, lo, hi = _blackscholes_case()
    workers = max(2, default_workers())

    seq = trace.lane_significances(trace.forward_lanes(lo, hi))
    with ProcessExecutor(max_workers=workers) as ex:
        # Warm the pool and the per-worker tape caches outside the clock.
        par = parallel_lane_significances(
            trace, lo, hi, workers=workers, executor=ex
        )
        assert par.tobytes() == seq.tobytes()

        t_seq = min(
            _timed(
                lambda: trace.lane_significances(trace.forward_lanes(lo, hi))
            )[0]
            for _ in range(3)
        )
        t_par = min(
            _timed(
                lambda: parallel_lane_significances(
                    trace, lo, hi, workers=workers, executor=ex
                )
            )[0]
            for _ in range(3)
        )

        benchmark.pedantic(
            parallel_lane_significances,
            args=(trace, lo, hi),
            kwargs={"workers": workers, "executor": ex},
            rounds=3,
            iterations=1,
        )
    assert live_segments() == []

    speedup = t_seq / t_par
    benchmark.extra_info["sequential_seconds"] = round(t_seq, 3)
    benchmark.extra_info["parallel_seconds"] = round(t_par, 3)
    benchmark.extra_info["workers"] = workers
    record_value(
        "runtime.process_scaling",
        speedup,
        unit="x",
        workers=workers,
        lanes=LANES,
    )
    # Sanity floor, not a scaling target: even a one-core machine must
    # not pay an order of magnitude for the process indirection.
    assert speedup >= 0.2, (
        f"process fan-out {speedup:.2f}x at {workers} workers "
        f"({t_seq:.3f}s seq vs {t_par:.3f}s par)"
    )
