"""8x8 DCT / quantisation / IDCT — reference implementation (Section 4.1.2).

The video-compression round-trip the paper analyses: forward DCT-II of an
8x8 pixel block, quantisation against the JPEG luminance matrix,
de-quantisation, inverse DCT.  Low-frequency coefficients live near the
top-left corner of the 8x8 coefficient block.

Two layers:

* generic per-block functions (``dct_block``, ``quantise_block``, ...)
  written against :mod:`repro.ad.intrinsics` numerics so the significance
  analysis can tape them;
* vectorised whole-image NumPy helpers used by the task runtime and the
  perforated baseline.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.ad import intrinsics as op

__all__ = [
    "BLOCK",
    "QUANT_LUMA",
    "quant_matrix",
    "basis_tensor",
    "zigzag_order",
    "diagonal_of",
    "dct_block",
    "quantise_block",
    "dequantise_block",
    "idct_block",
    "blockify",
    "unblockify",
    "dct_image",
    "roundtrip_from_coefficients",
    "dct_roundtrip_reference",
    "OPS_PER_COEFFICIENT",
    "OPS_RECONSTRUCT_PER_BLOCK",
]

BLOCK = 8

# JPEG Annex K luminance quantisation matrix (quality 50).
QUANT_LUMA = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

def quant_matrix(quality: int = 50) -> np.ndarray:
    """JPEG quality-scaled quantisation matrix (standard IJG scaling).

    ``quality=50`` returns :data:`QUANT_LUMA`; higher quality divides the
    steps (milder quantisation), lower multiplies them.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    q = np.floor((QUANT_LUMA * scale + 50.0) / 100.0)
    return np.clip(q, 1.0, 255.0)


# Abstract op counts for the energy model: one coefficient is a 64-term
# weighted sum (64 muls + 63 adds); reconstruction per block is quant +
# dequant + full IDCT.
OPS_PER_COEFFICIENT = 128.0
OPS_RECONSTRUCT_PER_BLOCK = 64.0 * 2 + 64.0 * OPS_PER_COEFFICIENT


def _alpha(k: int) -> float:
    return 1.0 / math.sqrt(2.0) if k == 0 else 1.0


def basis_tensor() -> np.ndarray:
    """Orthonormal DCT-II basis ``B[v, u, y, x]`` for 8x8 blocks."""
    b = np.zeros((BLOCK, BLOCK, BLOCK, BLOCK), dtype=np.float64)
    for v in range(BLOCK):
        for u in range(BLOCK):
            scale = 0.25 * _alpha(u) * _alpha(v)
            for y in range(BLOCK):
                for x in range(BLOCK):
                    b[v, u, y, x] = (
                        scale
                        * math.cos((2 * y + 1) * v * math.pi / 16.0)
                        * math.cos((2 * x + 1) * u * math.pi / 16.0)
                    )
    return b


_BASIS = basis_tensor()


def zigzag_order() -> list[tuple[int, int]]:
    """The 64 (v, u) positions in JPEG zig-zag order."""
    order: list[tuple[int, int]] = []
    for d in range(2 * BLOCK - 1):
        coords = [(v, d - v) for v in range(BLOCK) if 0 <= d - v < BLOCK]
        if d % 2 == 0:
            coords.reverse()  # even diagonals run bottom-left to top-right
        order.extend(coords)
    return order


def diagonal_of(v: int, u: int) -> int:
    """Diagonal index ``v + u`` (the paper's 15 task groups, Fig. 4)."""
    return v + u


# ----------------------------------------------------------------------
# Generic per-block functions (significance analysis path)
# ----------------------------------------------------------------------
def dct_block(pixels: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """Forward DCT of an 8x8 block in generic numerics."""
    coeffs: list[list[Any]] = []
    for v in range(BLOCK):
        row: list[Any] = []
        for u in range(BLOCK):
            acc: Any = None
            for y in range(BLOCK):
                for x in range(BLOCK):
                    term = float(_BASIS[v, u, y, x]) * pixels[y][x]
                    acc = term if acc is None else acc + term
            row.append(acc)
        coeffs.append(row)
    return coeffs


def quantise_block(coeffs: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """Quantise: ``round(c / Q)`` with the straight-through rounding."""
    return [
        [
            op.round_st(coeffs[v][u] / float(QUANT_LUMA[v, u]))
            for u in range(BLOCK)
        ]
        for v in range(BLOCK)
    ]


def dequantise_block(quantised: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """De-quantise: ``q * Q``."""
    return [
        [quantised[v][u] * float(QUANT_LUMA[v, u]) for u in range(BLOCK)]
        for v in range(BLOCK)
    ]


def idct_block(coeffs: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """Inverse DCT of an 8x8 coefficient block in generic numerics."""
    pixels: list[list[Any]] = []
    for y in range(BLOCK):
        row: list[Any] = []
        for x in range(BLOCK):
            acc: Any = None
            for v in range(BLOCK):
                for u in range(BLOCK):
                    term = float(_BASIS[v, u, y, x]) * coeffs[v][u]
                    acc = term if acc is None else acc + term
            row.append(acc)
        pixels.append(row)
    return pixels


# ----------------------------------------------------------------------
# Vectorised whole-image helpers (execution path)
# ----------------------------------------------------------------------
def blockify(image: np.ndarray) -> np.ndarray:
    """(H, W) image -> (n_blocks, 8, 8); H and W must be multiples of 8."""
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"image size {h}x{w} not a multiple of {BLOCK}")
    blocks = image.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
    return blocks.transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK)


def unblockify(blocks: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    h, w = shape
    nb_y, nb_x = h // BLOCK, w // BLOCK
    arr = blocks.reshape(nb_y, nb_x, BLOCK, BLOCK).transpose(0, 2, 1, 3)
    return arr.reshape(h, w)


def dct_image(blocks: np.ndarray) -> np.ndarray:
    """Forward DCT of all blocks: (n, 8, 8) pixels -> (n, 8, 8) coeffs."""
    return np.einsum("vuyx,nyx->nvu", _BASIS, blocks)


def roundtrip_from_coefficients(
    coeffs: np.ndarray, shape: tuple[int, int], quality: int = 75
) -> np.ndarray:
    """Quantise, de-quantise and inverse-transform coefficient blocks.

    ``quality=75`` is the benchmark default: mild enough that dropped
    high-frequency diagonals actually cost PSNR (at quality 50 most of
    them quantise to zero anyway and approximation would be free).
    """
    q = quant_matrix(quality)
    quantised = np.round(coeffs / q) * q
    pixels = np.einsum("vuyx,nvu->nyx", _BASIS, quantised)
    return np.clip(unblockify(pixels, shape), 0.0, 255.0)


def dct_roundtrip_reference(image: np.ndarray, quality: int = 75) -> np.ndarray:
    """Fully accurate DCT -> quant -> dequant -> IDCT of an image."""
    image = np.asarray(image, dtype=np.float64)
    blocks = blockify(image)
    coeffs = dct_image(blocks)
    return roundtrip_from_coefficients(coeffs, image.shape, quality=quality)
