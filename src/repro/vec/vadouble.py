"""Batched overloaded adjoint type — ``dco::ia1s::type`` over lanes.

:class:`VADouble` is the lane-parallel counterpart of
:class:`repro.ad.adouble.ADouble`: it wraps an
:class:`~repro.vec.ivec.IntervalArray` and records one *array-valued* node
per elementary operation on a :class:`~repro.vec.vtape.VTape`.  It
subclasses ``ADouble`` and overrides exactly one algebra hook
(:meth:`_coerce`) plus the few methods that inspect scalar ``Interval``
internals, so every kernel written against the generic
:mod:`repro.ad.intrinsics` overload set (BlackScholes, Sobel, bicubic,
Maclaurin, ...) runs unchanged in batched mode — the same source, a second
execution backend.

Passive operands fold into operations without creating nodes, exactly as in
the scalar type: a plain ``float`` broadcasts to every lane, an ``ndarray``
supplies one point constant per lane (how per-pixel image windows enter the
batched fisheye/Sobel analyses), and a scalar ``Interval`` broadcasts its
bounds.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ad.adouble import ADouble
from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array
from .vtape import VTape

__all__ = ["VADouble"]


class VADouble(ADouble):
    """A taped batch of interval-adjoint scalars (one lane each)."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def input(
        cls,
        value: IntervalArray | Interval | np.ndarray | float,
        label: str | None = None,
        tape: VTape | None = None,
    ) -> "VADouble":
        """Register a lane-parallel input variable (INPUT over the batch)."""
        from repro.ad.tape import require_tape

        tape = require_tape(tape)
        if not isinstance(tape, VTape):
            raise TypeError("VADouble.input needs an active VTape")
        if not isinstance(value, IntervalArray):
            value = as_interval_array(value, tape.require_lane_shape())
        node = tape.record_input(value, label=label)
        return cls(value, node, tape)

    @classmethod
    def constant(
        cls,
        value: IntervalArray | Interval | np.ndarray | float,
        tape: VTape | None = None,
    ) -> "VADouble":
        """Record an explicit constant node (e.g. an accumulator init)."""
        from repro.ad.tape import require_tape

        tape = require_tape(tape)
        if not isinstance(tape, VTape):
            raise TypeError("VADouble.constant needs an active VTape")
        if not isinstance(value, IntervalArray):
            value = as_interval_array(value, tape.require_lane_shape())
        node = tape.record("const", value, (), ())
        return cls(value, node, tape)

    @property
    def interval_mode(self) -> bool:
        """Batched values always compute in (lane-wise) interval arithmetic."""
        return True

    @property
    def lane_shape(self) -> tuple[int, ...]:
        return self.value.shape

    # ------------------------------------------------------------------
    # Algebra hook (everything arithmetic in ADouble routes through this)
    # ------------------------------------------------------------------
    def _coerce(self, value: Any) -> IntervalArray:
        return as_interval_array(value, self.value.shape)

    # ------------------------------------------------------------------
    # Overrides that inspect scalar Interval internals in the base class
    # ------------------------------------------------------------------
    def __abs__(self) -> "VADouble":
        iv: IntervalArray = self.value
        # Per-lane |.| subgradient enclosure: +1 / -1 where the sign is
        # fixed, [-1, 1] on lanes spanning 0 (not differentiable at 0).
        spans = (iv.lo < 0) & (iv.hi > 0)
        plo = np.where(iv.hi <= 0, -1.0, np.where(spans, -1.0, 1.0))
        phi = np.where(iv.hi <= 0, -1.0, 1.0)
        partial = IntervalArray(plo, phi)
        return self.record_unary("abs", abs(iv), partial)

    # -- comparisons: lane masks, ambiguous lanes raise (Section 2.2) ----
    def __lt__(self, other: Any) -> np.ndarray:
        return self.value < self._cmp_operand(other)

    def __le__(self, other: Any) -> np.ndarray:
        return self.value <= self._cmp_operand(other)

    def __gt__(self, other: Any) -> np.ndarray:
        return self.value > self._cmp_operand(other)

    def __ge__(self, other: Any) -> np.ndarray:
        return self.value >= self._cmp_operand(other)

    # ------------------------------------------------------------------
    # Conversion / display
    # ------------------------------------------------------------------
    def to_double(self) -> np.ndarray:
        """Per-lane midpoints (``toDouble()`` over the batch)."""
        return self.value.midpoint

    def __repr__(self) -> str:
        return (
            f"VADouble(lanes={self.value.shape}, node=#{self.node.index})"
        )
