"""Quality metrics (PSNR, relative error) used by the evaluation."""

from .quality import (
    aggregate_relative_error,
    max_relative_error,
    mean_absolute_error,
    mse,
    psnr,
    relative_error,
    rmse,
)

__all__ = [
    "mse",
    "rmse",
    "psnr",
    "mean_absolute_error",
    "relative_error",
    "max_relative_error",
    "aggregate_relative_error",
]
