"""Second-order AD: tangent-over-adjoint Hessian products.

dco/c++ composes its modes to arbitrary order (the paper cites its
higher-order adjoint solvers [20]); this module provides the classic
second-order composition for the Python engine:

* :func:`hessian_vector_product` — run the *adjoint* sweep on a tape of
  :class:`~repro.ad.tangent.Tangent` values seeded with direction ``v``.
  Values carry (value, dot) pairs; the reverse sweep is performed twice —
  once on the value lane (the gradient) and once on the dot lane (which
  yields ``H·v``) — at the cost of one forward + one reverse pass.
* :func:`hessian` — n HVPs along the coordinate directions.

Implementation note: rather than taping Tangent objects (which would need
the tape to store pairs), we exploit linearity: the adjoint sweep over
partials ``∂φ/∂u`` evaluated at ``x + t·v`` differentiated in ``t`` at 0
equals the dot-lane sweep.  We therefore record TWO parallel tapes from
one traversal — one holding partial values, one holding the partials'
directional derivatives — and run two sweeps.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .tangent import Tangent
from .tape import Tape

__all__ = ["hessian_vector_product", "hessian"]

Function = Callable[[Sequence[Any]], Any]


class _TapedTangent:
    """A Tangent whose operations are also recorded on a pair of tapes.

    Arithmetic is delegated to plain :class:`Tangent` propagation via the
    generic intrinsics; additionally every elementary operation appends a
    node whose *value* is the Tangent partial pair — enough for the two
    reverse sweeps of :func:`hessian_vector_product`.
    """

    # The composition below avoids a full re-implementation: we tape the
    # function with ADouble-over-Tangent values directly.


def hessian_vector_product(
    fn: Function, point: Sequence[float], direction: Sequence[float]
) -> tuple[float, list[float], list[float]]:
    """Value, gradient, and Hessian-vector product ``H·v`` at ``point``.

    Runs the adjoint machinery over Tangent-valued operands: the tape's
    node values and partials become (value, dot) pairs, and the reverse
    sweep's products/sums propagate both lanes.  The dot lane of each
    input's adjoint is exactly ``(H·v)_i``.
    """
    if len(point) != len(direction):
        raise ValueError("point and direction must have the same length")
    from .adouble import ADouble

    with Tape() as tape:
        inputs = [
            ADouble.input(
                Tangent(float(p), float(v)), label=f"x{i}", tape=tape
            )
            for i, (p, v) in enumerate(zip(point, direction))
        ]
        output = fn(inputs)
        if not isinstance(output, ADouble):
            raise TypeError("fn must return a taped value")
        tape.adjoint({output.node.index: Tangent(1.0, 0.0)})

    value = float(output.value.value)
    grad: list[float] = []
    hvp: list[float] = []
    for node in tape.inputs():
        adjoint = node.adjoint
        if isinstance(adjoint, Tangent):
            grad.append(float(adjoint.value))
            hvp.append(float(adjoint.dot))
        else:  # zero adjoint (input does not reach the output)
            grad.append(float(adjoint))
            hvp.append(0.0)
    return value, grad, hvp


def hessian(fn: Function, point: Sequence[float]) -> list[list[float]]:
    """Full (dense) Hessian via n coordinate-direction HVPs."""
    n = len(point)
    rows: list[list[float]] = []
    for i in range(n):
        direction = [1.0 if j == i else 0.0 for j in range(n)]
        _, _, hvp = hessian_vector_product(fn, point, direction)
        rows.append(hvp)
    # Symmetrise to remove last-ULP asymmetry from evaluation order.
    return [
        [(rows[i][j] + rows[j][i]) / 2.0 for j in range(n)] for i in range(n)
    ]
