"""Task executors: sequential (deterministic) and threaded.

The sequential executor is the benchmark default — energy comes from the
model, not the clock, so parallel speedup is irrelevant and determinism is
worth more.  The threaded executor exists to exercise the same code path
the paper's 14-core runs used (and to let examples demonstrate real
speedups on multi-core machines for NumPy-releasing workloads).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol, Sequence, cast

from repro.obs.trace import span as _obs_span

from .task import ExecutionMode, Task, TaskResult

__all__ = ["Executor", "SequentialExecutor", "ThreadedExecutor"]


class Executor(Protocol):
    """Strategy that runs a batch of (task, mode) pairs."""

    def run(
        self, tasks: Sequence[Task], modes: Sequence[ExecutionMode]
    ) -> list[TaskResult]:
        """Execute all tasks and return their results in submission order."""
        ...  # pragma: no cover - protocol


def _run_one(task: Task, mode: ExecutionMode) -> TaskResult:
    # On a thread pool this span roots on the worker thread's own stack
    # (span stacks are thread-local), so it lands in the ring as a root
    # rather than a taskwait child — attrs carry the linkage instead.
    with _obs_span("runtime.task") as sp:
        sp.set(label=task.label, task_id=task.task_id, mode=mode.name)
        start = time.perf_counter()
        value = task.run(mode)
        elapsed = time.perf_counter() - start
    return TaskResult(task=task, mode=mode, value=value, elapsed_seconds=elapsed)


class SequentialExecutor:
    """Run tasks one by one in submission order (deterministic)."""

    def run(
        self, tasks: Sequence[Task], modes: Sequence[ExecutionMode]
    ) -> list[TaskResult]:
        """Execute sequentially; exceptions propagate immediately."""
        if len(tasks) != len(modes):
            raise ValueError("tasks and modes must be parallel sequences")
        return [_run_one(t, m) for t, m in zip(tasks, modes)]


class ThreadedExecutor:
    """Run tasks on a thread pool (results still in submission order).

    Dropped tasks never reach the pool.  Task functions mutating shared
    output arrays must write disjoint regions (the programming model's
    ``out()`` contract), which all bundled kernels obey.
    """

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self, tasks: Sequence[Task], modes: Sequence[ExecutionMode]
    ) -> list[TaskResult]:
        """Execute on a pool; the first raised exception propagates."""
        if len(tasks) != len(modes):
            raise ValueError("tasks and modes must be parallel sequences")
        results: list[TaskResult | None] = [None] * len(tasks)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {}
            for i, (task, mode) in enumerate(zip(tasks, modes)):
                if mode is ExecutionMode.DROPPED:
                    results[i] = TaskResult(task, mode, None, 0.0)
                else:
                    futures[pool.submit(_run_one, task, mode)] = i
            for future, i in futures.items():
                results[i] = future.result()
        if any(r is None for r in results):  # pragma: no cover - invariant
            missing = [i for i, r in enumerate(results) if r is None]
            raise RuntimeError(f"tasks {missing} produced no result")
        # Dense and in submission order: callers zip this against their
        # task list, so compacting away a slot would misalign everything.
        return cast("list[TaskResult]", results)
