"""Loop-perforated DCT baseline (Section 4.2).

"In DCT we perforate the double nested loops which compute the
coefficients of an 8x8 block of pixels": the 64 coefficient computations
are visited in raster (v, u) order and a fraction is skipped, uniformly
interleaved.  Perforation is oblivious to the frequency structure — at
ratio 0.5 it computes every other coefficient in raster order, losing
half the important low-frequency ACs that the significance version keeps
(hence the paper's 10.96 dB average PSNR advantage for the latter).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.perforation import perforated_indices
from repro.runtime import perforation_energy

from .sequential import (
    BLOCK,
    OPS_PER_COEFFICIENT,
    OPS_RECONSTRUCT_PER_BLOCK,
    basis_tensor,
    blockify,
    roundtrip_from_coefficients,
)
from .tasks import ENERGY_MODEL

__all__ = ["dct_perforated"]

_BASIS = basis_tensor()


def dct_perforated(image: np.ndarray, ratio: float) -> KernelRun:
    """Run the coefficient-loop-perforated DCT round-trip."""
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    blocks = blockify(image)
    n_blocks = len(blocks)
    coeffs = np.zeros_like(blocks)

    executed = perforated_indices(BLOCK * BLOCK, ratio)
    for flat in executed:
        v, u = divmod(flat, BLOCK)
        coeffs[:, v, u] = np.einsum("yx,nyx->n", _BASIS[v, u], blocks)

    output = roundtrip_from_coefficients(coeffs, (h, w))
    executed_work = (
        OPS_PER_COEFFICIENT * len(executed) * n_blocks
        + OPS_RECONSTRUCT_PER_BLOCK * n_blocks
    )
    energy = perforation_energy(ENERGY_MODEL, executed_work)
    return KernelRun(
        output=output, energy=energy, ratio=ratio, variant="perforation"
    )
