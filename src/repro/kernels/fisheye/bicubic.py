"""Bicubic interpolation on a 4x4 window (Section 4.1.3, BicubicInterp).

Catmull-Rom cubic convolution: for fractional position ``t ∈ [0, 1]``
between samples P1 and P2 of the four samples P0..P3, the weights are::

    w0 = ½(-t + 2t² - t³)      w1 = ½(2 - 5t² + 3t³)
    w2 = ½(t + 4t² - 3t³)      w3 = ½(-t² + t³)

Bicubic = cubic in x nested in cubic in y over the 4x4 neighbourhood.
Generic-numeric scalar versions feed the significance analysis (Figure 6);
the vectorised sampler runs the execution path.  A bilinear sampler is
included as the approximate version (it uses exactly the inner 2x2 pixel
pairs the analysis flags as most significant — pairs c and e of Fig. 6).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "cubic_weights",
    "bicubic_interp",
    "bicubic_sample",
    "bilinear_sample",
    "PIXEL_PAIRS",
    "OPS_BICUBIC",
    "OPS_BILINEAR",
]

# Abstract per-pixel op costs for the energy model.
OPS_BICUBIC = 40.0
OPS_BILINEAR = 8.0

# The eight symmetric pixel pairs of Figure 6 (by (row, col) in the 4x4
# window); the analysis finds c and e — the inner 2x2 — most significant.
PIXEL_PAIRS = {
    "a": ((0, 1), (0, 2)),
    "b": ((0, 0), (0, 3)),
    "c": ((1, 1), (1, 2)),
    "d": ((1, 0), (1, 3)),
    "e": ((2, 1), (2, 2)),
    "f": ((2, 0), (2, 3)),
    "g": ((3, 1), (3, 2)),
    "h": ((3, 0), (3, 3)),
}


def cubic_weights(t: Any) -> tuple[Any, Any, Any, Any]:
    """Catmull-Rom weights for samples at offsets -1, 0, +1, +2."""
    t2 = t * t
    t3 = t2 * t
    w0 = 0.5 * (-t + 2.0 * t2 - t3)
    w1 = 0.5 * (2.0 - 5.0 * t2 + 3.0 * t3)
    w2 = 0.5 * (t + 4.0 * t2 - 3.0 * t3)
    w3 = 0.5 * (-t2 + t3)
    return w0, w1, w2, w3


def bicubic_interp(window: Sequence[Sequence[Any]], tx: Any, ty: Any) -> Any:
    """Interpolate at fractional position (tx, ty) inside the centre cell.

    ``window[r][c]`` covers rows/cols -1..2 around the cell between
    (1, 1) and (2, 2).  Works on floats, Intervals, Tangents, ADoubles.
    """
    if len(window) != 4 or any(len(row) != 4 for row in window):
        raise ValueError("bicubic needs a 4x4 window")
    wx = cubic_weights(tx)
    wy = cubic_weights(ty)
    result: Any = None
    for r in range(4):
        row_val: Any = None
        for c in range(4):
            term = wx[c] * window[r][c]
            row_val = term if row_val is None else row_val + term
        contribution = wy[r] * row_val
        result = contribution if result is None else result + contribution
    return result


def _gather(image: np.ndarray, iy: np.ndarray, ix: np.ndarray) -> np.ndarray:
    h, w = image.shape
    return image[np.clip(iy, 0, h - 1), np.clip(ix, 0, w - 1)]


def bicubic_sample(image: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorised bicubic sampling of ``image`` at real coordinates."""
    image = np.asarray(image, dtype=np.float64)
    x0 = np.floor(xs).astype(np.int64)
    y0 = np.floor(ys).astype(np.int64)
    tx = xs - x0
    ty = ys - y0
    wx = cubic_weights(tx)
    wy = cubic_weights(ty)
    result = np.zeros_like(np.asarray(xs, dtype=np.float64))
    for r in range(4):
        row_val = np.zeros_like(result)
        for c in range(4):
            row_val += wx[c] * _gather(image, y0 + r - 1, x0 + c - 1)
        result += wy[r] * row_val
    return np.clip(result, 0.0, 255.0)


def bilinear_sample(image: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorised bilinear sampling (the approximate task's interpolator).

    Uses only the inner 2x2 neighbourhood — the pixel pairs (c, e) that
    the Figure 6 analysis identifies as the most significant.
    """
    image = np.asarray(image, dtype=np.float64)
    x0 = np.floor(xs).astype(np.int64)
    y0 = np.floor(ys).astype(np.int64)
    tx = xs - x0
    ty = ys - y0
    top = (1.0 - tx) * _gather(image, y0, x0) + tx * _gather(image, y0, x0 + 1)
    bot = (1.0 - tx) * _gather(image, y0 + 1, x0) + tx * _gather(
        image, y0 + 1, x0 + 1
    )
    return np.clip((1.0 - ty) * top + ty * bot, 0.0, 255.0)
