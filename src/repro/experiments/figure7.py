"""Figure 7: quality and energy vs accurate-task ratio, all five panels.

Each ``figure7_<benchmark>()`` regenerates one panel (significance-driven
vs loop-perforated series); :func:`figure7_all` produces the whole figure
as text tables.  Workload sizes are the benchmark defaults documented in
DESIGN.md §3 (scaled from the paper's testbed to laptop scale; the energy
models are calibrated so the fully-accurate points land near the paper's
Joule readings).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.images import natural_image, radial_scene
from repro.kernels.blackscholes import (
    blackscholes_significance,
    make_portfolio,
    price_portfolio,
)
from repro.kernels.common import QUALITY_PSNR, QUALITY_REL_ERR
from repro.kernels.dct import (
    dct_perforated,
    dct_roundtrip_reference,
    dct_significance,
)
from repro.kernels.fisheye import (
    default_config,
    fisheye_perforated,
    fisheye_reference,
    fisheye_significance,
    make_fisheye_input,
)
from repro.kernels.nbody import (
    lattice_system,
    nbody_perforated,
    nbody_significance,
    simulate_reference,
)
from repro.kernels.sobel import sobel_perforated, sobel_reference, sobel_significance
from repro.metrics import aggregate_relative_error, psnr

from .sweep import SweepResult, format_sweep, run_sweep

__all__ = [
    "figure7_sobel",
    "figure7_dct",
    "figure7_fisheye",
    "figure7_nbody",
    "figure7_blackscholes",
    "figure7_all",
]


def figure7_sobel(size: int = 256, seed: int = 5) -> SweepResult:
    """Sobel panel: PSNR + energy vs ratio."""
    image = natural_image(size, size, seed=seed)
    reference = sobel_reference(image)
    return run_sweep(
        "Sobel Filter",
        QUALITY_PSNR,
        reference,
        partial(sobel_significance, image),
        partial(sobel_perforated, image),
        psnr,
    )


def figure7_dct(size: int = 256, seed: int = 7) -> SweepResult:
    """DCT panel: PSNR + energy vs ratio."""
    image = natural_image(size, size, seed=seed)
    reference = dct_roundtrip_reference(image)
    return run_sweep(
        "DCT",
        QUALITY_PSNR,
        reference,
        partial(dct_significance, image),
        partial(dct_perforated, image),
        psnr,
    )


def figure7_fisheye(
    width: int = 256, height: int = 192, seed: int = 11
) -> SweepResult:
    """Fisheye panel: PSNR + energy vs ratio."""
    config = default_config(width, height)
    scene = radial_scene(width, height, seed=seed)
    input_image = make_fisheye_input(scene, config)
    reference = fisheye_reference(input_image, config)
    return run_sweep(
        "Fisheye",
        QUALITY_PSNR,
        reference,
        lambda ratio: fisheye_significance(input_image, config, ratio),
        lambda ratio: fisheye_perforated(input_image, config, ratio),
        psnr,
    )


def figure7_nbody(side: int = 9, steps: int = 3, seed: int = 42) -> SweepResult:
    """N-Body panel: relative error + energy vs ratio."""
    system = lattice_system(side=side, seed=seed)
    reference = simulate_reference(system, steps=steps).positions

    def sig(ratio: float):
        run, _ = nbody_significance(system, ratio, steps=steps)
        return run

    def perf(ratio: float):
        run, _ = nbody_perforated(system, ratio, steps=steps)
        return run

    return run_sweep(
        "N-Body",
        QUALITY_REL_ERR,
        reference,
        sig,
        perf,
        aggregate_relative_error,
    )


def figure7_blackscholes(count: int = 16384, seed: int = 23) -> SweepResult:
    """BlackScholes panel (no perforation series — not applicable)."""
    portfolio = make_portfolio(count=count, seed=seed)
    reference = price_portfolio(
        portfolio.spots,
        portfolio.strikes,
        portfolio.rates,
        portfolio.volatilities,
        portfolio.expiries,
        portfolio.puts,
    )
    return run_sweep(
        "BlackScholes",
        QUALITY_REL_ERR,
        reference,
        partial(blackscholes_significance, portfolio),
        None,
        aggregate_relative_error,
    )


def figure7_all(fast: bool = False) -> dict[str, SweepResult]:
    """All five panels.  ``fast=True`` shrinks workloads (for tests)."""
    if fast:
        return {
            "sobel": figure7_sobel(size=96),
            "dct": figure7_dct(size=64),
            "fisheye": figure7_fisheye(width=96, height=64),
            "nbody": figure7_nbody(side=5, steps=2),
            "blackscholes": figure7_blackscholes(count=2048),
        }
    return {
        "sobel": figure7_sobel(),
        "dct": figure7_dct(),
        "fisheye": figure7_fisheye(),
        "nbody": figure7_nbody(),
        "blackscholes": figure7_blackscholes(),
    }


def main() -> None:
    """Print every Figure 7 panel as a table."""
    for result in figure7_all().values():
        print(format_sweep(result))
        print()


if __name__ == "__main__":
    main()
