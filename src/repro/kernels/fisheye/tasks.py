"""Task-based, significance-driven Fisheye correction (Section 4.1.3).

Each task computes one block of output pixels (the paper uses 128x64 on
1280x960; we default to 32x16 on 256x192 — the same 8x6 grid of blocks
per frame).  Per the Figure 5 analysis, tasks nearer the image border get
higher significance than central ones.

The accurate version invokes InverseMapping per pixel and BicubicInterp
on the 4x4 window.  The approximate version exploits both analyses:

* InverseMapping runs only for the block's four corners; interior
  coordinates are bilinearly interpolated (the paper interpolates from
  the block border);
* by significance transitivity, sampling drops to bilinear on the inner
  2x2 window — the pixel pairs (c, e) that Figure 6 flags as the
  significant ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.common import KernelRun
from repro.runtime import AnalyticEnergyModel, TaskRuntime

from .bicubic import OPS_BICUBIC, OPS_BILINEAR, bicubic_sample, bilinear_sample
from .geometry import OPS_INVERSE_MAP, LensConfig, inverse_map_grid

__all__ = [
    "fisheye_significance",
    "block_significance",
    "ENERGY_MODEL",
    "DEFAULT_BLOCK",
]

DEFAULT_BLOCK = (16, 32)  # (rows, cols) per task

# Calibrated so a fully accurate 256x192 run lands near the paper's ~130 J
# full-accuracy Fisheye point.
ENERGY_MODEL = AnalyticEnergyModel(
    energy_per_op=3.6e-5,
    task_overhead=0.11,
    static_power=0.0,
)

_OPS_ACCURATE_PER_PIXEL = OPS_INVERSE_MAP + OPS_BICUBIC
_OPS_APPROX_PER_PIXEL = 4.0 + OPS_BILINEAR  # coord lerp + 2x2 sampling


def block_significance(
    config: LensConfig, row0: int, row1: int, col0: int, col1: int
) -> float:
    """Task significance by block-centre radius (border high, centre low).

    Mapped linearly from 0.2 (image centre), saturating at 1.0 for blocks
    whose centre lies beyond 70% of the corner radius — block centres
    cannot reach the corner itself, and the saturation pins every
    border/corner block accurate while central blocks degrade first.
    """
    cx, cy = config.out_center
    bx = (col0 + col1 - 1) / 2.0
    by = (row0 + row1 - 1) / 2.0
    r = math.hypot(bx - cx, by - cy) / math.hypot(cx, cy)
    return min(1.0, 0.2 + 0.8 * r / 0.7)


def _accurate_block(
    output: np.ndarray,
    input_image: np.ndarray,
    config: LensConfig,
    row0: int,
    row1: int,
    col0: int,
    col1: int,
) -> None:
    """Per-pixel inverse map + bicubic for one block."""
    ys, xs = np.mgrid[row0:row1, col0:col1]
    sx, sy = inverse_map_grid(config, xs.astype(np.float64), ys.astype(np.float64))
    output[row0:row1, col0:col1] = bicubic_sample(input_image, sx, sy)


def _approx_block(
    output: np.ndarray,
    input_image: np.ndarray,
    config: LensConfig,
    row0: int,
    row1: int,
    col0: int,
    col1: int,
) -> None:
    """Corner-only inverse map, interpolated coords, bilinear sampling."""
    corner_x = np.array(
        [[col0, col1 - 1], [col0, col1 - 1]], dtype=np.float64
    )
    corner_y = np.array(
        [[row0, row0], [row1 - 1, row1 - 1]], dtype=np.float64
    )
    cx_map, cy_map = inverse_map_grid(config, corner_x, corner_y)

    h = row1 - row0
    w = col1 - col0
    ty = np.linspace(0.0, 1.0, h)[:, None]
    tx = np.linspace(0.0, 1.0, w)[None, :]

    def lerp(corners: np.ndarray) -> np.ndarray:
        top = (1 - tx) * corners[0, 0] + tx * corners[0, 1]
        bottom = (1 - tx) * corners[1, 0] + tx * corners[1, 1]
        return (1 - ty) * top + ty * bottom

    sx = lerp(cx_map)
    sy = lerp(cy_map)
    output[row0:row1, col0:col1] = bilinear_sample(input_image, sx, sy)


def fisheye_significance(
    input_image: np.ndarray,
    config: LensConfig,
    ratio: float,
    block: tuple[int, int] = DEFAULT_BLOCK,
    runtime: TaskRuntime | None = None,
) -> KernelRun:
    """Run the significance-driven fisheye correction at the given ratio."""
    input_image = np.asarray(input_image, dtype=np.float64)
    rt = runtime or TaskRuntime(energy_model=ENERGY_MODEL)
    output = np.zeros((config.out_height, config.out_width), dtype=np.float64)

    block_rows, block_cols = block
    for row0 in range(0, config.out_height, block_rows):
        row1 = min(row0 + block_rows, config.out_height)
        for col0 in range(0, config.out_width, block_cols):
            col1 = min(col0 + block_cols, config.out_width)
            pixels = float((row1 - row0) * (col1 - col0))
            rt.submit(
                _accurate_block,
                args=(output, input_image, config, row0, row1, col0, col1),
                significance=block_significance(config, row0, row1, col0, col1),
                approx_fn=_approx_block,
                label="fisheye",
                work=_OPS_ACCURATE_PER_PIXEL * pixels,
                approx_work=_OPS_APPROX_PER_PIXEL * pixels + 4 * OPS_INVERSE_MAP,
            )
    group = rt.taskwait("fisheye", ratio=ratio)
    return KernelRun(
        output=output,
        energy=group.energy,
        ratio=ratio,
        variant="significance",
        stats=group.stats,
    )
