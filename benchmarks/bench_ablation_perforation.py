"""Ablation: perforation schemes and skipped-row handling.

Two design knobs of the baseline (DESIGN.md §6):

* interleaved vs truncated vs modulo iteration selection;
* zero-fill vs replicate-fill for Sobel's skipped rows.

Interleaving spreads the damage; replication patches it — both improve
the baseline, neither closes the gap to the significance-driven version.
"""

import pytest

from repro.kernels.sobel import sobel_perforated, sobel_reference, sobel_significance
from repro.metrics import psnr
from repro.perforation import interleaved, modulo, truncated


def test_ablation_sobel_fill_modes(benchmark, bench_image):
    ref = sobel_reference(bench_image)

    def run():
        zero = sobel_perforated(bench_image, 0.5, fill="zero")
        replicate = sobel_perforated(bench_image, 0.5, fill="replicate")
        sig = sobel_significance(bench_image, 0.5)
        return (
            psnr(ref, zero.output),
            psnr(ref, replicate.output),
            psnr(ref, sig.output),
        )

    q_zero, q_replicate, q_sig = benchmark(run)

    assert q_replicate > q_zero  # patching helps the baseline
    assert q_sig > q_zero  # but significance still wins vs plain perforation
    benchmark.extra_info["psnr"] = {
        "perforation_zero_fill": round(q_zero, 2),
        "perforation_replicate": round(q_replicate, 2),
        "significance": round(q_sig, 2),
    }


def test_ablation_schemes(benchmark):
    def run():
        return {
            "interleaved": interleaved(1000, 0.37),
            "truncated": truncated(1000, 0.37),
            "modulo": modulo(1000, 0.37),
        }

    picks = benchmark(run)

    # Interleaved spreads evenly: max gap close to 1/ratio.
    gaps = [b - a for a, b in zip(picks["interleaved"], picks["interleaved"][1:])]
    assert max(gaps) <= 4
    # Truncated leaves the tail completely unprocessed.
    assert max(picks["truncated"]) == len(picks["truncated"]) - 1
    # Modulo realises the nearest 1/k ratio.
    assert len(picks["modulo"]) == pytest.approx(1000 / 3, abs=1)
