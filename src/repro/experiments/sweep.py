"""Ratio-sweep harness for Figure 7.

For each benchmark, runs the significance-driven version and (where
applicable) the loop-perforated baseline at the paper's ratio grid
{0, 0.2, 0.5, 0.8, 1.0}, scoring output quality against the fully
accurate execution and recording modelled energy.  The result rows are
exactly the series of one Figure 7 panel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.kernels.common import KernelRun, QUALITY_PSNR, QUALITY_REL_ERR

__all__ = ["RATIOS", "SweepPoint", "SweepResult", "run_sweep", "format_sweep"]

RATIOS = (0.0, 0.2, 0.5, 0.8, 1.0)

# PSNR is capped for display: identical outputs give infinite PSNR, which
# the paper's finite axes simply do not show.
PSNR_CAP = 99.0


@dataclass
class SweepPoint:
    """One (ratio, variant) measurement."""

    ratio: float
    variant: str
    quality: float
    joules: float


@dataclass
class SweepResult:
    """One Figure 7 panel."""

    benchmark: str
    quality_kind: str  # QUALITY_PSNR or QUALITY_REL_ERR
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, variant: str) -> list[SweepPoint]:
        """Points of one variant, by ascending ratio."""
        return sorted(
            (p for p in self.points if p.variant == variant),
            key=lambda p: p.ratio,
        )

    def quality_at(self, ratio: float, variant: str = "significance") -> float:
        """Quality of a variant at a ratio."""
        for p in self.series(variant):
            if math.isclose(p.ratio, ratio):
                return p.quality
        raise KeyError(f"no {variant} point at ratio {ratio}")

    def energy_at(self, ratio: float, variant: str = "significance") -> float:
        """Energy of a variant at a ratio."""
        for p in self.series(variant):
            if math.isclose(p.ratio, ratio):
                return p.joules
        raise KeyError(f"no {variant} point at ratio {ratio}")

    @property
    def energy_reduction(self) -> float:
        """Fractional energy saving of full-approx vs full-accurate."""
        full = self.energy_at(1.0)
        approx = self.energy_at(0.0)
        return (full - approx) / full if full > 0 else 0.0

    def mean_quality_gap(self) -> float | None:
        """Mean sig-minus-perforation quality gap over interior ratios.

        dB for PSNR benchmarks (positive = significance better); for
        relative-error benchmarks returns the mean ratio perf/sig
        (values > 1 = significance better).  ``None`` when there is no
        perforation series (BlackScholes).
        """
        perf = self.series("perforation")
        if not perf:
            return None
        gaps = []
        for p in perf:
            if p.ratio in (1.0,):
                continue
            sig_q = self.quality_at(p.ratio)
            if self.quality_kind == QUALITY_PSNR:
                gaps.append(sig_q - p.quality)
            else:
                gaps.append(p.quality / max(sig_q, 1e-30))
        return sum(gaps) / len(gaps) if gaps else None


def run_sweep(
    benchmark: str,
    quality_kind: str,
    reference_output,
    significance_fn: Callable[[float], KernelRun],
    perforation_fn: Callable[[float], KernelRun] | None,
    quality_fn: Callable[[object, object], float],
    ratios: tuple[float, ...] = RATIOS,
) -> SweepResult:
    """Run both variants over the ratio grid and score them."""
    result = SweepResult(benchmark=benchmark, quality_kind=quality_kind)
    for ratio in ratios:
        sig_run = significance_fn(ratio)
        quality = quality_fn(reference_output, sig_run.output)
        if quality_kind == QUALITY_PSNR:
            quality = min(quality, PSNR_CAP)
        result.points.append(
            SweepPoint(ratio, "significance", quality, sig_run.joules)
        )
        if perforation_fn is not None:
            perf_run = perforation_fn(ratio)
            quality = quality_fn(reference_output, perf_run.output)
            if quality_kind == QUALITY_PSNR:
                quality = min(quality, PSNR_CAP)
            result.points.append(
                SweepPoint(ratio, "perforation", quality, perf_run.joules)
            )
    return result


def format_sweep(result: SweepResult) -> str:
    """Render one panel as the table the paper's plot encodes."""
    unit = "PSNR dB" if result.quality_kind == QUALITY_PSNR else "rel.err"
    lines = [
        f"{result.benchmark} — quality ({unit}) and energy (J) vs accurate ratio",
        f"{'ratio':>6} | {'sig quality':>12} {'sig energy':>11} | "
        f"{'perf quality':>12} {'perf energy':>11}",
        "-" * 62,
    ]
    perf = {p.ratio: p for p in result.series("perforation")}
    for p in result.series("significance"):
        pp = perf.get(p.ratio)
        if result.quality_kind == QUALITY_PSNR:
            fmt = lambda q: f"{q:12.2f}"
        else:
            fmt = lambda q: f"{q * 100:11.4f}%"
        row = f"{p.ratio:>6.2f} | {fmt(p.quality)} {p.joules:11.1f} | "
        if pp:
            row += f"{fmt(pp.quality)} {pp.joules:11.1f}"
        else:
            row += f"{'n/a':>12} {'n/a':>11}"
        lines.append(row)
    return "\n".join(lines)
