#!/usr/bin/env python
"""Energy-constrained streaming — second tenant of the analysis service.

The paper's motivating scenario (video analytics under a power envelope):
a Sobel edge-detection stage must process a stream of frames without
exceeding a per-frame energy budget.  The pipeline is a tenant of the
significance service (:mod:`repro.serve`, spawned in-process so the
example runs offline):

* before streaming, it asks ``POST /tune`` with its energy budget for
  the best starting ``taskwait(ratio=...)`` — no cold-start
  over/undershoot while the controller finds the operating point;
* a :class:`RatioController` then adjusts the ratio frame by frame from
  measured energy, trading quality for energy only as much as the budget
  requires;
* after the run it scrapes ``GET /metrics`` to show what the service
  observed (request counts, cache hits, per-endpoint latency).

Run:  python examples/streaming_pipeline.py [--frames 12] [--budget-frac 0.75]
"""

import argparse

from repro.images import natural_image
from repro.kernels.sobel import sobel_reference, sobel_significance
from repro.metrics import psnr
from repro.runtime import RatioController
from repro.serve import ServiceThread


def make_stream(size: int, frames: int):
    """Synthetic video: a drifting natural scene."""
    base = natural_image(size + frames, size + frames, seed=5)
    for t in range(frames):
        yield base[t : t + size, t : t + size]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument(
        "--budget-frac",
        type=float,
        default=0.75,
        help="per-frame energy budget as a fraction of the accurate cost",
    )
    args = parser.parse_args()

    frames = list(make_stream(args.size, args.frames))
    full_cost = sobel_significance(frames[0], 1.0).joules
    budget = args.budget_frac * full_cost

    # Ask the service for the best starting knob under our budget (the
    # tuner's probe workload scales with the frame size, so energy per
    # frame is comparable).
    with ServiceThread() as service:
        client = service.client()
        tuned = client.tune(
            "sobel", energy_budget=budget, size=args.size
        )
        start_ratio = tuned["taskwait"]["ratio"]
        print(
            f"service tuned start ratio {start_ratio:.3f} for budget "
            f"{budget:.1f} J/frame ({len(tuned['probes'])} probes, "
            f"quality {tuned['quality']:.1f} dB)"
        )

        controller = RatioController(
            energy_budget=budget, gain=0.5, initial_ratio=start_ratio
        )

        print(
            f"streaming {args.frames} frames of {args.size}x{args.size}; "
            f"budget {budget:.1f} J/frame (accurate cost {full_cost:.1f} J)"
        )
        print(f"{'frame':>5} {'ratio':>7} {'energy':>9} {'PSNR':>8}")
        for t, frame in enumerate(frames):
            ratio = controller.ratio
            run = sobel_significance(frame, ratio)
            controller.observe(run.joules)
            quality = min(psnr(sobel_reference(frame), run.output), 99.0)
            print(
                f"{t:>5} {ratio:>7.3f} {run.joules:>7.1f} J {quality:>6.1f} dB"
            )

        print(
            f"\nmean energy over the last 4 frames: "
            f"{controller.mean_energy(last=4):.1f} J "
            f"({'settled' if controller.settled else 'still adapting'})"
        )

        # What did the service see?
        exposition = client.metrics()
        interesting = (
            "repro_serve_requests_total",
            "repro_serve_latency_ms_tune_count",
            "repro_trace_cache_replays_total",
        )
        print("\nservice metrics:")
        for line in exposition.splitlines():
            if line.startswith(interesting):
                print(f"  {line}")

        # The flight recorder keeps one summary per request; the slowest
        # one's trace id is the handle for GET /debug/trace/<id>.
        recorded = client.debug_requests()["requests"]
        if recorded:
            slowest = max(recorded, key=lambda r: r["duration_ms"])
            print(
                f"\nslowest request the service saw: {slowest['path']} at "
                f"{slowest['duration_ms']:.1f} ms "
                f"(trace {slowest['trace_id']})"
            )


if __name__ == "__main__":
    main()
