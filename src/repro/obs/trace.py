"""Nestable wall-clock spans with a process-global enable flag.

A *span* measures one stage of the pipeline (``scorpio.simplify``, one
``ad.forward`` replay, one ``runtime.taskwait`` barrier...).  Spans nest:
a span opened while another is active becomes its child, so a profiled
run produces a tree mirroring the call structure.  Completed *root* spans
land in a bounded in-memory ring buffer (oldest evicted first) read back
via :func:`spans`.

Tracing is **disabled by default** and the disabled path is engineered to
be a single attribute check: :func:`span` loads one module global, tests
one slot attribute and returns a shared no-op context manager.  No
``Span`` object, no clock read, no lock.  Instrumented hot paths
(``CompiledTape.forward``, adjoint sweeps, per-task execution) therefore
cost a few hundred nanoseconds per call when tracing is off — bounded by
``tests/obs/test_overhead.py`` and measured honestly by
``benchmarks/bench_obs_overhead.py``.

Span stacks are per-thread (the :class:`~repro.runtime.executor.ThreadedExecutor`
runs task spans on worker threads); the ring buffer is shared and
lock-guarded, but the lock is only ever taken while tracing is enabled.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "span",
    "traced",
    "spans",
    "clear",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "set_ring_capacity",
    "ring_capacity",
]

_DEFAULT_RING_CAPACITY = 512


class _State:
    """The one-attribute gate every instrumented call site checks."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<null span>"


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed region of the pipeline.

    Attributes:
        name: dotted stage name (``"scorpio.scan"``).
        attrs: key/value annotations (``{"nodes": 16384}``).
        elapsed_seconds: wall time between ``__enter__`` and ``__exit__``
            (``None`` while still open).
        children: spans opened (and closed) while this one was active.
    """

    __slots__ = ("name", "attrs", "children", "elapsed_seconds", "_t0")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.elapsed_seconds: float | None = None
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        _LOCAL_STACK().append(self)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = perf_counter() - self._t0
        self.elapsed_seconds = elapsed
        stack = _LOCAL_STACK()
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans): pop up to and including this span.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].children.append(self)
        else:
            with _RING_LOCK:
                _RING.append(self)
        return False

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by (closed) child spans."""
        total = self.elapsed_seconds or 0.0
        return max(
            0.0,
            total - sum(c.elapsed_seconds or 0.0 for c in self.children),
        )

    def walk(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        t = (
            f"{self.elapsed_seconds * 1e3:.3f}ms"
            if self.elapsed_seconds is not None
            else "open"
        )
        return f"Span({self.name!r}, {t}, children={len(self.children)})"


_THREAD_LOCAL = threading.local()


def _LOCAL_STACK() -> list[Span]:
    stack = getattr(_THREAD_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _THREAD_LOCAL.stack = stack
    return stack


_RING_LOCK = threading.Lock()
_RING: deque[Span] = deque(maxlen=_DEFAULT_RING_CAPACITY)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any) -> Any:
    """Open a span (use as a context manager).

    While tracing is disabled this returns a shared no-op object without
    reading the clock or allocating — the single-attribute-check fast
    path.  Avoid passing ``attrs`` at hot call sites (building the kwargs
    dict is the only cost that cannot be skipped); use
    :meth:`Span.set` inside the ``with`` block instead.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator flavour of :func:`span` (span per call, function name by
    default)."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            with Span(span_name, {}):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate


def enabled() -> bool:
    """Whether spans are being recorded."""
    return _STATE.enabled


def set_enabled(value: bool) -> bool:
    """Set the global tracing flag; returns the previous value."""
    previous = _STATE.enabled
    _STATE.enabled = bool(value)
    return previous


def enable() -> None:
    """Turn span recording on."""
    _STATE.enabled = True


def disable() -> None:
    """Turn span recording off (the default)."""
    _STATE.enabled = False


def spans() -> list[Span]:
    """Completed root spans currently in the ring buffer (oldest first)."""
    with _RING_LOCK:
        return list(_RING)


def clear() -> None:
    """Drop all recorded spans (open span stacks are left alone)."""
    with _RING_LOCK:
        _RING.clear()


def ring_capacity() -> int:
    """Maximum number of retained root spans."""
    return _RING.maxlen or 0


def set_ring_capacity(capacity: int) -> None:
    """Resize the ring buffer, keeping the newest spans."""
    global _RING
    if capacity < 1:
        raise ValueError("ring capacity must be >= 1")
    with _RING_LOCK:
        _RING = deque(_RING, maxlen=capacity)
