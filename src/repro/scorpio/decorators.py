"""Decorator sugar for the analysis API.

For library users who want significance analysis as a one-liner on an
existing function::

    @significance(x=(0.0, 1.0), y=(2.0, 3.0))
    def model(x, y):
        return op.exp(x) * y

    report = model.analyse()          # full SignificanceReport
    model.ranking()                   # [(label, S), ...]
    model(0.5, 2.5)                   # still callable as plain Python

The decorated function remains an ordinary callable; the analysis runs
lazily on first use and is cached (`.reanalyse()` forces a fresh run,
e.g. after changing `.ranges`).
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.intervals import Interval

from .api import analyse_function
from .report import SignificanceReport

__all__ = ["significance", "AnalysedFunction"]


class AnalysedFunction:
    """A callable bundled with its significance analysis."""

    def __init__(
        self,
        fn: Callable[..., Any],
        ranges: dict[str, Interval],
        delta: float = 1e-6,
    ):
        functools.update_wrapper(self, fn)
        self._fn = fn
        self.ranges = dict(ranges)
        self.delta = delta
        self._report: SignificanceReport | None = None

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._fn(*args, **kwargs)

    # ------------------------------------------------------------------
    def analyse(self) -> SignificanceReport:
        """Run (or return the cached) analysis over the declared ranges."""
        if self._report is None:
            names = list(self.ranges)
            self._report = analyse_function(
                self._fn,
                [self.ranges[name] for name in names],
                names=names,
                delta=self.delta,
            )
        return self._report

    def reanalyse(self) -> SignificanceReport:
        """Discard the cache and analyse again (after editing ``ranges``)."""
        self._report = None
        return self.analyse()

    def ranking(self) -> list[tuple[str, float]]:
        """Labelled significances, most significant first."""
        return self.analyse().ranking()

    def input_significances(self) -> dict[str, float]:
        """Significance per declared input."""
        return self.analyse().input_significances()

    def report_text(self) -> str:
        """The ANALYSE() text report."""
        return self.analyse().to_text()


def significance(
    _fn: Callable[..., Any] | None = None,
    *,
    delta: float = 1e-6,
    **ranges: Interval | tuple[float, float],
) -> Callable[[Callable[..., Any]], AnalysedFunction] | AnalysedFunction:
    """Attach input ranges (keyword per parameter) to a function.

    Ranges may be :class:`Interval` instances or ``(lo, hi)`` tuples.
    Every declared name must be a parameter of the function, and every
    positional parameter must be declared (the analysis needs a range for
    each input).
    """

    def wrap(fn: Callable[..., Any]) -> AnalysedFunction:
        import inspect

        parameters = list(inspect.signature(fn).parameters)
        unknown = set(ranges) - set(parameters)
        if unknown:
            raise TypeError(
                f"range(s) declared for unknown parameter(s): {sorted(unknown)}"
            )
        missing = [p for p in parameters if p not in ranges]
        if missing:
            raise TypeError(
                f"missing range declaration for parameter(s): {missing}"
            )
        coerced = {
            name: spec if isinstance(spec, Interval) else Interval(*spec)
            for name, spec in ranges.items()
        }
        # Preserve the function's parameter order.
        ordered = {name: coerced[name] for name in parameters}
        return AnalysedFunction(fn, ordered, delta=delta)

    if _fn is not None:  # pragma: no cover - bare-decorator misuse guard
        raise TypeError(
            "significance() requires range keyword arguments: "
            "@significance(x=(0, 1))"
        )
    return wrap
