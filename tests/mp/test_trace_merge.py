"""Property: merged span forests stay coherent across pool boundaries.

For *any* chunking of a request's tasks into batches and *any* worker
count, the spans that come home from the pool must merge back into
exactly one root per request — the request's own span, with every
worker-side ``runtime.task`` span re-linkable under it by parent id and
stamped with the originating trace id.  This is the invariant the
``/debug/trace/<id>`` endpoint's forest assembly relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mp import ProcessExecutor
from repro.obs import context, trace
from repro.runtime import ExecutionMode, Task, ThreadedExecutor


def square(i):
    return i * i


@pytest.fixture(scope="module")
def tracing():
    previous = trace.set_enabled(True)
    yield
    trace.set_enabled(previous)
    trace.clear()


@pytest.fixture(scope="module")
def pools():
    """One process pool per worker count, shared across examples."""
    cache = {}

    def get(workers):
        if workers not in cache:
            cache[workers] = ProcessExecutor(
                max_workers=workers, mp_context="fork"
            )
        return cache[workers]

    yield get
    for pool in cache.values():
        pool.close()


def _chunks(items, size):
    return [items[i : i + size] for i in range(0, len(items), size)]


def _run_request(executor, n_tasks, chunk_size):
    """One traced 'request': n_tasks squares, submitted in chunks."""
    ctx = context.new_trace()
    values = []
    with context.use(ctx):
        with trace.span("mp.request"):
            tasks = [Task(fn=square, args=(i,), task_id=i) for i in range(n_tasks)]
            for chunk in _chunks(tasks, chunk_size):
                results = executor.run(
                    chunk, [ExecutionMode.ACCURATE] * len(chunk)
                )
                values.extend(r.value for r in results)
    assert values == [i * i for i in range(n_tasks)]
    return ctx.trace_id


def _assert_one_root_per_request(trace_id, n_tasks, expect_worker_spans):
    matching = trace.spans_for_trace(trace_id)
    by_id = {}
    for root in matching:
        for sp in root.walk():
            assert sp.trace_id == trace_id  # no foreign spans leak in
            if sp.span_id:
                by_id[sp.span_id] = sp

    # Re-link adopted roots by parent id (what _assemble_trace does).
    merged_roots = [
        root
        for root in matching
        if not root.parent_id or root.parent_id not in by_id
    ]
    assert len(merged_roots) == 1, (
        f"expected exactly one root, got "
        f"{[(r.name, r.parent_id) for r in merged_roots]}"
    )
    assert merged_roots[0].name == "mp.request"

    if expect_worker_spans:
        workers = [
            sp
            for root in matching
            for sp in root.walk()
            if sp.name == "runtime.task"
        ]
        assert len(workers) == n_tasks
        for sp in workers:
            assert sp.trace_id == trace_id
            assert sp.attrs["worker_pid"] == sp.pid
            # Every worker span's parent is present in the same forest.
            assert sp.parent_id in by_id


class TestMergedForestProperty:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_tasks=st.integers(min_value=1, max_value=6),
        chunk_size=st.integers(min_value=1, max_value=6),
        n_requests=st.integers(min_value=1, max_value=3),
    )
    def test_process_pool_any_chunking(
        self, tracing, pools, workers, n_tasks, chunk_size, n_requests
    ):
        trace.clear()
        executor = pools(workers)
        trace_ids = [
            _run_request(executor, n_tasks, chunk_size)
            for _ in range(n_requests)
        ]
        assert len(set(trace_ids)) == n_requests
        for trace_id in trace_ids:
            _assert_one_root_per_request(
                trace_id, n_tasks, expect_worker_spans=True
            )

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        workers=st.integers(min_value=1, max_value=4),
        n_tasks=st.integers(min_value=1, max_value=8),
        chunk_size=st.integers(min_value=1, max_value=8),
    )
    def test_thread_pool_any_chunking(
        self, tracing, workers, n_tasks, chunk_size
    ):
        """The threaded executor upholds the same invariant (its task
        spans root on worker threads and re-link by id the same way)."""
        trace.clear()
        executor = ThreadedExecutor(max_workers=workers)
        trace_id = _run_request(executor, n_tasks, chunk_size)
        _assert_one_root_per_request(
            trace_id, n_tasks, expect_worker_spans=False
        )
