"""Loop-perforated Fisheye baseline (Section 4.2).

"In Fisheye we drop the computation of some of the output image rows
similarly to Sobel": interleaved row perforation, skipped rows keep the
output buffer's zeros (plain loop-perforation semantics).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelRun
from repro.perforation import perforated_indices
from repro.runtime import perforation_energy

from .bicubic import OPS_BICUBIC, bicubic_sample
from .geometry import OPS_INVERSE_MAP, LensConfig, inverse_map_grid
from .tasks import ENERGY_MODEL

__all__ = ["fisheye_perforated"]

_OPS_PER_PIXEL = OPS_INVERSE_MAP + OPS_BICUBIC


def fisheye_perforated(
    input_image: np.ndarray, config: LensConfig, ratio: float
) -> KernelRun:
    """Run the row-perforated fisheye correction."""
    input_image = np.asarray(input_image, dtype=np.float64)
    h, w = config.out_height, config.out_width
    executed = perforated_indices(h, ratio)
    output = np.zeros((h, w), dtype=np.float64)

    if executed:
        rows = np.array(executed, dtype=np.float64)
        ys, xs = np.meshgrid(rows, np.arange(w, dtype=np.float64), indexing="ij")
        sx, sy = inverse_map_grid(config, xs, ys)
        output[executed, :] = bicubic_sample(input_image, sx, sy)

    executed_work = _OPS_PER_PIXEL * w * len(executed)
    energy = perforation_energy(ENERGY_MODEL, executed_work)
    return KernelRun(
        output=output, energy=energy, ratio=ratio, variant="perforation"
    )
