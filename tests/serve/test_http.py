"""Unit tests for the asyncio HTTP layer (routing, parsing, errors)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    HttpServer,
    Request,
    Router,
    json_response,
)


def run(coro):
    return asyncio.run(coro)


def make_router() -> Router:
    router = Router()

    async def hello(request: Request):
        return json_response({"hello": "world"})

    async def echo(request: Request):
        return json_response({"echo": request.json()})

    router.get("/hello", hello)
    router.post("/echo", echo)
    return router


async def raw_exchange(server: HttpServer, payload: bytes) -> bytes:
    """Send raw bytes to a started server, return the full response."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return data


def exchange(payload: bytes) -> bytes:
    async def go():
        server = HttpServer(make_router())
        await server.start()
        try:
            return await raw_exchange(server, payload)
        finally:
            await server.close()

    return run(go())


def parse_response(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class TestParsing:
    def test_get_roundtrip(self):
        raw = exchange(b"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
        status, headers, body = parse_response(raw)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"hello": "world"}
        assert int(headers["content-length"]) == len(body)

    def test_post_json_body(self):
        body = json.dumps({"a": 1}).encode()
        raw = exchange(
            b"POST /echo HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        status, _, out = parse_response(raw)
        assert status == 200
        assert json.loads(out) == {"echo": {"a": 1}}

    def test_malformed_request_line(self):
        status, _, body = parse_response(exchange(b"NONSENSE\r\n\r\n"))
        assert status == 400
        assert "malformed request line" in json.loads(body)["error"]["detail"]

    def test_bad_content_length(self):
        raw = exchange(
            b"POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        )
        status, _, body = parse_response(raw)
        assert status == 400
        assert "Content-Length" in json.loads(body)["error"]["detail"]

    def test_unknown_path_is_404(self):
        status, _, body = parse_response(
            exchange(b"GET /nope HTTP/1.1\r\n\r\n")
        )
        assert status == 404
        assert "/nope" in json.loads(body)["error"]["detail"]

    def test_wrong_method_is_405(self):
        status, _, body = parse_response(
            exchange(b"GET /echo HTTP/1.1\r\n\r\n")
        )
        assert status == 405

    def test_invalid_json_body_is_400(self):
        raw = exchange(
            b"POST /echo HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{"
        )
        status, _, body = parse_response(raw)
        assert status == 400
        assert "invalid JSON" in json.loads(body)["error"]["detail"]

    def test_body_too_large_is_413(self):
        async def go():
            server = HttpServer(make_router(), max_body=64)
            await server.start()
            try:
                return await raw_exchange(
                    server,
                    b"POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
                )
            finally:
                await server.close()

        status, _, body = parse_response(run(go()))
        assert status == 413

    def test_keep_alive_serves_two_requests(self):
        async def go():
            server = HttpServer(make_router())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"GET /hello HTTP/1.1\r\n\r\n")
                await writer.drain()
                first = await read_one_response(reader)
                writer.write(b"GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
                await writer.drain()
                second = await reader.read()
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.close()

        first, second = run(go())
        assert parse_response(first)[0] == 200
        status, headers, _ = parse_response(second)
        assert status == 200
        assert headers["connection"] == "close"


async def read_one_response(reader: asyncio.StreamReader) -> bytes:
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    body = await reader.readexactly(length)
    return head + body


class TestRouter:
    def test_resolve_distinguishes_404_405(self):
        router = make_router()
        with pytest.raises(HttpError) as exc404:
            router.resolve("GET", "/missing")
        assert exc404.value.status == 404
        with pytest.raises(HttpError) as exc405:
            router.resolve("DELETE", "/hello")
        assert exc405.value.status == 405

    def test_paths_listing(self):
        assert make_router().paths() == ["/echo", "/hello"]


class TestHandlerErrors:
    def test_handler_exception_becomes_500(self):
        router = Router()

        async def boom(request: Request):
            raise RuntimeError("kaboom")

        router.get("/boom", boom)

        async def go():
            server = HttpServer(router)
            await server.start()
            try:
                return await raw_exchange(
                    server, b"GET /boom HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()

        status, _, body = parse_response(run(go()))
        assert status == 500
        assert "kaboom" in json.loads(body)["error"]["detail"]

    def test_http_error_keeps_status(self):
        router = Router()

        async def teapot(request: Request):
            raise HttpError(400, "not enough tea")

        router.get("/tea", teapot)

        async def go():
            server = HttpServer(router)
            await server.start()
            try:
                return await raw_exchange(server, b"GET /tea HTTP/1.1\r\n\r\n")
            finally:
                await server.close()

        status, _, body = parse_response(run(go()))
        assert status == 400
        assert json.loads(body)["error"]["detail"] == "not enough tea"
