"""Compiled tape: structure-of-arrays DynDFG with vectorized reverse sweeps.

:class:`CompiledTape` freezes a recorded :class:`~repro.ad.tape.Tape` into
flat NumPy arrays — int32 opcodes, CSR parent/partial arrays
(``row_ptr``/``parent_idx``/``partial_lo``/``partial_hi``), value lo/hi
arrays — plus a precomputed *level schedule* so the reverse sweep (Eq. 7–9
of the paper) can process whole levels of the graph per NumPy call instead
of one Python ``Node`` at a time.

The object tape remains the reference oracle; the compiled sweeps are
engineered to be **bit-identical** to it, including the subtle parts:

* the interval endpoint rule uses the same four products in the same
  order, with the same ``0·inf → NaN → 0`` cleanup and the same fold-left
  min/max tie-breaking as :meth:`Interval.__mul__`;
* outward rounding is one ``nextafter`` per bound per operation, applied
  at exactly the points the object sweep applies it (product and
  accumulation), and honours the global
  :func:`repro.intervals.rounding.rounding_enabled` flag at sweep time;
* consumers with an exactly-zero adjoint are skipped (the object sweep's
  ``_is_zero`` shortcut is bit-relevant under outward rounding);
* per-parent accumulation order matches the object sweep: contributions
  arrive in descending consumer index, and for one consumer in recorded
  parent order.

The order guarantee comes from the schedule.  Each node gets a *depth*
``d(j) = 0`` if it has no consumers, else ``1 + max(d(consumer))``; a
node's adjoint is final once every consumer (all at strictly smaller
depth) has contributed.  Every edge ``j → parent`` stores its contribution
when ``j``'s level is processed; incoming edges of each destination are
ranked by ``(-consumer index, parent position)`` and applied rank by rank,
so within one vectorized apply step all destinations are distinct (plain
fancy-indexed gather/add/scatter, no ``np.add.at``) and each destination
sees its contributions in exactly the object sweep's order.
"""

from __future__ import annotations

from itertools import chain
from operator import attrgetter
from typing import Any, Mapping, Sequence

import numpy as np

from repro.intervals import Interval, as_interval
from repro.intervals.rounding import rounding_enabled
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

from .tape import Tape

__all__ = ["CompiledTape", "ReplayLanes"]

_C_COMPILES = _metrics.counter("ad.compiles")
_C_SWEEPS = _metrics.counter("ad.compiled_sweeps")
_C_FORWARDS = _metrics.counter("replay.forwards")
_C_FORWARD_LANES = _metrics.counter("replay.forward_lanes")

_NEG_INF = -np.inf
_POS_INF = np.inf

_GET_OP = attrgetter("op")
_GET_VALUE = attrgetter("value")
_GET_PARENTS = attrgetter("parents")
_GET_PARTIALS = attrgetter("partials")
_GET_LABEL = attrgetter("label")


def _csr_gather(row_ptr: np.ndarray, data: np.ndarray, rows: np.ndarray):
    """Concatenate ``data[row_ptr[r]:row_ptr[r+1]]`` for every row in order."""
    starts = row_ptr[rows]
    counts = row_ptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    # Standard repeat/cumsum trick: index k of the output belongs to row i
    # at offset k - cum_starts[i], i.e. data index starts[i] + offset.
    out_idx = np.repeat(starts - np.concatenate(([0], counts[:-1])).cumsum(), counts)
    out_idx += np.arange(total)
    return data[out_idx]


class CompiledTape:
    """A :class:`Tape` frozen into structure-of-arrays form.

    Attributes:
        n: number of nodes.
        opcodes: ``(n,)`` int32 array; index into :attr:`op_names`.
        op_names: interned operation-name table (opcode → name).
        labels: sparse ``{node index: label}`` for registered variables.
        value_lo / value_hi: ``(n,)`` float64 forward-value bounds
            (``lo == hi`` for float tapes and point values).
        value_is_interval: ``(n,)`` bool — whether the original node value
            was an :class:`Interval`.
        row_ptr / parent_idx: CSR edge structure; the parents of node ``j``
            are ``parent_idx[row_ptr[j]:row_ptr[j+1]]`` in recorded order.
        partial_lo / partial_hi: per-edge local partial bounds, parallel to
            :attr:`parent_idx`.
        interval_mode: True when any node value is an :class:`Interval`
            (the same rule the object sweep uses).
        depth: ``(n,)`` consumer-depth level of every node (the sweep
            schedule; 0 = nodes with no consumers).
    """

    def __init__(self, tape: Tape):
        _C_COMPILES.inc()
        with _span("ad.compile") as sp:
            self._compile(tape)
            sp.set(nodes=self.n, edges=self.n_edges)

    def _compile(self, tape: Tape) -> None:
        nodes = tape.nodes
        n = len(nodes)
        self.tape = tape
        self.n = n

        # Bulk column extraction: C-level attrgetter maps pull each field
        # out once, then per-column passes iterate plain lists (no repeated
        # attribute chasing inside the generators).
        ops = list(map(_GET_OP, nodes))
        values = list(map(_GET_VALUE, nodes))
        parents_list = list(map(_GET_PARENTS, nodes))
        op_table: dict[str, int] = {}
        self.opcodes = np.fromiter(
            (op_table.setdefault(o, len(op_table)) for o in ops),
            dtype=np.int32,
            count=n,
        )
        self.op_names = list(op_table)
        value_is_interval = np.fromiter(
            (isinstance(v, Interval) for v in values), dtype=bool, count=n
        )
        self.value_lo = np.fromiter(
            (v.lo if isinstance(v, Interval) else v for v in values),
            dtype=np.float64,
            count=n,
        )
        self.value_hi = np.fromiter(
            (v.hi if isinstance(v, Interval) else v for v in values),
            dtype=np.float64,
            count=n,
        )
        self.value_is_interval = value_is_interval
        self.interval_mode = bool(value_is_interval.any())
        self.labels = {
            j: label
            for j, label in enumerate(map(_GET_LABEL, nodes))
            if label is not None
        }

        counts = np.fromiter(
            map(len, parents_list), dtype=np.int64, count=n
        )
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        e = int(row_ptr[n])
        self.row_ptr = row_ptr
        self.n_edges = e
        self.parent_idx = np.fromiter(
            chain.from_iterable(parents_list), dtype=np.int64, count=e
        )
        partials = list(chain.from_iterable(map(_GET_PARTIALS, nodes)))
        self.partial_lo = np.fromiter(
            (p.lo if isinstance(p, Interval) else p for p in partials),
            dtype=np.float64,
            count=e,
        )
        self.partial_hi = np.fromiter(
            (p.hi if isinstance(p, Interval) else p for p in partials),
            dtype=np.float64,
            count=e,
        )

        edge_src = np.repeat(np.arange(n, dtype=np.int64), counts)
        self._edge_src = edge_src
        if e and not (
            (self.parent_idx >= 0).all() and (self.parent_idx < edge_src).all()
        ):
            bad = int(
                np.flatnonzero(
                    (self.parent_idx < 0) | (self.parent_idx >= edge_src)
                )[0]
            )
            raise ValueError(
                f"node {int(edge_src[bad])} parent "
                f"{int(self.parent_idx[bad])} breaks topological order"
            )
        self._build_schedule()
        self._fplan: Any = None

    @classmethod
    def from_tape(cls, tape: Tape) -> "CompiledTape":
        """Freeze ``tape`` (alias of the constructor, for symmetry)."""
        return cls(tape)

    @classmethod
    def from_arrays(
        cls,
        *,
        opcodes: np.ndarray,
        op_names: Sequence[str],
        value_lo: np.ndarray,
        value_hi: np.ndarray,
        value_is_interval: np.ndarray,
        row_ptr: np.ndarray,
        parent_idx: np.ndarray,
        partial_lo: np.ndarray,
        partial_hi: np.ndarray,
        depth: np.ndarray | None = None,
        labels: Mapping[int, str] | None = None,
        guards: Sequence[tuple] = (),
        aux: Mapping[int, Any] | None = None,
    ) -> "CompiledTape":
        """Rebuild a compiled tape directly from its frozen columns.

        The inverse of freezing: a worker that receives a tape's
        structure-of-arrays (e.g. zero-copy views over :mod:`repro.mp`
        shared memory) reconstructs a fully functional ``CompiledTape``
        without ever having seen the object tape.  ``guards`` and ``aux``
        carry the only object-tape state replay needs — the recorded
        comparison outcomes and the folded constants of constant-operand
        binaries / clip bounds — installed on a minimal stub standing in
        for the original :class:`~repro.ad.tape.Tape`.

        Arrays are adopted, not copied.  Read-only views are fine for the
        sweeps and for :meth:`forward_lanes` (which never writes the
        tape); the in-place :meth:`forward` path needs writable
        value/partial arrays.  Passing the precomputed ``depth`` column
        skips the Python depth pass, leaving only vectorized schedule
        construction on the worker side.
        """
        self = cls.__new__(cls)
        n = int(opcodes.shape[0])
        self.tape = _StubTape(guards, aux)
        self.n = n
        self.opcodes = opcodes
        self.op_names = list(op_names)
        self.labels = dict(labels) if labels else {}
        self.value_lo = value_lo
        self.value_hi = value_hi
        self.value_is_interval = value_is_interval
        self.interval_mode = bool(value_is_interval.any())
        self.row_ptr = row_ptr
        self.n_edges = int(row_ptr[n])
        self.parent_idx = parent_idx
        self.partial_lo = partial_lo
        self.partial_hi = partial_hi
        self._edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(row_ptr)
        )
        if depth is None:
            self._build_schedule()
        else:
            self.depth = np.asarray(depth, dtype=np.int64)
            self._finish_schedule()
        self._fplan = None
        return self

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Level schedule
    # ------------------------------------------------------------------
    def _build_schedule(self) -> None:
        n, e = self.n, self.n_edges
        row_ptr = self.row_ptr
        parent_idx = self.parent_idx
        edge_src = self._edge_src

        # Consumer depth: d(j) = 0 without consumers, 1 + max over
        # consumers otherwise.  One descending pass suffices because
        # consumers always have larger indices (checked at compile).
        depth = [0] * n
        parents_seq = parent_idx.tolist()
        ptr = row_ptr.tolist()
        for j in range(n - 1, -1, -1):
            dj1 = depth[j] + 1
            for k in range(ptr[j], ptr[j + 1]):
                p = parents_seq[k]
                if depth[p] < dj1:
                    depth[p] = dj1
        self.depth = np.asarray(depth, dtype=np.int64)
        self._finish_schedule()

    def _finish_schedule(self) -> None:
        """Everything after the depth column: level grouping + caches.

        Split out so :meth:`from_arrays` can adopt a precomputed ``depth``
        (shipped alongside the other frozen columns) and skip the Python
        descending-depth loop above — this part is all vectorized.
        """
        n, e = self.n, self.n_edges
        parent_idx = self.parent_idx
        edge_src = self._edge_src
        n_levels = int(self.depth.max()) + 1 if n else 0
        self.n_levels = n_levels
        self._rank_cache: dict[int, list[np.ndarray]] = {}
        self._split_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._scratch: dict[str, np.ndarray] = {}

        if e == 0:
            self._contrib_schedule = [
                np.empty(0, dtype=np.int64) for _ in range(n_levels)
            ]
            self._apply_flat = [
                np.empty(0, dtype=np.int64) for _ in range(n_levels)
            ]
            return

        # Contribution schedule: edges grouped by the consumer's depth —
        # computed right after that depth's adjoints are finalized.
        d_src = self.depth[edge_src]
        order = np.argsort(d_src, kind="stable")
        bounds = np.searchsorted(d_src[order], np.arange(n_levels + 1))
        self._contrib_schedule = [
            order[bounds[lvl] : bounds[lvl + 1]] for lvl in range(n_levels)
        ]

        # Apply schedule: per destination, incoming edges ordered by
        # (-consumer index, parent position); edge ids are already sorted
        # by (consumer asc, position asc), so lexsort on (edge id asc,
        # consumer desc, destination asc) yields the required order.
        # Grouping that order by the destination's depth (stably) gives one
        # flat edge list per level; within it each destination's run is
        # contiguous and in exactly the object sweep's accumulation order.
        edge_ids = np.arange(e, dtype=np.int64)
        by_dst = np.lexsort((edge_ids, -edge_src, parent_idx))
        d_dst = self.depth[parent_idx[by_dst]]
        order2 = np.argsort(d_dst, kind="stable")
        bounds2 = np.searchsorted(d_dst[order2], np.arange(n_levels + 1))
        self._apply_flat = [
            by_dst[order2[bounds2[lvl] : bounds2[lvl + 1]]]
            for lvl in range(n_levels)
        ]

    def _buf(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """A reusable float64 work array that never escapes the tape.

        Replay-style workloads run many sweeps over one tape; handing the
        sweep temporaries fresh multi-megabyte allocations each call costs
        more in page faults than the arithmetic on them.  Only buffers
        whose contents are dead between calls may live here — anything
        returned to a caller must stay freshly allocated.
        """
        a = self._scratch.get(key)
        if a is None or a.shape != shape:
            a = np.empty(shape, dtype=np.float64)
            self._scratch[key] = a
        return a

    def _first_rest(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """Split a level's flat apply list into (first, rest).

        ``first`` holds each destination's first incoming contribution —
        all destinations distinct, so a plain fancy-indexed add applies
        it.  ``rest`` keeps the remaining edges in flat order, which per
        destination is still ascending accumulation order, so an
        ``np.add.at`` over it continues each destination's fold exactly
        where ``first`` left off.  Most nodes have one consumer, so this
        routes the bulk of the apply work around the slow unbuffered
        ``add.at`` path without changing any accumulation order.
        """
        pair = self._split_cache.get(level)
        if pair is None:
            sel = self._apply_flat[level]
            if sel.size == 0:
                pair = (sel, sel)
            else:
                dst = self.parent_idx[sel]
                first = np.empty(sel.size, dtype=bool)
                first[0] = True
                np.not_equal(dst[1:], dst[:-1], out=first[1:])
                pair = (sel[first], sel[~first])
            self._split_cache[level] = pair
        return pair

    def _rank_steps(self, level: int) -> list[np.ndarray]:
        """Split a level's flat apply list into rank steps.

        Rank k holds each destination's k-th incoming contribution, so all
        destinations within one step are distinct (plain gather/add/scatter
        — needed by the rounded sweep, which must interleave ``nextafter``
        between consecutive adds to the same destination).  Built lazily:
        only rounded sweeps pay for it.
        """
        steps = self._rank_cache.get(level)
        if steps is None:
            sel = self._apply_flat[level]
            k = sel.size
            if k == 0:
                steps = []
            else:
                dst = self.parent_idx[sel]
                new_dst = np.empty(k, dtype=bool)
                new_dst[0] = True
                np.not_equal(dst[1:], dst[:-1], out=new_dst[1:])
                run_starts = np.flatnonzero(new_dst)
                rank = np.arange(k, dtype=np.int64) - np.repeat(
                    run_starts, np.diff(np.append(run_starts, k))
                )
                order = np.argsort(rank, kind="stable")
                rank_sorted = rank[order]
                rbounds = np.searchsorted(
                    rank_sorted, np.arange(int(rank_sorted[-1]) + 2)
                )
                steps = [
                    sel[order[rbounds[r] : rbounds[r + 1]]]
                    for r in range(len(rbounds) - 1)
                ]
            self._rank_cache[level] = steps
        return steps

    # ------------------------------------------------------------------
    # Vectorized reverse sweeps
    # ------------------------------------------------------------------
    def adjoint(
        self, seeds: Mapping[int, Any]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Level-parallel Eq. 7–9 sweep; bit-identical to ``Tape.adjoint``.

        Returns ``(lo, hi)`` arrays of shape ``(n,)``.  For float tapes
        ``lo is hi``.  Unlike the object sweep this does **not** write
        ``node.adjoint`` back — adapters do that when materializing.
        """
        if not seeds:
            raise ValueError("adjoint sweep needs at least one seeded output")
        _C_SWEEPS.inc()
        n = self.n
        interval = self.interval_mode
        rnd = interval and rounding_enabled()
        alo = np.zeros(n, dtype=np.float64)
        ahi = alo if not interval else np.zeros(n, dtype=np.float64)
        for index, seed in seeds.items():
            if not (0 <= index < n):
                raise IndexError(f"seed index {index} outside tape")
            if isinstance(seed, Interval):
                slo, shi = seed.lo, seed.hi
            else:
                slo = shi = float(seed)
            # The object sweep seeds via `zero + seed`, which is an
            # outward-rounded interval add in interval mode.
            if interval:
                new_lo = alo[index] + slo
                new_hi = ahi[index] + shi
                if rnd:
                    new_lo = np.nextafter(new_lo, _NEG_INF)
                    new_hi = np.nextafter(new_hi, _POS_INF)
                alo[index] = new_lo
                ahi[index] = new_hi
            else:
                alo[index] = alo[index] + slo

        with _span("ad.sweep") as sp:
            sp.set(nodes=n, mode="scalar")
            self._sweep(
                alo[:, None], ahi[:, None], interval=interval, rnd=rnd
            )
        lo = alo.reshape(n)
        hi = ahi.reshape(n)
        return (lo, lo) if not interval else (lo, hi)

    def adjoint_vector(
        self, outputs: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Level-parallel vector sweep; bit-identical to
        ``Tape.adjoint_vector`` (endpoint rule, no outward rounding)."""
        m = len(outputs)
        if m == 0:
            raise ValueError("adjoint_vector needs at least one output")
        _C_SWEEPS.inc()
        n = self.n
        lo = np.zeros((n, m), dtype=np.float64)
        hi = np.zeros((n, m), dtype=np.float64)
        for j, idx in enumerate(outputs):
            if not (0 <= idx < n):
                raise IndexError(f"output index {idx} outside tape")
            lo[idx, j] += 1.0
            hi[idx, j] += 1.0
        with _span("ad.sweep") as sp:
            sp.set(nodes=n, mode="vector", outputs=m)
            self._sweep(lo, hi, interval=True, rnd=False, clean_nan=False)
        return lo, hi

    def _sweep(
        self,
        alo: np.ndarray,
        ahi: np.ndarray,
        *,
        interval: bool,
        rnd: bool,
        clean_nan: bool | None = None,
    ) -> None:
        """Run the scheduled reverse sweep in place on ``(n, m)`` bounds.

        ``interval`` selects the endpoint product rule (else the plain
        float product); ``clean_nan`` applies the ``0·inf → 0`` cleanup of
        ``Interval.__mul__`` (defaults to ``interval`` — the vector sweep
        disables it because ``Tape.adjoint_vector`` lets NaN propagate).
        """
        if clean_nan is None:
            clean_nan = interval
        e = self.n_edges
        if e == 0:
            return
        edge_src = self._edge_src
        edge_dst = self.parent_idx
        partial_lo = self.partial_lo
        partial_hi = self.partial_hi
        m = alo.shape[1]
        # Work buffers (reused across sweeps, keyed by m so scalar and
        # vector sweeps on one tape don't evict each other).  `w4`/`w5`
        # for the non-degenerate product path are fetched lazily below.
        bkey = str(m)
        contrib_lo = self._buf("contrib_lo" + bkey, (e, m))
        contrib_hi = (
            contrib_lo
            if not interval
            else self._buf("contrib_hi" + bkey, (e, m))
        )
        g_lo = self._buf("sweep_glo" + bkey, (e, m))
        g_hi = g_lo if not interval else self._buf("sweep_ghi" + bkey, (e, m))
        if interval:
            w1 = self._buf("sweep_w1" + bkey, (e, m))
            w2 = self._buf("sweep_w2" + bkey, (e, m))
            w3 = self._buf("sweep_w3" + bkey, (e, m))
        active = np.zeros(e, dtype=bool)

        for level in range(self.n_levels):
            # 1. Finalize this level's adjoints by applying the stored
            #    incoming contributions.  The flat per-level edge list is
            #    ordered so each destination sees its contributions in
            #    exactly the object sweep's order (consumer desc, parent
            #    position asc); `np.add.at` is unbuffered and processes
            #    indices sequentially, so one call accumulates every
            #    destination in that order.  Rounded sweeps need a
            #    `nextafter` between consecutive adds to one destination,
            #    which `add.at` cannot interleave — they fall back to
            #    rank-by-rank steps (distinct destinations per step).
            flat = self._apply_flat[level]
            if flat.size:
                if rnd:
                    for sel in self._rank_steps(level):
                        sub = sel[active[sel]]
                        if not sub.size:
                            continue
                        dst = edge_dst[sub]
                        new_lo = np.nextafter(
                            alo[dst] + contrib_lo[sub], _NEG_INF
                        )
                        alo[dst] = new_lo
                        new_hi = np.nextafter(
                            ahi[dst] + contrib_hi[sub], _POS_INF
                        )
                        ahi[dst] = new_hi
                else:
                    first, rest = self._first_rest(level)
                    sub = first[active[first]]
                    if sub.size:
                        dst = edge_dst[sub]
                        alo[dst] += contrib_lo[sub]
                        if interval:
                            ahi[dst] += contrib_hi[sub]
                    sub = rest[active[rest]]
                    if sub.size:
                        dst = edge_dst[sub]
                        np.add.at(alo, dst, contrib_lo[sub])
                        if interval:
                            np.add.at(ahi, dst, contrib_hi[sub])

            # 2. Emit this level's outgoing edge contributions (sources
            #    are final now); zero-adjoint sources are skipped exactly
            #    like the object sweep's `_is_zero` shortcut.
            sel = self._contrib_schedule[level]
            if not sel.size:
                continue
            k = sel.size
            src = edge_src[sel]
            salo = np.take(alo, src, axis=0, out=g_lo[:k])
            if interval:
                sahi = np.take(ahi, src, axis=0, out=g_hi[:k])
                act = (salo != 0.0).any(axis=1) | (sahi != 0.0).any(
                    axis=1
                )
            else:
                act = (salo != 0.0).any(axis=1)
            active[sel] = act
            if act.all():
                # All sources live (the usual case once the sweep is a
                # few levels in) — skip the boolean-compress copies.
                sub = sel
            else:
                sub = sel[act]
                if not sub.size:
                    continue
                salo = salo[act]
            plo1 = partial_lo[sub]
            plo = plo1[:, None]
            if not interval:
                contrib_lo[sub] = plo * salo
                continue
            if sub is not sel:
                sahi = sahi[act]
            phi1 = partial_hi[sub]
            phi = phi1[:, None]
            k2 = sub.size
            if plo1.tobytes() == phi1.tobytes():
                # Degenerate partials (bitwise ``plo == phi``, the common
                # case: add/sub and multiply-by-constant nodes).  Then
                # ``p3`` and ``p4`` repeat ``p1`` and ``p2`` bit-for-bit
                # and the fold-left min/max below keeps the first of any
                # tie, so two products suffice — same bits, half the work.
                p1 = np.multiply(plo, salo, out=w1[:k2])
                p2 = np.multiply(plo, sahi, out=w2[:k2])
                if clean_nan:
                    p1[np.isnan(p1)] = 0.0
                    p2[np.isnan(p2)] = 0.0
                    clo = np.where(p2 < p1, p2, p1)
                    chi = np.where(p2 > p1, p2, p1)
                else:
                    clo = np.minimum(p1, p2, out=w3[:k2])
                    chi = np.maximum(p1, p2, out=p2)
                if rnd:
                    clo = np.nextafter(clo, _NEG_INF)
                    chi = np.nextafter(chi, _POS_INF)
                contrib_lo[sub] = clo
                contrib_hi[sub] = chi
                continue
            p1 = np.multiply(plo, salo, out=w1[:k2])
            p2 = np.multiply(plo, sahi, out=w2[:k2])
            p3 = np.multiply(phi, salo, out=self._buf("sweep_w4" + bkey, (e, m))[:k2])
            p4 = np.multiply(phi, sahi, out=self._buf("sweep_w5" + bkey, (e, m))[:k2])
            if clean_nan:
                for p in (p1, p2, p3, p4):
                    p[np.isnan(p)] = 0.0
                # Fold-left min/max with keep-first tie-breaking — the
                # exact semantics of Python's min()/max() over the four
                # products in Interval.__mul__.
                clo = np.where(p2 < p1, p2, p1)
                clo = np.where(p3 < clo, p3, clo)
                clo = np.where(p4 < clo, p4, clo)
                chi = np.where(p2 > p1, p2, p1)
                chi = np.where(p3 > chi, p3, chi)
                chi = np.where(p4 > chi, p4, chi)
            else:
                # Tape.adjoint_vector's exact association order (in-place
                # variants reuse the product buffers; results unchanged).
                clo = np.minimum(p1, p2, out=w3[:k2])
                t = np.minimum(
                    p3, p4, out=self._buf("sweep_w6" + bkey, (e, m))[:k2]
                )
                np.minimum(clo, t, out=clo)
                chi = np.maximum(p1, p2, out=p2)
                np.maximum(p3, p4, out=p4)
                chi = np.maximum(chi, p4, out=chi)
            if rnd:
                clo = np.nextafter(clo, _NEG_INF)
                chi = np.nextafter(chi, _POS_INF)
            contrib_lo[sub] = clo
            contrib_hi[sub] = chi

    def _sweep_lanes(
        self,
        alo: np.ndarray,
        ahi: np.ndarray,
        partial_lo: np.ndarray,
        partial_hi: np.ndarray,
        *,
        rnd: bool,
        clean_nan: bool,
    ) -> None:
        """Reverse sweep over ``(n, L, m)`` bounds with per-lane partials.

        The lane-batched twin of :meth:`_sweep` used by replayed lanes:
        partials come from the replay's ``(e, L)`` arrays instead of the
        recorded per-edge scalars, and the object sweep's zero-adjoint
        shortcut is honoured **per lane** — a lane whose source adjoint is
        exactly zero must contribute nothing to its parents, even though
        other lanes of the same edge do (bit-relevant under rounding, and
        it also stops NaN pollution when ``clean_nan`` is off).
        """
        e = self.n_edges
        if e == 0:
            return
        edge_src = self._edge_src
        edge_dst = self.parent_idx
        n, L, m = alo.shape
        contrib_lo = np.empty((e, L, m), dtype=np.float64)
        contrib_hi = np.empty((e, L, m), dtype=np.float64)
        lane_act = np.zeros((e, L), dtype=bool)
        edge_any = np.zeros(e, dtype=bool)

        for level in range(self.n_levels):
            flat = self._apply_flat[level]
            if flat.size:
                if rnd:
                    # Rank steps keep destinations distinct so a masked
                    # where() can interleave nextafter per accumulation
                    # while leaving inactive lanes untouched.
                    for sel in self._rank_steps(level):
                        sub = sel[edge_any[sel]]
                        if not sub.size:
                            continue
                        dst = edge_dst[sub]
                        mask = lane_act[sub][:, :, None]
                        cur = alo[dst]
                        alo[dst] = np.where(
                            mask,
                            np.nextafter(cur + contrib_lo[sub], _NEG_INF),
                            cur,
                        )
                        cur = ahi[dst]
                        ahi[dst] = np.where(
                            mask,
                            np.nextafter(cur + contrib_hi[sub], _POS_INF),
                            cur,
                        )
                else:
                    # Inactive-lane contributions were zeroed at emit, and
                    # adding 0.0 never flips a bound's bits (the running
                    # adjoint is never -0.0), so one add.at per level keeps
                    # the object sweep's per-destination order.
                    sub = flat[edge_any[flat]]
                    if sub.size:
                        dst = edge_dst[sub]
                        np.add.at(alo, dst, contrib_lo[sub])
                        np.add.at(ahi, dst, contrib_hi[sub])

            sel = self._contrib_schedule[level]
            if not sel.size:
                continue
            src = edge_src[sel]
            salo = alo[src]
            sahi = ahi[src]
            act = np.any(salo != 0.0, axis=2) | np.any(sahi != 0.0, axis=2)
            lane_act[sel] = act
            any_act = act.any(axis=1)
            edge_any[sel] = any_act
            sub = sel[any_act]
            if not sub.size:
                continue
            salo = salo[any_act]
            sahi = sahi[any_act]
            act = act[any_act]
            plo = partial_lo[sub][:, :, None]
            phi = partial_hi[sub][:, :, None]
            p1 = plo * salo
            p2 = plo * sahi
            p3 = phi * salo
            p4 = phi * sahi
            if clean_nan:
                for p in (p1, p2, p3, p4):
                    p[np.isnan(p)] = 0.0
                clo = np.where(p2 < p1, p2, p1)
                clo = np.where(p3 < clo, p3, clo)
                clo = np.where(p4 < clo, p4, clo)
                chi = np.where(p2 > p1, p2, p1)
                chi = np.where(p3 > chi, p3, chi)
                chi = np.where(p4 > chi, p4, chi)
            else:
                clo = np.minimum(p1, p2)
                t = np.minimum(p3, p4)
                np.minimum(clo, t, out=clo)
                chi = np.maximum(p1, p2, out=p2)
                np.maximum(p3, p4, out=p4)
                chi = np.maximum(chi, p4, out=chi)
            if rnd:
                clo = np.nextafter(clo, _NEG_INF)
                chi = np.nextafter(chi, _POS_INF)
            else:
                inactive = ~act
                if inactive.any():
                    clo[inactive] = 0.0
                    chi[inactive] = 0.0
            contrib_lo[sub] = clo
            contrib_hi[sub] = chi

    # ------------------------------------------------------------------
    # Forward replay (record once, replay many)
    # ------------------------------------------------------------------
    def _forward_plan(self):
        """Build (lazily) and cache the forward replay plan.

        Raises :class:`~repro.ad.replay.ReplayError` when the trace is not
        a replayable straight-line interval trace.
        """
        plan = self._fplan
        if plan is None:
            from .replay import ForwardPlan

            plan = ForwardPlan(self)
            self._fplan = plan
        return plan

    @property
    def input_nodes(self) -> list[int]:
        """Indices of the registered input nodes, in registration order."""
        return self._forward_plan().input_nodes

    def forward(
        self,
        inputs: Mapping[int, Any] | Sequence[Any],
        *,
        check_guards: bool = True,
    ) -> "CompiledTape":
        """Re-evaluate the frozen trace on fresh input intervals, in place.

        ``inputs`` is either a sequence of intervals parallel to the
        registered input nodes or a mapping from input-node index to
        interval.  After the call :attr:`value_lo`/:attr:`value_hi` and
        :attr:`partial_lo`/:attr:`partial_hi` hold exactly the bounds a
        fresh recording of the same program on these inputs would produce
        (bit for bit, honouring the global rounding flag at call time), so
        the existing :meth:`adjoint`/:meth:`adjoint_vector` sweeps — and
        scorpio's analysis on top — run unchanged on the replayed state.

        With ``check_guards`` (default) the comparisons recorded on the
        source tape are re-evaluated on the replayed values; a flipped or
        ambiguous outcome raises
        :class:`~repro.ad.replay.GuardDivergenceError` /
        :class:`~repro.intervals.AmbiguousComparisonError` so callers can
        fall back to re-recording.  A failed replay leaves the arrays
        partially updated; the next successful :meth:`forward` overwrites
        them completely.
        """
        from .replay import check_guards as _check

        plan = self._forward_plan()
        input_nodes = plan.input_nodes
        if isinstance(inputs, Mapping):
            values = [inputs[j] for j in input_nodes]
        else:
            values = list(inputs)
            if len(values) != len(input_nodes):
                raise ValueError(
                    f"trace has {len(input_nodes)} inputs, got {len(values)}"
                )
        vlo, vhi = self.value_lo, self.value_hi
        for j, value in zip(input_nodes, values):
            iv = as_interval(value)
            vlo[j] = iv.lo
            vhi[j] = iv.hi
        _C_FORWARDS.inc()
        with _span("ad.forward") as sp:
            sp.set(nodes=self.n)
            plan.run(
                vlo, vhi, self.partial_lo, self.partial_hi, rounding_enabled()
            )
            if check_guards:
                _check(self.tape.guards, vlo, vhi)
        return self

    def forward_lanes(
        self,
        inputs_lo: np.ndarray,
        inputs_hi: np.ndarray,
        *,
        check_guards: bool = True,
    ) -> "ReplayLanes":
        """Replay the trace on ``(n_inputs, L)`` batched input bounds.

        Each lane is an independent replay of the recorded program; the
        returned :class:`ReplayLanes` exposes lane-batched reverse sweeps
        whose per-lane results are bit-identical to replaying (and hence
        recording) each lane on its own.  The compiled tape itself is not
        modified.
        """
        from .replay import check_guards as _check

        plan = self._forward_plan()
        input_nodes = plan.input_nodes
        inputs_lo = np.asarray(inputs_lo, dtype=np.float64)
        inputs_hi = np.asarray(inputs_hi, dtype=np.float64)
        if inputs_lo.ndim != 2 or inputs_lo.shape != inputs_hi.shape:
            raise ValueError(
                "forward_lanes expects matching (n_inputs, L) bound arrays"
            )
        if inputs_lo.shape[0] != len(input_nodes):
            raise ValueError(
                f"trace has {len(input_nodes)} inputs, "
                f"got {inputs_lo.shape[0]}"
            )
        L = inputs_lo.shape[1]
        # Broadcast the recorded columns across lanes: constants keep
        # their values, everything else is overwritten by the sweep.
        vlo = np.repeat(self.value_lo[:, None], L, axis=1)
        vhi = np.repeat(self.value_hi[:, None], L, axis=1)
        plo = np.repeat(self.partial_lo[:, None], L, axis=1)
        phi = np.repeat(self.partial_hi[:, None], L, axis=1)
        vlo[input_nodes] = inputs_lo
        vhi[input_nodes] = inputs_hi
        _C_FORWARD_LANES.inc()
        with _span("ad.forward_lanes") as sp:
            sp.set(nodes=self.n, lanes=L)
            plan.run(vlo, vhi, plo, phi, rounding_enabled())
            if check_guards:
                _check(self.tape.guards, vlo, vhi)
        return ReplayLanes(self, vlo, vhi, plo, phi)

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    def op_name(self, index: int) -> str:
        """Operation name of node ``index``."""
        return self.op_names[self.opcodes[index]]

    def parents_of(self, index: int) -> np.ndarray:
        """CSR parent slice of node ``index`` (recorded order)."""
        return self.parent_idx[self.row_ptr[index] : self.row_ptr[index + 1]]


class ReplayLanes:
    """The state of one lane-batched forward replay.

    Holds the ``(n, L)`` value bounds and ``(e, L)`` edge-partial bounds
    produced by :meth:`CompiledTape.forward_lanes`, and runs lane-batched
    reverse sweeps over them.  Lane ``l`` of every result is bit-identical
    to recording the program on lane ``l``'s inputs and sweeping the
    object tape.
    """

    __slots__ = ("ct", "value_lo", "value_hi", "partial_lo", "partial_hi")

    def __init__(self, ct, vlo, vhi, plo, phi):
        self.ct = ct
        self.value_lo = vlo
        self.value_hi = vhi
        self.partial_lo = plo
        self.partial_hi = phi

    @property
    def n_lanes(self) -> int:
        return self.value_lo.shape[1]

    def value(self, index: int, lane: int) -> Interval:
        """The replayed forward value of one node in one lane."""
        return Interval(
            float(self.value_lo[index, lane]),
            float(self.value_hi[index, lane]),
        )

    def adjoint(
        self, seeds: Mapping[int, Any]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lane-batched Eq. 7–9 sweep; per lane bit-identical to
        ``Tape.adjoint`` on that lane's recording.

        Returns ``(lo, hi)`` arrays of shape ``(n, L)``.
        """
        if not seeds:
            raise ValueError("adjoint sweep needs at least one seeded output")
        n, L = self.value_lo.shape
        rnd = rounding_enabled()
        alo = np.zeros((n, L, 1), dtype=np.float64)
        ahi = np.zeros((n, L, 1), dtype=np.float64)
        for index, seed in seeds.items():
            if not (0 <= index < n):
                raise IndexError(f"seed index {index} outside tape")
            if isinstance(seed, Interval):
                slo, shi = seed.lo, seed.hi
            else:
                slo = shi = float(seed)
            new_lo = alo[index] + slo
            new_hi = ahi[index] + shi
            if rnd:
                new_lo = np.nextafter(new_lo, _NEG_INF)
                new_hi = np.nextafter(new_hi, _POS_INF)
            alo[index] = new_lo
            ahi[index] = new_hi
        self.ct._sweep_lanes(
            alo, ahi, self.partial_lo, self.partial_hi, rnd=rnd, clean_nan=True
        )
        return alo[..., 0], ahi[..., 0]

    def adjoint_vector(
        self, outputs: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lane-batched vector sweep; per lane bit-identical to
        ``Tape.adjoint_vector`` (endpoint rule, no outward rounding).

        Returns ``(lo, hi)`` arrays of shape ``(n, L, m)``.
        """
        m = len(outputs)
        if m == 0:
            raise ValueError("adjoint_vector needs at least one output")
        n, L = self.value_lo.shape
        lo = np.zeros((n, L, m), dtype=np.float64)
        hi = np.zeros((n, L, m), dtype=np.float64)
        for j, idx in enumerate(outputs):
            if not (0 <= idx < n):
                raise IndexError(f"output index {idx} outside tape")
            lo[idx, :, j] += 1.0
            hi[idx, :, j] += 1.0
        self.ct._sweep_lanes(
            lo, hi, self.partial_lo, self.partial_hi, rnd=False, clean_nan=False
        )
        return lo, hi


class _AuxNode:
    """Stand-in for a tape node exposing only the ``aux`` payload."""

    __slots__ = ("aux",)

    def __init__(self, aux: Any):
        self.aux = aux


class _AuxNodes:
    """Indexable node view backed by a sparse ``{index: aux}`` map.

    :class:`~repro.ad.replay.ForwardPlan` reads ``tape.nodes[j].aux`` only
    for constant-operand binaries and ``clip`` nodes, so a worker-side
    tape only ships those entries; every other index resolves to a node
    with ``aux=None`` (exactly what a plain recorded node carries).
    """

    __slots__ = ("_aux",)

    def __init__(self, aux: Mapping[int, Any] | None):
        self._aux = dict(aux) if aux else {}

    def __getitem__(self, index: int) -> _AuxNode:
        return _AuxNode(self._aux.get(index))


class _StubTape:
    """Minimal object standing in for a ``Tape`` behind a rebuilt
    :meth:`CompiledTape.from_arrays` tape: recorded guards for replay
    re-checks plus the sparse aux map the forward plan reads."""

    __slots__ = ("guards", "nodes")

    def __init__(self, guards: Sequence[tuple], aux: Mapping[int, Any] | None):
        self.guards = list(guards)
        self.nodes = _AuxNodes(aux)
