"""Tests for synthetic images and PGM I/O."""

import numpy as np
import pytest

from repro.images import (
    checkerboard,
    gradient_image,
    natural_image,
    radial_scene,
    read_pgm,
    to_uint8,
    write_pgm,
)


class TestSynth:
    def test_natural_image_shape_and_range(self):
        img = natural_image(64, 48)
        assert img.shape == (48, 64)
        assert img.min() >= 0.0 and img.max() <= 255.0

    def test_natural_image_deterministic(self):
        assert np.array_equal(natural_image(32, 32, seed=3), natural_image(32, 32, seed=3))

    def test_natural_image_seed_matters(self):
        assert not np.array_equal(
            natural_image(32, 32, seed=1), natural_image(32, 32, seed=2)
        )

    def test_natural_image_has_content(self):
        img = natural_image(64, 64)
        assert img.std() > 10.0  # not flat

    def test_radial_scene_rings(self):
        img = radial_scene(64, 64)
        assert img.shape == (64, 64)
        assert img.std() > 10.0

    def test_checkerboard(self):
        img = checkerboard(16, 16, cell=4)
        assert set(np.unique(img)) == {0.0, 255.0}
        assert img[0, 0] != img[0, 4]

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(ValueError):
            checkerboard(8, 8, cell=0)

    def test_gradient_image(self):
        img = gradient_image(10, 5)
        assert img[0, 0] == 0.0 and img[0, -1] == 255.0
        vert = gradient_image(10, 5, horizontal=False)
        assert vert[0, 0] == 0.0 and vert[-1, 0] == 255.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            natural_image(0, 10)

    def test_to_uint8(self):
        arr = to_uint8(np.array([[-5.0, 100.4, 300.0]]))
        assert arr.dtype == np.uint8
        assert list(arr[0]) == [0, 100, 255]


class TestPGM:
    def test_binary_roundtrip(self, tmp_path):
        img = natural_image(31, 17)
        path = tmp_path / "test.pgm"
        write_pgm(path, img)
        loaded = read_pgm(path)
        assert loaded.shape == img.shape
        assert np.max(np.abs(loaded - np.rint(img))) <= 1.0

    def test_ascii_roundtrip(self, tmp_path):
        img = checkerboard(8, 8)
        path = tmp_path / "test_ascii.pgm"
        write_pgm(path, img, binary=False)
        loaded = read_pgm(path)
        assert np.array_equal(loaded, img)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P2\n# a comment\n2 2\n255\n0 1\n2 3\n")
        loaded = read_pgm(path)
        assert loaded[1, 1] == 3.0

    def test_clipping_on_write(self, tmp_path):
        path = tmp_path / "clip.pgm"
        write_pgm(path, np.array([[300.0, -5.0]]))
        loaded = read_pgm(path)
        assert loaded[0, 0] == 255.0 and loaded[0, 1] == 0.0

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3)))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n1 1\n255\n\x00")
        with pytest.raises(ValueError, match="magic"):
            read_pgm(path)

    def test_16bit_rejected(self, tmp_path):
        path = tmp_path / "deep.pgm"
        path.write_bytes(b"P2\n1 1\n65535\n0\n")
        with pytest.raises(ValueError, match="8-bit"):
            read_pgm(path)
