"""Property tests over randomly generated straight-line programs.

Hypothesis builds random expression trees from the supported elementary
operations; for every generated program we check the three core AD
invariants on which significance analysis rests:

1. adjoint gradient == tangent gradient (reverse vs forward consistency);
2. adjoint gradient ≈ central finite differences (correctness);
3. interval evaluation and interval gradient enclose every sampled point
   value/gradient (inclusion isotonicity through the whole engine).
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ad import (
    adjoint_gradient,
    finite_difference_gradient,
    interval_gradient,
    tangent_gradient,
)
from repro.ad import intrinsics as op
from repro.intervals import Interval

# --- random program representation --------------------------------------
# A program is a nested tuple tree; leaves are ("x", i) or ("c", value).

N_INPUTS = 2

_UNARY = ["sin", "cos", "tanh", "exp_s", "atan", "sqr"]
_BINARY = ["add", "sub", "mul"]


@st.composite
def expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ("x", draw(st.integers(0, N_INPUTS - 1)))
        return ("c", draw(st.floats(min_value=-2.0, max_value=2.0)))
    if draw(st.booleans()):
        name = draw(st.sampled_from(_UNARY))
        return (name, draw(expr(depth=depth + 1)))
    name = draw(st.sampled_from(_BINARY))
    return (name, draw(expr(depth=depth + 1)), draw(expr(depth=depth + 1)))


def evaluate(tree, xs):
    """Evaluate a tree over any numeric algebra."""
    kind = tree[0]
    if kind == "x":
        return xs[tree[1]]
    if kind == "c":
        return tree[1]
    if kind == "add":
        return evaluate(tree[1], xs) + evaluate(tree[2], xs)
    if kind == "sub":
        return evaluate(tree[1], xs) - evaluate(tree[2], xs)
    if kind == "mul":
        return evaluate(tree[1], xs) * evaluate(tree[2], xs)
    inner = evaluate(tree[1], xs)
    if kind == "sin":
        return op.sin(inner)
    if kind == "cos":
        return op.cos(inner)
    if kind == "tanh":
        return op.tanh(inner)
    if kind == "atan":
        return op.atan(inner)
    if kind == "exp_s":
        # Saturated exp keeps magnitudes bounded for FD comparability.
        return op.tanh(inner) + inner * 0.1
    if kind == "sqr":
        return inner * inner
    raise AssertionError(kind)


def uses_input(tree, index):
    if tree[0] == "x":
        return tree[1] == index
    if tree[0] == "c":
        return False
    return any(uses_input(sub, index) for sub in tree[1:])


points = st.lists(
    st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
    min_size=N_INPUTS,
    max_size=N_INPUTS,
)


@given(expr(), points)
@settings(max_examples=120, deadline=None)
def test_tangent_equals_adjoint(tree, point):
    assume(any(uses_input(tree, i) for i in range(N_INPUTS)))

    def fn(xs):
        result = evaluate(tree, xs)
        # Anchor on an input so the result is always taped.
        return result + 0.0 * xs[0]

    _, g_adj = adjoint_gradient(fn, point)
    _, g_tan = tangent_gradient(fn, point)
    for a, t in zip(g_adj, g_tan):
        assert a == pytest.approx(t, rel=1e-9, abs=1e-9)


@given(expr(), points)
@settings(max_examples=80, deadline=None)
def test_adjoint_matches_finite_differences(tree, point):
    assume(any(uses_input(tree, i) for i in range(N_INPUTS)))

    def fn(xs):
        return evaluate(tree, xs) + 0.0 * xs[0]

    value, grad = adjoint_gradient(fn, point)
    assume(all(abs(g) < 1e3 for g in grad))  # avoid FD blow-up regions

    def plain(xs):
        return float(evaluate(tree, list(xs)) + 0.0 * xs[0])

    fd = finite_difference_gradient(plain, point, step=1e-6)
    for a, d in zip(grad, fd):
        assert a == pytest.approx(d, rel=2e-3, abs=2e-4)


@given(
    expr(),
    points,
    st.floats(min_value=0.01, max_value=0.3),
)
@settings(max_examples=80, deadline=None)
def test_interval_engine_encloses_samples(tree, point, radius):
    assume(any(uses_input(tree, i) for i in range(N_INPUTS)))

    def fn(xs):
        return evaluate(tree, xs) + 0.0 * xs[0]

    box = [Interval.centered(p, radius) for p in point]
    box_value, box_grad = interval_gradient(fn, box)

    # Sample corners and centre of the box.
    offsets = [tuple(point)]
    offsets.append(tuple(p - radius for p in point))
    offsets.append(tuple(p + radius for p in point))
    for sample in offsets:
        v, g = adjoint_gradient(fn, list(sample))
        assert box_value.widened(1e-9).contains(v)
        for gi, bg in zip(g, box_grad):
            assert bg.widened(max(1e-9, abs(gi) * 1e-9)).contains(gi)
