"""Tests for tangent-linear (forward) mode."""

import math

import pytest

from repro.ad import Tangent, adjoint_gradient, tangent_gradient
from repro.ad import intrinsics as op
from repro.intervals import AmbiguousComparisonError, Interval


class TestBasics:
    def test_seed_has_unit_dot(self):
        t = Tangent.seed(2.0)
        assert t.value == 2.0 and t.dot == 1.0

    def test_plain_has_zero_dot(self):
        t = Tangent(2.0)
        assert t.dot == 0.0

    def test_lift_passthrough(self):
        t = Tangent.seed(1.0)
        assert Tangent.lift(t) is t

    def test_lift_scalar(self):
        t = Tangent.lift(3.0)
        assert t.value == 3.0 and t.dot == 0.0

    def test_lift_interval(self):
        t = Tangent.lift(Interval(0, 1))
        assert t.dot == Interval(0.0)

    def test_repr(self):
        assert "dot" in repr(Tangent(1.0, 0.5))


class TestPropagation:
    def test_product_rule(self):
        x = Tangent.seed(3.0)
        y = x * x  # same-object square
        assert y.value == 9.0 and y.dot == 6.0

    def test_quotient_rule(self):
        x = Tangent.seed(2.0)
        y = 1.0 / x
        assert y.value == 0.5 and y.dot == pytest.approx(-0.25)

    def test_chain_through_intrinsics(self):
        x = Tangent.seed(0.5)
        y = op.sin(op.exp(x))
        expected = math.cos(math.exp(0.5)) * math.exp(0.5)
        assert y.dot == pytest.approx(expected)

    def test_abs_negative(self):
        x = Tangent(-2.0, 1.0)
        y = abs(x)
        assert y.value == 2.0 and y.dot == -1.0

    def test_pow_int(self):
        x = Tangent.seed(2.0)
        y = x**4
        assert y.value == 16.0 and y.dot == 32.0

    def test_pow_zero(self):
        x = Tangent.seed(2.0)
        y = x**0
        assert y.value == 1.0 and y.dot == 0.0

    def test_rpow(self):
        x = Tangent.seed(3.0)
        y = 2.0**x
        assert y.value == pytest.approx(8.0)
        assert y.dot == pytest.approx(8.0 * math.log(2.0))

    def test_rsub_rdiv(self):
        x = Tangent.seed(2.0)
        assert (5.0 - x).dot == -1.0
        assert (4.0 / x).dot == pytest.approx(-1.0)

    def test_comparison_interval_ambiguity(self):
        t = Tangent(Interval(0, 2), Interval(1.0))
        with pytest.raises(AmbiguousComparisonError):
            _ = t < 1.0


class TestTangentVsAdjoint:
    """The canonical AD consistency check: forward == reverse."""

    FUNCTIONS = [
        (lambda xs: xs[0] * xs[1] + xs[0], [2.0, 3.0]),
        (lambda xs: op.sin(xs[0]) * op.cos(xs[1]), [0.3, 0.7]),
        (lambda xs: op.exp(xs[0] / xs[1]), [1.0, 2.0]),
        (lambda xs: op.sqrt(xs[0] * xs[0] + xs[1] * xs[1]), [3.0, 4.0]),
        (lambda xs: op.log(xs[0]) ** 2, [2.5]),
        (lambda xs: op.tanh(xs[0]) + op.erf(xs[1]), [0.4, 0.6]),
        (lambda xs: op.cos(op.exp(op.sin(xs[0]) + xs[0]) - xs[0]), [0.3]),
        (lambda xs: op.atan(xs[0] * xs[1]) - xs[1] ** 3, [1.2, 0.8]),
    ]

    @pytest.mark.parametrize("fn,point", FUNCTIONS)
    def test_gradients_agree(self, fn, point):
        v_adj, g_adj = adjoint_gradient(fn, point)
        v_tan, g_tan = tangent_gradient(fn, point)
        assert v_adj == pytest.approx(v_tan, rel=1e-12)
        for a, t in zip(g_adj, g_tan):
            assert a == pytest.approx(t, rel=1e-10)

    def test_interval_tangent_encloses_scalar(self):
        x = Tangent.seed(Interval(0.2, 0.4))
        y = op.cos(op.exp(op.sin(x) + x) - x)
        for point in (0.2, 0.3, 0.4):
            xs = Tangent.seed(point)
            ys = op.cos(op.exp(op.sin(xs) + xs) - xs)
            assert y.value.contains(ys.value)
            assert y.dot.contains(ys.dot)
