"""Minimal asyncio HTTP/1.1 layer for :mod:`repro.serve`.

Zero dependencies by design (the whole repo is stdlib + numpy): requests
are parsed straight off an :class:`asyncio.StreamReader`, routed by exact
``(method, path)`` match and answered with hand-rendered HTTP/1.1
responses.  The subset implemented is exactly what a JSON analysis
service needs — ``Content-Length`` bodies, keep-alive connections, a
per-request read timeout, and structured JSON error responses — and
nothing more (no chunked encoding, no TLS, no HTTP/2).

Errors raised by handlers travel as :class:`HttpError` and render as::

    {"error": {"status": 400, "reason": "Bad Request", "detail": "..."}}

so clients can always ``json.loads`` a failure.  Unexpected handler
exceptions become a 500 with the exception repr as detail — the server
never drops a connection without answering.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "json_response",
    "Router",
    "HttpServer",
]

MAX_HEADER_BYTES = 16 * 1024
DEFAULT_MAX_BODY = 4 * 1024 * 1024
DEFAULT_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with a non-200 status."""

    def __init__(self, status: int, detail: str = ""):
        super().__init__(detail or _REASONS.get(status, "error"))
        self.status = status
        self.detail = detail

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Error")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body as JSON; 400 on syntax errors or a non-object root."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HttpError(400, "JSON body must be an object")
        return data


@dataclass
class Response:
    """One response; handlers return these (or raise HttpError)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def render(self, *, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "OK")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


def json_response(
    payload: Any,
    *,
    status: int = 200,
    headers: dict[str, str] | None = None,
    indent: int | None = 2,
) -> Response:
    """A Response carrying ``payload`` serialised as JSON."""
    body = json.dumps(payload, indent=indent).encode("utf-8")
    return Response(status=status, body=body, headers=headers or {})


def error_response(status: int, detail: str) -> Response:
    reason = _REASONS.get(status, "Error")
    return json_response(
        {"error": {"status": status, "reason": reason, "detail": detail}},
        status=status,
    )


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Exact-match ``(method, path)`` routing table with prefix routes.

    Exact entries win; a *prefix* route (``add_prefix``) catches every
    path under it and is how parameterised endpoints like
    ``/debug/trace/<id>`` are served — the handler reads the tail off
    ``request.path`` itself (longest registered prefix wins).
    """

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Handler] = {}
        self._prefixes: list[tuple[str, str, Handler]] = []

    def add(self, method: str, path: str, handler: Handler) -> None:
        self._routes[(method.upper(), path)] = handler

    def add_prefix(self, method: str, prefix: str, handler: Handler) -> None:
        self._prefixes.append((method.upper(), prefix, handler))
        # Longest prefix first, so overlapping prefixes nest sensibly.
        self._prefixes.sort(key=lambda entry: -len(entry[1]))

    def get(self, path: str, handler: Handler) -> None:
        self.add("GET", path, handler)

    def post(self, path: str, handler: Handler) -> None:
        self.add("POST", path, handler)

    def get_prefix(self, prefix: str, handler: Handler) -> None:
        self.add_prefix("GET", prefix, handler)

    def resolve(self, method: str, path: str) -> Handler:
        """The handler for a request; 404/405 via HttpError otherwise."""
        method_u = method.upper()
        handler = self._routes.get((method_u, path))
        if handler is not None:
            return handler
        for m, prefix, prefix_handler in self._prefixes:
            if m == method_u and path.startswith(prefix):
                return prefix_handler
        if any(p == path for _, p in self._routes) or any(
            path.startswith(prefix) for _, prefix, _ in self._prefixes
        ):
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    def paths(self) -> list[str]:
        exact = {p for _, p in self._routes}
        exact.update(f"{prefix}*" for _, prefix, _ in self._prefixes)
        return sorted(exact)


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = DEFAULT_MAX_BODY,
    timeout: float = DEFAULT_TIMEOUT,
) -> Request | None:
    """Parse one request; ``None`` on clean EOF before any bytes.

    Raises :class:`HttpError` on malformed input, oversized payloads and
    timeouts — the connection loop renders those as error responses.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    except asyncio.TimeoutError as exc:
        raise HttpError(408, "timed out reading request head") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head") from exc
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))

    body = b""
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length: {length_header!r}") from exc
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_header!r}")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds {max_body}")
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
        except asyncio.TimeoutError as exc:
            raise HttpError(408, "timed out reading request body") from exc

    return Request(
        method=method, path=path, query=query, headers=headers, body=body
    )


class HttpServer:
    """``asyncio.start_server`` wrapper running a :class:`Router`.

    One instance serves many connections; each connection handles
    requests sequentially with keep-alive until the client closes, sends
    ``Connection: close``, or errors.  Handler concurrency comes from
    asyncio itself — every connection is its own task, and handlers that
    ``await`` (e.g. analysis work shipped to an executor) interleave.
    """

    def __init__(
        self,
        router: Router,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_TIMEOUT,
        max_body: int = DEFAULT_MAX_BODY,
    ):
        self.router = router
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_body = max_body
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _respond_once(
        self, request: Request
    ) -> tuple[Response, bool]:
        """(response, keep_alive) for one parsed request."""
        keep_alive = request.headers.get("connection", "").lower() != "close"
        try:
            handler = self.router.resolve(request.method, request.path)
            response = await handler(request)
        except HttpError as exc:
            response = error_response(exc.status, exc.detail)
        except Exception as exc:  # noqa: BLE001 - always answer
            response = error_response(500, f"unhandled error: {exc!r}")
        return response, keep_alive

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_body=self.max_body,
                        timeout=self.request_timeout,
                    )
                except HttpError as exc:
                    response = error_response(exc.status, exc.detail)
                    writer.write(response.render(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response, keep_alive = await self._respond_once(request)
                writer.write(response.render(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with this connection idle
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
