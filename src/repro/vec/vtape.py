"""Batched recording tape: one node per *array-valued* elementary op.

A :class:`VTape` is structurally the scalar DynDFG tape
(:class:`repro.ad.tape.Tape`) — same node layout, same topological-order
reverse sweep (Eq. 7–9 of the paper) — but every node's value and local
partials are lane-parallel (:class:`~repro.vec.ivec.IntervalArray` or
``ndarray``/scalar broadcast across lanes).  One recorded node therefore
stands for an entire batch of DynDFG vertices: a 4096-option BlackScholes
analysis records ~60 nodes instead of ~250 000, and a single reverse sweep
yields the interval adjoint ``∇[uj][y]`` of every node *in every lane*.

The lane axis is fixed per tape (``lane_shape``); all recorded values must
broadcast to it.  Reusing the scalar :class:`~repro.ad.tape.Node` type and
the scalar tape-activation stack means :func:`repro.ad.tape.require_tape`
and the ``with tape:`` idiom work unchanged, and the bridge
(:mod:`repro.vec.bridge`) can lower any lane back to a scalar tape for the
existing scorpio post-processing.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.ad.tape import Node, Tape
from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array

__all__ = ["VNode", "VTape"]

# The node layout is algebra-generic already; the batched engine reuses it.
VNode = Node


class VTape(Tape):
    """A sequential recording of lane-parallel elementary operations.

    Use exactly like the scalar tape::

        with VTape(lane_shape=(4096,)) as tape:
            x = VADouble.input(IntervalArray.centered(mids, 0.01), tape=tape)
            y = op.exp(x) * x
        adjoints = tape.adjoint({y.node.index: 1.0})
        adjoints[x.node.index]      # IntervalArray: ∇[x][y] per lane
    """

    def __init__(self, lane_shape: tuple[int, ...] | int | None = None) -> None:
        super().__init__()
        if isinstance(lane_shape, int):
            lane_shape = (lane_shape,)
        self.lane_shape: tuple[int, ...] | None = lane_shape

    # ------------------------------------------------------------------
    # Recording (adds lane-shape tracking on top of the scalar tape)
    # ------------------------------------------------------------------
    def record(
        self,
        op: str,
        value: Any,
        parents=(),
        partials=(),
        label: str | None = None,
        aux: Any = None,
    ) -> Node:
        if isinstance(value, IntervalArray):
            if self.lane_shape is None:
                self.lane_shape = value.shape
            elif value.shape != self.lane_shape:
                raise ValueError(
                    f"lane shape mismatch: tape carries {self.lane_shape}, "
                    f"op {op!r} produced {value.shape}"
                )
        return super().record(op, value, parents, partials, label=label, aux=aux)

    def require_lane_shape(self) -> tuple[int, ...]:
        if self.lane_shape is None:
            raise RuntimeError(
                "lane shape unknown: record an IntervalArray input first or "
                "construct VTape(lane_shape=...)"
            )
        return self.lane_shape

    # ------------------------------------------------------------------
    # Reverse sweep (Eq. 7-9, one adjoint component per lane)
    # ------------------------------------------------------------------
    def adjoint(self, seeds: Mapping[int, Any]) -> list[IntervalArray]:
        """Propagate lane-parallel interval adjoints from the seeded nodes.

        Seeds may be scalars, :class:`Interval`s, ndarrays or
        :class:`IntervalArray`s; everything is broadcast to the lane shape.
        Returns a list parallel to :attr:`nodes` of ``IntervalArray``
        adjoints; each node's ``adjoint`` attribute is filled in as well.
        """
        if not seeds:
            raise ValueError("adjoint sweep needs at least one seeded output")
        shape = self.require_lane_shape()
        zero = IntervalArray.zeros(shape)
        adjoints: list[IntervalArray] = [zero] * len(self.nodes)
        for index, seed in seeds.items():
            if not (0 <= index < len(self.nodes)):
                raise IndexError(f"seed index {index} outside tape")
            adjoints[index] = adjoints[index] + as_interval_array(seed, shape)

        # Nodes are stored in execution (topological) order, so a single
        # backward pass implements Eq. 8 exactly — per lane.
        for node in reversed(self.nodes):
            a_j = adjoints[node.index]
            node.adjoint = a_j
            if not (a_j.lo.any() or a_j.hi.any()):
                continue
            for parent, partial in zip(node.parents, node.partials):
                adjoints[parent] = adjoints[parent] + _edge_product(
                    partial, a_j, shape
                )
        for node in self.nodes:
            node.adjoint = adjoints[node.index]
        return adjoints


def _edge_product(partial: Any, adjoint: IntervalArray, shape) -> IntervalArray:
    """``∂φj/∂ui · ∇[uj][y]`` with the partial in any broadcastable algebra."""
    if isinstance(partial, IntervalArray):
        return partial * adjoint
    if isinstance(partial, Interval):
        return as_interval_array(partial, shape) * adjoint
    if isinstance(partial, np.ndarray) or isinstance(partial, (int, float)):
        return adjoint * partial
    raise TypeError(f"unsupported partial type {type(partial).__name__}")
