"""Metrics registry (:mod:`repro.obs.metrics`): instruments + exporters."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    registry,
    reset_metrics,
    snapshot,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.get() == 5.0
        c.reset()
        assert c.get() == 0.0
        assert c.describe() == {"type": "counter", "value": 0.0}

    def test_gauge(self):
        g = Gauge("level")
        g.set(3.5)
        g.inc()
        g.dec(0.5)
        assert g.get() == 4.0
        assert g.describe()["type"] == "gauge"

    def test_histogram(self):
        h = Histogram("sizes")
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        d = h.describe()
        assert d == {
            "type": "histogram",
            "count": 3,
            "sum": 12.0,
            "min": 1.0,
            "max": 7.0,
            "mean": 4.0,
        }

    def test_empty_histogram_describe(self):
        d = Histogram("empty").describe()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        assert d["mean"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b")
        assert reg.counter("a.b") is a
        assert "a.b" in reg
        assert reg.get("nope") is None
        assert reg.value("a.b") == 0.0
        assert reg.value("nope", default=-1.0) == -1.0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(2)
        reg.gauge("depth").set(1.5)
        reg.histogram("sizes").observe(10.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)  # names sorted
        parsed = json.loads(reg.to_json())
        assert parsed == {"metrics": snap}

    def test_reset_keeps_instrument_objects(self):
        reg = MetricsRegistry()
        c = reg.counter("kept")
        c.inc(3)
        reg.reset()
        assert reg.counter("kept") is c
        assert c.get() == 0.0
        reg.reset(drop=True)
        assert "kept" not in reg

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.gauge("pool.size").set(2.5)
        h = reg.histogram("tape.nodes")
        h.observe(100.0)
        h.observe(300.0)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_cache_hits_total counter" in lines
        assert "repro_cache_hits_total 3" in lines
        assert "repro_pool_size 2.5" in lines
        assert "# TYPE repro_tape_nodes summary" in lines
        assert "repro_tape_nodes_count 2" in lines
        assert "repro_tape_nodes_sum 400" in lines
        assert "repro_tape_nodes_min 100" in lines
        assert "repro_tape_nodes_max 300" in lines
        assert text.endswith("\n")

    def test_prometheus_empty_histogram_and_inf(self):
        reg = MetricsRegistry()
        reg.histogram("never")  # count 0: no min/max lines
        reg.gauge("inf").set(math.inf)
        text = reg.to_prometheus()
        assert "repro_never_count 0" in text
        assert "repro_never_min" not in text
        assert "repro_inf +Inf" in text

    def test_prometheus_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("weird name-with.dots").inc()
        assert "repro_weird_name_with_dots_total 1" in reg.to_prometheus()


class TestGlobalRegistry:
    def test_module_helpers_hit_the_global_registry(self):
        name = "test_metrics.global_probe"
        c = counter(name)
        before = c.get()
        c.inc()
        assert registry().value(name) == before + 1
        assert name in snapshot()

    def test_reset_metrics_preserves_module_level_references(self):
        # Pipeline modules capture counters at import; reset must zero,
        # not orphan, them — or stats views would silently go stale.
        name = "test_metrics.reset_probe"
        c = counter(name)
        c.inc(7)
        reset_metrics()
        assert c.get() == 0.0
        assert counter(name) is c
        c.inc()
        assert registry().value(name) == 1.0
