"""Tests for the DCT benchmark."""

import numpy as np
import pytest

from repro.images import natural_image
from repro.kernels.dct import (
    BLOCK,
    N_DIAGONALS,
    analyse_dct,
    analyse_dct_block,
    basis_tensor,
    blockify,
    dct_block,
    dct_image,
    dct_perforated,
    dct_roundtrip_reference,
    dct_significance,
    diagonal_cells,
    diagonal_significance,
    idct_block,
    quant_matrix,
    roundtrip_from_coefficients,
    unblockify,
    zigzag_order,
)
from repro.metrics import psnr


@pytest.fixture(scope="module")
def image():
    return natural_image(64, 64, seed=7)


class TestBasis:
    def test_orthonormal(self):
        basis = basis_tensor().reshape(64, 64)  # (vu, yx)
        gram = basis @ basis.T
        assert np.allclose(gram, np.eye(64), atol=1e-12)

    def test_dc_basis_constant(self):
        basis = basis_tensor()
        assert np.allclose(basis[0, 0], basis[0, 0, 0, 0])

    def test_idct_inverts_dct(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(0, 255, (BLOCK, BLOCK))
        coeffs = dct_image(block[None])[0]
        basis = basis_tensor()
        restored = np.einsum("vuyx,vu->yx", basis, coeffs)
        assert np.allclose(restored, block, atol=1e-9)

    def test_generic_block_matches_numpy(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(0, 255, (BLOCK, BLOCK))
        generic = np.array(dct_block(block.tolist()))
        vectorised = dct_image(block[None])[0]
        assert np.allclose(generic, vectorised, atol=1e-9)

    def test_generic_idct_matches(self):
        rng = np.random.default_rng(2)
        coeffs = rng.uniform(-50, 50, (BLOCK, BLOCK))
        generic = np.array(idct_block(coeffs.tolist()))
        basis = basis_tensor()
        vectorised = np.einsum("vuyx,vu->yx", basis, coeffs)
        assert np.allclose(generic, vectorised, atol=1e-9)


class TestBlocking:
    def test_blockify_roundtrip(self, image):
        blocks = blockify(image)
        assert blocks.shape == (64, BLOCK, BLOCK)
        assert np.array_equal(unblockify(blocks, image.shape), image)

    def test_blockify_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((10, 16)))

    def test_blockify_layout(self, image):
        blocks = blockify(image)
        assert np.array_equal(blocks[0], image[:8, :8])
        assert np.array_equal(blocks[1], image[:8, 8:16])


class TestZigzagAndDiagonals:
    def test_zigzag_complete(self):
        order = zigzag_order()
        assert len(order) == 64 and len(set(order)) == 64
        assert order[0] == (0, 0)

    def test_zigzag_consecutive_same_or_adjacent_diagonal(self):
        order = zigzag_order()
        for (v1, u1), (v2, u2) in zip(order, order[1:]):
            assert abs((v2 + u2) - (v1 + u1)) <= 1

    def test_diagonal_cells_partition(self):
        all_cells = [c for d in range(N_DIAGONALS) for c in diagonal_cells(d)]
        assert len(all_cells) == 64 and len(set(all_cells)) == 64

    def test_diagonal_cells_bounds(self):
        with pytest.raises(ValueError):
            diagonal_cells(15)

    def test_diagonal_significance_monotone(self):
        sigs = [diagonal_significance(d) for d in range(N_DIAGONALS)]
        assert sigs[0] == 1.0
        assert all(a > b for a, b in zip(sigs, sigs[1:]))


class TestQuantisation:
    def test_quality_50_is_reference(self):
        assert np.array_equal(quant_matrix(50), np.array(quant_matrix(50)))

    def test_higher_quality_milder(self):
        assert np.all(quant_matrix(90) <= quant_matrix(50))

    def test_lower_quality_harsher(self):
        assert np.all(quant_matrix(10) >= quant_matrix(50))

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            quant_matrix(0)
        with pytest.raises(ValueError):
            quant_matrix(101)

    def test_steps_at_least_one(self):
        assert quant_matrix(100).min() >= 1.0


class TestRoundtrip:
    def test_reference_reasonable_quality(self, image):
        out = dct_roundtrip_reference(image)
        assert psnr(image, out) > 30.0  # quality-75 JPEG-ish

    def test_output_range(self, image):
        out = dct_roundtrip_reference(image)
        assert out.min() >= 0.0 and out.max() <= 255.0


class TestAnalysis:
    def test_dc_most_significant(self, image):
        block = blockify(image)[3]
        sig_map = analyse_dct_block(block)
        assert sig_map[0, 0] == sig_map.max()

    def test_block_shape_validated(self):
        with pytest.raises(ValueError):
            analyse_dct_block(np.zeros((4, 4)))

    def test_figure4_wave_pattern(self, image):
        analysis = analyse_dct(image, samples=3)
        means = analysis.diagonal_means()
        # Wave decay: low diagonals dominate high diagonals.
        assert means[0] == max(means)
        assert np.mean(means[:3]) > 3 * np.mean(means[-3:])

    def test_zigzag_profile_downward_trend(self, image):
        analysis = analyse_dct(image, samples=3)
        profile = analysis.zigzag_profile()
        first_half = np.mean(profile[:16])
        second_half = np.mean(profile[-16:])
        assert first_half > second_half

    def test_normalised_to_one(self, image):
        analysis = analyse_dct(image, samples=2)
        assert analysis.significance_map.max() == pytest.approx(1.0)


class TestSignificanceVersion:
    def test_ratio_one_exact(self, image):
        run = dct_significance(image, 1.0)
        assert np.allclose(run.output, dct_roundtrip_reference(image))

    def test_ratio_zero_dc_only(self, image):
        run = dct_significance(image, 0.0)
        # Only the DC diagonal: every 8x8 block is constant.
        blocks = blockify(run.output)
        assert np.allclose(blocks.std(axis=(1, 2)), 0.0, atol=1e-9)

    def test_quality_monotone(self, image):
        ref = dct_roundtrip_reference(image)
        values = [
            min(psnr(ref, dct_significance(image, r).output), 99.0)
            for r in (0.0, 0.2, 0.5, 1.0)
        ]
        assert values == sorted(values)

    def test_energy_monotone(self, image):
        energies = [dct_significance(image, r).joules for r in (0.0, 0.5, 1.0)]
        assert energies == sorted(energies)

    def test_task_count(self, image):
        run = dct_significance(image, 0.5)
        assert run.stats.total == N_DIAGONALS + 1  # 15 diagonals + reconstruct


class TestPerforated:
    def test_ratio_one_exact(self, image):
        run = dct_perforated(image, 1.0)
        assert np.allclose(run.output, dct_roundtrip_reference(image))

    def test_sig_beats_perforation(self, image):
        ref = dct_roundtrip_reference(image)
        for ratio in (0.2, 0.5, 0.8):
            sig_q = min(psnr(ref, dct_significance(image, ratio).output), 99.0)
            perf_q = min(psnr(ref, dct_perforated(image, ratio).output), 99.0)
            assert sig_q >= perf_q

    def test_perforation_misses_low_frequencies(self, image):
        # At low ratios raster-order perforation loses low-freq ACs that
        # the diagonal selection keeps -> visibly worse.
        ref = dct_roundtrip_reference(image)
        sig_q = psnr(ref, dct_significance(image, 0.2).output)
        perf_q = psnr(ref, dct_perforated(image, 0.2).output)
        assert sig_q - perf_q > 1.5
