"""Figure 5: InverseMapping per-pixel significance map.

Significance of the computed source coordinates for the final pixel
value, over a grid of output pixels — low at the image centre, rising
toward the border (the fisheye compresses the scene periphery, so
coordinate imprecision there is costlier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.images import radial_scene
from repro.kernels.fisheye import (
    InverseMappingAnalysis,
    analyse_inverse_mapping,
    default_config,
    make_fisheye_input,
)
from repro.kernels.fisheye.geometry import LensConfig

__all__ = ["Figure5", "figure5", "main"]


@dataclass
class Figure5:
    """The significance grid plus its radial summary."""

    analysis: InverseMappingAnalysis
    config: LensConfig

    def radial_profile(self, bins: int = 6) -> list[float]:
        """Mean significance per normalised-radius bin."""
        return self.analysis.radial_profile(self.config, bins=bins)

    def to_text(self) -> str:
        """ASCII rendering of the map and its radial profile."""
        lines = ["Figure 5 — InverseMapping significance (normalised)"]
        for row in self.analysis.significance:
            lines.append("  " + " ".join(f"{v:4.2f}" for v in row))
        profile = self.radial_profile()
        lines.append(
            "radial profile (centre -> border): "
            + " ".join(f"{p:.3f}" for p in profile)
        )
        return "\n".join(lines)


def figure5(
    width: int = 192,
    height: int = 144,
    grid: tuple[int, int] = (9, 12),
    jitter_samples: int = 10,
    seed: int = 11,
    executor: str | None = None,
    workers: int | None = None,
) -> Figure5:
    """Run the Figure 5 analysis (1280x960 in the paper, scaled here).

    ``executor="process"`` replays the sampled pixels as lanes of one
    frozen trace fanned out across ``workers`` processes (:mod:`repro.mp`).
    """
    config = default_config(width, height)
    scene = radial_scene(width, height, seed=seed)
    input_image = make_fisheye_input(scene, config)
    analysis = analyse_inverse_mapping(
        input_image,
        config,
        grid=grid,
        jitter_samples=jitter_samples,
        executor=executor,
        workers=workers,
    )
    return Figure5(analysis=analysis, config=config)


def main() -> None:
    """Print the Figure 5 map."""
    print(figure5().to_text())


if __name__ == "__main__":
    main()
