"""Stdlib client for the significance service.

A thin, dependency-free wrapper around :mod:`http.client` used by the
example tenants, the tests and the load generator — and a reference for
what any other client (curl, a real service mesh) needs to send.

One :class:`ServiceClient` holds one keep-alive connection and is **not**
thread-safe; concurrent callers create one client per thread (see
``benchmarks/bench_service.py``).  Interval inputs are ``[lo, hi]``
pairs, ``{"lo": .., "hi": ..}`` objects or bare numbers, matching the
server's :func:`repro.serve.kernels.parse_intervals`.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Sequence

from repro.obs import context as obs_context

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(Exception):
    """A non-2xx answer from the service, carrying its error JSON."""

    def __init__(self, status: int, reason: str, detail: str = ""):
        super().__init__(f"{status} {reason}: {detail}")
        self.status = status
        self.reason = reason
        self.detail = detail


class ServiceClient:
    """Synchronous client for one service endpoint.

    Every request carries an ``X-Repro-Trace`` header — the active
    :class:`repro.obs.context.TraceContext` when there is one (so a
    traced tenant's spans and the server's spans share a trace), a
    freshly minted trace id otherwise.  The server stamps the id it
    actually served under back onto the response; :attr:`last_trace_id`
    always holds the trace id of the most recent request, ready to be
    logged or fed to ``GET /debug/trace/<id>``.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Trace id of the most recent request (server-stamped when the
        #: server echoes one, else the id this client sent).
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request_raw(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns ``(status, headers, body)`` unparsed.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests).
        """
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        ctx = obs_context.current() or obs_context.new_trace()
        headers[obs_context.HEADER] = ctx.to_header()
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (
                http.client.NotConnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                ConnectionError,
            ):
                self.close()
                if attempt:
                    raise
                continue
            response_headers = {
                k.lower(): v for k, v in response.getheaders()
            }
            stamped = obs_context.parse_header(
                response_headers.get("x-repro-trace")
            )
            self.last_trace_id = (
                stamped.trace_id if stamped is not None else ctx.trace_id
            )
            return response.status, response_headers, data
        raise RuntimeError("unreachable")  # pragma: no cover

    def _request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> Any:
        status, _headers, data = self.request_raw(method, path, payload)
        if status >= 400:
            raise _as_service_error(status, data)
        return json.loads(data.decode("utf-8"))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request_json("GET", "/healthz")

    def kernels(self) -> list[dict]:
        return self._request_json("GET", "/kernels")["kernels"]

    def metrics(self) -> str:
        """Prometheus text exposition of the server's metrics."""
        status, _headers, data = self.request_raw("GET", "/metrics")
        if status >= 400:
            raise _as_service_error(status, data)
        return data.decode("utf-8")

    def analyse_raw(
        self, kernel: str, inputs: Sequence[Any] | None = None
    ) -> tuple[bytes, str]:
        """``(report JSON bytes, cache outcome)`` of one analysis.

        The bytes are exactly ``report_to_json`` of the equivalent
        in-process analysis; the outcome is the ``X-Repro-Cache`` header
        (``record`` / ``replay`` / ``divergence``).
        """
        payload: dict[str, Any] = {"kernel": kernel}
        if inputs is not None:
            payload["inputs"] = list(inputs)
        status, headers, data = self.request_raw("POST", "/analyse", payload)
        if status >= 400:
            raise _as_service_error(status, data)
        return data, headers.get("x-repro-cache", "")

    def analyse_detail(
        self, kernel: str, inputs: Sequence[Any] | None = None
    ) -> tuple[bytes, str, tuple[int, int], str]:
        """:meth:`analyse_raw` plus micro-batching and trace attribution.

        Returns ``(report JSON bytes, cache outcome, (batch size, lane
        index), trace id)`` — the batch tuple decoded from the
        ``X-Repro-Batch`` header (``(1, 0)`` when the request rode a
        sweep alone or the server predates batching), the trace id from
        the server-stamped ``X-Repro-Trace`` header (``""`` against a
        server that predates tracing), ready for ``GET /debug/trace/<id>``.
        """
        payload: dict[str, Any] = {"kernel": kernel}
        if inputs is not None:
            payload["inputs"] = list(inputs)
        status, headers, data = self.request_raw("POST", "/analyse", payload)
        if status >= 400:
            raise _as_service_error(status, data)
        raw = headers.get("x-repro-batch", "1/0")
        try:
            size_s, index_s = raw.split("/", 1)
            batch = (int(size_s), int(index_s))
        except ValueError:
            batch = (1, 0)
        stamped = obs_context.parse_header(headers.get("x-repro-trace"))
        trace_id = stamped.trace_id if stamped is not None else ""
        return data, headers.get("x-repro-cache", ""), batch, trace_id

    def debug_requests(self, limit: int | None = None) -> dict:
        """The flight recorder's newest request summaries."""
        path = "/debug/requests"
        if limit is not None:
            path += f"?limit={limit}"
        return self._request_json("GET", path)

    def debug_trace(self, trace_id: str | None = None) -> dict:
        """One trace's flight record + span forest.

        ``trace_id`` defaults to :attr:`last_trace_id` — "show me what
        just happened" is the common call.
        """
        trace_id = trace_id or self.last_trace_id
        if not trace_id:
            raise ValueError("no trace id (make a request first)")
        return self._request_json("GET", f"/debug/trace/{trace_id}")

    def analyse(
        self, kernel: str, inputs: Sequence[Any] | None = None
    ) -> dict:
        """The significance report of one analysis, parsed."""
        data, _outcome = self.analyse_raw(kernel, inputs)
        return json.loads(data.decode("utf-8"))

    def advise(
        self,
        kernel: str,
        inputs: Sequence[Any] | None = None,
        threshold: float | None = None,
    ) -> dict:
        payload: dict[str, Any] = {"kernel": kernel}
        if inputs is not None:
            payload["inputs"] = list(inputs)
        if threshold is not None:
            payload["threshold"] = threshold
        return self._request_json("POST", "/advise", payload)

    def tune(
        self,
        kernel: str,
        *,
        target_quality: float | None = None,
        energy_budget: float | None = None,
        size: int | None = None,
    ) -> dict:
        payload: dict[str, Any] = {"kernel": kernel}
        if target_quality is not None:
            payload["target_quality"] = target_quality
        if energy_budget is not None:
            payload["energy_budget"] = energy_budget
        if size is not None:
            payload["size"] = size
        return self._request_json("POST", "/tune", payload)


def _as_service_error(status: int, data: bytes) -> ServiceError:
    try:
        error = json.loads(data.decode("utf-8"))["error"]
        return ServiceError(
            int(error["status"]), str(error["reason"]), str(error["detail"])
        )
    except (ValueError, KeyError, TypeError):
        return ServiceError(status, "Error", data.decode("utf-8", "replace"))
