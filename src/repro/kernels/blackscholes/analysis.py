"""Significance analysis of BlackScholes (Section 4.1.5).

"Significance analysis indicates that the computation of a stock price
can be broken down to 4 blocks of code A, B, C, D, with
sig(A) > sig(B) ≫ sig(C) > sig(D)."

We register the five option parameters as inputs over realistic market
ranges, tag the four blocks as intermediates and analyse against the call
price.  The analysis is repeated over sampled options and the block
significances averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.intervals import Interval
from repro.scorpio import Analysis, CachedTrace, TraceCache, replay_enabled

from .data import Portfolio, make_portfolio
from .sequential import black_scholes_blocks

__all__ = [
    "BlackScholesAnalysis",
    "analyse_option",
    "analyse_portfolio_vec",
    "analyse_blackscholes",
]

_BLOCKS = ("A", "B", "C", "D")


@dataclass
class BlackScholesAnalysis:
    """Mean per-block significances, max-normalised."""

    block_significance: dict[str, float]
    per_option: list[dict[str, float]]
    samples: int

    def ranking(self) -> list[str]:
        """Block letters, most significant first."""
        return sorted(
            self.block_significance,
            key=lambda k: self.block_significance[k],
            reverse=True,
        )


def _record_option(ivs) -> Analysis:
    """Record one BlackScholes pricing over (S, K, r, v, T) intervals."""
    an = Analysis()
    with an:
        s = an.input(ivs[0], name="S")
        k = an.input(ivs[1], name="K")
        r = an.input(ivs[2], name="r")
        v = an.input(ivs[3], name="v")
        t = an.input(ivs[4], name="T")
        blocks = black_scholes_blocks(s, k, r, v, t)
        for name in _BLOCKS:
            an.intermediate(blocks[name], name)
        an.output(blocks["call"], name="price")
    return an


def analyse_option(
    spot: float,
    strike: float,
    rate: float,
    volatility: float,
    expiry: float,
    relative_uncertainty: float = 0.02,
    compiled: bool = False,
    cache: TraceCache | None = None,
) -> dict[str, float]:
    """Block significances for one option (±2% parameter uncertainty).

    With a ``cache``, replays the shared pricing trace on this option's
    parameter intervals instead of re-recording — bit-identical either way.
    """
    ivs = [
        Interval.centered(p, relative_uncertainty * p)
        for p in (spot, strike, rate, volatility, expiry)
    ]
    if cache is not None:
        report = cache.analyse(
            ("bs_option",), _record_option, ivs, simplify=False
        )
    else:
        report = _record_option(ivs).analyse(
            simplify=False, compiled=compiled
        )
    sigs = report.labelled_significances()
    return {name: sigs[name] for name in _BLOCKS}


def _replay_options(
    options: list[tuple[float, float, float, float, float]],
    relative_uncertainty: float = 0.02,
    *,
    executor=None,
    workers: int | None = None,
) -> list[dict[str, float]] | None:
    """Per-option block significances via one lane-replayed trace.

    Records the pricing trace once (on the first option) and prices every
    option as one lane of a single vectorized forward + adjoint sweep.
    Each lane is bit-identical to :func:`analyse_option` on that option —
    the per-option replay of this ~40-node trace loses to the scalar
    recording on NumPy call overhead, but the lanes amortize it across
    the whole batch.  With ``executor="process"`` the lane sweep is
    chunked across worker processes via
    :func:`repro.mp.parallel_lane_significances` — same bits, more cores.
    Returns ``None`` when the trace cannot be replayed (the caller falls
    back to the per-option path).
    """
    from repro.ad.replay import GuardDivergenceError, ReplayError

    ivs = [
        Interval.centered(p, relative_uncertainty * p) for p in options[0]
    ]
    try:
        trace = CachedTrace(_record_option(ivs), simplify=False)
    except ReplayError:
        return None
    params = np.asarray(options, dtype=np.float64).T
    radius = relative_uncertainty * params
    try:
        sig = _lane_sig(
            trace,
            params - radius,
            params + radius,
            executor=executor,
            workers=workers,
        )
    except GuardDivergenceError:
        return None
    rows = {name: trace.label_index(name) for name in _BLOCKS}
    return [
        {name: float(sig[rows[name], j]) for name in _BLOCKS}
        for j in range(len(options))
    ]


def _lane_sig(
    trace: CachedTrace,
    lanes_lo: np.ndarray,
    lanes_hi: np.ndarray,
    *,
    executor=None,
    workers: int | None = None,
) -> np.ndarray:
    """Eq. 11 matrix for lane bounds, sequential or process-parallel.

    The two paths are bitwise identical (pinned by ``tests/mp``); the
    process path only pays off for batches past a few hundred lanes.
    """
    if executor is not None:
        from repro.mp import parallel_lane_significances, process_requested
    if executor is not None and process_requested(executor):
        return parallel_lane_significances(
            trace,
            lanes_lo,
            lanes_hi,
            workers=workers,
            executor=None if isinstance(executor, str) else executor,
        )
    return trace.lane_significances(trace.forward_lanes(lanes_lo, lanes_hi))


def analyse_portfolio_vec(
    spots: np.ndarray,
    strikes: np.ndarray,
    rates: np.ndarray,
    volatilities: np.ndarray,
    expiries: np.ndarray,
    relative_uncertainty: float = 0.02,
):
    """Batched block analysis: every option is one lane of a single tape.

    Records the BlackScholes DynDFG *once* with array-valued nodes and runs
    one lane-parallel reverse sweep, returning a
    :class:`repro.vec.VecSignificanceReport` whose labelled significances
    are per-option arrays.  The kernel source is the same
    :func:`black_scholes_blocks` the scalar analysis uses — only the
    overloaded type changes.
    """
    from repro.vec import IntervalArray, VAnalysis

    spots = np.asarray(spots, dtype=np.float64)
    va = VAnalysis(lane_shape=spots.shape)
    with va:
        s = va.input(
            IntervalArray.centered(spots, relative_uncertainty * spots),
            name="S",
        )
        k = va.input(
            IntervalArray.centered(
                strikes, relative_uncertainty * np.asarray(strikes)
            ),
            name="K",
        )
        r = va.input(
            IntervalArray.centered(
                rates, relative_uncertainty * np.asarray(rates)
            ),
            name="r",
        )
        v = va.input(
            IntervalArray.centered(
                volatilities, relative_uncertainty * np.asarray(volatilities)
            ),
            name="v",
        )
        t = va.input(
            IntervalArray.centered(
                expiries, relative_uncertainty * np.asarray(expiries)
            ),
            name="T",
        )
        blocks = black_scholes_blocks(s, k, r, v, t)
        for name in _BLOCKS:
            va.intermediate(blocks[name], name)
        va.output(blocks["call"], name="price")
    return va.analyse()


def analyse_blackscholes(
    portfolio: Portfolio | None = None,
    samples: int = 24,
    seed: int = 5,
    vec: bool = False,
    replay: bool | None = None,
    executor=None,
    workers: int | None = None,
) -> BlackScholesAnalysis:
    """Averaged block significances over sampled options.

    With ``vec=True`` the sampled options are analysed as lanes of one
    batched tape (one reverse sweep total) instead of one scalar tape per
    option; the same options are drawn either way, so the resulting block
    ranking matches.  In the scalar path, ``replay`` (default: the module
    replay setting) records the pricing trace on the first option and
    replays every sampled option as one lane of a single sweep —
    bit-identical per option to the recorded scalar analysis.
    ``executor="process"`` additionally fans the replayed lanes out over
    ``workers`` processes (:mod:`repro.mp`) without changing a single bit
    of the result.
    """
    if portfolio is None:
        portfolio = make_portfolio(count=max(samples, 64), seed=seed)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        portfolio.count, size=min(samples, portfolio.count), replace=False
    )
    per_option: list[dict[str, float]] = []
    if vec:
        vreport = analyse_portfolio_vec(
            portfolio.spots[chosen],
            portfolio.strikes[chosen],
            portfolio.rates[chosen],
            portfolio.volatilities[chosen],
            portfolio.expiries[chosen],
        )
        lanes = vreport.labelled_significances()
        per_option = [
            {name: float(lanes[name][j]) for name in _BLOCKS}
            for j in range(len(chosen))
        ]
    else:
        options = [
            (
                float(portfolio.spots[i]),
                float(portfolio.strikes[i]),
                float(portfolio.rates[i]),
                float(portfolio.volatilities[i]),
                float(portfolio.expiries[i]),
            )
            for i in chosen
        ]
        replayed = (
            _replay_options(options, executor=executor, workers=workers)
            if replay_enabled(replay)
            else None
        )
        per_option = (
            replayed
            if replayed is not None
            else [analyse_option(*o) for o in options]
        )
    mean = {
        name: float(np.mean([p[name] for p in per_option])) for name in _BLOCKS
    }
    peak = max(mean.values())
    if peak > 0:
        mean = {k: v / peak for k, v in mean.items()}
    return BlackScholesAnalysis(
        block_significance=mean, per_option=per_option, samples=len(per_option)
    )
